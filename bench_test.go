// Benchmarks regenerating each table and figure of the paper's evaluation
// (§7), plus ablations of this implementation's design choices. Mapping:
//
//	BenchmarkFig09/16  CC extraction + cardinality histograms (Figs 9, 16)
//	BenchmarkFig10     volumetric similarity, Hydra vs DataSynth (Fig 10)
//	BenchmarkFig11     referential-integrity extras (Fig 11)
//	BenchmarkFig12     LP variables, region vs grid (Fig 12)
//	BenchmarkFig13     LP processing time (Fig 13)
//	BenchmarkFig14     materialization (Fig 14)
//	BenchmarkSec74     exabyte-scale summary construction (§7.4)
//	BenchmarkFig15     disk scan vs dynamic generation (Fig 15)
//	BenchmarkFig17     JOB LP variables (Fig 17)
//
// The ablation suite isolates: region vs grid partitioning, deterministic
// alignment vs sampling instantiation, rational vs float simplex, joint vs
// sequential LP solving, adaptive decomposition vs literal-paper cliques,
// FK spread, and tuple-lookup strategy.
package hydra_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/datasynth"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/lp"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/serve"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
	"github.com/dsl-repro/hydra/internal/workload/job"
	"github.com/dsl-repro/hydra/internal/workload/tpcds"
)

// benchEnv is the shared benchmark environment: one synthetic client site,
// built once across all benchmarks.
type benchEnv struct {
	cfg      tpcds.Config
	schema   *schema.Schema
	db       *engine.Database
	queriesC []*engine.Query
	wlc      *cc.Workload
	wls      *cc.Workload

	jobCfg    job.Config
	jobSchema *schema.Schema
	jobWL     *cc.Workload
}

var (
	envOnce sync.Once
	env     *benchEnv
	envErr  error
)

func getEnv(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		e := &benchEnv{cfg: tpcds.Config{SF: 0.05, Seed: 42}}
		e.schema = tpcds.Schema(e.cfg)
		db, err := tpcds.GenerateDB(e.schema, e.cfg)
		if err != nil {
			envErr = err
			return
		}
		e.db = db
		e.queriesC = tpcds.QueriesComplex(e.schema, e.cfg, 60)
		e.wlc, _, envErr = engine.WorkloadFromQueries(db, e.schema, "WLc", e.queriesC)
		if envErr != nil {
			return
		}
		e.wls, _, envErr = engine.WorkloadFromQueries(db, e.schema, "WLs", tpcds.QueriesSimple(e.schema, e.cfg, 40))
		if envErr != nil {
			return
		}
		e.jobCfg = job.Config{SF: 0.05, Seed: 11}
		e.jobSchema = job.Schema(e.jobCfg)
		jdb, err := job.GenerateDB(e.jobSchema, e.jobCfg)
		if err != nil {
			envErr = err
			return
		}
		e.jobWL, _, envErr = engine.WorkloadFromQueries(jdb, e.jobSchema, "JOB", job.Queries(e.jobSchema, e.jobCfg, 80))
		env = e
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkFig09_CCDistributionWLc measures the client-side path behind
// Figure 9: executing the workload to obtain AQPs and deriving the CC set.
func BenchmarkFig09_CCDistributionWLc(b *testing.B) {
	e := getEnv(b)
	qs := e.queriesC[:20]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _, err := engine.WorkloadFromQueries(e.db, e.schema, "WLc", qs)
		if err != nil {
			b.Fatal(err)
		}
		if h := w.CountHistogram(); len(h) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFig10_VolumetricSimilarity measures one full Hydra
// regenerate-and-evaluate cycle on the simple workload (the Fig. 10 loop).
func BenchmarkFig10_VolumetricSimilarity(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Evaluate(e.wls); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_RefIntegrityExtras measures the summary-construction tail
// (align/merge + consistency repair) that produces the Fig. 11 numbers.
func BenchmarkFig11_RefIntegrityExtras(b *testing.B) {
	e := getEnv(b)
	views, err := preprocess.BuildViews(e.schema, e.wls)
	if err != nil {
		b.Fatal(err)
	}
	order, _ := e.schema.TopoOrder()
	sols := map[string]*core.ViewSolution{}
	for _, t := range order {
		sol, err := core.FormulateAndSolve(views[t.Name], core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sols[t.Name] = sol
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := summary.Build(e.schema, views, sols)
		if err != nil {
			b.Fatal(err)
		}
		_ = sum.Extra
	}
}

// BenchmarkFig12_LPVariables measures region-partitioned LP formulation
// for the biggest fact view plus the analytic grid count (the Fig. 12
// comparison quantities).
func BenchmarkFig12_LPVariables(b *testing.B) {
	e := getEnv(b)
	views, err := preprocess.BuildViews(e.schema, e.wlc)
	if err != nil {
		b.Fatal(err)
	}
	v := views["store_sales"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := core.FormulateWith(v, core.RegionStrategy)
		if err != nil {
			b.Fatal(err)
		}
		grid := datasynth.GridVars(v)
		if f.Stats.Vars == 0 || grid.Sign() == 0 {
			b.Fatal("no variables")
		}
	}
}

// BenchmarkFig13_LPSolveTime measures the complete per-view formulate +
// solve pipeline over the complex workload (Hydra's Fig. 13 column).
func BenchmarkFig13_LPSolveTime(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := hydra.Regenerate(e.schema, e.wlc, hydra.Config{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.SolveTime
	}
}

// BenchmarkFig14_Materialization measures Hydra's static materialization:
// summary construction plus writing every generated tuple to heap files.
func BenchmarkFig14_Materialization(b *testing.B) {
	e := getEnv(b)
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
		if err != nil {
			b.Fatal(err)
		}
		var rows int64
		for name, rs := range res.Summary.Relations {
			gen := engine.NewGenRelation(tuplegen.New(rs))
			d, err := engine.MaterializeToDisk(gen, filepath.Join(dir, fmt.Sprintf("%s_%d.heap", name, i)))
			if err != nil {
				b.Fatal(err)
			}
			rows += d.NumRows()
			os.Remove(filepath.Join(dir, fmt.Sprintf("%s_%d.heap", name, i)))
		}
		b.ReportMetric(float64(rows), "tuples/op")
	}
}

// BenchmarkMaterializeParallel measures end-to-end throughput scaling of
// the matgen worker pool at 1, 2, 4 and 8 workers, across three sink
// configurations: discard (pure generation plus pool overhead, no
// encoding or disk), csv (run-aware text encoding plus disk), and gzip
// (csv encoding plus worker-side per-chunk compression). The output is
// byte-identical at every worker count; only wall time moves. Metrics:
// tuples/s is generated-row throughput, MB/s is encoded (pre-compression)
// byte throughput, and -benchmem's allocs/op tracks the steady-state
// allocation cost of the whole pipeline.
func BenchmarkMaterializeParallel(b *testing.B) {
	e := getEnv(b)
	res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var rows int64
	for _, rs := range res.Summary.Relations {
		rows += rs.Total
	}
	cases := []struct{ name, format, compress string }{
		{"discard", "discard", ""},
		{"csv", "csv", ""},
		{"gzip", "csv", "gzip"},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				opts := hydra.MaterializeOptions{
					Format: tc.format, Compress: tc.compress,
					Workers: workers, NoManifest: true,
				}
				if tc.format != "discard" {
					opts.Dir = b.TempDir()
				}
				b.ReportAllocs()
				var encoded int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := hydra.Materialize(res.Summary, opts)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Rows != rows {
						b.Fatalf("rows = %d, want %d", rep.Rows, rows)
					}
					for _, tr := range rep.Tables {
						if tr.RawBytes > 0 {
							encoded += tr.RawBytes
						} else {
							encoded += tr.Bytes
						}
					}
				}
				b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
				if encoded > 0 {
					b.ReportMetric(float64(encoded)/1e6/b.Elapsed().Seconds(), "MB/s")
				}
			})
		}
	}
}

// BenchmarkServeStream measures the regeneration-as-a-service path: one
// client draining GET /v1/tables/store_sales from a loopback server —
// the matgen encode pipeline plus HTTP chunking, flushing, and trailer
// hashing. MB/s counts payload bytes as received (post-compression for
// the gzip case), so the csv case is directly comparable with
// BenchmarkMaterializeParallel's csv MB/s: the delta is the cost of the
// network face.
func BenchmarkServeStream(b *testing.B) {
	e := getEnv(b)
	res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
	if err != nil {
		b.Fatal(err)
	}
	h, err := serve.NewServer(res.Summary, serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	rows := res.Summary.Relations["store_sales"].Total
	for _, tc := range []struct{ name, query string }{
		{"csv", "format=csv"},
		{"gzip", "format=csv&compress=gzip"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var payload int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Get(ts.URL + "/v1/tables/store_sales?" + tc.query)
				if err != nil {
					b.Fatal(err)
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					b.Fatalf("status %s, err %v", resp.Status, err)
				}
				payload += n
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(float64(payload)/1e6/b.Elapsed().Seconds(), "MB/s")
		})
	}
}

// BenchmarkScan measures the unified read path's throughput per
// backend: draining one store_sales scan from the summary (pure
// generation), a materialized csv directory (decode + lazy checksum
// verify), and a loopback serve fleet (stream + decode). rows/s is the
// figure of merit; the summary backend is the ceiling the readers are
// chasing.
func BenchmarkScan(b *testing.B) {
	e := getEnv(b)
	res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
	if err != nil {
		b.Fatal(err)
	}
	const table = "store_sales"
	rows := res.Summary.Relations[table].Total

	dir := b.TempDir()
	if _, err := hydra.Materialize(res.Summary, hydra.MaterializeOptions{
		Dir: dir, Format: "csv",
	}); err != nil {
		b.Fatal(err)
	}
	dirSrc, err := hydra.OpenDirSource(dir)
	if err != nil {
		b.Fatal(err)
	}
	h, err := serve.NewServer(res.Summary, serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	remoteSrc, err := hydra.NewRemoteSource([]string{ts.URL}, hydra.RemoteSourceOptions{})
	if err != nil {
		b.Fatal(err)
	}

	backends := []struct {
		name string
		src  hydra.Source
	}{
		{"summary", hydra.NewSummarySource(res.Summary)},
		{"dir", dirSrc},
		{"remote", remoteSrc},
	}
	for _, tc := range backends {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc, err := tc.src.Scan(context.Background(), hydra.ScanSpec{Table: table})
				if err != nil {
					b.Fatal(err)
				}
				var got int64
				for sc.Next() {
					got += int64(sc.Batch().N)
				}
				if err := sc.Err(); err != nil {
					b.Fatal(err)
				}
				sc.Close()
				if got != rows {
					b.Fatalf("scanned %d rows, want %d", got, rows)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}

	// Predicate pushdown's payoff: a ~0.1%-selectivity pk-range filter
	// over the summary backend. The span filter slices the range by
	// arithmetic, so rows/s here counts the rows COVERED (the full
	// table) per second of scanning, and should beat the unfiltered
	// summary scan by well over an order of magnitude.
	b.Run("filtered", func(b *testing.B) {
		mid := rows / 2
		filt := hydra.Col(table+"_pk").In(mid, mid+rows/1000)
		src := hydra.NewSummarySource(res.Summary)
		want := rows/1000 + 1
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc, err := src.Scan(context.Background(), hydra.ScanSpec{Table: table, Filter: filt})
			if err != nil {
				b.Fatal(err)
			}
			var got int64
			for sc.Next() {
				got += int64(sc.Batch().N)
			}
			if err := sc.Err(); err != nil {
				b.Fatal(err)
			}
			sc.Close()
			if got != want {
				b.Fatalf("scanned %d rows, want %d", got, want)
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkSec74_ExabyteSummary measures summary construction with CC
// counts scaled to exabyte-class volumes — the §7.4 scale-independence
// claim: this should not be slower than BenchmarkFig13 at base scale.
func BenchmarkSec74_ExabyteSummary(b *testing.B) {
	e := getEnv(b)
	const k = 100_000_000_000
	tabs := make([]*schema.Table, len(e.schema.Tables))
	for i, t := range e.schema.Tables {
		nt := *t
		nt.RowCount *= k
		tabs[i] = &nt
	}
	bigSchema := schema.MustNew(tabs...)
	bigWL := &cc.Workload{Name: "exa", CCs: append([]cc.CC(nil), e.wlc.CCs...)}
	for i := range bigWL.CCs {
		bigWL.CCs[i].Count *= k
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hydra.Regenerate(bigSchema, bigWL, hydra.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Summary.SizeBytes()), "summary-bytes")
	}
}

// BenchmarkFig15 measures the two data supply paths of Fig. 15 over the
// same relation: sequential disk scan of the materialized heap file versus
// on-the-fly generation from the summary.
func BenchmarkFig15(b *testing.B) {
	e := getEnv(b)
	res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
	if err != nil {
		b.Fatal(err)
	}
	gen := tuplegen.New(res.Summary.Relations["store_sales"])
	genRel := engine.NewGenRelation(gen)
	disk, err := engine.MaterializeToDisk(genRel, filepath.Join(b.TempDir(), "ss.heap"))
	if err != nil {
		b.Fatal(err)
	}
	rows := float64(genRel.NumRows())
	b.Run("DiskScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.AggregateScan(disk, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	})
	b.Run("Dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.AggregateScan(genRel, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	})
}

// BenchmarkFig16_CCDistributionJOB measures JOB CC extraction (Fig. 16).
func BenchmarkFig16_CCDistributionJOB(b *testing.B) {
	e := getEnv(b)
	jdb, err := job.GenerateDB(e.jobSchema, e.jobCfg)
	if err != nil {
		b.Fatal(err)
	}
	qs := job.Queries(e.jobSchema, e.jobCfg, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _, err := engine.WorkloadFromQueries(jdb, e.jobSchema, "JOB", qs)
		if err != nil {
			b.Fatal(err)
		}
		_ = w.CountHistogram()
	}
}

// BenchmarkFig17_JOBVariables measures per-view formulation over the whole
// JOB workload (Fig. 17's variable counts).
func BenchmarkFig17_JOBVariables(b *testing.B) {
	e := getEnv(b)
	views, err := preprocess.BuildViews(e.jobSchema, e.jobWL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, v := range views {
			f, err := core.FormulateWith(v, core.RegionStrategy)
			if err != nil {
				b.Fatal(err)
			}
			total += f.Stats.Vars
		}
		if total == 0 {
			b.Fatal("no variables")
		}
	}
}

// --- Ablations ---

// BenchmarkAblation_RegionVsGrid isolates the paper's core claim: the cost
// of formulating (and counting variables for) one dimension view under
// region versus grid partitioning.
func BenchmarkAblation_RegionVsGrid(b *testing.B) {
	e := getEnv(b)
	views, err := preprocess.BuildViews(e.schema, e.wls)
	if err != nil {
		b.Fatal(err)
	}
	v := views["item"]
	b.Run("Region", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := core.FormulateWith(v, core.RegionStrategy)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(f.Stats.Vars), "vars")
		}
	})
	b.Run("Grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := core.FormulateWith(v, datasynth.GridStrategy("item", datasynth.DefaultMaxCells))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(f.Stats.Vars), "vars")
		}
	})
}

// BenchmarkAblation_AlignVsSampling compares Hydra's deterministic
// align-and-merge instantiation against DataSynth's per-tuple sampling for
// the same solved workload — the §5.1 design decision.
func BenchmarkAblation_AlignVsSampling(b *testing.B) {
	e := getEnv(b)
	b.Run("HydraAlign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DataSynthSampling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datasynth.Regenerate(e.schema, e.wls, datasynth.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_RationalVsFloat compares the exact and float simplex
// backends on the same mid-size feasibility system.
func BenchmarkAblation_RationalVsFloat(b *testing.B) {
	prob := &lp.Problem{NumVars: 120}
	hidden := make([]int64, 120)
	for i := range hidden {
		hidden[i] = int64((i * 13) % 50)
	}
	for r := 0; r < 25; r++ {
		var entries []lp.Entry
		var rhs int64
		for v := r; v < 120; v += 2 + r%3 {
			entries = append(entries, lp.Entry{Var: v, Coef: 1})
			rhs += hidden[v]
		}
		prob.AddRow(lp.Row{Entries: entries, Rel: lp.EQ, RHS: rhs, Name: "r"})
	}
	b.Run("Rational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lp.SolveInteger(prob, lp.IntOptions{Backend: lp.Rational}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Float", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lp.SolveInteger(prob, lp.IntOptions{Backend: lp.Float}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_JointVsSequential compares the joint per-view LP
// against the clique-tree-sequential decomposition on the simple workload.
func BenchmarkAblation_JointVsSequential(b *testing.B) {
	e := getEnv(b)
	views, err := preprocess.BuildViews(e.schema, e.wls)
	if err != nil {
		b.Fatal(err)
	}
	order, _ := e.schema.TopoOrder()
	run := func(b *testing.B, opts core.Options) {
		for i := 0; i < b.N; i++ {
			for _, t := range order {
				if _, err := core.FormulateAndSolve(views[t.Name], opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("Sequential", func(b *testing.B) { run(b, core.Options{}) })
	b.Run("Joint", func(b *testing.B) { run(b, core.Options{Joint: true}) })
}

// BenchmarkAblation_DecompositionPolicy compares the adaptive
// component-merge policy against the literal-paper maximal-clique
// decomposition on the overlapping complex workload.
func BenchmarkAblation_DecompositionPolicy(b *testing.B) {
	e := getEnv(b)
	views, err := preprocess.BuildViews(e.schema, e.wlc)
	if err != nil {
		b.Fatal(err)
	}
	v := views["item"]
	run := func(b *testing.B, threshold int) {
		old := core.MergeFloorThreshold
		core.MergeFloorThreshold = threshold
		defer func() { core.MergeFloorThreshold = old }()
		for i := 0; i < b.N; i++ {
			f, err := core.FormulateWith(v, core.RegionStrategy)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(f.Stats.Vars), "vars")
		}
	}
	b.Run("Adaptive", func(b *testing.B) { run(b, 20_000) })
	b.Run("PaperCliques", func(b *testing.B) { run(b, 1<<40) })
}

// BenchmarkAblation_FKSpread compares first-row FK assignment (the
// paper's) against round-robin spreading on the probe side of a hash join.
func BenchmarkAblation_FKSpread(b *testing.B) {
	e := getEnv(b)
	res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, spread bool) {
		gen := tuplegen.New(res.Summary.Relations["store_sales"])
		gen.SetFKSpread(spread)
		rel := engine.NewGenRelation(gen)
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.AggregateScan(rel, 6); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("FirstRow", func(b *testing.B) { run(b, false) })
	b.Run("Spread", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_TupleLookup compares the prefix-sum binary search
// against the paper's literal linear scan for random tuple access (see
// also the micro-benchmarks in internal/tuplegen).
func BenchmarkAblation_TupleLookup(b *testing.B) {
	e := getEnv(b)
	res, err := hydra.Regenerate(e.schema, e.wls, hydra.Config{})
	if err != nil {
		b.Fatal(err)
	}
	gen := tuplegen.New(res.Summary.Relations["store_sales"])
	n := gen.NumRows()
	b.Run("BinarySearch", func(b *testing.B) {
		var buf []int64
		for i := 0; i < b.N; i++ {
			buf = gen.Row(int64(i)%n+1, buf)
		}
	})
	b.Run("LinearScan", func(b *testing.B) {
		var buf []int64
		for i := 0; i < b.N; i++ {
			buf = gen.RowLinear(int64(i)%n+1, buf)
		}
	})
}
