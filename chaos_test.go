package hydra_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/faultinject"
	"github.com/dsl-repro/hydra/internal/loadgen"
	"github.com/dsl-repro/hydra/internal/resilience"
	"github.com/dsl-repro/hydra/internal/scan"
	"github.com/dsl-repro/hydra/internal/serve"
)

// TestChaosFleetZeroErrors is the resilience layer's acceptance test:
// loadgen against a 3-member fleet with one member flapping behind the
// fault proxy must complete with zero client-visible errors, and a
// whole-table scan through the same battered fleet must be
// byte-identical to a healthy in-process scan. Finally, a drained
// member must be skipped by the member tracker within one probe
// interval.
func TestChaosFleetZeroErrors(t *testing.T) {
	res := regenerateFigure1(t, hydra.Config{})
	sum := res.Summary

	// Three real members; member 0 sits behind the chaos proxy, which
	// injects the full fault menu — refusal, 500s, 503 bursts, cuts,
	// stalls, corruption — on roughly a third of its requests,
	// deterministically under the seed.
	var members []*serve.Server
	var urls []string
	for i := 0; i < 3; i++ {
		srv, err := serve.NewServer(sum, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, srv)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	faults := []faultinject.Fault{
		{Kind: faultinject.KindRefuse},
		{Kind: faultinject.KindStatus, Status: http.StatusInternalServerError},
		{Kind: faultinject.KindStatus, Status: http.StatusServiceUnavailable, RetryAfter: "1"},
		{Kind: faultinject.KindCut, AfterBytes: 256},
		{Kind: faultinject.KindStall, AfterBytes: 128, StallFor: 200 * time.Millisecond},
		{Kind: faultinject.KindCorrupt, AfterBytes: 512},
	}
	proxy, err := faultinject.New(urls[0], faultinject.Flaky(7, 0.35, faults...))
	if err != nil {
		t.Fatal(err)
	}
	px := httptest.NewServer(proxy)
	t.Cleanup(px.Close)

	fleet := []string{px.URL, urls[1], urls[2]}
	src, err := scan.NewRemoteSource(fleet, scan.RemoteOptions{
		Fleet: resilience.Options{
			ProbeInterval:   200 * time.Millisecond,
			BreakerCooldown: 400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		Source:         src,
		Concurrency:    4,
		MaxRequests:    48,
		RowsPerRequest: 500,
		Duration:       2 * time.Minute, // bounded by MaxRequests, not time
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen through the flapping fleet saw %d errors (want 0): %v",
			rep.Errors, rep.ErrorSamples)
	}
	if rep.Requests == 0 || rep.Rows == 0 {
		t.Fatalf("loadgen did no work: %d requests, %d rows", rep.Requests, rep.Rows)
	}
	if proxy.Requests() == 0 {
		t.Fatal("the chaos proxy saw no traffic; the fleet never touched the faulted member")
	}

	// Byte-identity: every row of every table through the battered fleet
	// must equal the healthy in-process regeneration.
	healthy := scan.NewSummarySource(sum)
	defer healthy.Close()
	tables, err := src.Tables()
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range tables {
		want := drainScan(t, healthy, scan.Spec{Table: table})
		got := drainScan(t, src, scan.Spec{Table: table})
		if len(got) != len(want) {
			t.Fatalf("table %s: fleet scan yielded %d rows, healthy %d", table, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				if got[i][c] != want[i][c] {
					t.Fatalf("table %s row %d col %d: fleet %d, healthy %d — chaos broke byte-identity",
						table, i, c, got[i][c], want[i][c])
				}
			}
		}
	}

	// Drain skip: put member 2 into drain mode; within one probe
	// interval the tracker must see it and Pick must stop returning it.
	members[2].BeginDrain()
	deadline := time.Now().Add(2 * time.Second)
	var drained *resilience.Member
	for time.Now().Before(deadline) && drained == nil {
		for _, m := range src.Tracker().Members() {
			if m.URL == urls[2] && m.State() == resilience.MemberDraining {
				drained = m
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if drained == nil {
		t.Fatal("tracker never marked the drained member draining")
	}
	for i := 0; i < 12; i++ {
		if m := src.Tracker().Pick(); m != nil && m.URL == urls[2] {
			t.Fatal("Pick returned a draining member while healthy members remain")
		}
	}
}

// drainScan reads a whole scan into row-major tuples.
func drainScan(t *testing.T, src scan.Source, spec scan.Spec) [][]int64 {
	t.Helper()
	sc, err := src.Scan(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var out [][]int64
	for sc.Next() {
		b := sc.Batch()
		for i := 0; i < b.N; i++ {
			row := make([]int64, len(b.Cols))
			for c := range b.Cols {
				row[c] = b.Cols[c][i]
			}
			out = append(out, row)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
