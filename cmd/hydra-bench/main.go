// Command hydra-bench reproduces the paper's evaluation section: one
// experiment per table/figure of §7 (see DESIGN.md for the index), printed
// as aligned text tables or markdown for EXPERIMENTS.md.
//
// Usage:
//
//	hydra-bench -exp all                  # every experiment
//	hydra-bench -exp fig12,fig13          # a subset
//	hydra-bench -sf 0.5 -queries 131      # bigger substrate
//	hydra-bench -md > results.md          # markdown output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/dsl-repro/hydra/internal/exp"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	sf := flag.Float64("sf", 0.2, "TPC-DS substrate scale factor (1.0 ≈ 1M tuples)")
	seed := flag.Int64("seed", 42, "workload/data seed")
	queries := flag.Int("queries", 0, "WLc query count (0 = paper's 131)")
	jobQueries := flag.Int("job-queries", 0, "JOB query count (0 = paper's 260)")
	dir := flag.String("dir", os.TempDir(), "scratch directory for disk experiments")
	md := flag.Bool("md", false, "emit markdown tables")
	flag.Parse()

	cfg := exp.Config{
		SF:         *sf,
		Seed:       *seed,
		QueriesWLc: *queries,
		QueriesJOB: *jobQueries,
		Dir:        *dir,
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "building client environment (sf=%.2g, seed=%d)...\n", *sf, *seed)
	env, err := exp.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v\n", time.Since(start).Round(time.Millisecond))

	var ids []string
	if *expFlag == "all" {
		for _, r := range exp.Runners() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		t0 := time.Now()
		tab, err := exp.Run(env, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydra-bench: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(t0).Round(time.Millisecond))
		if *md {
			printMarkdown(tab)
		} else {
			tab.Fprint(os.Stdout)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printMarkdown(t *exp.Table) {
	fmt.Printf("### %s — %s\n\n", t.ID, t.Title)
	fmt.Println("| " + strings.Join(t.Header, " | ") + " |")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
	for _, row := range t.Rows {
		fmt.Println("| " + strings.Join(row, " | ") + " |")
	}
	for _, n := range t.Notes {
		fmt.Printf("\n_%s_\n", n)
	}
	fmt.Println()
}
