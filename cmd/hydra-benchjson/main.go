// Command hydra-benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive one BENCH_ci.json
// artifact per push and the performance trajectory accumulates in a form
// that scripts can diff and plot. With -baseline it additionally diffs
// the run against a committed BENCH_*.json and fails on throughput
// regressions — the CI trend gate.
//
// Usage:
//
//	go test -bench=Materialize -benchtime=1x -run='^$' ./... | hydra-benchjson > BENCH_ci.json
//	... | hydra-benchjson -baseline BENCH_baseline.json -benches '/(csv|gzip)/' > BENCH_ci.json
//
// The parser understands the standard benchmark line shape —
//
//	BenchmarkName/sub=case-8   	     120	  9876 ns/op	  4096 B/op	  1 allocs/op	  55.2 tuples/s
//
// — keeping every value/unit pair as a metric (ns/op, B/op, allocs/op,
// and custom b.ReportMetric units like tuples/s and MB/s), plus the
// goos/goarch/pkg/cpu context lines that precede each package's block.
//
// The trend diff compares one higher-is-better metric (default tuples/s)
// for every benchmark present in both documents, optionally restricted
// by the -benches regexp, and exits non-zero when any drops more than
// -max-regress below the baseline. Absolute numbers are machine-bound,
// so keep the comparison to benchmarks with comfortable headroom (or
// regenerate the baseline on the machine class CI runs on).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the trailing -GOMAXPROCS suffix, as printed by the test binary.
	Name string `json:"name"`
	// Pkg is the import path from the preceding "pkg:" context line.
	Pkg string `json:"pkg,omitempty"`
	// Runs is the iteration count the harness settled on.
	Runs int64 `json:"runs"`
	// Metrics maps unit → value for every pair on the line (ns/op,
	// B/op, allocs/op, and any b.ReportMetric custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole artifact.
type Doc struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Loadgen embeds a `hydra loadgen -json` report (verbatim), putting
	// the run's p50/p99 latency numbers in the same artifact as the
	// microbenchmarks; absent when CI ran no load test.
	Loadgen json.RawMessage `json:"loadgen,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "BENCH_*.json to diff the parsed run against")
	metric := flag.String("metric", "tuples/s", "higher-is-better metric compared against the baseline")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when the metric drops more than this fraction below baseline")
	benches := flag.String("benches", "", "regexp restricting which benchmarks the baseline diff covers (default all)")
	loadgenPath := flag.String("loadgen", "", "hydra loadgen -json report to embed in the artifact")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-benchjson:", err)
		os.Exit(1)
	}
	if *loadgenPath != "" {
		raw, err := os.ReadFile(*loadgenPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hydra-benchjson: -loadgen:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "hydra-benchjson: -loadgen: %s is not valid JSON\n", *loadgenPath)
			os.Exit(1)
		}
		doc.Loadgen = json.RawMessage(raw)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-benchjson:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	base, err := loadDoc(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-benchjson:", err)
		os.Exit(1)
	}
	var filter *regexp.Regexp
	if *benches != "" {
		if filter, err = regexp.Compile(*benches); err != nil {
			fmt.Fprintln(os.Stderr, "hydra-benchjson: -benches:", err)
			os.Exit(1)
		}
	}
	lines, failed := diff(base, doc, *metric, *maxRegress, filter)
	for _, line := range lines {
		fmt.Fprintln(os.Stderr, line)
	}
	if len(lines) == 0 {
		// A gate that compares nothing passes forever: renamed
		// benchmarks or a drifted -benches regexp must fail loudly, not
		// silently disable the regression check.
		fmt.Fprintf(os.Stderr, "hydra-benchjson: no benchmarks matched between the run and %s (metric %q, benches %q); the trend gate compared nothing\n",
			*baseline, *metric, *benches)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "hydra-benchjson: %s regressed more than %.0f%% below %s\n",
			*metric, *maxRegress*100, *baseline)
		os.Exit(1)
	}
}

func loadDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// diff compares one higher-is-better metric for every benchmark present
// in both documents (optionally restricted by filter), returning the
// human-readable delta report and whether any benchmark fell more than
// maxRegress below its baseline value. Benchmark names are normalized by
// stripping the trailing -GOMAXPROCS suffix so runs from machines with
// different core counts still line up.
func diff(base, cur *Doc, metric string, maxRegress float64, filter *regexp.Regexp) ([]string, bool) {
	baseVals := map[string]float64{}
	for _, b := range base.Benchmarks {
		if v, ok := b.Metrics[metric]; ok && v > 0 {
			baseVals[trimProcs(b.Name)] = v
		}
	}
	var lines []string
	failed := false
	seen := map[string]bool{}
	var names []string
	curVals := map[string]float64{}
	for _, b := range cur.Benchmarks {
		name := trimProcs(b.Name)
		v, ok := b.Metrics[metric]
		if !ok || seen[name] {
			continue
		}
		seen[name] = true
		names = append(names, name)
		curVals[name] = v
	}
	sort.Strings(names)
	for _, name := range names {
		old, ok := baseVals[name]
		if !ok || (filter != nil && !filter.MatchString(name)) {
			continue
		}
		v := curVals[name]
		delta := v/old - 1
		status := "ok"
		if delta < -maxRegress {
			status = "REGRESSION"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%-60s %14.0f -> %14.0f %s  %+6.1f%%  %s",
			name, old, v, metric, delta*100, status))
	}
	// A gated baseline benchmark that vanished from the run (renamed,
	// skipped, filtered out by -bench) would otherwise weaken the gate
	// silently: report it and fail.
	var missing []string
	for name := range baseVals {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		if _, ok := curVals[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		failed = true
		lines = append(lines, fmt.Sprintf("%-60s %14.0f -> %14s %s  %7s  MISSING from run",
			name, baseVals[name], "-", metric, ""))
	}
	return lines, failed
}

// trimProcs drops the trailing -N GOMAXPROCS suffix from a benchmark
// name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" line before its result
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses "BenchmarkX-8  N  v1 u1  v2 u2 ...".
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, runs, and at least one value/unit pair; pairs come in twos.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
