// Command hydra-benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive one BENCH_ci.json
// artifact per push and the performance trajectory accumulates in a form
// that scripts can diff and plot.
//
// Usage:
//
//	go test -bench=Materialize -benchtime=1x -run='^$' ./... | hydra-benchjson > BENCH_ci.json
//
// The parser understands the standard benchmark line shape —
//
//	BenchmarkName/sub=case-8   	     120	  9876 ns/op	  4096 B/op	  1 allocs/op	  55.2 tuples/s
//
// — keeping every value/unit pair as a metric, plus the goos/goarch/pkg/
// cpu context lines that precede each package's block.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the trailing -GOMAXPROCS suffix, as printed by the test binary.
	Name string `json:"name"`
	// Pkg is the import path from the preceding "pkg:" context line.
	Pkg string `json:"pkg,omitempty"`
	// Runs is the iteration count the harness settled on.
	Runs int64 `json:"runs"`
	// Metrics maps unit → value for every pair on the line (ns/op,
	// B/op, allocs/op, and any b.ReportMetric custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole artifact.
type Doc struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" line before its result
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses "BenchmarkX-8  N  v1 u1  v2 u2 ...".
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, runs, and at least one value/unit pair; pairs come in twos.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
