package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/dsl-repro/hydra
cpu: Intel(R) Xeon(R) CPU
BenchmarkMaterializeParallel/workers=1-8         	       1	  51003512 ns/op	   2514272 tuples/s
BenchmarkMaterializeParallel/workers=8-8         	       1	   9214010 ns/op	  13914388 tuples/s
BenchmarkFig14_Materialization-8                 	       1	 120000000 ns/op	    128248 tuples/op
PASS
ok  	github.com/dsl-repro/hydra	3.211s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "Intel(R) Xeon(R) CPU" {
		t.Fatalf("context = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkMaterializeParallel/workers=1-8" || b.Runs != 1 {
		t.Fatalf("first = %+v", b)
	}
	if b.Pkg != "github.com/dsl-repro/hydra" {
		t.Fatalf("pkg = %q", b.Pkg)
	}
	if b.Metrics["ns/op"] != 51003512 || b.Metrics["tuples/s"] != 2514272 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[2].Metrics["tuples/op"] != 128248 {
		t.Fatalf("custom metric lost: %v", doc.Benchmarks[2].Metrics)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkPending\nBenchmarkOdd 1 2\nnoise\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(doc.Benchmarks))
	}
}

func bench(name string, tuples float64) Benchmark {
	return Benchmark{Name: name, Runs: 1, Metrics: map[string]float64{"tuples/s": tuples}}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{
		bench("BenchmarkM/csv/workers=8-8", 1000),
		bench("BenchmarkM/gzip/workers=8-8", 400),
		bench("BenchmarkM/discard/workers=8-8", 9000),
		bench("BenchmarkGone-8", 5),
	}}
	cur := &Doc{Benchmarks: []Benchmark{
		// -4 suffix: a machine with fewer cores must still line up.
		bench("BenchmarkM/csv/workers=8-4", 2600),   // 2.6x, fine
		bench("BenchmarkM/gzip/workers=8-4", 290),   // -27.5%, regression
		bench("BenchmarkM/discard/workers=8-4", 10), // huge drop, but filtered out below
		bench("BenchmarkNew-4", 77),                 // no baseline, skipped
	}}

	lines, failed := diff(base, cur, "tuples/s", 0.25, nil)
	if !failed {
		t.Fatal("27.5% drop must fail at a 25% threshold")
	}
	// 3 compared + BenchmarkGone reported as missing from the run.
	if len(lines) != 4 {
		t.Fatalf("reported %d lines, want 4:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var regressions, missing int
	for _, l := range lines {
		if strings.Contains(l, "REGRESSION") {
			regressions++
			if !strings.Contains(l, "gzip") && !strings.Contains(l, "discard") {
				t.Fatalf("unexpected regression line: %s", l)
			}
		}
		if strings.Contains(l, "MISSING") {
			missing++
			if !strings.Contains(l, "BenchmarkGone") {
				t.Fatalf("unexpected missing line: %s", l)
			}
		}
	}
	if regressions != 2 || missing != 1 {
		t.Fatalf("flagged %d regressions and %d missing, want 2 and 1:\n%s",
			regressions, missing, strings.Join(lines, "\n"))
	}

	// The filter restricts the gate to benchmarks with headroom.
	lines, failed = diff(base, cur, "tuples/s", 0.25, regexpMust(t, "/(csv)/"))
	if failed {
		t.Fatalf("filtered diff must pass:\n%s", strings.Join(lines, "\n"))
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "csv") {
		t.Fatalf("filtered lines = %v", lines)
	}

	// Within threshold passes; the filter keeps the gate to the
	// benchmark that actually ran.
	cur2 := &Doc{Benchmarks: []Benchmark{bench("BenchmarkM/gzip/workers=8-8", 301)}}
	if _, failed := diff(base, cur2, "tuples/s", 0.25, regexpMust(t, "/(gzip)/")); failed {
		t.Fatal("-24.75% must pass at a 25% threshold")
	}
	// A gated benchmark vanishing from the run fails even without
	// regressions among those that ran.
	if _, failed := diff(base, cur2, "tuples/s", 0.25, regexpMust(t, "/(csv|gzip)/")); !failed {
		t.Fatal("csv benchmarks missing from the run must fail the gate")
	}
}

func regexpMust(t *testing.T, expr string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":              "BenchmarkX",
		"BenchmarkX/workers=8-16":   "BenchmarkX/workers=8",
		"BenchmarkX":                "BenchmarkX",
		"BenchmarkX/sub-case":       "BenchmarkX/sub-case",
		"BenchmarkMaterialize-8-12": "BenchmarkMaterialize-8",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
