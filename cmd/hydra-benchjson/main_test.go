package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/dsl-repro/hydra
cpu: Intel(R) Xeon(R) CPU
BenchmarkMaterializeParallel/workers=1-8         	       1	  51003512 ns/op	   2514272 tuples/s
BenchmarkMaterializeParallel/workers=8-8         	       1	   9214010 ns/op	  13914388 tuples/s
BenchmarkFig14_Materialization-8                 	       1	 120000000 ns/op	    128248 tuples/op
PASS
ok  	github.com/dsl-repro/hydra	3.211s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "Intel(R) Xeon(R) CPU" {
		t.Fatalf("context = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkMaterializeParallel/workers=1-8" || b.Runs != 1 {
		t.Fatalf("first = %+v", b)
	}
	if b.Pkg != "github.com/dsl-repro/hydra" {
		t.Fatalf("pkg = %q", b.Pkg)
	}
	if b.Metrics["ns/op"] != 51003512 || b.Metrics["tuples/s"] != 2514272 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[2].Metrics["tuples/op"] != 128248 {
		t.Fatalf("custom metric lost: %v", doc.Benchmarks[2].Metrics)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkPending\nBenchmarkOdd 1 2\nnoise\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise", len(doc.Benchmarks))
	}
}
