package main

import (
	"fmt"

	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/partition"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/workload/tpcds"
)

// debugPartition traces the incremental partitioning of the named view's
// biggest sub-view, printing region/block counts after every constraint.
func debugPartition(viewName string, nq int) {
	cfg := tpcds.Config{SF: 0.02, Seed: 42}
	s := tpcds.Schema(cfg)
	db, err := tpcds.GenerateDB(s, cfg)
	if err != nil {
		panic(err)
	}
	queries := tpcds.QueriesComplex(s, cfg, nq)
	w, _, err := engine.WorkloadFromQueries(db, s, "dbg", queries)
	if err != nil {
		panic(err)
	}
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		panic(err)
	}
	v := views[viewName]
	fmt.Printf("view %s: %d CCs, %d attrs\n", viewName, len(v.CCs), len(v.Attrs))
	inputs := core.SubViewInputs(v)
	for ii, in := range inputs {
		if len(in.Cons) < 5 {
			continue
		}
		fmt.Printf("sub-view %d: %d attrs, %d cons\n", ii, len(in.Attrs), len(in.Cons))
		trace(in.Space, in.Cons)
	}
}

func trace(space []pred.Set, cons []pred.DNF) {
	regions := []partition.Region{}
	// Re-run incrementally, one constraint prefix at a time (quadratic but
	// fine for debugging).
	for j := 1; j <= len(cons); j++ {
		rs, err := partition.OptimalIncremental(space, cons[:j], 6_000_000)
		if err != nil {
			fmt.Printf("  after %2d cons: %v\n", j, err)
			return
		}
		regions = rs
		blocks := 0
		for _, r := range rs {
			blocks += len(r.Blocks)
		}
		fmt.Printf("  after %2d cons: regions=%6d blocks=%8d attrs(last)=%v\n", j, len(rs), blocks, cons[j-1].Attrs())
	}
	_ = regions
}
