// Command hydra-debug is a developer diagnostic: it builds the TPC-DS
// substrate, derives the WLc workload, and prints per-view formulation and
// solve statistics (variables, rows, consistency rows, timings). With the
// "debug" mode it traces incremental region partitioning constraint by
// constraint. Useful when tuning workload shape or solver policies.
//
// Usage:
//
//	hydra-debug [queries]          # formulate only
//	hydra-debug [queries] solve    # formulate + solve, with stats
//	hydra-debug [queries] debug    # trace partitioning of store_sales
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/workload/tpcds"
)

func main() {
	nq := 40
	solve := false
	if len(os.Args) > 1 {
		nq, _ = strconv.Atoi(os.Args[1])
	}
	if len(os.Args) > 2 && os.Args[2] == "solve" {
		solve = true
	}
	if len(os.Args) > 2 && os.Args[2] == "debug" {
		debugPartition("store_sales", nq)
		return
	}
	cfg := tpcds.Config{SF: 0.02, Seed: 42}
	simple := len(os.Args) > 3 && os.Args[3] == "wls"
	if simple {
		cfg.SF = 0.1
	}
	s := tpcds.Schema(cfg)
	db, err := tpcds.GenerateDB(s, cfg)
	if err != nil {
		panic(err)
	}
	queries := tpcds.QueriesComplex(s, cfg, nq)
	if simple {
		queries = tpcds.QueriesSimple(s, cfg, nq)
	}
	t0 := time.Now()
	w, _, err := engine.WorkloadFromQueries(db, s, "WLc-small", queries)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %d CCs in %v\n", len(w.CCs), time.Since(t0))
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		panic(err)
	}
	order, _ := s.TopoOrder()
	for _, tab := range order {
		v := views[tab.Name]
		if len(v.CCs) == 0 {
			continue
		}
		t1 := time.Now()
		f, err := core.FormulateWith(v, core.RegionStrategy)
		if err != nil {
			panic(err)
		}
		st := f.Stats
		fmt.Printf("view %-24s ccs=%3d attrs=%2d sv=%2d vars=%7d rows=%5d ccRows=%4d consRows=%5d formulate=%8v",
			tab.Name, len(v.CCs), len(v.Attrs), st.SubViews, st.Vars, st.Rows, st.CCRows, st.ConsistencyRows, time.Since(t1).Round(time.Millisecond))
		if solve {
			sol, err := f.SolveSequential(core.Options{})
			if err != nil {
				fmt.Printf(" SOLVE-ERR %v\n", err)
				continue
			}
			fmt.Printf(" solve=%8v nodes=%d pivots=%d soft=%v softres=%d merges=%d fallback=%v", sol.Stats.SolveTime.Round(time.Millisecond), sol.Stats.Nodes, sol.Stats.Pivots, sol.Stats.Soft, sol.Stats.SoftResidual, sol.Stats.SequentialMerges, sol.Stats.SequentialFallback)
		}
		fmt.Println()
	}
}
