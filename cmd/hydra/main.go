// Command hydra is the end-to-end regeneration driver: it takes a schema
// and a cardinality-constraint workload (both JSON), builds the database
// summary, and can validate, materialize, or sample tuples from it.
//
// Subcommands:
//
//	summarize   -schema s.json -workload w.json -out summary.json
//	validate    -schema s.json -workload w.json -summary summary.json
//	materialize -summary summary.json -dir out/ [-format heap|csv|jsonl|sql|discard]
//	            [-workers K] [-shards N] [-shard i/N] [-compress gzip] [-tables a,b] [-fkspread]
//	orchestrate -summary summary.json -dir out/ [-shards N] [-parallel P] [-compress gzip]
//	            [-retries R] [-runners http://a,http://b] [-verify-only] ...
//	serve       -summary summary.json [-addr :8372] [-max-streams N] [-rate-limit R]
//	generate    -summary summary.json -table T [-n 10] [-from 1]
//	demo        (runs the paper's Figure 1 scenario end to end)
//
// Materialization runs on the parallel sharded engine (internal/matgen):
// output bytes are identical for any -workers count, and the -shard i/N
// pieces of a multi-machine run concatenate (in shard order) into
// byte-identical whole-table files, with a per-shard JSON manifest.
// Orchestration (internal/orchestrate) schedules all N shards with
// retries and then verifies the manifests: ranges must tile, rows must
// sum to the summary's cardinalities, files must match their checksums.
// With -runners the shards execute on a fleet of `hydra serve` machines
// (internal/serve) instead of in-process: jobs round-robin with
// failover, artifacts stream back as checksummed bundles, and the same
// verification proves the assembly. `hydra serve` is the fleet member:
// it loads one summary and regenerates tables over HTTP on demand,
// optionally rate-limited into a load generator.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/faultinject"
	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "materialize":
		err = cmdMaterialize(os.Args[2:])
	case "orchestrate":
		err = cmdOrchestrate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "scan":
		err = cmdScan(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "faultproxy":
		err = cmdFaultProxy(os.Args[2:])
	case "traces":
		err = cmdTraces(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hydra: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `hydra — workload-dependent database regeneration (EDBT 2018)

usage:
  hydra summarize   -schema s.json -workload w.json -out summary.json
  hydra validate    -schema s.json -workload w.json -summary summary.json
  hydra materialize -summary summary.json -dir out/ [-format heap|csv|jsonl|sql|discard]
                    [-workers K] [-shards N] [-shard i/N] [-compress gzip] [-tables a,b] [-fkspread]
  hydra orchestrate -summary summary.json -dir out/ [-format ...] [-shards N] [-parallel P]
                    [-workers K] [-compress gzip] [-retries R] [-tables a,b] [-fkspread]
                    [-runners http://a,http://b] [-verify-only]
  hydra serve       -summary summary.json [-addr 127.0.0.1:8372] [-max-streams N]
                    [-rate-limit rows/s] [-workers K] [-debug-addr 127.0.0.1:8373] [-log-streams]
  hydra scan        -table T (-summary summary.json | -dir out/ | -remote http://a,http://b)
                    [-columns a,b] [-range A:B] [-where 'A >= 20 AND B IN (1,5)'] [-shard i/N]
                    [-format csv|jsonl|sql|heap] [-batch N] [-rate rows/s] [-fkspread]
                    [-timeout d] [-o file]
  hydra loadgen     (-summary summary.json | -dir out/ | -remote http://a,http://b)
                    [-c 8] [-d 10s] [-rows-per-request 10000] [-tables a,b] [-batch N]
                    [-max-requests N] [-seed S] [-json]
  hydra faultproxy  -upstream http://host:port [-listen 127.0.0.1:0] [-seed S] [-rate 0.3]
                    [-faults refuse,500,503,cut,stall,corrupt] [-flap down/period] [-exempt-health]
  hydra traces      -addr http://127.0.0.1:8373 [-id traceid] [-n 20]
  hydra generate    -summary summary.json -table T [-n 10] [-from 1]
  hydra demo
`)
}

// timeoutContext returns a signal-aware context, deadline-bounded when
// timeout is positive — the CLI's one way to make any long-running verb
// abortable.
func timeoutContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancel(); stop() }
}

func loadInputs(schemaPath, workloadPath string) (*hydra.Schema, *hydra.Workload, error) {
	s, err := hydra.LoadSchema(schemaPath)
	if err != nil {
		return nil, nil, err
	}
	w, err := hydra.LoadWorkload(workloadPath)
	if err != nil {
		return nil, nil, err
	}
	if err := w.Validate(s); err != nil {
		return nil, nil, err
	}
	return s, w, nil
}

func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON")
	workloadPath := fs.String("workload", "", "workload JSON")
	out := fs.String("out", "summary.json", "output summary path")
	strict := fs.Bool("strict", false, "fail on inconsistent CCs instead of best effort")
	timeout := fs.Duration("timeout", 0, "abort regeneration after this long (0 = none)")
	fs.Parse(args)
	if *schemaPath == "" || *workloadPath == "" {
		return fmt.Errorf("summarize: -schema and -workload are required")
	}
	s, w, err := loadInputs(*schemaPath, *workloadPath)
	if err != nil {
		return err
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	res, err := hydra.RegenerateContext(ctx, s, w, hydra.Config{Strict: *strict})
	if err != nil {
		return err
	}
	if err := res.Summary.Save(*out); err != nil {
		return err
	}
	fmt.Printf("summary: %d relations, %d rows, ~%d bytes\n",
		len(res.Summary.Relations), res.Summary.NumRows(), res.Summary.SizeBytes())
	fmt.Printf("build time %v (LP %v, %d variables)\n",
		res.BuildTime.Round(time.Millisecond), res.SolveTime.Round(time.Millisecond), res.TotalVars)
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON")
	workloadPath := fs.String("workload", "", "workload JSON")
	timeout := fs.Duration("timeout", 0, "abort regeneration after this long (0 = none)")
	fs.Parse(args)
	if *schemaPath == "" || *workloadPath == "" {
		return fmt.Errorf("validate: -schema and -workload are required")
	}
	s, w, err := loadInputs(*schemaPath, *workloadPath)
	if err != nil {
		return err
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	res, err := hydra.RegenerateContext(ctx, s, w, hydra.Config{})
	if err != nil {
		return err
	}
	reports, err := res.Evaluate(w)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CC\troot\twant\tgot\trel err")
	exact := 0
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%+.4f\n", r.Name, r.Root, r.Want, r.Got, r.RelErr)
		if r.RelErr == 0 {
			exact++
		}
	}
	tw.Flush()
	fmt.Printf("%d/%d CCs exact\n", exact, len(reports))
	return nil
}

func cmdMaterialize(args []string) error {
	fs := flag.NewFlagSet("materialize", flag.ExitOnError)
	sumPath := fs.String("summary", "", "summary JSON")
	dir := fs.String("dir", "hydra_db", "output directory")
	format := fs.String("format", "heap", "output format: "+strings.Join(hydra.MaterializeFormats(), "|"))
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS); output is byte-identical for any count")
	shards := fs.Int("shards", 1, "split each table into N concatenable pieces (all generated locally unless -shard is given)")
	shardSpec := fs.String("shard", "", "generate only piece i/N, 1-based (e.g. -shard 2/4), for multi-machine runs")
	compress := fs.String("compress", "", "output codec: "+strings.Join(hydra.MaterializeCompressors(), "|")+" (default none)")
	tables := fs.String("tables", "", "comma-separated subset of relations (default all)")
	spread := fs.Bool("fkspread", false, "spread FKs round-robin within referenced spans")
	rateLimit := fs.Float64("rate-limit", 0, "cap emission at rows/s (0 = unlimited) — the load-generation knob")
	fs.Parse(args)
	if *sumPath == "" {
		return fmt.Errorf("materialize: -summary is required")
	}
	sum, err := summary.Load(*sumPath)
	if err != nil {
		return err
	}
	opts := hydra.MaterializeOptions{
		Dir:       *dir,
		Format:    *format,
		Compress:  *compress,
		Workers:   *workers,
		Shards:    *shards,
		FKSpread:  *spread,
		RateLimit: *rateLimit,
	}
	if *tables != "" {
		for _, name := range strings.Split(*tables, ",") {
			opts.Tables = append(opts.Tables, strings.TrimSpace(name))
		}
	}
	// -shard i/N pins one piece; plain -shards N generates all N pieces
	// locally (handy for verifying that parts concatenate).
	pieces := []int{0}
	if *shardSpec != "" {
		var i, n int
		var tail string
		cnt, err := fmt.Sscanf(*shardSpec, "%d/%d%s", &i, &n, &tail)
		if !errors.Is(err, io.EOF) || cnt != 2 || i < 1 || n < 1 || i > n {
			return fmt.Errorf("materialize: -shard wants i/N with 1 <= i <= N, got %q", *shardSpec)
		}
		if *shards != 1 && *shards != n {
			return fmt.Errorf("materialize: -shards %d conflicts with -shard %s", *shards, *shardSpec)
		}
		opts.Shards, pieces = n, []int{i - 1}
	} else if opts.Shards > 1 {
		pieces = pieces[:0]
		for i := 0; i < opts.Shards; i++ {
			pieces = append(pieces, i)
		}
	}
	var total int64
	var elapsed time.Duration
	for _, piece := range pieces {
		opts.Shard = piece
		rep, err := hydra.Materialize(sum, opts)
		if err != nil {
			return err
		}
		for _, tr := range rep.Tables {
			where := tr.Path
			if where == "" {
				where = "(discarded)"
			}
			raw := ""
			if tr.RawBytes > 0 && tr.RawBytes != tr.Bytes {
				raw = fmt.Sprintf(" (%.1f MB raw)", float64(tr.RawBytes)/1e6)
			}
			fmt.Printf("  %-24s %12d rows %10.1f MB%s  %s\n",
				tr.Table, tr.Rows, float64(tr.Bytes)/1e6, raw, where)
		}
		if rep.ManifestPath != "" {
			fmt.Printf("  shard %d/%d manifest: %s\n", rep.Shard+1, rep.Shards, rep.ManifestPath)
		}
		total += rep.Rows
		elapsed += rep.Elapsed
	}
	fmt.Printf("materialized %s\n", rowStats(total, elapsed, *format))
	return nil
}

// rowStats is the one rows/s report every batch verb shares — scan and
// materialize both compute throughput through obs.PerSec, the same
// function the metrics layer records with, so the CLI line and a
// scraped counter can never disagree on arithmetic.
func rowStats(rows int64, elapsed time.Duration, format string) string {
	return fmt.Sprintf("%d rows in %v (%.0f rows/sec, format %s)",
		rows, elapsed.Round(time.Millisecond), obs.PerSec(rows, elapsed), format)
}

func cmdOrchestrate(args []string) error {
	fs := flag.NewFlagSet("orchestrate", flag.ExitOnError)
	sumPath := fs.String("summary", "", "summary JSON")
	dir := fs.String("dir", "hydra_db", "output directory shared by all shards")
	format := fs.String("format", "heap", "output format: "+strings.Join(hydra.MaterializeFormats(), "|"))
	shards := fs.Int("shards", 1, "split each table into N verified pieces")
	parallel := fs.Int("parallel", 0, "shards running at once (0 = min(shards, GOMAXPROCS))")
	workers := fs.Int("workers", 0, "encode workers per shard (0 = GOMAXPROCS split across the parallel shards)")
	compress := fs.String("compress", "", "output codec: "+strings.Join(hydra.MaterializeCompressors(), "|")+" (default none)")
	retries := fs.Int("retries", 0, "re-runs per failed shard (0 = default 2, negative = none)")
	tables := fs.String("tables", "", "comma-separated subset of relations (default all)")
	spread := fs.Bool("fkspread", false, "spread FKs round-robin within referenced spans")
	runners := fs.String("runners", "", "comma-separated serve URLs; shards execute on this fleet instead of in-process")
	verifyOnly := fs.Bool("verify-only", false, "skip generation; verify the manifests and files already in -dir")
	timeout := fs.Duration("timeout", 0, "abort the whole orchestration after this long (0 = none)")
	fs.Parse(args)
	if *sumPath == "" {
		return fmt.Errorf("orchestrate: -summary is required")
	}
	sum, err := summary.Load(*sumPath)
	if err != nil {
		return err
	}
	var tableSubset []string
	if *tables != "" {
		for _, name := range strings.Split(*tables, ",") {
			tableSubset = append(tableSubset, strings.TrimSpace(name))
		}
	}
	if *verifyOnly {
		vopts := hydra.ShardVerifyOptions{Dir: *dir, Summary: sum, Tables: tableSubset}
		// An explicit -shards pins the expected width; the default
		// infers it from the manifests present.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				vopts.Shards = *shards
			}
		})
		vr, err := hydra.VerifyShards(vopts)
		if err != nil {
			return err
		}
		printVerification(vr)
		return nil
	}
	opts := hydra.OrchestrateOptions{
		Dir:      *dir,
		Format:   *format,
		Compress: *compress,
		Shards:   *shards,
		Parallel: *parallel,
		Workers:  *workers,
		Retries:  *retries,
		FKSpread: *spread,
		Tables:   tableSubset,
	}
	if *runners != "" {
		var urls []string
		for _, u := range strings.Split(*runners, ",") {
			urls = append(urls, strings.TrimSpace(u))
		}
		// Each fleet member picks its own encode parallelism unless
		// -workers pins one; the local GOMAXPROCS split that governs
		// in-process shards says nothing about remote machines.
		runner, err := hydra.NewRemoteRunner(urls, hydra.RemoteRunnerOptions{Workers: *workers})
		if err != nil {
			return err
		}
		opts.Runner = runner
		if *parallel == 0 {
			// In-process parallelism is bounded by local cores; a fleet
			// is bounded by its membership.
			opts.Parallel = len(urls) * 2
			if opts.Parallel > *shards {
				opts.Parallel = *shards
			}
		}
		fmt.Printf("dispatching %d shards to %d runner(s): %s\n", *shards, len(urls), strings.Join(runner.Servers(), ", "))
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	res, err := hydra.Orchestrate(ctx, sum, opts)
	if res != nil {
		for _, sr := range res.Shards {
			if sr.Report == nil {
				fmt.Printf("  shard %d/%d FAILED after %d attempts: %v\n", sr.Shard+1, res.Plan.Shards, sr.Attempts, sr.Err)
				continue
			}
			retried := ""
			if sr.Attempts > 1 {
				retried = fmt.Sprintf("  (attempt %d)", sr.Attempts)
			}
			fmt.Printf("  shard %d/%d  %12d rows %10.1f MB  %s%s\n",
				sr.Shard+1, res.Plan.Shards, sr.Report.Rows,
				float64(sr.Report.Bytes)/1e6, sr.Report.ManifestPath, retried)
		}
	}
	if err != nil {
		return err
	}
	printVerification(res.Verification)
	fmt.Printf("orchestrated %d tuples across %d shards (%d parallel) in %v (%.0f rows/sec, format %s%s)\n",
		res.Rows, res.Plan.Shards, res.Plan.Parallel, res.Elapsed.Round(time.Millisecond),
		res.RowsPerSec(), *format, codecSuffix(*compress))
	return nil
}

// cmdServe runs the regeneration server: one loaded summary exposed as
// an HTTP data plane until SIGINT/SIGTERM, then a graceful drain.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	sumPath := fs.String("summary", "", "summary JSON")
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	maxStreams := fs.Int("max-streams", 0, "concurrent table streams + shard jobs (0 = unlimited); excess requests get 503")
	rateLimit := fs.Float64("rate-limit", 0, "per-stream rows/s cap (0 = unlimited); clients may request lower, never higher")
	workers := fs.Int("workers", 0, "encode workers per shard job when the request leaves it unset (0 = GOMAXPROCS)")
	debugAddr := fs.String("debug-addr", "", "second listener with /debug/pprof/* and /metrics (e.g. 127.0.0.1:8373); empty disables")
	logStreams := fs.Bool("log-streams", false, "log one structured line per completed table stream to stderr")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain bound after SIGTERM: in-flight streams get this long before force-close")
	writeTimeout := fs.Duration("write-timeout", time.Minute, "per-chunk write deadline; a client that stops reading for this long loses its stream (0 = none)")
	fs.Parse(args)
	if *sumPath == "" {
		return fmt.Errorf("serve: -summary is required")
	}
	sum, err := summary.Load(*sumPath)
	if err != nil {
		return err
	}
	var rows int64
	for _, rs := range sum.Relations {
		rows += rs.Total
	}
	fmt.Printf("serving %d relations (%d rows regenerable on demand) on http://%s\n",
		len(sum.Relations), rows, *addr)
	fmt.Printf("  GET  http://%s/v1/tables/{table}?format=csv|jsonl|sql|heap&compress=gzip&shard=i/N&offset=K\n", *addr)
	fmt.Printf("  POST http://%s/v1/shardjobs   (hydra orchestrate -runners http://%s)\n", *addr, *addr)
	fmt.Printf("  GET  http://%s/metrics        (Prometheus text format)\n", *addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *debugAddr != "" {
		// The debug listener carries the operator surface — pprof and the
		// metrics scrape — on its own address so the data-plane port can
		// be exposed to clients without also exposing profiles. The same
		// metrics remain on the main mux for single-port deployments.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", hydra.MetricsHandler())
		dmux.Handle("/debug/traces", hydra.TraceHandler())
		dsrv := &http.Server{Addr: *debugAddr, Handler: dmux}
		defer context.AfterFunc(ctx, func() { dsrv.Close() })()
		go func() {
			fmt.Printf("  debug: http://%s/debug/pprof/, http://%s/metrics, http://%s/debug/traces\n",
				*debugAddr, *debugAddr, *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "hydra: debug listener:", err)
			}
		}()
	}
	opts := hydra.ServeOptions{
		MaxStreams:   *maxStreams,
		RateLimit:    *rateLimit,
		Workers:      *workers,
		Log:          log.New(os.Stderr, "", log.LstdFlags),
		DrainTimeout: *drainTimeout,
		WriteTimeout: *writeTimeout,
	}
	if *logStreams {
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return hydra.Serve(ctx, *addr, sum, opts)
}

func codecSuffix(codec string) string {
	if codec == "" || codec == "none" {
		return ""
	}
	return "+" + codec
}

func printVerification(vr *hydra.ShardVerifyReport) {
	if vr == nil {
		return
	}
	for _, tc := range vr.Tables {
		raw := ""
		if tc.RawBytes != tc.Bytes {
			raw = fmt.Sprintf(" (%.1f MB raw)", float64(tc.RawBytes)/1e6)
		}
		fmt.Printf("  verified %-24s %12d rows %10.1f MB%s in %d parts\n",
			tc.Table, tc.Rows, float64(tc.Bytes)/1e6, raw, tc.Parts)
	}
	fmt.Printf("  verification OK: %d shards, %d files re-hashed (%.1f MB)\n",
		vr.Shards, vr.FilesHashed, float64(vr.BytesHashed)/1e6)
}

// cmdScan is the unified read path's CLI face: the same -table/-range/
// -columns scan against any backend — a summary file, a materialized
// directory, or a serve fleet — with byte-identical output, encoded in
// any materialization format.
func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	sumPath := fs.String("summary", "", "summary JSON: generate batches in-process")
	dir := fs.String("dir", "", "materialized directory: decode part files (checksums verified lazily)")
	remote := fs.String("remote", "", "comma-separated serve URLs: stream from the fleet with failover")
	table := fs.String("table", "", "relation to scan (required)")
	columns := fs.String("columns", "", "comma-separated column projection (default all, tuple order)")
	rng := fs.String("range", "", "pk range A:B, 1-based inclusive; either side may be omitted")
	where := fs.String("where", "", "row filter: AND of column comparisons, e.g. 'A >= 20 AND B IN (1,5)'")
	shardSpec := fs.String("shard", "", "scan only piece i/N of the range, 1-based (e.g. 2/4)")
	format := fs.String("format", "csv", "output encoding: csv|jsonl|sql|heap")
	batch := fs.Int("batch", 0, "rows per batch (0 = default)")
	rateLimit := fs.Float64("rate", 0, "cap the scan at rows/s (0 = unlimited)")
	spread := fs.Bool("fkspread", false, "spread FKs round-robin within referenced spans (must match -dir materialization)")
	timeout := fs.Duration("timeout", 0, "abort the scan after this long (0 = none)")
	outPath := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *table == "" {
		return fmt.Errorf("scan: -table is required")
	}
	spec := hydra.ScanSpec{
		Table:     *table,
		BatchRows: *batch,
		RateLimit: *rateLimit,
		FKSpread:  *spread,
	}
	if *columns != "" {
		for _, name := range strings.Split(*columns, ",") {
			spec.Columns = append(spec.Columns, strings.TrimSpace(name))
		}
	}
	if *where != "" {
		f, err := hydra.ParseWhere(*where)
		if err != nil {
			return fmt.Errorf("scan: -where: %v", err)
		}
		spec.Filter = f
	}
	if *rng != "" {
		lo, hi, ok := strings.Cut(*rng, ":")
		if !ok {
			return fmt.Errorf("scan: -range wants A:B, got %q", *rng)
		}
		var err error
		if lo != "" {
			if spec.StartPK, err = strconv.ParseInt(lo, 10, 64); err != nil {
				return fmt.Errorf("scan: -range start: %v", err)
			}
		}
		if hi != "" {
			if spec.EndPK, err = strconv.ParseInt(hi, 10, 64); err != nil {
				return fmt.Errorf("scan: -range end: %v", err)
			}
		}
	}
	if *shardSpec != "" {
		var i, n int
		var tail string
		cnt, err := fmt.Sscanf(*shardSpec, "%d/%d%s", &i, &n, &tail)
		if !errors.Is(err, io.EOF) || cnt != 2 || i < 1 || n < 1 || i > n {
			return fmt.Errorf("scan: -shard wants i/N with 1 <= i <= N, got %q", *shardSpec)
		}
		spec.Shard, spec.Shards = i-1, n
	}

	src, _, err := openSource("scan", *sumPath, *dir, *remote)
	if err != nil {
		return err
	}
	defer src.Close()

	ctx, cancel := timeoutContext(*timeout)
	defer cancel()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	start := time.Now()
	sc, err := src.Scan(ctx, spec)
	if err != nil {
		return err
	}
	defer sc.Close()
	rows, err := hydra.EncodeScan(bw, sc, *format)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scanned %s: %s\n", *table, rowStats(rows, time.Since(start), *format))
	return nil
}

// openSource resolves the -summary/-dir/-remote backend triple every
// scan-path verb shares: exactly one must be set. The second return
// names the backend for reports.
func openSource(verb, sumPath, dir, remote string) (hydra.Source, string, error) {
	backends := 0
	for _, set := range []bool{sumPath != "", dir != "", remote != ""} {
		if set {
			backends++
		}
	}
	if backends != 1 {
		return nil, "", fmt.Errorf("%s: exactly one of -summary, -dir, -remote selects the backend", verb)
	}
	switch {
	case sumPath != "":
		sum, err := summary.Load(sumPath)
		if err != nil {
			return nil, "", err
		}
		return hydra.NewSummarySource(sum), "summary", nil
	case dir != "":
		ds, err := hydra.OpenDirSource(dir)
		if err != nil {
			return nil, "", err
		}
		return ds, "dir", nil
	default:
		var urls []string
		for _, u := range strings.Split(remote, ",") {
			urls = append(urls, strings.TrimSpace(u))
		}
		rs, err := hydra.NewRemoteSource(urls, hydra.RemoteSourceOptions{})
		if err != nil {
			return nil, "", err
		}
		return rs, "fleet", nil
	}
}

// cmdLoadgen drives concurrent ranged scans against any backend and
// prints throughput plus p50/p95/p99/p999 request latency — the
// client's side of the observability story, against the fleet's own
// /metrics histograms. A run with failed requests exits non-zero, so
// CI can use it as a smoke gate.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	sumPath := fs.String("summary", "", "summary JSON: load the in-process regeneration path")
	dir := fs.String("dir", "", "materialized directory: load the decode path")
	remote := fs.String("remote", "", "comma-separated serve URLs: load the fleet")
	tables := fs.String("tables", "", "comma-separated subset of relations (default all)")
	conc := fs.Int("c", 0, "concurrent workers (0 = default 8)")
	dur := fs.Duration("d", 0, "run duration (0 = default 10s)")
	rowsPerReq := fs.Int64("rows-per-request", 0, "pk-range size of each request (0 = default 10000)")
	batch := fs.Int("batch", 0, "rows per batch (0 = backend default)")
	maxReqs := fs.Int64("max-requests", 0, "stop after this many requests even before -d elapses (0 = unlimited)")
	seed := fs.Int64("seed", 0, "workload seed; same seed, same request sequence (0 = 1)")
	asJSON := fs.Bool("json", false, "emit the report as JSON on stdout (human summary goes to stderr)")
	fs.Parse(args)
	src, backend, err := openSource("loadgen", *sumPath, *dir, *remote)
	if err != nil {
		return err
	}
	defer src.Close()
	opts := hydra.LoadgenOptions{
		Source:         src,
		Concurrency:    *conc,
		Duration:       *dur,
		RowsPerRequest: *rowsPerReq,
		BatchRows:      *batch,
		MaxRequests:    *maxReqs,
		Seed:           *seed,
	}
	if *tables != "" {
		for _, name := range strings.Split(*tables, ",") {
			opts.Tables = append(opts.Tables, strings.TrimSpace(name))
		}
	}
	ctx, cancel := timeoutContext(0)
	defer cancel()
	rep, err := hydra.Loadgen(ctx, opts)
	if err != nil {
		return err
	}
	rep.Backend = backend
	human := io.Writer(os.Stdout)
	if *asJSON {
		human = os.Stderr
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	rep.WriteHuman(human)
	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

// cmdTraces pulls a fleet member's flight recorder (the -debug-addr
// listener's GET /debug/traces) and renders it: a table of the retained
// traces, or one trace's span tree as a text waterfall with -id. The
// trace id comes from a stream's X-Hydra-Trace-Id response header, a
// -log-streams slog record, or a loadgen report's slow_traces entries.
func cmdTraces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8373", "base URL of a member's -debug-addr listener")
	id := fs.String("id", "", "render one trace's waterfall instead of the list")
	n := fs.Int("n", 20, "max traces to list")
	timeout := fs.Duration("timeout", 10*time.Second, "fetch timeout")
	fs.Parse(args)
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	base := strings.TrimSuffix(*addr, "/")
	if *id != "" {
		var tr trace.Trace
		if err := fetchJSON(ctx, base+"/debug/traces?id="+url.QueryEscape(*id), &tr); err != nil {
			return err
		}
		printWaterfall(&tr)
		return nil
	}
	var list struct {
		Traces []trace.Summary `json:"traces"`
	}
	if err := fetchJSON(ctx, fmt.Sprintf("%s/debug/traces?n=%d", base, *n), &list); err != nil {
		return err
	}
	if len(list.Traces) == 0 {
		fmt.Println("traces: flight recorder is empty")
		return nil
	}
	fmt.Printf("%-32s  %-18s  %-12s  %5s  %-7s  %s\n",
		"TRACE", "ROOT", "DURATION", "SPANS", "KEEP", "ERROR")
	for _, s := range list.Traces {
		fmt.Printf("%-32s  %-18s  %-12s  %5d  %-7s  %s\n",
			s.TraceID, s.Root, fmtSeconds(s.DurationSec), s.SpansTotal, s.Keep, s.Err)
	}
	return nil
}

func fetchJSON(ctx context.Context, u string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("traces: %s answered %s: %s", u, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// traceBarWidth is the waterfall bar's character budget per span line.
const traceBarWidth = 32

// printWaterfall renders one trace's span tree: indentation is depth,
// the bar is the span's window within the trace, events print beneath
// their span at their offsets.
func printWaterfall(tr *trace.Trace) {
	fmt.Printf("trace %s  %s  (%s, %d spans", tr.TraceID, tr.Root, fmtSeconds(tr.DurationSec), tr.SpansTotal)
	if tr.Keep != "" {
		fmt.Printf(", keep=%s", tr.Keep)
	}
	if tr.Err != "" {
		fmt.Printf(", error=%q", tr.Err)
	}
	fmt.Println(")")
	if tr.Tree != nil {
		printSpan(tr.Tree, 0, int64(tr.DurationSec*1e6))
	}
}

func printSpan(rec *trace.SpanRecord, depth int, totalUS int64) {
	indent := strings.Repeat("  ", depth)
	line := fmt.Sprintf("[%s] %s%s  +%s %s",
		spanBar(rec.StartOffsetUS, rec.DurationUS, totalUS),
		indent, rec.Name, usDur(rec.StartOffsetUS), usDur(rec.DurationUS))
	for _, a := range rec.Attrs {
		line += fmt.Sprintf("  %s=%s", a.Key, a.Value)
	}
	if rec.Err != "" {
		line += "  ERROR " + rec.Err
	}
	fmt.Println(line)
	pad := strings.Repeat(" ", traceBarWidth)
	for _, ev := range rec.Events {
		evline := fmt.Sprintf("[%s] %s  · %s +%s", pad, indent, ev.Name, usDur(ev.OffsetUS))
		for _, a := range ev.Attrs {
			evline += fmt.Sprintf("  %s=%s", a.Key, a.Value)
		}
		fmt.Println(evline)
	}
	for _, c := range rec.Children {
		printSpan(c, depth+1, totalUS)
	}
}

// spanBar marks the span's [start, start+dur) window on a fixed-width
// timeline of the whole trace.
func spanBar(startUS, durUS, totalUS int64) string {
	if totalUS <= 0 {
		totalUS = 1
	}
	b := []byte(strings.Repeat(" ", traceBarWidth))
	lo := int(startUS * traceBarWidth / totalUS)
	hi := int((startUS + durUS) * traceBarWidth / totalUS)
	if lo >= traceBarWidth {
		lo = traceBarWidth - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > traceBarWidth {
		hi = traceBarWidth
	}
	for i := lo; i < hi; i++ {
		b[i] = '#'
	}
	return string(b)
}

// usDur renders a microsecond offset/duration with units.
func usDur(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}

// fmtSeconds renders a latency sample with duration units.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// cmdFaultProxy runs the chaos proxy standalone: it fronts one fleet
// member and injects a deterministic fault sequence, for torturing a
// fleet client outside the test suite.
func cmdFaultProxy(args []string) error {
	fs := flag.NewFlagSet("faultproxy", flag.ExitOnError)
	upstream := fs.String("upstream", "", "base URL of the fleet member to front (required)")
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	seed := fs.Int64("seed", 1, "fault sequence seed; same seed, same faults")
	rate := fs.Float64("rate", 0.3, "per-request fault probability")
	faultList := fs.String("faults", "refuse,500,503,cut,stall,corrupt",
		"comma-separated fault kinds to draw from")
	flap := fs.String("flap", "", "deterministic flapping as down/period request counts (overrides -rate)")
	exempt := fs.Bool("exempt-health", false, "never fault /healthz probes")
	fs.Parse(args)
	if *upstream == "" {
		return fmt.Errorf("faultproxy: -upstream is required")
	}
	var faults []faultinject.Fault
	for _, tok := range strings.Split(*faultList, ",") {
		switch strings.TrimSpace(tok) {
		case "":
		case "refuse":
			faults = append(faults, faultinject.Fault{Kind: faultinject.KindRefuse})
		case "500":
			faults = append(faults, faultinject.Fault{Kind: faultinject.KindStatus, Status: http.StatusInternalServerError})
		case "503":
			faults = append(faults, faultinject.Fault{Kind: faultinject.KindStatus, Status: http.StatusServiceUnavailable, RetryAfter: "1"})
		case "cut":
			faults = append(faults, faultinject.Fault{Kind: faultinject.KindCut, AfterBytes: 4096})
		case "stall":
			faults = append(faults, faultinject.Fault{Kind: faultinject.KindStall, AfterBytes: 2048, StallFor: 2 * time.Second})
		case "corrupt":
			faults = append(faults, faultinject.Fault{Kind: faultinject.KindCorrupt, AfterBytes: 1024})
		default:
			return fmt.Errorf("faultproxy: unknown fault kind %q (want refuse, 500, 503, cut, stall, corrupt)", tok)
		}
	}
	if len(faults) == 0 {
		return fmt.Errorf("faultproxy: -faults selected nothing")
	}
	var decide faultinject.Decider
	if *flap != "" {
		downStr, periodStr, ok := strings.Cut(*flap, "/")
		down, err1 := strconv.ParseInt(downStr, 10, 64)
		period, err2 := strconv.ParseInt(periodStr, 10, 64)
		if !ok || err1 != nil || err2 != nil || down < 0 || period < 1 || down > period {
			return fmt.Errorf("faultproxy: -flap wants down/period request counts (e.g. 5/20), got %q", *flap)
		}
		decide = faultinject.Flap(period, down, faults[0])
	} else {
		decide = faultinject.Flaky(*seed, *rate, faults...)
	}
	if *exempt {
		decide = faultinject.ExemptHealth(decide)
	}
	proxy, err := faultinject.New(*upstream, decide)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("faultproxy: listening on http://%s, fronting %s", ln.Addr(), *upstream)
	srv := &http.Server{Handler: proxy}
	ctx, cancel := timeoutContext(0)
	defer cancel()
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	sumPath := fs.String("summary", "", "summary JSON")
	table := fs.String("table", "", "relation to generate")
	n := fs.Int64("n", 10, "number of tuples")
	from := fs.Int64("from", 1, "first primary key")
	fs.Parse(args)
	if *sumPath == "" || *table == "" {
		return fmt.Errorf("generate: -summary and -table are required")
	}
	sum, err := summary.Load(*sumPath)
	if err != nil {
		return err
	}
	// The unified read path serves the row sample too; `hydra scan` is
	// the full-featured version of this verb.
	if *from < 1 {
		*from = 1
	}
	src := hydra.NewSummarySource(sum)
	info, err := src.Table(*table)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(info.Cols, "\t"))
	if *n <= 0 {
		return nil
	}
	sc, err := src.Scan(context.Background(), hydra.ScanSpec{
		Table: *table, StartPK: *from, EndPK: *from + *n - 1,
	})
	if err != nil {
		return err
	}
	defer sc.Close()
	cells := make([]string, len(info.Cols))
	for sc.Next() {
		b := sc.Batch()
		for i := 0; i < b.N; i++ {
			for c := range b.Cols {
				cells[c] = strconv.FormatInt(b.Cols[c][i], 10)
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
	}
	return sc.Err()
}

// cmdDemo runs the paper's Figure 1 toy scenario end to end, printing the
// derived summary (the paper's Figure 5) and the CC validation report.
func cmdDemo(args []string) error {
	s := hydra.MustSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100}, {Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{{Name: "C", Min: 0, Max: 10}}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"}, {FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	tc := hydra.AttrRef{Table: "T", Col: "C"}
	rangeDNF := func(attr int, lo, hi int64) pred.DNF {
		return pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(attr, pred.Range(lo, hi))}}
	}
	joinPred := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(2, 2)),
	}}
	w := &hydra.Workload{Name: "figure1", CCs: []hydra.CC{
		{Root: "R", Pred: pred.True(), Count: 80000, Name: "|R|"},
		{Root: "S", Pred: pred.True(), Count: 700, Name: "|S|"},
		{Root: "T", Pred: pred.True(), Count: 1500, Name: "|T|"},
		{Root: "S", Attrs: []hydra.AttrRef{sa}, Pred: rangeDNF(0, 20, 59), Count: 400, Name: "|σ(S)|"},
		{Root: "T", Attrs: []hydra.AttrRef{tc}, Pred: rangeDNF(0, 2, 2), Count: 900, Name: "|σ(T)|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa}, Pred: rangeDNF(0, 20, 59), Count: 50000, Name: "|R⋈σ(S)|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa, tc}, Pred: joinPred, Count: 30000, Name: "|R⋈σ(S)⋈σ(T)|"},
	}}
	res, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		return err
	}
	fmt.Println("database summary (cf. paper Figure 5):")
	names := []string{"R", "S", "T"}
	for _, name := range names {
		rs := res.Summary.Relations[name]
		fmt.Printf("  %s (|%s| = %d):\n", name, name, rs.Total)
		cols := append(append([]string{}, rs.Cols...), rs.FKCols...)
		fmt.Printf("    %-28s %s\n", strings.Join(cols, " "), "count")
		for _, row := range rs.Rows {
			vals := make([]string, 0, len(row.Vals)+len(row.FKs))
			for _, v := range row.Vals {
				vals = append(vals, fmt.Sprintf("%d", v))
			}
			for _, v := range row.FKs {
				vals = append(vals, fmt.Sprintf("%d", v))
			}
			fmt.Printf("    %-28s %d\n", strings.Join(vals, " "), row.Count)
		}
	}
	reports, err := res.Evaluate(w)
	if err != nil {
		return err
	}
	fmt.Println("\nvolumetric validation:")
	for _, r := range reports {
		status := "exact"
		if r.RelErr != 0 {
			status = fmt.Sprintf("rel err %+.4f", r.RelErr)
		}
		fmt.Printf("  %-16s want %8d  got %8d  %s\n", r.Name, r.Want, r.Got, status)
	}
	fmt.Printf("\nsummary built in %v; %d summary rows for %d data tuples\n",
		res.BuildTime.Round(time.Millisecond), res.Summary.NumRows(), 80000+700+1500)
	return nil
}
