// Command hydralint runs Hydra's static-analysis suite — the six
// analyzers in internal/analysis/hydralint that enforce the repo's
// determinism, hot-path, observability, span-lifecycle, context, and
// sentinel-error invariants.
//
// Standalone:
//
//	hydralint ./...                 # human-readable findings, exit 1 if any
//	hydralint -json ./...           # machine-readable report for CI diffing
//	hydralint -tests ./...          # include in-package _test.go files
//	hydralint -c determinism,errcmp # run a subset of analyzers
//
// Through the toolchain (the go command drives the vettool protocol):
//
//	go build -o hydralint ./cmd/hydralint
//	go vet -vettool=$PWD/hydralint ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dsl-repro/hydra/internal/analysis"
	"github.com/dsl-repro/hydra/internal/analysis/checker"
	"github.com/dsl-repro/hydra/internal/analysis/hydralint"
	"github.com/dsl-repro/hydra/internal/analysis/unitchecker"
)

func main() {
	os.Exit(run())
}

func run() int {
	analyzers := hydralint.Suite()

	fs := flag.NewFlagSet("hydralint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (count, per-analyzer counts, sorted findings)")
	tests := fs.Bool("tests", false, "also check in-package _test.go files")
	only := fs.String("c", "", "comma-separated analyzer subset to run (default: all)")
	version := fs.String("V", "", "version handshake for the go command (go vet -vettool)")
	flagsHandshake := fs.Bool("flags", false, "print flag descriptions as JSON (go vet handshake)")
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hydralint [flags] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *version != "" {
		unitchecker.PrintVersion(os.Stdout)
		return 0
	}
	if *flagsHandshake {
		unitchecker.PrintFlags(os.Stdout, analyzers)
		return 0
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "hydralint: -c %q selects no analyzers\n", *only)
			return 2
		}
	}

	args := fs.Args()
	if unitchecker.IsVetRun(args) {
		n, err := unitchecker.Run(args[len(args)-1], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	if len(args) == 0 {
		args = []string{"."}
	}
	findings, err := checker.Run(args, analyzers, checker.Options{Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
		return 2
	}
	wd, _ := os.Getwd()
	if *jsonOut {
		if err := checker.PrintJSON(os.Stdout, findings, wd); err != nil {
			fmt.Fprintf(os.Stderr, "hydralint: %v\n", err)
			return 2
		}
	} else {
		checker.Print(os.Stdout, findings, wd)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
