package hydra_test

import (
	"testing"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/tuplegen"
	"github.com/dsl-repro/hydra/internal/workload/tpcds"
)

// TestDynamicExecutionMatchesCCs is the paper's dynamic-regeneration story
// (§6) verified end to end: derive CCs from a client database, build the
// summary, then execute the same plans against a FULLY DYNAMIC database
// (every scan served by the tuple generator — no materialized rows). The
// operator cardinalities observed during that execution must equal the
// counts the summary-level evaluation promises.
func TestDynamicExecutionMatchesCCs(t *testing.T) {
	cfg := tpcds.Config{SF: 0.02, Seed: 5}
	s := tpcds.Schema(cfg)
	db, err := tpcds.GenerateDB(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := tpcds.QueriesComplex(s, cfg, 12)
	w, _, err := engine.WorkloadFromQueries(db, s, "wl", queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := res.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	promised := map[string]int64{}
	for _, r := range reports {
		promised[r.Name] = r.Got
	}

	// Execute every plan on the dynamic database.
	dynDB := engine.FromSummary(res.Summary)
	for _, q := range queries {
		aqp, err := engine.Execute(dynDB, s, q)
		if err != nil {
			t.Fatalf("dynamic execution of %s: %v", q.Name, err)
		}
		ccs := aqp.ToCCs(s)
		for _, c := range ccs {
			want, ok := promised[c.Name]
			if !ok {
				// Deduped CC named under another query; skip.
				continue
			}
			if c.Count != want {
				t.Errorf("%s: dynamic execution observed %d, summary evaluation promised %d", c.Name, c.Count, want)
			}
		}
	}
}

// TestDynamicAndMaterializedAgree: the same query must produce identical
// annotations whether scans are dynamic or materialized — the two
// consumption modes of the summary.
func TestDynamicAndMaterializedAgree(t *testing.T) {
	cfg := tpcds.Config{SF: 0.02, Seed: 9}
	s := tpcds.Schema(cfg)
	db, err := tpcds.GenerateDB(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := tpcds.QueriesComplex(s, cfg, 6)
	w, _, err := engine.WorkloadFromQueries(db, s, "wl", queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dynDB := engine.FromSummary(res.Summary)
	matDB := engine.NewDatabase()
	for name := range res.Summary.Relations {
		rel, err := dynDB.Rel(name)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := engine.Materialize(rel)
		if err != nil {
			t.Fatal(err)
		}
		matDB.Add(mem)
	}
	for _, q := range queries {
		a1, err := engine.Execute(dynDB, s, q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := engine.Execute(matDB, s, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1.JoinOut {
			if a1.JoinOut[i] != a2.JoinOut[i] {
				t.Fatalf("%s join %d: dynamic %d != materialized %d", q.Name, i, a1.JoinOut[i], a2.JoinOut[i])
			}
		}
		for tab, v := range a1.FilterOut {
			if a2.FilterOut[tab] != v {
				t.Fatalf("%s filter on %s: dynamic %d != materialized %d", q.Name, tab, v, a2.FilterOut[tab])
			}
		}
	}
}

// TestFKSpreadPreservesJoins: enabling the spread-FK extension must leave
// every join cardinality unchanged.
func TestFKSpreadPreservesJoins(t *testing.T) {
	cfg := tpcds.Config{SF: 0.02, Seed: 13}
	s := tpcds.Schema(cfg)
	db, err := tpcds.GenerateDB(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := tpcds.QueriesComplex(s, cfg, 6)
	w, _, err := engine.WorkloadFromQueries(db, s, "wl", queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plain := engine.FromSummary(res.Summary)
	spread := engine.NewDatabase()
	for _, rs := range res.Summary.Relations {
		gen := tuplegen.New(rs)
		gen.SetFKSpread(true)
		spread.Add(engine.NewGenRelation(gen))
	}
	for _, q := range queries {
		a1, err := engine.Execute(plain, s, q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := engine.Execute(spread, s, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1.JoinOut {
			if a1.JoinOut[i] != a2.JoinOut[i] {
				t.Fatalf("%s join %d: plain %d != spread %d — spreading must be volumetrically neutral", q.Name, i, a1.JoinOut[i], a2.JoinOut[i])
			}
		}
	}
}
