// Anonymize: the client-side security boundary of Hydra's architecture
// (§3.1). A client with sensitive identifiers and string-valued columns
// dictionary-encodes values, masks every table and column name, and ships
// only the masked artifacts. The vendor regenerates from those alone; the
// client can reverse the mapping on anything that comes back.
//
// Run with: go run ./examples/anonymize
package main

import (
	"fmt"
	"log"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/anonymize"
	"github.com/dsl-repro/hydra/internal/pred"
)

func main() {
	// Client data model: order priorities are strings; the dictionary
	// maps them to integers order-preservingly so range predicates keep
	// working after encoding.
	dict := anonymize.NewDictionary([]string{"LOW", "MEDIUM", "HIGH", "URGENT"})
	lo, _ := dict.Encode("HIGH")
	fmt.Printf("dictionary: %d distinct values; HIGH → %d\n", dict.Size(), lo)

	schema := hydra.MustSchema(
		&hydra.Table{Name: "customers_eu_prod", Cols: []hydra.Column{
			{Name: "account_balance_cents", Min: -100_000, Max: 10_000_000},
			{Name: "loyalty_tier", Min: 0, Max: 4},
		}, RowCount: 120_000},
		&hydra.Table{Name: "orders_eu_prod", Cols: []hydra.Column{
			{Name: "priority_code", Min: 0, Max: int64(dict.Size() - 1)},
		}, FKs: []hydra.ForeignKey{
			{FKCol: "customer_fk", Ref: "customers_eu_prod"},
		}, RowCount: 2_400_000},
	)
	// The dictionary sorts values alphabetically, so a predicate over the
	// set {HIGH, URGENT} is a union of the two codes, not a range.
	highCode, _ := dict.Encode("HIGH")
	urgentCode, _ := dict.Encode("URGENT")
	prioritySet := pred.Point(highCode).Union(pred.Point(urgentCode))
	workload := &hydra.Workload{Name: "orders", CCs: []hydra.CC{
		{Root: "customers_eu_prod", Pred: pred.True(), Count: 120_000, Name: "size_cust"},
		{Root: "orders_eu_prod", Pred: pred.True(), Count: 2_400_000, Name: "size_orders"},
		{Root: "orders_eu_prod",
			Attrs: []hydra.AttrRef{{Table: "orders_eu_prod", Col: "priority_code"}},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, prioritySet),
			}},
			Count: 310_000, Name: "high_priority"},
		{Root: "orders_eu_prod",
			Attrs: []hydra.AttrRef{{Table: "customers_eu_prod", Col: "account_balance_cents"}},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.AtLeast(1_000_000)),
			}},
			Count: 95_000, Name: "rich_join"},
	}}

	// Mask everything before it leaves the client site.
	maskedSchema, maskedWL, mapping, err := anonymize.Mask(schema, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhat the vendor sees:")
	for _, t := range maskedSchema.Tables {
		cols := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name
		}
		fmt.Printf("  table %s (rows=%d, cols=%v)\n", t.Name, t.RowCount, cols)
	}
	for i := range maskedWL.CCs {
		fmt.Printf("  %s\n", maskedWL.CCs[i].String())
	}

	// Vendor regenerates from masked artifacts only.
	res, err := hydra.Regenerate(maskedSchema, maskedWL, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}
	reports, err := res.Evaluate(maskedWL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvendor-side validation (masked names):")
	for _, r := range reports {
		orig, err := mapping.UnmaskTable(r.Root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s root %-4s (client: %-18s) want %9d got %9d relerr %+.4f\n",
			r.Name, r.Root, orig, r.Want, r.Got, r.RelErr)
	}
	fmt.Println("\nonly the client can unmask: the vendor-side summary carries no identifiers or string values")
}
