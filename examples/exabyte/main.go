// Exabyte: the paper's §7.4 scenario — regenerating the data processing
// environment of a database far too large to materialize anywhere.
//
// The client captures catalog metadata with CODD, scales it to exabyte
// volume (10¹⁸ bytes ≈ 10¹⁶ rows at ~100 B/row), obtains the optimizer's
// plans at that scale, executes them on the small instance and scales the
// observed cardinalities. Hydra builds the summary in the same few seconds
// it needs at any scale — and the tuple generator can then serve query
// execution over the exabyte "database" on the fly.
//
// Run with: go run ./examples/exabyte
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/codd"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/workload/tpcds"
)

func main() {
	// A modest client instance stands in for the paper's 100 GB database.
	cfg := tpcds.Config{SF: 0.05, Seed: 3}
	s := tpcds.Schema(cfg)
	db, err := tpcds.GenerateDB(s, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// CODD metadata capture + scaling: the "dataless" representation of
	// the exabyte database.
	md, err := codd.Capture(db, s)
	if err != nil {
		log.Fatal(err)
	}
	const scale = 100_000_000_000 // 10^11 × base ≈ 10^16 rows ≈ 1 EB
	bigMD := md.Scale(scale)
	var bigRows int64
	for _, ts := range bigMD.Tables {
		bigRows += ts.RowCount
	}
	fmt.Printf("CODD metadata scaled: modeled database has %.3g rows (≈%.3g bytes)\n",
		float64(bigRows), float64(bigRows)*100)

	// Plans at exabyte scale: the optimizer orders joins using the scaled
	// metadata (selectivity estimates are scale-invariant, so plan shapes
	// match the client's — "metadata matching").
	queries := tpcds.QueriesComplex(s, cfg, 40)
	for i, q := range queries {
		queries[i] = engine.Optimize(q, bigMD.Estimator(s, q.Filters))
	}

	// AQPs: execute the plans on the small instance and scale the
	// intermediate row counts — exactly the paper's §7.4 methodology.
	w, _, err := engine.WorkloadFromQueries(db, s, "WLexa", queries)
	if err != nil {
		log.Fatal(err)
	}
	for i := range w.CCs {
		w.CCs[i].Count *= scale
	}
	bigSchema := scaleSchema(s, scale)

	// Summary construction: the same work regardless of volume.
	start := time.Now()
	res, err := hydra.Regenerate(bigSchema, w, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summary for the exabyte database built in %v — %d rows, ~%d bytes\n",
		time.Since(start).Round(time.Millisecond), res.Summary.NumRows(), res.Summary.SizeBytes())

	// Dynamic regeneration through the unified read path: scan batches
	// from deep inside the exabyte fact table without materializing
	// anything — the same Source.Scan call would read a materialized
	// directory or a serve fleet.
	src := hydra.NewSummarySource(res.Summary)
	info, err := src.Table("store_sales")
	if err != nil {
		log.Fatal(err)
	}
	n := info.Rows
	fmt.Printf("\n|store_sales| = %d; scanning batches on the fly:\n", n)
	for _, pk := range []int64{1, n / 2, n - 1} {
		start := time.Now()
		sc, err := src.Scan(context.Background(), hydra.ScanSpec{
			Table: "store_sales", StartPK: pk, EndPK: pk + 3, BatchRows: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		for sc.Next() {
			b := sc.Batch()
			fmt.Printf("  rows %-22d fetched in %-10v first-row prefix=[%d %d %d %d]\n",
				pk, time.Since(start), b.Cols[0][0], b.Cols[1][0], b.Cols[2][0], b.Cols[3][0])
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
		sc.Close()
	}

	// Volumetric check at scale.
	reports, err := res.Evaluate(w)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for _, r := range reports {
		if r.RelErr == 0 {
			exact++
		}
	}
	fmt.Printf("\nvolumetric similarity at exabyte scale: %d/%d CCs exact\n", exact, len(reports))
	fmt.Println("(referential-integrity insertions are a fixed number of rows — vanishing at this volume)")
}

// scaleSchema multiplies every table's row count.
func scaleSchema(s *schema.Schema, k int64) *schema.Schema {
	tabs := make([]*schema.Table, len(s.Tables))
	for i, t := range s.Tables {
		nt := *t
		nt.RowCount = t.RowCount * k
		tabs[i] = &nt
	}
	return schema.MustNew(tabs...)
}
