// JOB: the paper's §7.6 diversity check — a schematically different,
// heavily skewed IMDB-like environment with a 260-query workload.
//
// Run with: go run ./examples/job [-sf 0.1] [-queries 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/workload/job"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor")
	queries := flag.Int("queries", 120, "number of workload queries")
	seed := flag.Int64("seed", 11, "generation seed")
	flag.Parse()

	cfg := job.Config{SF: *sf, Seed: *seed}
	s := job.Schema(cfg)
	fmt.Printf("client: generating JOB-like database (sf=%.2g)...\n", *sf)
	db, err := job.GenerateDB(s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	qs := job.Queries(s, cfg, *queries)
	w, _, err := engine.WorkloadFromQueries(db, s, "JOB", qs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: %d queries → %d CCs\n", len(qs), len(w.CCs))

	// The Fig. 16 property: cardinalities spanning orders of magnitude.
	hist := w.CountHistogram()
	fmt.Print("CC cardinality spread (log buckets): ")
	parts := make([]string, len(hist))
	for i, n := range hist {
		parts[i] = fmt.Sprintf("10^%d:%d", i, n)
	}
	fmt.Println(strings.Join(parts, " "))

	start := time.Now()
	res, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvendor: summary built in %v (%d LP variables across views)\n",
		time.Since(start).Round(time.Millisecond), res.TotalVars)

	reports, err := res.Evaluate(w)
	if err != nil {
		log.Fatal(err)
	}
	var worstBig float64
	exact, big := 0, 0
	var absErr int64
	for _, r := range reports {
		if r.RelErr == 0 {
			exact++
		}
		if d := r.Got - r.Want; d > 0 {
			absErr += d
		}
		// Referential-integrity insertions are a fixed number of rows, so
		// at laptop scale they dominate the relative error of tiny CCs;
		// the paper's ≤2% claim concerns CCs at realistic volumes. Judge
		// the claim on constraints with meaningful mass.
		if r.Want >= 1000 {
			big++
			if a := math.Abs(r.RelErr); a > worstBig {
				worstBig = a
			}
		}
	}
	fmt.Printf("volumetric similarity: %d/%d CCs exact; worst |rel err| among %d CCs with ≥1000 rows: %.4f\n",
		exact, len(reports), big, worstBig)
	fmt.Printf("total surplus tuples across all CCs: %d (fixed count — vanishing at the paper's data scale)\n", absErr)
	if worstBig <= 0.02 {
		fmt.Println("within the paper's §7.6 bar: high-mass constraints within 2% relative error")
	}
}
