// Materialize: from summary to big data volumes with the parallel
// sharded engine.
//
// The quickstart showed that a summary regenerates the Figure 1 workload;
// this example turns that summary into actual data files. It materializes
// the same relations three ways — all CPU cores into CSV, a simulated
// 3-machine sharded run whose pieces concatenate byte-identically, and
// the discard sink for a raw generation throughput number.
//
// Run with: go run ./examples/materialize
package main

import (
	"fmt"
	"log"
	"os"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/pred"
)

func main() {
	schema := hydra.MustSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100},
			{Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{
			{Name: "C", Min: 0, Max: 10},
		}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"},
			{FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	w := &hydra.Workload{Name: "materialize-demo", CCs: []hydra.CC{
		{Root: "R", Pred: pred.True(), Count: 80000, Name: "|R|"},
		{Root: "S", Pred: pred.True(), Count: 700, Name: "|S|"},
		{Root: "T", Pred: pred.True(), Count: 1500, Name: "|T|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa}, Pred: pred.DNF{Terms: []pred.Conjunct{
			pred.NewConjunct().With(0, pred.Range(20, 59)),
		}}, Count: 50000, Name: "|R⋈σ(S)|"},
	}}
	res, err := hydra.Regenerate(schema, w, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Every core, CSV sink. The bytes are identical for any -workers.
	dir, err := os.MkdirTemp("", "hydra-materialize-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rep, err := hydra.Materialize(res.Summary, hydra.MaterializeOptions{
		Dir: dir, Format: "csv",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("csv materialization (%d workers):\n", rep.Workers)
	for _, tr := range rep.Tables {
		fmt.Printf("  %-4s %6d rows  %8d bytes  %s\n", tr.Table, tr.Rows, tr.Bytes, tr.Path)
	}

	// 2. A simulated 3-machine run: each "machine" generates shard i of 3
	// into part files; `cat *.part-*` yields the single-machine files.
	shardDir, err := os.MkdirTemp("", "hydra-shards-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(shardDir)
	for i := 0; i < 3; i++ {
		srep, err := hydra.Materialize(res.Summary, hydra.MaterializeOptions{
			Dir: shardDir, Format: "csv", Shards: 3, Shard: i,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d/3: %d rows, manifest %s\n", i+1, srep.Rows, srep.ManifestPath)
	}

	// 3. Discard sink: generation throughput with nothing to write.
	drep, err := hydra.Materialize(res.Summary, hydra.MaterializeOptions{Format: "discard"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation throughput: %.0f rows/sec over %d rows\n", drep.RowsPerSec(), drep.Rows)
}
