// Orchestrate: cluster-shaped regeneration with verified shard manifests.
//
// The materialize example showed single-process output; this one runs the
// shard orchestrator over the same summary: plan a 4-shard gzip job, run
// the shards on the in-process worker pool with retries, then verify the
// collected manifests — row ranges must tile every table, row counts must
// sum to the summary's cardinalities, and every part file must re-hash to
// the checksum its manifest recorded. The same verification runs again
// standalone, the way a collector machine would after shards generated
// elsewhere were shipped to it.
//
// Run with: go run ./examples/orchestrate
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/pred"
)

func main() {
	schema := hydra.MustSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100},
			{Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{
			{Name: "C", Min: 0, Max: 10},
		}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"},
			{FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	w := &hydra.Workload{Name: "orchestrate-demo", CCs: []hydra.CC{
		{Root: "R", Pred: pred.True(), Count: 80000, Name: "|R|"},
		{Root: "S", Pred: pred.True(), Count: 700, Name: "|S|"},
		{Root: "T", Pred: pred.True(), Count: 1500, Name: "|T|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa},
			Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(20, 59))}},
			Count: 50000, Name: "|R⋈σ(S)|"},
	}}
	res, err := hydra.Regenerate(schema, w, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "hydra-orchestrate-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Plan, run, retry, and verify a 4-shard gzip job. The Runner option
	// is the seam for remote executors; unset, shards run in-process.
	out, err := hydra.Orchestrate(context.Background(), res.Summary, hydra.OrchestrateOptions{
		Dir:      dir,
		Format:   "csv",
		Compress: "gzip",
		Shards:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range out.Shards {
		fmt.Printf("shard %d/%d: %d rows in %d attempt(s) → %s\n",
			sr.Shard+1, out.Plan.Shards, sr.Report.Rows, sr.Attempts, sr.Report.ManifestPath)
	}
	v := out.Verification
	fmt.Printf("verified: %d shards, %d files re-hashed, %d bytes\n",
		v.Shards, v.FilesHashed, v.BytesHashed)
	for _, tc := range v.Tables {
		fmt.Printf("  %-4s %6d rows, %7d bytes, %d parts\n", tc.Table, tc.Rows, tc.Bytes, tc.Parts)
	}

	// A collector machine re-verifies shipped artifacts the same way:
	// only the directory and the summary are needed.
	if _, err := hydra.VerifyShards(hydra.ShardVerifyOptions{Dir: dir, Summary: res.Summary}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("standalone re-verification passed")
	fmt.Printf("throughput: %.0f rows/sec across %d parallel shard slots\n",
		out.RowsPerSec(), out.Plan.Parallel)
}
