// Query: predicate pushdown and the database/sql driver.
//
// The same Figure 1 scenario as examples/scan, queried two ways:
//
//  1. a filtered Scan — hydra.ScanSpec.Filter built with the
//     hydra.Col builder (or hydra.ParseWhere), pushed down into the
//     summary's run structure so non-matching spans are skipped
//     without generating a single value;
//  2. the registered "hydra" database/sql driver — a read-only
//     SELECT whose WHERE clause is the same predicate language,
//     executed over the same scan path.
//
// The example proves the two agree row for row, and that the filtered
// result matches what the workload's cardinality constraint promised.
//
// Run with: go run ./examples/query
package main

import (
	"context"
	"database/sql"
	"fmt"
	"log"
	"os"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/pred"
)

func main() {
	schema := hydra.MustSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100},
			{Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{
			{Name: "C", Min: 0, Max: 10},
		}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"},
			{FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	w := &hydra.Workload{Name: "query-demo", CCs: []hydra.CC{
		{Root: "R", Pred: pred.True(), Count: 80000, Name: "|R|"},
		{Root: "S", Pred: pred.True(), Count: 700, Name: "|S|"},
		{Root: "T", Pred: pred.True(), Count: 1500, Name: "|T|"},
		{Root: "S", Attrs: []hydra.AttrRef{sa},
			Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(20, 59))}},
			Count: 400, Name: "|σ(S)|"},
	}}
	res, err := hydra.Regenerate(schema, w, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Filtered scan: the CC's predicate as a ScanSpec.Filter.
	src := hydra.NewSummarySource(res.Summary)
	filter := hydra.Col("A").In(20, 59) // same as ParseWhere("A BETWEEN 20 AND 59")
	sc, err := src.Scan(context.Background(), hydra.ScanSpec{
		Table:   "S",
		Columns: []string{"S_pk", "A", "B"},
		Filter:  filter,
	})
	if err != nil {
		log.Fatal(err)
	}
	var scanned [][3]int64
	for sc.Next() {
		b := sc.Batch()
		for i := 0; i < b.N; i++ {
			scanned = append(scanned, [3]int64{b.Cols[0][i], b.Cols[1][i], b.Cols[2][i]})
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	sc.Close()
	fmt.Printf("filtered scan  σ(20 ≤ S.A ≤ 59): %d rows (CC promised 400)\n", len(scanned))

	// --- 2. The same query through database/sql. The driver reads any
	// scan backend; here the summary is saved and opened by DSN, the way
	// an external tool would reach it.
	f, err := os.CreateTemp("", "hydra-query-demo-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	f.Close()
	if err := res.Summary.Save(f.Name()); err != nil {
		log.Fatal(err)
	}
	db, err := sql.Open(hydra.DriverName, "summary://"+f.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	rows, err := db.Query("SELECT S_pk, A, B FROM S WHERE A BETWEEN 20 AND 59")
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	var selected [][3]int64
	for rows.Next() {
		var pk, a, b int64
		if err := rows.Scan(&pk, &a, &b); err != nil {
			log.Fatal(err)
		}
		selected = append(selected, [3]int64{pk, a, b})
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sql.Open SELECT ... WHERE A BETWEEN 20 AND 59: %d rows\n", len(selected))

	// --- The two paths must agree exactly.
	if len(scanned) != len(selected) {
		log.Fatalf("scan returned %d rows, SQL returned %d", len(scanned), len(selected))
	}
	for i := range scanned {
		if scanned[i] != selected[i] {
			log.Fatalf("row %d: scan %v != sql %v", i, scanned[i], selected[i])
		}
	}
	fmt.Println("filtered Scan and database/sql SELECT agree row for row ✓")
}
