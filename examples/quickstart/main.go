// Quickstart: the paper's Figure 1 scenario end to end.
//
// The client has three tables — R(R_pk, S_fk, T_fk), S(S_pk, A, B),
// T(T_pk, C) — and one query whose annotated plan yields the seven
// cardinality constraints of Figure 1d. We hand those CCs to Hydra, get a
// database summary back (cf. Figure 5), generate a few tuples dynamically,
// and verify every constraint holds on the regenerated database.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/pred"
)

func main() {
	// 1. The client schema (Figure 1a). All values are integers: the
	// anonymizer maps client datatypes to numbers before shipping.
	schema := hydra.MustSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100},
			{Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{
			{Name: "C", Min: 0, Max: 10},
		}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"},
			{FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)

	// 2. The cardinality constraints (Figure 1d), as the Parser would
	// derive them from the annotated query plan.
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	tc := hydra.AttrRef{Table: "T", Col: "C"}
	aIn2060 := pred.DNF{Terms: []pred.Conjunct{ // S.A >= 20 AND S.A < 60
		pred.NewConjunct().With(0, pred.Range(20, 59)),
	}}
	cIn23 := pred.DNF{Terms: []pred.Conjunct{ // T.C >= 2 AND T.C < 3
		pred.NewConjunct().With(0, pred.Range(2, 2)),
	}}
	joinPred := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(2, 2)),
	}}
	workload := &hydra.Workload{Name: "figure1", CCs: []hydra.CC{
		{Root: "R", Pred: pred.True(), Count: 80000, Name: "|R|"},
		{Root: "S", Pred: pred.True(), Count: 700, Name: "|S|"},
		{Root: "T", Pred: pred.True(), Count: 1500, Name: "|T|"},
		{Root: "S", Attrs: []hydra.AttrRef{sa}, Pred: aIn2060, Count: 400, Name: "|σ(S)|"},
		{Root: "T", Attrs: []hydra.AttrRef{tc}, Pred: cIn23, Count: 900, Name: "|σ(T)|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa}, Pred: aIn2060, Count: 50000, Name: "|R⋈σ(S)|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa, tc}, Pred: joinPred, Count: 30000, Name: "|R⋈σ(S)⋈σ(T)|"},
	}}

	// 3. Regenerate: LP formulation (region partitioning), solving, and
	// summary construction.
	start := time.Now()
	res, err := hydra.Regenerate(schema, workload, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summary built in %v: %d summary rows standing in for %d tuples (~%d bytes)\n\n",
		time.Since(start).Round(time.Millisecond), res.Summary.NumRows(), 80000+700+1500, res.Summary.SizeBytes())

	// 4. Dynamic generation (§6) through the unified read path: open the
	// summary as a Source and pull column-major batches — the same
	// Source.Scan works unchanged over a materialized directory
	// (hydra.OpenDirSource) or a serve fleet (hydra.NewRemoteSource).
	// Here: rows 118-122 of S (the paper's §6 example: row 120 of S is
	// ⟨120, 20, 15⟩-shaped).
	src := hydra.NewSummarySource(res.Summary)
	sc, err := src.Scan(context.Background(), hydra.ScanSpec{
		Table: "S", StartPK: 118, EndPK: 122,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dynamically generated S tuples:")
	for sc.Next() {
		b := sc.Batch()
		for i := 0; i < b.N; i++ {
			fmt.Printf("  pk=%-4d  A=%-4d B=%-4d\n", b.Cols[0][i], b.Cols[1][i], b.Cols[2][i])
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	sc.Close()

	// 5. Validate volumetric similarity: every CC must hold exactly.
	reports, err := res.Evaluate(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvolumetric validation:")
	allExact := true
	for _, r := range reports {
		mark := "✓"
		if r.RelErr != 0 {
			mark = fmt.Sprintf("rel err %+.4f", r.RelErr)
			allExact = false
		}
		fmt.Printf("  %-18s want %8d  got %8d  %s\n", r.Name, r.Want, r.Got, mark)
	}
	if allExact {
		fmt.Println("\nall constraints satisfied exactly — the regenerated database is volumetrically identical")
	}
}
