// Scan: the unified read path over all three backends.
//
// One ScanSpec — table, projection, pk range, batch size — is executed
// against regenerated data living in three different places:
//
//  1. the summary itself (hydra.NewSummarySource) — the paper's dynamic
//     regeneration: batches generated on demand, nothing materialized;
//  2. a materialized shard directory (hydra.OpenDirSource) — part files
//     decoded against their manifests, checksums verified lazily;
//  3. a regeneration server fleet (hydra.NewRemoteSource) — streamed
//     with the projection pushed down to the server's encoders.
//
// The three batch sequences are identical, which the example proves by
// encoding each scan to csv and comparing bytes. That conformance is
// what lets a query engine or benchmark driver bind to hydra.Source
// once and switch backends by configuration.
//
// Run with: go run ./examples/scan
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/pred"
)

func main() {
	// A small scenario: the Figure 1 schema with its seven constraints.
	schema := hydra.MustSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100},
			{Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{
			{Name: "C", Min: 0, Max: 10},
		}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"},
			{FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	w := &hydra.Workload{Name: "scan-demo", CCs: []hydra.CC{
		{Root: "R", Pred: pred.True(), Count: 80000, Name: "|R|"},
		{Root: "S", Pred: pred.True(), Count: 700, Name: "|S|"},
		{Root: "T", Pred: pred.True(), Count: 1500, Name: "|T|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa},
			Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(20, 59))}},
			Count: 50000, Name: "|R⋈σ(S)|"},
	}}
	res, err := hydra.Regenerate(schema, w, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Backend 2 needs a materialized directory...
	dir, err := os.MkdirTemp("", "hydra-scan-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := hydra.Materialize(res.Summary, hydra.MaterializeOptions{
		Dir: dir, Format: "csv", Shards: 2,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := hydra.Materialize(res.Summary, hydra.MaterializeOptions{
		Dir: dir, Format: "csv", Shards: 2, Shard: 1,
	}); err != nil {
		log.Fatal(err)
	}

	// ...and backend 3 a running server.
	h, err := hydra.NewServeHandler(res.Summary, hydra.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, h) //nolint:errcheck // demo server dies with the process

	dirSrc, err := hydra.OpenDirSource(dir)
	if err != nil {
		log.Fatal(err)
	}
	remoteSrc, err := hydra.NewRemoteSource([]string{"http://" + ln.Addr().String()}, hydra.RemoteSourceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// One spec, three backends: project two columns of R, rows
	// 10000-29999, in 4096-row batches.
	spec := hydra.ScanSpec{
		Table:   "R",
		Columns: []string{"R_pk", "S_fk"},
		StartPK: 10000, EndPK: 29999,
		BatchRows: 4096,
	}
	outputs := map[string][]byte{}
	for _, backend := range []struct {
		name string
		src  hydra.Source
	}{
		{"summary", hydra.NewSummarySource(res.Summary)},
		{"dir", dirSrc},
		{"remote", remoteSrc},
	} {
		sc, err := backend.src.Scan(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		rows, err := hydra.EncodeScan(&buf, sc, "csv")
		sc.Close()
		if err != nil {
			log.Fatal(err)
		}
		outputs[backend.name] = buf.Bytes()
		fmt.Printf("%-8s backend: %6d rows, %7d bytes, cols %v\n",
			backend.name, rows, buf.Len(), sc.Cols())
	}
	if !bytes.Equal(outputs["summary"], outputs["dir"]) || !bytes.Equal(outputs["summary"], outputs["remote"]) {
		log.Fatal("backends disagree!")
	}
	fmt.Println("all three backends produced byte-identical scans ✓")
}
