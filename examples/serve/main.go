// Serve: regeneration as a service over a two-machine fleet.
//
// The orchestrate example ran shards in-process; this one stands up two
// regeneration servers (the "machines"), then drives them three ways:
//
//  1. hydra.Orchestrate with a RemoteRunner — four shards round-robin
//     across the fleet as POST /v1/shardjobs, artifact bundles stream
//     back, every file re-hashes against its manifest checksum, and the
//     standard shard verification proves the assembled directory.
//  2. A raw GET /v1/tables range scan — the same bytes a local
//     materialization writes, streamed on demand with a SHA-256 trailer.
//  3. The same scan rate-limited to 4000 rows/s — the server as a load
//     generator with a controllable emit rate.
//
// Run with: go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/pred"
)

func main() {
	schema := hydra.MustSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100},
			{Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{
			{Name: "C", Min: 0, Max: 10},
		}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"},
			{FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	w := &hydra.Workload{Name: "serve-demo", CCs: []hydra.CC{
		{Root: "R", Pred: pred.True(), Count: 80000, Name: "|R|"},
		{Root: "S", Pred: pred.True(), Count: 700, Name: "|S|"},
		{Root: "T", Pred: pred.True(), Count: 1500, Name: "|T|"},
		{Root: "R", Attrs: []hydra.AttrRef{sa},
			Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(20, 59))}},
			Count: 50000, Name: "|R⋈σ(S)|"},
	}}
	res, err := hydra.Regenerate(schema, w, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Stand up the fleet: two servers, each loaded with the same tiny
	// summary — in production these are `hydra serve` on other machines.
	fleet := make([]string, 2)
	for i := range fleet {
		h, err := hydra.NewServeHandler(res.Summary, hydra.ServeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		go http.Serve(ln, h) //nolint:errcheck // demo servers die with the process
		fleet[i] = "http://" + ln.Addr().String()
	}
	fmt.Printf("fleet: %v\n", fleet)

	// 1. Orchestrate a 4-shard gzip job on the fleet. Only the Runner
	// differs from the in-process example; planning, retries, and
	// verification are identical.
	dir, err := os.MkdirTemp("", "hydra-serve-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	runner, err := hydra.NewRemoteRunner(fleet, hydra.RemoteRunnerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := hydra.Orchestrate(context.Background(), res.Summary, hydra.OrchestrateOptions{
		Dir:      dir,
		Format:   "csv",
		Compress: "gzip",
		Shards:   4,
		Runner:   runner,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range out.Shards {
		fmt.Printf("shard %d/%d: %d rows fetched remotely in %d attempt(s)\n",
			sr.Shard+1, out.Plan.Shards, sr.Report.Rows, sr.Attempts)
	}
	fmt.Printf("verified fleet output: %d shards, %d files re-hashed (%d bytes)\n",
		out.Verification.Shards, out.Verification.FilesHashed, out.Verification.BytesHashed)

	// 2. A raw table stream: resumable, checksummed, byte-identical to a
	// local materialization of R.
	resp, err := http.Get(fleet[0] + "/v1/tables/R?format=csv")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /v1/tables/R: %s rows, %d bytes, sha256 trailer %.12s…\n",
		resp.Header.Get("X-Hydra-Rows"), len(body), resp.Trailer.Get("X-Hydra-Sha256"))

	// 3. The server as load generator: the same 1500-row table T at a
	// requested 4000 rows/s takes ~0.4s instead of microseconds.
	start := time.Now()
	resp, err = http.Get(fleet[1] + "/v1/tables/T?format=csv&rate=4000")
	if err != nil {
		log.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("GET /v1/tables/T?rate=4000: %d bytes over %v (~%.0f rows/s)\n",
		n, elapsed.Round(time.Millisecond), 1500/elapsed.Seconds())
}
