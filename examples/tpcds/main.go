// TPC-DS regeneration: the full client→vendor loop of the paper's §7 at
// laptop scale.
//
// A synthetic TPC-DS-like client database is generated and a complex
// workload (WLc-style) is executed against it to obtain annotated query
// plans; the derived cardinality constraints are anonymized and handed to
// Hydra; the resulting summary is validated for volumetric similarity and
// compared against the DataSynth baseline on the simple workload.
//
// Run with: go run ./examples/tpcds [-sf 0.1] [-queries 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/anonymize"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/workload/tpcds"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor (1.0 ≈ 1M tuples)")
	queries := flag.Int("queries", 60, "number of workload queries")
	seed := flag.Int64("seed", 7, "generation seed")
	flag.Parse()

	// Client site: database + workload + AQPs + CC extraction.
	cfg := tpcds.Config{SF: *sf, Seed: *seed}
	schema := tpcds.Schema(cfg)
	fmt.Printf("client: generating TPC-DS-like database (sf=%.2g)...\n", *sf)
	db, err := tpcds.GenerateDB(schema, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var rows int64
	for _, t := range schema.Tables {
		rows += t.RowCount
	}
	fmt.Printf("client: %d tables, %d tuples\n", len(schema.Tables), rows)

	qs := tpcds.QueriesComplex(schema, cfg, *queries)
	start := time.Now()
	workload, _, err := engine.WorkloadFromQueries(db, schema, "WLc", qs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: executed %d queries → %d distinct CCs in %v\n",
		len(qs), len(workload.CCs), time.Since(start).Round(time.Millisecond))

	// Anonymizer: mask identifiers before anything leaves the client.
	maskedSchema, maskedWL, mapping, err := anonymize.Mask(schema, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: anonymized %d tables / %d CCs (e.g. store_sales → %s)\n\n",
		len(maskedSchema.Tables), len(maskedWL.CCs), mapping.Table["store_sales"])

	// Vendor site: regenerate from the masked artifacts alone.
	start = time.Now()
	res, err := hydra.Regenerate(maskedSchema, maskedWL, hydra.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vendor: summary built in %v (LP: %d vars across views, solve %v)\n",
		res.BuildTime.Round(time.Millisecond), res.TotalVars, res.SolveTime.Round(time.Millisecond))
	fmt.Printf("vendor: summary holds %d rows (~%d bytes) for a %d-tuple database\n\n",
		res.Summary.NumRows(), res.Summary.SizeBytes(), rows)

	// Validation: CC satisfaction on the regenerated database.
	reports, err := res.Evaluate(maskedWL)
	if err != nil {
		log.Fatal(err)
	}
	exact, within10 := 0, 0
	worst := 0.0
	for _, r := range reports {
		a := math.Abs(r.RelErr)
		if a == 0 {
			exact++
		}
		if a <= 0.10 {
			within10++
		}
		if a > worst {
			worst = a
		}
	}
	fmt.Printf("volumetric similarity: %d CCs, %.1f%% exact, %.1f%% within 10%%, worst |rel err| %.4f\n",
		len(reports), 100*float64(exact)/float64(len(reports)),
		100*float64(within10)/float64(len(reports)), worst)

	extras := int64(0)
	for _, e := range res.Summary.Extra {
		extras += e
	}
	fmt.Printf("referential integrity: %d extra singleton tuples inserted (scale-independent)\n", extras)

	// Demonstrate plan-compatible dynamic execution: run one workload
	// query against the fully dynamic regenerated database.
	dynDB := engine.FromSummary(res.Summary)
	maskedQ := maskQuery(qs[0], mapping)
	aqp, err := engine.Execute(dynDB, maskedSchema, maskedQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic execution of %s on generated data: join output %v (no materialized data touched)\n",
		qs[0].Name, aqp.JoinOut)
}

// maskQuery rewrites a client query onto the masked schema. Column ids in
// filters are positional, and masking preserves column order, so only
// table names need translation.
func maskQuery(q *engine.Query, m *anonymize.Mapping) *engine.Query {
	out := &engine.Query{Name: q.Name, Root: m.Table[q.Root], Filters: map[string]pred.DNF{}}
	for _, j := range q.Joins {
		out.Joins = append(out.Joins, engine.JoinStep{Table: m.Table[j.Table], Via: m.Table[j.Via]})
	}
	for tab, p := range q.Filters {
		out.Filters[m.Table[tab]] = p
	}
	return out
}
