module github.com/dsl-repro/hydra

go 1.24
