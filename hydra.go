// Package hydra is a from-scratch Go implementation of HYDRA, the
// workload-dependent database regenerator of Sanghi, Sood, Haritsa and
// Tirthapura, "Scalable and Dynamic Regeneration of Big Data Volumes"
// (EDBT 2018).
//
// Given a relational schema and a set of cardinality constraints (CCs)
// derived from the client's annotated query plans, Regenerate produces a
// minuscule database summary whose size is independent of the data scale.
// The summary can be materialized into a static database or used to
// generate tuples on-the-fly during query execution, while preserving
// volumetric similarity: every operator in every workload plan emits
// (almost exactly) the same row count as at the client.
//
// The package is a thin facade; the pipeline lives in internal packages:
//
//	preprocess  relation → view transformation (from DataSynth)
//	viewgraph   chordal decomposition into sub-views
//	partition   region partitioning (the paper's core contribution)
//	lp          exact simplex + branch and bound (the Z3 substitute)
//	core        per-view LP formulation and solving
//	summary     align/merge, referential consistency, relation summaries
//	tuplegen    dynamic tuple generation (the engine-side "datagen" scan)
//	matgen      parallel sharded materialization into pluggable sinks
//	serve       the HTTP data plane and fleet runner
//	scan        the unified Source/Scan read path over summaries,
//	            materialized directories, and serve fleets
package hydra

import (
	"context"
	"fmt"
	"time"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/lp"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// Re-exported aliases: the full data model is usable through this package
// alone, which matters because the implementation packages are internal.
type (
	// Schema and friends describe the client database layout.
	Schema     = schema.Schema
	Table      = schema.Table
	Column     = schema.Column
	ForeignKey = schema.ForeignKey
	AttrRef    = schema.AttrRef

	// CC is a cardinality constraint; Workload is the set shipped by the
	// client.
	CC       = cc.CC
	Workload = cc.Workload

	// Summary is the scale-independent database summary; Generator
	// produces tuples from one relation summary.
	Summary         = summary.Summary
	RelationSummary = summary.RelationSummary
	ViewSummary     = summary.ViewSummary
	Generator       = tuplegen.Generator
	CCReport        = summary.CCReport
)

// NewSchema validates and builds a schema.
func NewSchema(tables ...*Table) (*Schema, error) { return schema.New(tables...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(tables ...*Table) *Schema { return schema.MustNew(tables...) }

// SolverBackend selects the LP arithmetic.
type SolverBackend = lp.Backend

const (
	// SolverAuto picks exact rational arithmetic for small systems and
	// float64 (with exact verification) for large ones.
	SolverAuto = lp.Auto
	// SolverRational forces exact arithmetic everywhere.
	SolverRational = lp.Rational
	// SolverFloat forces float64 relaxations.
	SolverFloat = lp.Float
)

// Config tunes Regenerate.
type Config struct {
	// Backend selects the LP solver arithmetic (SolverAuto by default).
	Backend SolverBackend
	// MaxNodes bounds branch and bound per view (a sensible default when
	// zero).
	MaxNodes int
	// Strict disables the soft (L1-minimizing) fallback for inconsistent
	// CC sets; Regenerate then fails instead of producing a best-effort
	// summary.
	Strict bool
}

// Result bundles the regeneration outputs.
type Result struct {
	// Summary is the database summary (deliverable of §5).
	Summary *Summary
	// Views retains the preprocessed view definitions, needed to
	// evaluate CCs against the summary.
	Views map[string]*preprocess.View
	// BuildTime is the end-to-end summary construction wall time; the
	// paper's headline claim is that this does not depend on data scale.
	BuildTime time.Duration
	// TotalVars sums LP variables across views (Fig. 12/17 metric).
	TotalVars int
	// SolveTime sums LP solve wall time across views (Fig. 13 metric).
	SolveTime time.Duration
}

// Regenerate runs the full vendor-side pipeline of Fig. 2: preprocess the
// CCs into views, formulate and solve one LP per view using region
// partitioning, and build the database summary. It is RegenerateContext
// without cancellation.
func Regenerate(s *Schema, w *Workload, cfg Config) (*Result, error) {
	return RegenerateContext(context.Background(), s, w, cfg)
}

// RegenerateContext is Regenerate under a cancellation context, making
// the vendor-side pipeline abortable like every other facade entry
// point. Cancellation is observed between pipeline stages and between
// per-view LP solves — the granularity at which the pipeline makes
// progress — so a timed-out regeneration returns the context's error
// promptly instead of finishing a run nobody will read.
func RegenerateContext(ctx context.Context, s *Schema, w *Workload, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := w.Validate(s); err != nil {
		return nil, fmt.Errorf("hydra: %w", err)
	}
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		return nil, fmt.Errorf("hydra: %w", err)
	}
	opts := core.Options{Backend: cfg.Backend, MaxNodes: cfg.MaxNodes, NoSoftFallback: cfg.Strict}
	sols := make(map[string]*core.ViewSolution, len(views))
	res := &Result{Views: views}
	order, err := s.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, t := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hydra: %w", err)
		}
		v := views[t.Name]
		sol, err := core.FormulateAndSolve(v, opts)
		if err != nil {
			return nil, fmt.Errorf("hydra: %w", err)
		}
		sols[t.Name] = sol
		res.TotalVars += sol.Stats.Vars
		res.SolveTime += sol.Stats.SolveTime
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("hydra: %w", err)
	}
	sum, err := summary.Build(s, views, sols)
	if err != nil {
		return nil, fmt.Errorf("hydra: %w", err)
	}
	res.Summary = sum
	res.BuildTime = time.Since(start)
	return res, nil
}

// Evaluate measures volumetric similarity: the achieved count and relative
// error of every workload CC against the regenerated summary.
func (r *Result) Evaluate(w *Workload) ([]CCReport, error) {
	return summary.Evaluate(r.Summary, r.Views, w)
}

// NewGenerator returns the dynamic tuple generator for one relation of the
// summary — the raw row-at-a-time engine primitive.
//
// Deprecated: use the Source/Scan read path instead —
// NewSummarySource(s).Scan(ctx, ScanSpec{Table: table}) — which wraps
// the same generator in columnar batches and adds projection, pk
// ranges, filter predicates (ScanSpec.Filter), shard splits, rate
// limiting, and cancellation, and works identically over materialized
// directories and serve fleets. NewGenerator remains for engine-level
// integrations that need raw row access.
func NewGenerator(s *Summary, table string) (*Generator, error) {
	rs, ok := s.Relations[table]
	if !ok {
		return nil, fmt.Errorf("hydra: summary has no relation %q", table)
	}
	return tuplegen.New(rs), nil
}

// ErrorCDF computes the percentage of CCs within each |relative error|
// threshold, the presentation used by the paper's Fig. 10.
func ErrorCDF(reports []CCReport, thresholds []float64) []float64 {
	return summary.ErrorCDF(reports, thresholds)
}
