package hydra_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/summary"
)

// figure1Schema reproduces the paper's Figure 1a toy scenario:
// R(R_pk, S_fk, T_fk), S(S_pk, A, B), T(T_pk, C).
func figure1Schema(t testing.TB) *hydra.Schema {
	s, err := hydra.NewSchema(
		&hydra.Table{Name: "S", Cols: []hydra.Column{
			{Name: "A", Min: 0, Max: 100},
			{Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&hydra.Table{Name: "T", Cols: []hydra.Column{
			{Name: "C", Min: 0, Max: 10},
		}, RowCount: 1500},
		&hydra.Table{Name: "R", FKs: []hydra.ForeignKey{
			{FKCol: "S_fk", Ref: "S"},
			{FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

// figure1Workload encodes the CCs of Figure 1d.
func figure1Workload() *hydra.Workload {
	sa := hydra.AttrRef{Table: "S", Col: "A"}
	tc := hydra.AttrRef{Table: "T", Col: "C"}
	aIn := pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(20, 59))}}
	cIn := pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(2, 2))}}
	joinPred := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(2, 2)),
	}}
	return &hydra.Workload{
		Name: "figure1",
		CCs: []hydra.CC{
			{Root: "R", Pred: pred.True(), Count: 80000, Name: "sizeR"},
			{Root: "S", Pred: pred.True(), Count: 700, Name: "sizeS"},
			{Root: "T", Pred: pred.True(), Count: 1500, Name: "sizeT"},
			{Root: "S", Attrs: []hydra.AttrRef{sa}, Pred: aIn, Count: 400, Name: "selS"},
			{Root: "T", Attrs: []hydra.AttrRef{tc}, Pred: cIn, Count: 900, Name: "selT"},
			{Root: "R", Attrs: []hydra.AttrRef{sa}, Pred: aIn, Count: 50000, Name: "joinRS"},
			{Root: "R", Attrs: []hydra.AttrRef{sa, tc}, Pred: joinPred, Count: 30000, Name: "joinRST"},
		},
	}
}

func regenerateFigure1(t testing.TB, cfg hydra.Config) *hydra.Result {
	res, err := hydra.Regenerate(figure1Schema(t), figure1Workload(), cfg)
	if err != nil {
		t.Fatalf("Regenerate: %v", err)
	}
	return res
}

func TestFigure1AllCCsExact(t *testing.T) {
	res := regenerateFigure1(t, hydra.Config{})
	reports, err := res.Evaluate(figure1Workload())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.RelErr != 0 {
			t.Errorf("CC %s: want %d got %d (relerr %.4f)", r.Name, r.Want, r.Got, r.RelErr)
		}
	}
}

func TestFigure1RelationSizes(t *testing.T) {
	res := regenerateFigure1(t, hydra.Config{})
	wantSizes := map[string]int64{"R": 80000, "S": 700, "T": 1500}
	for name, want := range wantSizes {
		rs := res.Summary.Relations[name]
		if rs == nil {
			t.Fatalf("missing relation summary %s", name)
		}
		if rs.Total != want {
			t.Errorf("|%s| = %d, want %d", name, rs.Total, want)
		}
	}
	// No referential-integrity extras should be needed: every R_view
	// combination is present in S_view and T_view by construction.
	for name, extra := range res.Summary.Extra {
		if extra != 0 {
			t.Errorf("unexpected %d extra tuples in %s", extra, name)
		}
	}
}

func TestFigure1SummaryIsMinuscule(t *testing.T) {
	res := regenerateFigure1(t, hydra.Config{})
	if n := res.Summary.NumRows(); n > 50 {
		t.Errorf("summary has %d rows; expected a handful (scale-independent)", n)
	}
	if sz := res.Summary.SizeBytes(); sz > 1<<16 {
		t.Errorf("summary is %d bytes; expected well under 64KiB", sz)
	}
}

// sourceRows drains one scan through the Source read path into
// row-major tuples — the batch-API replacement for the old
// generator-iterator materialization.
func sourceRows(t *testing.T, src hydra.Source, spec hydra.ScanSpec) [][]int64 {
	t.Helper()
	sc, err := src.Scan(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var out [][]int64
	for sc.Next() {
		b := sc.Batch()
		for i := 0; i < b.N; i++ {
			row := make([]int64, len(b.Cols))
			for c := range b.Cols {
				row[c] = b.Cols[c][i]
			}
			out = append(out, row)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFigure1JoinByGeneration is the strongest volumetric check: it
// materializes all of R via the read path, follows the generated FK
// values into S and T, and re-counts the AQP's operator outputs by brute
// force.
func TestFigure1JoinByGeneration(t *testing.T) {
	res := regenerateFigure1(t, hydra.Config{})
	src := hydra.NewSummarySource(res.Summary)

	// Materialize S and T keyed by pk.
	sRows := map[int64][]int64{}
	for _, row := range sourceRows(t, src, hydra.ScanSpec{Table: "S"}) {
		sRows[row[0]] = row
	}
	tRows := map[int64][]int64{}
	for _, row := range sourceRows(t, src, hydra.ScanSpec{Table: "T"}) {
		tRows[row[0]] = row
	}

	// σ(S): A in [20,60) — column layout [pk, A, B].
	var selS int64
	for _, r := range sRows {
		if r[1] >= 20 && r[1] < 60 {
			selS++
		}
	}
	if selS != 400 {
		t.Errorf("|σ(S)| = %d, want 400", selS)
	}
	// The same selection pushed down as a scan filter must count the same.
	filtered := sourceRows(t, src, hydra.ScanSpec{
		Table: "S", Filter: hydra.Col("A").In(20, 59),
	})
	if int64(len(filtered)) != selS {
		t.Errorf("filtered |σ(S)| = %d, want %d", len(filtered), selS)
	}
	// σ(T): C in [2,3) — layout [pk, C].
	var selT int64
	for _, r := range tRows {
		if r[1] >= 2 && r[1] < 3 {
			selT++
		}
	}
	if selT != 900 {
		t.Errorf("|σ(T)| = %d, want 900", selT)
	}

	// R ⋈ σ(S) and R ⋈ σ(S) ⋈ σ(T) — R layout [pk, S_fk, T_fk].
	var joinRS, joinRST int64
	for _, row := range sourceRows(t, src, hydra.ScanSpec{Table: "R"}) {
		s, okS := sRows[row[1]]
		tt, okT := tRows[row[2]]
		if !okS || !okT {
			t.Fatalf("dangling FK in generated R row %v", row)
		}
		if s[1] >= 20 && s[1] < 60 {
			joinRS++
			if tt[1] >= 2 && tt[1] < 3 {
				joinRST++
			}
		}
	}
	if joinRS != 50000 {
		t.Errorf("|R ⋈ σ(S)| = %d, want 50000", joinRS)
	}
	if joinRST != 30000 {
		t.Errorf("|R ⋈ σ(S) ⋈ σ(T)| = %d, want 30000", joinRST)
	}
}

func TestFigure1Backends(t *testing.T) {
	for _, backend := range []hydra.SolverBackend{hydra.SolverAuto, hydra.SolverRational, hydra.SolverFloat} {
		res := regenerateFigure1(t, hydra.Config{Backend: backend})
		reports, err := res.Evaluate(figure1Workload())
		if err != nil {
			t.Fatal(err)
		}
		if m := summary.MaxAbsErr(reports); m != 0 {
			t.Errorf("backend %v: max |relerr| = %v, want 0", backend, m)
		}
	}
}

func TestSummarySaveLoadRoundTrip(t *testing.T) {
	res := regenerateFigure1(t, hydra.Config{})
	path := filepath.Join(t.TempDir(), "fig1.summary.json")
	if err := res.Summary.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := summary.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, rs := range res.Summary.Relations {
		lrs := loaded.Relations[name]
		if lrs == nil || lrs.Total != rs.Total || len(lrs.Rows) != len(rs.Rows) {
			t.Fatalf("relation %s did not round-trip", name)
		}
	}
	// The loaded summary must still drive generation.
	info, err := hydra.NewSummarySource(loaded).Table("S")
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 700 {
		t.Fatalf("loaded source rows = %d", info.Rows)
	}
}

func TestInconsistentWorkloadSoftFallback(t *testing.T) {
	s := figure1Schema(t)
	w := figure1Workload()
	// Make it impossible: the join output exceeds |R|.
	for i := range w.CCs {
		if w.CCs[i].Name == "joinRS" {
			w.CCs[i].Count = 90000
		}
	}
	res, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		t.Fatalf("soft fallback should succeed: %v", err)
	}
	reports, err := res.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	// Some CC must be off, but the summary exists and most CCs hold.
	bad := 0
	for _, r := range reports {
		if math.Abs(r.RelErr) > 1e-9 {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("expected at least one violated CC for an inconsistent workload")
	}
	// Strict mode must refuse instead.
	if _, err := hydra.Regenerate(s, w, hydra.Config{Strict: true}); err == nil {
		t.Fatal("Strict mode should fail on inconsistent CCs")
	}
}

func TestEmptyWorkloadUsesSchemaSizes(t *testing.T) {
	s := figure1Schema(t)
	w := &hydra.Workload{Name: "empty"}
	res, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Relations["R"].Total != 80000 {
		t.Fatalf("|R| = %d, want schema RowCount 80000", res.Summary.Relations["R"].Total)
	}
}

func TestValidateRejectsForeignAttr(t *testing.T) {
	s := figure1Schema(t)
	w := &hydra.Workload{CCs: []hydra.CC{{
		Root:  "S",
		Attrs: []hydra.AttrRef{{Table: "T", Col: "C"}}, // T is not in S's closure
		Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 1))}},
		Count: 1, Name: "bad",
	}}}
	if _, err := hydra.Regenerate(s, w, hydra.Config{}); err == nil {
		t.Fatal("expected validation failure for attr outside FK closure")
	}
}

func TestScaleIndependence(t *testing.T) {
	// The same workload at 10^6x the counts must produce a summary of the
	// same shape (row counts in the summary, not the data).
	s := figure1Schema(t)
	w := figure1Workload()
	base, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 1_000_000
	for i := range w.CCs {
		w.CCs[i].Count *= k
	}
	for _, tab := range s.Tables {
		tab.RowCount *= k
	}
	big, err := hydra.Regenerate(s, w, hydra.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Summary.NumRows() != big.Summary.NumRows() {
		t.Fatalf("summary rows changed with scale: %d vs %d", base.Summary.NumRows(), big.Summary.NumRows())
	}
	if big.Summary.Relations["R"].Total != 80000*k {
		t.Fatalf("scaled |R| wrong: %d", big.Summary.Relations["R"].Total)
	}
	reports, err := big.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	if m := summary.MaxAbsErr(reports); m != 0 {
		t.Fatalf("scaled workload max relerr = %v", m)
	}
	_ = schema.AttrRef{}
}
