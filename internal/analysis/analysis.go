// Package analysis is a small, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass,
// Diagnostic — sized for hydralint, Hydra's in-tree static-analysis
// suite. The shipped library stays stdlib-only (that is itself one of
// the invariants hydralint protects), so rather than vendoring x/tools
// the repo carries this minimal framework: an analyzer is a named Run
// function over one type-checked package, and the drivers in
// checker (standalone, `hydralint ./...`) and unitchecker
// (`go vet -vettool=hydralint`) feed it packages.
//
// The API deliberately mirrors x/tools so the analyzers would port to
// the real framework by changing one import path.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name, documentation, optional
// flags, and the Run function applied to each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags (-name.flag),
	// and the -c analyzer selection. It must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by a blank line and details.
	Doc string

	// Flags holds analyzer-specific flags, registered by the drivers
	// under the -name.flag namespace.
	Flags flag.FlagSet

	// Run applies the check to one package and reports diagnostics via
	// pass.Report/Reportf. The result value is ignored by Hydra's
	// drivers (kept for x/tools API shape).
	Run func(pass *Pass) (any, error)
}

// Pass is one (analyzer, package) unit of work: the syntax trees,
// type information, and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers
// whose invariants only bind production code filter with this, so the
// standalone checker and `go vet` (which type-checks test variants)
// agree on the finding set.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// Directive reports whether the function declaration carries the
// `//hydra:<name>` annotation in its doc comment (directive comments
// attach to the doc group when adjacent to the declaration). The
// directive may carry a justification after a space:
//
//	//hydra:nondeterministic map-range feeds a commutative fold
//	func merge(...)
func Directive(fd *ast.FuncDecl, name string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	want := "//hydra:" + name
	for _, c := range fd.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration in file
// whose body spans pos, or nil. File-scope code (var initializers) has
// no enclosing function.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}

// CalleeObject resolves the called function or method of a call
// expression to its types.Object, looking through parentheses. It
// returns nil for calls through function values, built-ins, and type
// conversions.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := info.Uses[fun].(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj() // method or field call
		}
		// Qualified identifier: pkg.Func.
		if o, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return o
		}
	}
	return nil
}

// PkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and universe-scope objects.
func PkgPathOf(o types.Object) string {
	if o == nil || o.Pkg() == nil {
		return ""
	}
	return o.Pkg().Path()
}

// IsPkgFunc reports whether call invokes the package-level function
// (or method named name on any receiver) belonging to a package whose
// import path is path or ends in "/"+path.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	o := CalleeObject(info, call)
	if o == nil || o.Name() != name {
		return false
	}
	p := PkgPathOf(o)
	return p == path || strings.HasSuffix(p, "/"+path)
}
