// Package analysistest runs an analyzer over a corpus of source files
// annotated with `// want "regexp"` comments and reports any mismatch
// between expected and actual diagnostics — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the stdlib
// so the corpus tests carry no external dependency.
//
// Corpus layout is testdata/src/<pkg>/*.go. A corpus package may
// import the standard library, any package of the enclosing module
// (compiled export data is resolved through `go list -export`), or a
// sibling corpus package by its bare directory name.
//
// An expectation is a line comment of the form
//
//	code // want "first regexp" "second regexp"
//
// attached to the line the diagnostic must point at. Every diagnostic
// must match one expectation on its line, and every expectation must
// be consumed, or the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/dsl-repro/hydra/internal/analysis"
	"github.com/dsl-repro/hydra/internal/analysis/checker"
)

// Run analyzes each named corpus package under testdata/src and
// compares the diagnostics against the `// want` expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		srcRoot: filepath.Join(testdata, "src"),
		modRoot: findModuleRoot(testdata),
		loaded:  make(map[string]*corpusPkg),
		exports: make(map[string]string),
	}
	ld.imp = importer.ForCompiler(fset, "gc", ld.lookupExport)
	for _, name := range pkgs {
		cp, err := ld.load(name)
		if err != nil {
			t.Fatalf("loading corpus package %q: %v", name, err)
		}
		checkPackage(t, fset, a, cp)
	}
}

type corpusPkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type loader struct {
	fset    *token.FileSet
	srcRoot string // testdata/src
	modRoot string // directory containing go.mod
	imp     types.Importer
	loaded  map[string]*corpusPkg
	exports map[string]string // import path -> export file
}

// load parses and type-checks one corpus package, resolving imports
// through resolve.
func (ld *loader) load(name string) (*corpusPkg, error) {
	if cp, ok := ld.loaded[name]; ok {
		return cp, nil
	}
	dir := filepath.Join(ld.srcRoot, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	files, err := checker.ParseFiles(ld.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := checker.TypeCheck(ld.fset, name, files, importerFunc(ld.resolve))
	if err != nil {
		return nil, err
	}
	cp := &corpusPkg{path: name, files: files, pkg: pkg, info: info}
	ld.loaded[name] = cp
	return cp, nil
}

// resolve satisfies an import from a corpus package: sibling corpus
// directories win over module/stdlib packages of the same name.
func (ld *loader) resolve(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && st.IsDir() {
		cp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return cp.pkg, nil
	}
	return ld.imp.Import(path)
}

// lookupExport feeds the gc importer compiled export data, produced on
// demand with `go list -export` from the module root.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	exp, ok := ld.exports[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = ld.modRoot
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		exp = strings.TrimSpace(string(out))
		if exp == "" {
			return nil, fmt.Errorf("no export data for %s", path)
		}
		ld.exports[path] = exp
	}
	return os.Open(exp)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func findModuleRoot(dir string) string {
	dir, _ = filepath.Abs(dir)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func checkPackage(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, cp *corpusPkg) {
	t.Helper()
	var wants []*expectation
	for _, f := range cp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rxs, err := splitWants(m[1])
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, rx := range rxs {
					re, err := regexp.Compile(rx)
					if err != nil {
						t.Fatalf("%s:%d: bad regexp %q: %v", pos.Filename, pos.Line, rx, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: re})
				}
			}
		}
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     cp.files,
		Pkg:       cp.pkg,
		TypesInfo: cp.info,
		Report: func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			for _, w := range wants {
				if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
					w.hit = true
					return
				}
			}
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// splitWants breaks `"a" "b c"` into its quoted pieces.
func splitWants(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		q, rest, err := scanQuoted(s)
		if err != nil {
			return nil, err
		}
		u, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", q, err)
		}
		out = append(out, u)
		s = strings.TrimSpace(rest)
	}
	return out, nil
}

func scanQuoted(s string) (quoted, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return s[:i+1], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", s)
}
