// Package checker is the standalone driver for Hydra's analysis
// framework: it loads packages with `go list -export -deps -json`
// (type information comes from the build cache's compiled export data,
// so a run costs one no-op build, not a from-source re-typecheck of
// the world), type-checks each target package, and applies every
// analyzer. This is what `hydralint ./...` runs; the same analyzers
// ride the `go vet -vettool` protocol via package unitchecker.
package checker

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath  string
	Name        string
	Dir         string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Export      string
	Standard    bool
	DepOnly     bool
	Incomplete  bool
	Error       *struct{ Err string }
}

// Options configure a standalone run.
type Options struct {
	// Tests includes in-package _test.go files in the unit being
	// checked (external _test packages are not loaded).
	Tests bool

	// Dir is the working directory for `go list` (defaults to the
	// process working directory).
	Dir string
}

// Finding is one diagnostic with its position resolved, ready to
// print or marshal (-json).
type Finding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Run loads the packages matching patterns, applies every analyzer to
// each non-dependency package, and returns the findings sorted by
// position. A package that fails to load or type-check is an error —
// hydralint refuses to report a partial view of a broken tree.
func Run(patterns []string, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	pkgs, err := goList(opts.Dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs)) // import path -> export file
	var targets []*listPackage
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var findings []Finding
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		names := p.GoFiles
		if opts.Tests {
			names = append(append([]string{}, p.GoFiles...), p.TestGoFiles...)
		}
		fs, err := ParseFiles(fset, p.Dir, names)
		if err != nil {
			return nil, err
		}
		pkg, info, err := TypeCheck(fset, p.ImportPath, fs, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		findings = append(findings, runAnalyzers(fset, p.ImportPath, fs, pkg, info, analyzers)...)
	}
	sortFindings(findings)
	return findings, nil
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		p := new(listPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ParseFiles parses the named files (relative names resolved against
// dir) with comments, as the analyzers need directive comments.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	fs := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

// TypeCheck type-checks one package's files with the given importer,
// returning the package and full type info. Shared by the standalone
// and vettool drivers.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func runAnalyzers(fset *token.FileSet, pkgPath string, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Package:  pkgPath,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			pass.Reportf(token.NoPos, "analyzer failed: %v", err)
		}
	}
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// Print writes findings one per line in file:line:col form, with paths
// made relative to dir when possible (stable across checkouts, which
// keeps -json output diffable in CI).
func Print(w io.Writer, findings []Finding, dir string) {
	for _, f := range findings {
		f.File = relPath(dir, f.File)
		fmt.Fprintln(w, f.String())
	}
}

// PrintJSON writes the machine-readable report: a stable, sorted
// finding list plus per-analyzer counts, so CI tooling can diff
// finding counts across PRs.
func PrintJSON(w io.Writer, findings []Finding, dir string) error {
	type report struct {
		Count      int            `json:"count"`
		ByAnalyzer map[string]int `json:"by_analyzer"`
		Findings   []Finding      `json:"findings"`
	}
	rep := report{ByAnalyzer: map[string]int{}, Findings: []Finding{}}
	for _, f := range findings {
		f.File = relPath(dir, f.File)
		rep.Findings = append(rep.Findings, f)
		rep.ByAnalyzer[f.Analyzer]++
		rep.Count++
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func relPath(dir, path string) string {
	if dir == "" {
		return path
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(abs, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
