package hydralint

import (
	"go/ast"
	"go/types"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// CtxFirst enforces context discipline in the request-path packages
// (serve, scan, resilience, orchestrate): a function that takes a
// context.Context takes it as the first parameter — Go's strongest
// convention, and the one that keeps cancellation threading visible
// in every signature — and a function that already has a context in
// scope must not mint a fresh root with context.Background() or
// context.TODO(), which silently detaches the work from the caller's
// deadline and trace. The one allowed shape is the nil-default guard:
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
//
// Functions without a context parameter (constructors, background
// probe loops) may call Background freely — they have no caller
// context to lose.
var CtxFirst = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context first in signatures; no fresh context roots where a caller context exists",
	Run:  runCtxFirst,
}

var ctxFirstPkgs = "internal/serve,internal/scan,internal/resilience,internal/orchestrate,internal/sqldriver,internal/loadgen"

func init() {
	CtxFirst.Flags.StringVar(&ctxFirstPkgs, "pkgs", ctxFirstPkgs,
		"comma-separated import-path suffixes of request-path packages")
}

func runCtxFirst(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), ctxFirstPkgs) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := checkCtxPosition(pass, fd)
			if ctxParam != nil {
				checkNoFreshRoots(pass, fd, ctxParam)
			}
		}
	}
	return nil, nil
}

// checkCtxPosition reports context parameters at a position other than
// the first, and returns the function's context parameter object (the
// first one) if any.
func checkCtxPosition(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	var ctxObj *types.Var
	idx := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil} // unnamed parameter still occupies a slot
		}
		for _, name := range names {
			isCtx := false
			if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
				isCtx = true
			}
			if isCtx {
				if idx != 0 {
					pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
				}
				if ctxObj == nil && name != nil {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						ctxObj = v
					}
				}
			}
			idx++
		}
	}
	return ctxObj
}

// checkNoFreshRoots flags context.Background/TODO calls inside a
// function that already receives a context, except the nil-default
// guard assignment.
func checkNoFreshRoots(pass *analysis.Pass, fd *ast.FuncDecl, ctxParam *types.Var) {
	// Collect if-statements guarding on `ctxIdent == nil`.
	allowed := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		be, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || be.Op.String() != "==" {
			return true
		}
		x, xok := ast.Unparen(be.X).(*ast.Ident)
		if !xok || pass.TypesInfo.Uses[x] != ctxParam {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[be.Y]; !ok || !tv.IsNil() {
			return true
		}
		allowed[ifs] = true
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if allowed[n] {
			return false // everything under the nil guard is fine
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if analysis.IsPkgFunc(pass.TypesInfo, call, "context", name) {
				pass.Reportf(call.Pos(), "context.%s inside %s detaches from the caller's context %q (deadline, cancellation, trace); thread the parameter instead", name, fd.Name.Name, ctxParam.Name())
			}
		}
		return true
	})
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}
