package hydralint

import (
	"go/ast"
	"go/types"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// Determinism enforces the paper's core guarantee at the source level:
// regenerated data is a pure function of (summary digest, seed). In
// the packages that produce those bytes (tuplegen span arithmetic,
// pred canonical encoding, the matgen encoders) it forbids the three
// ways nondeterminism usually sneaks in:
//
//   - wall-clock reads (time.Now / time.Since / time.Until),
//   - math/rand (either version — all randomness on the generation
//     path must derive from the seeded, explicit generators),
//   - ranging over a map, whose iteration order is deliberately
//     randomized by the runtime.
//
// Map ranges with provably order-insensitive shapes are allowed
// without annotation: collecting keys/values into a slice that is
// sorted later in the same function, copying entries into another
// map, and pure existence scans (`if cond { return <const> }`).
// Anything else needs the function-level `//hydra:nondeterministic`
// opt-out with a justification — the annotation is the reviewable
// record that the nondeterminism never reaches the output bytes
// (timing for metrics, for example).
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, math/rand, and map-iteration ordering in the regeneration path",
	Run:  runDeterminism,
}

var determinismPkgs = "internal/tuplegen,internal/pred,internal/matgen"

func init() {
	Determinism.Flags.StringVar(&determinismPkgs, "pkgs", determinismPkgs,
		"comma-separated import-path suffixes of determinism-critical packages")
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path(), determinismPkgs) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "math/rand in a determinism-critical package; derive randomness from the seeded generators")
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.Directive(fd, "nondeterministic") {
				continue
			}
			checkDeterminismFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkDeterminismFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures inherit the enclosing function's obligation;
			// keep walking.
		case *ast.CallExpr:
			for _, name := range [...]string{"Now", "Since", "Until"} {
				if analysis.IsPkgFunc(pass.TypesInfo, n, "time", name) {
					pass.Reportf(n.Pos(), "time.%s on the regeneration path; output must be a pure function of (summary, seed) — annotate //hydra:nondeterministic if this is timing-only", name)
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if mapRangeOrderInsensitive(pass, fd, n) {
				return true
			}
			pass.Reportf(n.Pos(), "range over map has nondeterministic order on the regeneration path; sort the keys or annotate //hydra:nondeterministic with why order cannot reach the output")
		}
		return true
	})
}

// mapRangeOrderInsensitive recognizes the three loop shapes whose
// result cannot depend on iteration order.
func mapRangeOrderInsensitive(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	return isSortedCollect(pass, fd, rng) || isMapCopy(pass, rng) || isExistenceScan(pass, rng)
}

// isSortedCollect: every statement in the body is `s = append(s, ...)`
// and each such s is later passed to a sort call in the same function.
func isSortedCollect(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	var targets []types.Object
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return false
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedAfter(pass, fd, rng, obj) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj appears as an argument to a sort.*
// or slices.Sort* call positioned after the range loop.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return true
		}
		callee := analysis.CalleeObject(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		switch analysis.PkgPathOf(callee) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isMapCopy: every statement writes into an index expression over a
// map (out[k] = v), so the result is a set union regardless of order.
func isMapCopy(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			tv, ok := pass.TypesInfo.Types[ix.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return false
			}
		}
	}
	return true
}

// isExistenceScan: the body is a single if (no else) whose body only
// returns compile-time constants — an order-insensitive "does any
// entry satisfy P" probe.
func isExistenceScan(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	ifs, ok := rng.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Else != nil || ifs.Init != nil || len(ifs.Body.List) != 1 {
		return false
	}
	ret, ok := ifs.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		tv, ok := pass.TypesInfo.Types[res]
		if !ok || tv.Value == nil && !tv.IsNil() {
			return false
		}
	}
	return true
}
