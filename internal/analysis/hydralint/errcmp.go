package hydralint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// ErrCmp enforces sentinel-error hygiene everywhere: error values are
// compared with errors.Is, never ==/!= (orchestrate's verification
// sentinels, scan's ErrScanSpec, and matgen.ErrFilter all travel
// through fmt.Errorf("%w") wrapping, so identity comparison silently
// stops matching the moment anyone adds context to an error), and a
// sentinel passed to fmt.Errorf must be wrapped with %w, not
// flattened with %v/%s — flattening strips the errors.Is identity the
// sentinel exists to provide. Comparisons against nil are of course
// fine.
var ErrCmp = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "compare errors with errors.Is, wrap sentinels with %w",
	Run:  runErrCmp,
}

func runErrCmp(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrComparison(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkErrComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xt, xok := pass.TypesInfo.Types[be.X]
	yt, yok := pass.TypesInfo.Types[be.Y]
	if !xok || !yok || xt.IsNil() || yt.IsNil() {
		return
	}
	if !isErrorType(xt.Type) && !isErrorType(yt.Type) {
		return
	}
	op := "=="
	if be.Op == token.NEQ {
		op = "!="
	}
	pass.Reportf(be.Pos(), "error compared with %s; use errors.Is so wrapped sentinels still match", op)
}

// isErrorType reports whether t is the error interface itself. Only
// interface-typed comparisons are flagged: comparing two concrete
// *MyError pointers is identity by construction.
func isErrorType(t types.Type) bool {
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Identical(it, types.Universe.Lookup("error").Type().Underlying())
}

// checkErrorfWrap flags sentinel errors flattened by fmt.Errorf. A
// sentinel is a package-level exported-or-not variable whose name
// starts with Err/err and whose type is error.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysis.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := stringLiteral(call.Args[0])
	if !ok {
		return
	}
	verbs := errorfVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if verbs[i] == 'w' {
			continue
		}
		if sentinelName(pass, arg) != "" {
			pass.Reportf(arg.Pos(), "sentinel %s flattened with %%%c; wrap with %%w so errors.Is keeps matching", sentinelName(pass, arg), verbs[i])
		}
	}
}

// errorfVerbs returns the verb letter for each argument-consuming verb
// in the format string, in order. Width/precision stars also consume
// arguments and are returned as '*'.
func errorfVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# .0123456789[]", c) >= 0 {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}

// sentinelName returns the name of the package-level error variable
// arg refers to, or "".
func sentinelName(pass *analysis.Pass, arg ast.Expr) string {
	var obj types.Object
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	name := v.Name()
	if strings.HasPrefix(name, "Err") || strings.HasPrefix(name, "err") {
		return name
	}
	return ""
}
