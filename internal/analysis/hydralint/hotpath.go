package hydralint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// Hotpath flags allocation sources in functions annotated
// `//hydra:hotpath`. The encode pipeline's zero-allocation property is
// pinned dynamically by AllocsPerRun tests in matgen/tuplegen/obs;
// this analyzer names the offending expression at compile time instead
// of leaving a failing allocation count to bisect. Checked sources:
//
//   - any fmt call (Sprintf and friends allocate; Errorf boxes too),
//   - string concatenation with + (non-constant),
//   - string<->[]byte/[]rune conversions,
//   - make/new and composite literals,
//   - boxing a concrete value into an interface-typed parameter,
//   - closures that capture enclosing variables, and go statements.
//
// The annotation is opt-in per function: annotate the functions whose
// allocation budget is zero, not whole packages.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation sources in //hydra:hotpath-annotated functions",
	Run:  runHotpath,
}

func runHotpath(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.Directive(fd, "hotpath") {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkHotpathFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath function allocates a goroutine")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal in hotpath function allocates")
					return false
				}
			}
		case *ast.CompositeLit:
			// A value struct literal lives on the stack; map and slice
			// literals always allocate their backing store.
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map, *types.Slice:
					pass.Reportf(n.Pos(), "%s literal in hotpath function allocates", typeKindWord(tv.Type))
					return false
				}
			}
		case *ast.FuncLit:
			reportCaptures(pass, fd, n)
			return true
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			tv, ok := info.Types[n]
			if ok && tv.Value == nil && isString(tv.Type) {
				pass.Reportf(n.Pos(), "string concatenation in hotpath function allocates")
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, n)
		}
		return true
	})
}

func checkHotpathCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hotpath function allocates", id.Name)
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			from, okf := info.Types[call.Args[0]]
			if okf && stringBytesConversion(from.Type, tv.Type) {
				pass.Reportf(call.Pos(), "string/[]byte conversion in hotpath function allocates")
			}
		}
		return
	}
	callee := analysis.CalleeObject(info, call)
	if callee != nil && pkgPath(analysis.PkgPathOf(callee)) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hotpath function allocates", callee.Name())
		return
	}
	// Boxing: a concrete-typed argument passed to an interface-typed
	// parameter allocates (interface conversions escape).
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing the slice through, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s as interface parameter boxes (allocates) in hotpath function", types.TypeString(at.Type, types.RelativeTo(pass.Pkg)))
	}
}

// reportCaptures flags identifiers used inside the closure but
// declared in the enclosing function — captured variables move to the
// heap when the closure does.
func reportCaptures(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		_, isVar := obj.(*types.Var)
		if !isVar || obj.Parent() == nil || obj.Parent() == types.Universe {
			return true
		}
		// Declared inside the enclosing function but outside the literal?
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() && (obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			seen[obj] = true
			pass.Reportf(id.Pos(), "closure captures %q in hotpath function (capture allocates)", obj.Name())
		}
		return true
	})
}

func typeKindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "composite"
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringBytesConversion(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
