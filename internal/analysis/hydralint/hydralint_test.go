package hydralint_test

import (
	"testing"

	"github.com/dsl-repro/hydra/internal/analysis"
	"github.com/dsl-repro/hydra/internal/analysis/analysistest"
	"github.com/dsl-repro/hydra/internal/analysis/hydralint"
)

// setScope points a scoped analyzer's pkgs flag at the corpus package
// for the duration of one test.
func setScope(t *testing.T, a *analysis.Analyzer, pkgs string) {
	t.Helper()
	f := a.Flags.Lookup("pkgs")
	if f == nil {
		t.Fatalf("analyzer %s has no pkgs flag", a.Name)
	}
	old := f.Value.String()
	if err := f.Value.Set(pkgs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Value.Set(old) })
}

func TestDeterminism(t *testing.T) {
	setScope(t, hydralint.Determinism, "determinism")
	analysistest.Run(t, "testdata", hydralint.Determinism, "determinism")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hydralint.Hotpath, "hotpath")
}

func TestMetricsName(t *testing.T) {
	analysistest.Run(t, "testdata", hydralint.MetricsName, "metricsname")
}

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", hydralint.SpanEnd, "spanend")
}

func TestCtxFirst(t *testing.T) {
	setScope(t, hydralint.CtxFirst, "ctxfirst")
	analysistest.Run(t, "testdata", hydralint.CtxFirst, "ctxfirst")
}

func TestErrCmp(t *testing.T) {
	analysistest.Run(t, "testdata", hydralint.ErrCmp, "errcmp")
}

func TestSuiteComplete(t *testing.T) {
	suite := hydralint.Suite()
	if len(suite) < 6 {
		t.Fatalf("suite has %d analyzers, want at least 6", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q missing name or doc", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
