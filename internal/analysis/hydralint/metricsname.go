package hydralint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// MetricsName shifts obs.LintExposition's naming rules from scrape
// time to compile time: every metric registered through the
// internal/obs constructors must use a string-literal name following
// the repo's Prometheus conventions — `hydra_` prefix, snake case,
// counters ending `_total`, histograms carrying a unit suffix — and
// every obs.L label name must be a snake-case literal. Literal-ness
// is itself the invariant: a computed metric name defeats both this
// check and grep, and risks unbounded families.
var MetricsName = &analysis.Analyzer{
	Name: "metricsname",
	Doc:  "obs metric and label names must be literals following hydra_ naming conventions",
	Run:  runMetricsName,
}

var (
	metricNameRE = regexp.MustCompile(`^hydra_[a-z0-9]+(_[a-z0-9]+)*$`)
	labelNameRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// Histogram names must state what they measure in base units.
var histogramUnits = [...]string{"_seconds", "_bytes", "_rows"}

func runMetricsName(pass *analysis.Pass) (any, error) {
	if pathMatches(pass.Pkg.Path(), "internal/obs") {
		return nil, nil // the kernel itself (and its lint tests) are exempt
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeObject(pass.TypesInfo, call)
			if callee == nil || !pathMatches(analysis.PkgPathOf(callee), "internal/obs") {
				return true
			}
			switch callee.Name() {
			case "Counter", "FloatCounter", "Gauge", "FloatGauge", "Histogram":
				if isRegistryMethod(callee) {
					checkMetricCall(pass, call, callee.Name())
				}
			case "L":
				checkLabelCall(pass, call)
			}
			return true
		})
	}
	return nil, nil
}

func isRegistryMethod(o types.Object) bool {
	fn, ok := o.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && strings.Contains(recv.Type().String(), "Registry")
}

func checkMetricCall(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	if len(call.Args) == 0 {
		return
	}
	name, ok := stringLiteral(call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(), "obs.%s name must be a string literal (computed names defeat grep and risk unbounded families)", kind)
		return
	}
	pos := call.Args[0].Pos()
	if !metricNameRE.MatchString(name) {
		pass.Reportf(pos, "metric name %q must match %s (hydra_ prefix, snake case)", name, metricNameRE)
		return
	}
	isTotal := strings.HasSuffix(name, "_total")
	switch kind {
	case "Counter", "FloatCounter":
		if !isTotal {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	case "Gauge", "FloatGauge":
		if isTotal {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix promises a counter)", name)
		}
	case "Histogram":
		if isTotal {
			pass.Reportf(pos, "histogram %q must not end in _total", name)
			return
		}
		unitOK := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				unitOK = true
			}
		}
		if !unitOK {
			pass.Reportf(pos, "histogram %q must carry a base-unit suffix (%s)", name, strings.Join(histogramUnits[:], ", "))
		}
	}
	// Help text: when literal, it must be non-empty — /metrics renders
	// it as # HELP and LintExposition requires it at scrape time.
	if len(call.Args) >= 2 {
		if help, ok := stringLiteral(call.Args[1]); ok && strings.TrimSpace(help) == "" {
			pass.Reportf(call.Args[1].Pos(), "metric %q registered with empty help text", name)
		}
	}
}

func checkLabelCall(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	name, ok := stringLiteral(call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(), "obs.L label name must be a string literal")
		return
	}
	if !labelNameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(), "label name %q must match %s (snake case)", name, labelNameRE)
	}
}

// stringLiteral unquotes a basic string literal (or a parenthesized
// one); constants that are not literals deliberately do not qualify.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
