package hydralint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// SpanEnd enforces the span lifecycle: every span obtained from
// trace.Start/Child/StartRemote (or a Tracer's Start/StartRemote, or
// the hydra.StartSpan facade) must be ended on every return path —
// either with a `defer sp.End()` or with an End call that dominates
// each return. A leaked span is worse than a leaked file handle: its
// trace's collector waits for the span count to drain, so the whole
// trace silently never reaches the flight recorder.
//
// Ownership transfers are out of scope by design: a span that is
// returned, passed to another function, or stored into a structure is
// someone else's to end, and the analyzer says nothing. Discarding
// the span with `_` is always a finding — nobody can ever end it.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "spans from trace Start/Child/StartRemote must be ended on every return path",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *analysis.Pass) (any, error) {
	if pathMatches(pass.Pkg.Path(), "internal/trace") {
		return nil, nil // the kernel manages its own span records
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isSpanStart(pass.TypesInfo, call) {
				return true
			}
			// Start and friends return (ctx, *Span); the span is the
			// last of the two left-hand sides.
			if len(as.Lhs) != 2 {
				return true
			}
			spanIdent, ok := as.Lhs[1].(*ast.Ident)
			if !ok {
				return true
			}
			if spanIdent.Name == "_" {
				pass.Reportf(spanIdent.Pos(), "span discarded: nothing can ever call End, wedging the trace's collector")
				return true
			}
			checkSpanEnds(pass, file, as, spanIdent)
			return true
		})
	}
	return nil, nil
}

// isSpanStart recognizes the span-creating entry points.
func isSpanStart(info *types.Info, call *ast.CallExpr) bool {
	o := analysis.CalleeObject(info, call)
	if o == nil {
		return false
	}
	switch o.Name() {
	case "Start", "Child", "StartRemote":
		return pathMatches(analysis.PkgPathOf(o), "internal/trace")
	case "StartSpan":
		return pkgPath(analysis.PkgPathOf(o)) == "github.com/dsl-repro/hydra"
	}
	return false
}

func checkSpanEnds(pass *analysis.Pass, file *ast.File, as *ast.AssignStmt, spanIdent *ast.Ident) {
	obj := pass.TypesInfo.Defs[spanIdent]
	if obj == nil {
		obj = pass.TypesInfo.Uses[spanIdent]
	}
	if obj == nil {
		return
	}
	fn := enclosingFuncNode(file, as.Pos())
	if fn == nil {
		return
	}
	body := funcBody(fn)
	if body == nil {
		return
	}
	esc := spanUsage(pass, body, obj)
	if esc.escapes {
		return // ownership transferred; the receiver ends it
	}
	if esc.deferredEnd {
		return
	}
	if endsOnAllPaths(pass, stmtsAfter(body, as), obj) {
		return
	}
	pass.Reportf(spanIdent.Pos(), "span %q is not ended on every return path; defer %s.End() or call End before each return", spanIdent.Name, spanIdent.Name)
}

// enclosingFuncNode returns the innermost FuncDecl or FuncLit whose
// body contains pos — spans started inside closures (worker loops,
// goroutines) are checked against the closure, not the outer function.
func enclosingFuncNode(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && n.Body.Pos() <= pos && pos < n.Body.End() {
				best = n
			}
		case *ast.FuncLit:
			if n.Body != nil && n.Body.Pos() <= pos && pos < n.Body.End() {
				best = n
			}
		}
		return true
	})
	return best
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

type usage struct {
	escapes     bool
	deferredEnd bool
}

// spanUsage scans the function body for how the span variable is
// used: a deferred End (directly or inside a deferred closure)
// discharges the obligation; any use other than a method call on the
// span transfers ownership and exempts the function.
func spanUsage(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) usage {
	var u usage
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if callsEndOn(pass, n.Call, obj) {
				u.deferredEnd = true
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && containsEndCall(pass, lit.Body, obj) {
				u.deferredEnd = true
				return false
			}
		case *ast.Ident:
			if refersTo(pass, n, obj) && !isMethodReceiverUse(pass, body, n) {
				u.escapes = true
			}
		}
		return true
	})
	return u
}

// isMethodReceiverUse reports whether ident is the receiver of a
// method-call selector (sp.End(), sp.Event(...)) or one side of a
// simple comparison/assignment shape that does not move the span —
// anything else (argument position, composite literal, return value,
// field store) counts as an escape.
func isMethodReceiverUse(pass *analysis.Pass, body *ast.BlockStmt, id *ast.Ident) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if inner, isID := ast.Unparen(sel.X).(*ast.Ident); isID && inner == id {
				ok = true
				return false
			}
		}
		return true
	})
	if ok {
		return true
	}
	// The defining occurrence on the assignment's left-hand side is
	// not a use at all.
	if pass.TypesInfo.Defs[id] != nil {
		return true
	}
	// `if sp != nil`-style comparisons are fine.
	comparison := false
	ast.Inspect(body, func(n ast.Node) bool {
		if be, isBin := n.(*ast.BinaryExpr); isBin {
			if x, isID := ast.Unparen(be.X).(*ast.Ident); isID && x == id {
				comparison = true
			}
			if y, isID := ast.Unparen(be.Y).(*ast.Ident); isID && y == id {
				comparison = true
			}
		}
		return true
	})
	return comparison
}

func refersTo(pass *analysis.Pass, id *ast.Ident, obj types.Object) bool {
	return pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj
}

func callsEndOn(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && refersTo(pass, id, obj)
}

func containsEndCall(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && callsEndOn(pass, call, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// stmtsAfter returns the statements that follow target inside its
// innermost statement list (block, case body, or comm body) — the
// code the End obligation must cover. If the span variable's scope
// ends without an End there, the loop iteration or branch leaks it.
func stmtsAfter(body *ast.BlockStmt, target ast.Stmt) []ast.Stmt {
	var rest []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, s := range list {
			if s == target {
				rest = list[i+1:]
				return false
			}
		}
		return true
	})
	return rest
}

// pathResult is the outcome of abstract-executing a statement list
// with respect to one span variable.
type pathResult int

const (
	fallsThrough pathResult = iota // no End, no return yet
	ended                          // End called on every path
	leaks                          // some path returns without End
)

// endsOnAllPaths abstract-executes the statement list: it must reach
// an End call on the span before any return statement, on every
// branch. Loops are treated as possibly-zero-iteration; a return
// inside a loop body without a prior End leaks.
func endsOnAllPaths(pass *analysis.Pass, list []ast.Stmt, obj types.Object) bool {
	return execStmts(pass, list, obj) == ended
}

func execStmts(pass *analysis.Pass, list []ast.Stmt, obj types.Object) pathResult {
	for _, s := range list {
		switch r := execStmt(pass, s, obj); r {
		case ended, leaks:
			return r
		}
	}
	return fallsThrough
}

func execStmt(pass *analysis.Pass, s ast.Stmt, obj types.Object) pathResult {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && callsEndOn(pass, call, obj) {
			return ended
		}
	case *ast.ReturnStmt:
		return leaks
	case *ast.BlockStmt:
		return execStmts(pass, s.List, obj)
	case *ast.LabeledStmt:
		return execStmt(pass, s.Stmt, obj)
	case *ast.IfStmt:
		thenR := execStmts(pass, s.Body.List, obj)
		elseR := fallsThrough
		if s.Else != nil {
			elseR = execStmt(pass, s.Else, obj)
		}
		if thenR == leaks || elseR == leaks {
			return leaks
		}
		if thenR == ended && elseR == ended {
			return ended
		}
		// Some branch falls through without End; keep scanning the
		// following statements.
	case *ast.ForStmt:
		if execStmts(pass, s.Body.List, obj) == leaks {
			return leaks
		}
	case *ast.RangeStmt:
		if execStmts(pass, s.Body.List, obj) == leaks {
			return leaks
		}
	case *ast.SwitchStmt:
		return execSwitch(pass, caseBodies(s.Body), hasDefaultCase(s.Body), obj)
	case *ast.TypeSwitchStmt:
		return execSwitch(pass, caseBodies(s.Body), hasDefaultCase(s.Body), obj)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		return execSwitch(pass, bodies, true, obj)
	}
	return fallsThrough
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func execSwitch(pass *analysis.Pass, bodies [][]ast.Stmt, exhaustive bool, obj types.Object) pathResult {
	allEnd := len(bodies) > 0
	for _, b := range bodies {
		switch execStmts(pass, b, obj) {
		case leaks:
			return leaks
		case fallsThrough:
			allEnd = false
		}
	}
	if allEnd && exhaustive {
		return ended
	}
	return fallsThrough
}
