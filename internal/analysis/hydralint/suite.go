// Package hydralint is Hydra's static-analysis suite: six analyzers
// that turn the repo's load-bearing conventions — determinism of the
// regeneration path, allocation-free hot loops, Prometheus naming,
// span lifecycle, context discipline, sentinel-error hygiene — into
// compile-time checks. The golden-file and conformance tests catch a
// violated invariant after the bytes diverge; hydralint names the
// offending line before the change ships.
//
// Two source annotations tune the suite, both written as directive
// comments on the function declaration:
//
//	//hydra:nondeterministic <why>  — the determinism analyzer skips
//	    this function; for timing/metrics code on the generation path
//	    whose nondeterminism never reaches the output bytes.
//	//hydra:hotpath — opts the function IN to the hotpath analyzer's
//	    allocation-source checks, complementing its AllocsPerRun pin.
//
// Run it standalone (`hydralint ./...`), as machine-readable JSON
// (`hydralint -json ./...`), or through the toolchain
// (`go vet -vettool=$(which hydralint) ./...`).
package hydralint

import (
	"strings"

	"github.com/dsl-repro/hydra/internal/analysis"
)

// Suite returns the full analyzer set in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		Hotpath,
		MetricsName,
		SpanEnd,
		CtxFirst,
		ErrCmp,
	}
}

// pkgPath strips the test-variant suffix `go vet` appends to package
// paths ("pkg [pkg.test]"), so path matching agrees between the
// standalone driver and the vettool protocol.
func pkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// pathMatches reports whether the package path equals pat or ends in
// "/"+pat — analyzers configure package scopes by import-path suffix
// so testdata corpora (whose paths are single elements) can stand in
// for the real packages.
func pathMatches(path, pat string) bool {
	path = pkgPath(path)
	return path == pat || strings.HasSuffix(path, "/"+pat)
}

// inScope reports whether path matches any comma-separated pattern.
func inScope(path, patterns string) bool {
	for _, pat := range strings.Split(patterns, ",") {
		if pat = strings.TrimSpace(pat); pat != "" && pathMatches(path, pat) {
			return true
		}
	}
	return false
}
