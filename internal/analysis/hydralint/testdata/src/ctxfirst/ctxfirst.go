package ctxfirst

import "context"

func good(ctx context.Context, n int) { _ = n }

func bad(n int, ctx context.Context) { _, _ = n, ctx } // want `context\.Context must be the first parameter of bad`

func detaches(ctx context.Context) {
	bg := context.Background() // want `context\.Background inside detaches detaches from the caller's context`
	good(bg, 0)
}

func todoToo(ctx context.Context) {
	good(context.TODO(), 0) // want `context\.TODO inside todoToo detaches from the caller's context`
}

// The nil-default guard is the one allowed fresh root.
func guarded(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// No context parameter: free to mint roots.
func probeLoop() context.Context {
	return context.Background()
}
