package determinism

import (
	"math/rand" // want `math/rand in a determinism-critical package`
	"sort"
	"time"
)

func draw() int64 { return rand.Int63() }

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now on the regeneration path`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since on the regeneration path`
}

//hydra:nondeterministic timing feeds the progress report only
func annotated(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Sorted-collect is order-insensitive: allowed without annotation.
func keysSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Map copy is a set union: allowed.
func mapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Existence scan returns constants: allowed.
func hasNegative(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

func firstKey(m map[string]int) string {
	for k := range m { // want `range over map has nondeterministic order`
		return k
	}
	return ""
}

func join(m map[string]string) string {
	s := ""
	for _, v := range m { // want `range over map has nondeterministic order`
		s += v
	}
	return s
}
