package determinism

import "time"

// Test files are exempt: no findings expected here.
func inTest() int64 { return time.Now().UnixNano() }

func anyKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
