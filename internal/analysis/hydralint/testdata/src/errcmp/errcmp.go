package errcmp

import (
	"errors"
	"fmt"
	"io"
)

var ErrStall = errors.New("stall")

func compare(err error) bool {
	return err == io.EOF // want `error compared with ==; use errors\.Is`
}

func compareNeq(err error) bool {
	return err != io.EOF // want `error compared with !=; use errors\.Is`
}

// nil comparisons are idiomatic and exempt.
func compareNil(err error) bool { return err == nil }

func isGood(err error) bool { return errors.Is(err, io.EOF) }

func wrapBad() error {
	return fmt.Errorf("scan: %v", ErrStall) // want `sentinel ErrStall flattened with %v; wrap with %w`
}

func wrapGood() error {
	return fmt.Errorf("scan: %w", ErrStall)
}

// Non-sentinel arguments may use any verb.
func wrapLocal(err error) error {
	return fmt.Errorf("scan: %v", err)
}
