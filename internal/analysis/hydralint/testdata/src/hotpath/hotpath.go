package hotpath

import "fmt"

type point struct{ x, y int }

func sink(v any) { _ = v }

//hydra:hotpath
func formats(n int) {
	_ = fmt.Sprintf("%d", n) // want `fmt\.Sprintf in hotpath function allocates`
}

//hydra:hotpath
func builds(n int, s string, bs []byte) {
	m := make([]int, n) // want `make in hotpath function allocates`
	_ = m
	t := s + "!"   // want `string concatenation in hotpath function allocates`
	_ = []byte(t)  // want `string/\[\]byte conversion in hotpath function allocates`
	_ = string(bs) // want `string/\[\]byte conversion in hotpath function allocates`
}

//hydra:hotpath
func literals() {
	_ = []int{1, 2}      // want `slice literal in hotpath function allocates`
	_ = map[string]int{} // want `map literal in hotpath function allocates`
	_ = &point{1, 2}     // want `address of composite literal in hotpath function allocates`
	p := point{1, 2}     // value literal stays on the stack: allowed
	_ = p
}

//hydra:hotpath
func boxes(n int) {
	sink(n) // want `passing int as interface parameter boxes`
}

//hydra:hotpath
func spawns() {
	go literals() // want `go statement in hotpath function allocates a goroutine`
}

//hydra:hotpath
func captures(n int) int {
	f := func() int { return n } // want `closure captures "n" in hotpath function`
	return f()
}

// Unannotated functions allocate freely.
func unannotated(n int) string {
	return fmt.Sprintf("%v", []int{n})
}
