package metricsname

import "github.com/dsl-repro/hydra/internal/obs"

func register(r *obs.Registry, dynamic string) {
	r.Counter("hydra_rows_emitted_total", "rows emitted")
	r.Gauge("hydra_streams_inflight", "streams in flight")
	r.Histogram("hydra_scan_seconds", "scan latency", nil)

	r.Counter(dynamic, "computed name")                       // want `obs\.Counter name must be a string literal`
	r.Counter("rows_total", "missing prefix")                 // want `metric name "rows_total" must match`
	r.Counter("hydra_Rows_total", "camel case")               // want `must match`
	r.Counter("hydra_rows_emitted", "counter without _total") // want `counter "hydra_rows_emitted" must end in _total`
	r.Gauge("hydra_streams_total", "gauge posing as counter") // want `gauge "hydra_streams_total" must not end in _total`
	r.Histogram("hydra_scan_latency", "no unit", nil)         // want `histogram "hydra_scan_latency" must carry a base-unit suffix`
	r.Histogram("hydra_scan_total", "wrong suffix", nil)      // want `histogram "hydra_scan_total" must not end in _total`
	r.Counter("hydra_ticks_total", "")                        // want `registered with empty help text`

	r.Gauge("hydra_depth_rows", "queue depth", obs.L("shard", "0"))
	r.Gauge("hydra_lag_rows", "lag", obs.L("Shard", "0")) // want `label name "Shard" must match`
	r.Gauge("hydra_age_rows", "age", obs.L(dynamic, "0")) // want `obs\.L label name must be a string literal`
}
