package spanend

import (
	"context"

	"github.com/dsl-repro/hydra/internal/trace"
)

func deferred(ctx context.Context) {
	ctx, sp := trace.Start(ctx, "deferred")
	defer sp.End()
	work(ctx)
}

func deferredClosure(ctx context.Context) {
	ctx, sp := trace.Start(ctx, "closure")
	defer func() {
		sp.End()
	}()
	work(ctx)
}

func explicit(ctx context.Context) {
	ctx, sp := trace.Child(ctx, "explicit")
	work(ctx)
	sp.End()
}

func discarded(ctx context.Context) {
	ctx, _ = trace.Start(ctx, "discarded") // want `span discarded`
	work(ctx)
}

func leaksOnBranch(ctx context.Context, fail bool) error {
	ctx, sp := trace.Start(ctx, "branchy") // want `span "sp" is not ended on every return path`
	if fail {
		return errFail
	}
	work(ctx)
	sp.End()
	return nil
}

func endsOnBothBranches(ctx context.Context, fail bool) error {
	ctx, sp := trace.Child(ctx, "both")
	if fail {
		sp.End()
		return errFail
	}
	work(ctx)
	sp.End()
	return nil
}

func perIteration(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		ctx, sp := trace.Child(ctx, "iter")
		work(ctx)
		sp.End()
	}
}

// Ownership transfer: the span is returned, so the caller ends it.
func transfers(ctx context.Context) (context.Context, *trace.Span) {
	ctx, sp := trace.Start(ctx, "handed-off")
	return ctx, sp
}

var errFail = context.Canceled

func work(ctx context.Context) { _ = ctx }
