// Package unitchecker implements the `go vet -vettool` protocol for
// Hydra's analysis framework: the go command invokes the tool once
// per compilation unit with a JSON config file describing the
// package's sources and the export data of everything it imports,
// plus the -V=full and -flags handshakes it uses for build caching
// and flag validation. This lets the same analyzers run as
//
//	go vet -vettool=$(which hydralint) ./...
//
// with the toolchain handling package loading, caching, and test
// variants.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/dsl-repro/hydra/internal/analysis"
	"github.com/dsl-repro/hydra/internal/analysis/checker"
)

// Config mirrors the JSON the go command writes for each vet unit.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetRun reports whether the arguments look like a go vet
// invocation: a single positional argument ending in .cfg.
func IsVetRun(args []string) bool {
	return len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg")
}

// PrintVersion answers the -V=full handshake. The go command parses
// `<name> version <id>` and folds the id into its action cache key,
// so the id must change when the analyzers do: hash the executable.
func PrintVersion(w io.Writer) {
	name := "hydralint"
	if len(os.Args) > 0 {
		name = filepath.Base(os.Args[0])
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("h%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version %s\n", name, id)
}

// PrintFlags answers the -flags handshake: a JSON array describing
// the tool's flags so the go command can split `go vet` arguments
// into flags and package patterns.
func PrintFlags(w io.Writer, analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{}
	for _, a := range analyzers {
		prefix := a.Name
		a.Flags.VisitAll(func(f *flag.Flag) {
			isBool := false
			if bv, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
				isBool = bv.IsBoolFlag()
			}
			flags = append(flags, jsonFlag{Name: prefix + "." + f.Name, Bool: isBool, Usage: f.Usage})
		})
	}
	data, _ := json.Marshal(flags)
	fmt.Fprintln(w, string(data))
}

// Run executes one vet unit: parse the cfg, type-check the unit from
// its sources against the export data the go command already built,
// run every analyzer, and print findings. It returns the number of
// findings; the caller turns that into the exit code. The (possibly
// empty) facts output file is always written — the go command records
// it as the unit's build output.
func Run(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("parse %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hydralint has no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	files, err := checker.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, err := checker.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	count := 0
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				count++
				pos := fset.Position(d.Pos)
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, a.Name)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return count, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return count, nil
}
