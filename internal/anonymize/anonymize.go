// Package anonymize implements the client-side Anonymizer of Hydra's
// architecture (§3.1): before schema, metadata and CCs leave the client
// site, identifiers are masked and non-numeric constants are mapped to
// numbers. The mapping is reversible at the client (only the client keeps
// the Mapping object); the vendor works entirely on masked, numeric data,
// which is also why the database summary contains only numeric values.
package anonymize

import (
	"fmt"
	"sort"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/schema"
)

// Dictionary order-preservingly encodes string values of one client column
// into int64 codes, the paper's "non-numeric constants appearing in the
// queries and plans are mapped to numbers". Order preservation keeps range
// predicates meaningful after encoding.
type Dictionary struct {
	codes map[string]int64
	vals  []string
}

// NewDictionary builds a dictionary over the given distinct values.
func NewDictionary(values []string) *Dictionary {
	uniq := map[string]bool{}
	for _, v := range values {
		uniq[v] = true
	}
	vals := make([]string, 0, len(uniq))
	for v := range uniq {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	d := &Dictionary{codes: make(map[string]int64, len(vals)), vals: vals}
	for i, v := range vals {
		d.codes[v] = int64(i)
	}
	return d
}

// Encode returns the code for a value, or an error for unknown values.
func (d *Dictionary) Encode(v string) (int64, error) {
	c, ok := d.codes[v]
	if !ok {
		return 0, fmt.Errorf("anonymize: value %q not in dictionary", v)
	}
	return c, nil
}

// Decode maps a code back to the original value.
func (d *Dictionary) Decode(c int64) (string, error) {
	if c < 0 || int(c) >= len(d.vals) {
		return "", fmt.Errorf("anonymize: code %d out of range", c)
	}
	return d.vals[c], nil
}

// Size returns the number of dictionary entries.
func (d *Dictionary) Size() int { return len(d.vals) }

// Mapping records how identifiers were masked so the client can reverse
// the process on anything the vendor sends back.
type Mapping struct {
	// Table maps original table name → masked name, Col likewise per
	// qualified attribute.
	Table map[string]string
	Col   map[schema.AttrRef]schema.AttrRef

	revTable map[string]string
	revCol   map[schema.AttrRef]schema.AttrRef
}

// Mask produces an anonymized copy of the schema and workload: tables
// become T1, T2, ... and columns C1, C2, ... in deterministic order.
// Domains, row counts, predicates and counts are preserved — they are what
// volumetric similarity is made of — while every client identifier
// disappears.
func Mask(s *schema.Schema, w *cc.Workload) (*schema.Schema, *cc.Workload, *Mapping, error) {
	m := &Mapping{
		Table:    map[string]string{},
		Col:      map[schema.AttrRef]schema.AttrRef{},
		revTable: map[string]string{},
		revCol:   map[schema.AttrRef]schema.AttrRef{},
	}
	names := make([]string, 0, len(s.Tables))
	for _, t := range s.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	for i, n := range names {
		masked := fmt.Sprintf("T%d", i+1)
		m.Table[n] = masked
		m.revTable[masked] = n
	}
	colCounter := 0
	var maskedTables []*schema.Table
	for _, t := range s.Tables {
		nt := &schema.Table{Name: m.Table[t.Name], RowCount: t.RowCount}
		for _, c := range t.Cols {
			colCounter++
			maskedCol := fmt.Sprintf("C%d", colCounter)
			orig := schema.AttrRef{Table: t.Name, Col: c.Name}
			masked := schema.AttrRef{Table: nt.Name, Col: maskedCol}
			m.Col[orig] = masked
			m.revCol[masked] = orig
			nt.Cols = append(nt.Cols, schema.Column{Name: maskedCol, Min: c.Min, Max: c.Max})
		}
		for fi, fk := range t.FKs {
			nt.FKs = append(nt.FKs, schema.ForeignKey{
				FKCol: fmt.Sprintf("F%d_%d", len(maskedTables)+1, fi+1),
				Ref:   m.Table[fk.Ref],
			})
		}
		maskedTables = append(maskedTables, nt)
	}
	ms, err := schema.New(maskedTables...)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("anonymize: masked schema invalid: %w", err)
	}
	mw := &cc.Workload{Name: w.Name + "-masked"}
	for i := range w.CCs {
		c := w.CCs[i]
		nc := cc.CC{Root: m.Table[c.Root], Pred: c.Pred, Count: c.Count, Name: fmt.Sprintf("cc%d", i+1)}
		for _, a := range c.Attrs {
			ma, ok := m.Col[a]
			if !ok {
				return nil, nil, nil, fmt.Errorf("anonymize: cc %s references unknown attribute %s", c.Name, a)
			}
			nc.Attrs = append(nc.Attrs, ma)
		}
		mw.CCs = append(mw.CCs, nc)
	}
	return ms, mw, m, nil
}

// UnmaskTable reverses a masked table name.
func (m *Mapping) UnmaskTable(masked string) (string, error) {
	n, ok := m.revTable[masked]
	if !ok {
		return "", fmt.Errorf("anonymize: unknown masked table %q", masked)
	}
	return n, nil
}

// UnmaskAttr reverses a masked attribute.
func (m *Mapping) UnmaskAttr(masked schema.AttrRef) (schema.AttrRef, error) {
	a, ok := m.revCol[masked]
	if !ok {
		return schema.AttrRef{}, fmt.Errorf("anonymize: unknown masked attribute %s", masked)
	}
	return a, nil
}
