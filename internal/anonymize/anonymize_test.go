package anonymize

import (
	"strings"
	"testing"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

func clientSchema() *schema.Schema {
	return schema.MustNew(
		&schema.Table{Name: "orders_secret", Cols: []schema.Column{
			{Name: "order_priority", Min: 0, Max: 4},
		}, FKs: []schema.ForeignKey{{FKCol: "cust_fk", Ref: "customers_secret"}}, RowCount: 100},
		&schema.Table{Name: "customers_secret", Cols: []schema.Column{
			{Name: "acct_balance", Min: -1000, Max: 100000},
		}, RowCount: 10},
	)
}

func clientWorkload() *cc.Workload {
	return &cc.Workload{Name: "wl", CCs: []cc.CC{
		{Root: "orders_secret", Pred: pred.True(), Count: 100, Name: "size"},
		{Root: "orders_secret",
			Attrs: []schema.AttrRef{{Table: "customers_secret", Col: "acct_balance"}},
			Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.AtLeast(0))}},
			Count: 80, Name: "join"},
	}}
}

func TestMaskHidesIdentifiers(t *testing.T) {
	ms, mw, _, err := Mask(clientSchema(), clientWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range ms.Tables {
		if strings.Contains(tab.Name, "secret") {
			t.Fatalf("table name leaked: %s", tab.Name)
		}
		for _, c := range tab.Cols {
			if strings.Contains(c.Name, "balance") || strings.Contains(c.Name, "priority") {
				t.Fatalf("column name leaked: %s", c.Name)
			}
		}
	}
	for i := range mw.CCs {
		for _, a := range mw.CCs[i].Attrs {
			if strings.Contains(a.Table, "secret") || strings.Contains(a.Col, "acct") {
				t.Fatalf("CC attr leaked: %s", a)
			}
		}
	}
}

func TestMaskPreservesStructure(t *testing.T) {
	s := clientSchema()
	w := clientWorkload()
	ms, mw, _, err := Mask(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Tables) != len(s.Tables) || len(mw.CCs) != len(w.CCs) {
		t.Fatal("structure changed")
	}
	// Domains, counts and row counts must survive: they carry the
	// volumetric information.
	for i, tab := range s.Tables {
		if ms.Tables[i].RowCount != tab.RowCount {
			t.Fatal("row count changed")
		}
		for j, c := range tab.Cols {
			mc := ms.Tables[i].Cols[j]
			if mc.Min != c.Min || mc.Max != c.Max {
				t.Fatal("domain changed")
			}
		}
	}
	// Masked workload must validate against the masked schema.
	if err := mw.Validate(ms); err != nil {
		t.Fatalf("masked workload invalid: %v", err)
	}
}

func TestMappingRoundTrip(t *testing.T) {
	s := clientSchema()
	ms, mw, m, err := Mask(s, clientWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range ms.Tables {
		orig, err := m.UnmaskTable(tab.Name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Table(orig); !ok {
			t.Fatalf("unmasked to unknown table %s", orig)
		}
	}
	for i := range mw.CCs {
		for _, a := range mw.CCs[i].Attrs {
			orig, err := m.UnmaskAttr(a)
			if err != nil {
				t.Fatal(err)
			}
			tab, _ := s.Table(orig.Table)
			if _, ok := tab.Col(orig.Col); !ok {
				t.Fatalf("unmasked to unknown column %s", orig)
			}
		}
	}
	if _, err := m.UnmaskTable("nope"); err == nil {
		t.Fatal("unknown masked table must error")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary([]string{"red", "green", "blue", "green"})
	if d.Size() != 3 {
		t.Fatalf("size = %d", d.Size())
	}
	// Order preservation: blue < green < red alphabetically.
	b, _ := d.Encode("blue")
	g, _ := d.Encode("green")
	r, _ := d.Encode("red")
	if !(b < g && g < r) {
		t.Fatalf("order not preserved: %d %d %d", b, g, r)
	}
	if v, err := d.Decode(g); err != nil || v != "green" {
		t.Fatalf("decode broken: %q %v", v, err)
	}
	if _, err := d.Encode("purple"); err == nil {
		t.Fatal("unknown value must error")
	}
	if _, err := d.Decode(99); err == nil {
		t.Fatal("unknown code must error")
	}
}
