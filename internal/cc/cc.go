// Package cc defines cardinality constraints (CCs), the declarative
// mechanism of Arasu et al. that Hydra consumes (§2.2): each CC states that
// a selection over a relation or PK-FK join expression produced a known
// number of rows at the client. It also implements the "Parser" of the
// architecture diagram (Fig. 2): converting annotated query plans into
// equivalent CCs.
package cc

import (
	"fmt"
	"sort"

	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

// CC is one cardinality constraint ⟨σ, k⟩ over the view of Root: the
// predicate references non-key attributes of Root and of relations Root
// (transitively) references — exactly the attribute closure the
// preprocessor turns into Root's view. Attribute i of Pred refers to
// Attrs[i].
type CC struct {
	// Root is the relation whose view this CC constrains (for a join
	// expression R ⋈ S ⋈ T along FK edges, the relation that references
	// all others, i.e. R).
	Root string
	// Attrs lists the qualified attributes the predicate mentions; DNF
	// attribute ids index into this slice.
	Attrs []schema.AttrRef
	// Pred is the selection predicate; pred.True() for pure size
	// constraints such as |R| = k.
	Pred pred.DNF
	// Count is the output cardinality observed at the client.
	Count int64
	// Name identifies the CC for diagnostics, e.g. "q17/join[2]".
	Name string
}

// IsSize reports whether the CC is a pure relation-size constraint: a
// predicate equivalent to true (at least one term, none constraining any
// attribute). An EMPTY predicate is false — the constraint "no rows match"
// — not a size constraint; conflating the two would let a zero-count
// filter CC overwrite the relation's total.
func (c *CC) IsSize() bool {
	if len(c.Pred.Terms) == 0 {
		return false
	}
	for _, t := range c.Pred.Terms {
		if len(t.Cols) != 0 {
			return false
		}
	}
	return true
}

func (c *CC) String() string {
	if c.IsSize() {
		return fmt.Sprintf("|%s| = %d", c.Root, c.Count)
	}
	return fmt.Sprintf("|σ[%v](%s_view)| = %d", c.Pred, c.Root, c.Count)
}

// Validate checks internal consistency against the schema: the root table
// exists, every attribute exists on its table, every referenced table is in
// the root's transitive FK closure, and the count is non-negative.
func (c *CC) Validate(s *schema.Schema) error {
	root, ok := s.Table(c.Root)
	if !ok {
		return fmt.Errorf("cc %s: unknown root table %q", c.Name, c.Root)
	}
	closure := map[string]bool{c.Root: true}
	for _, t := range s.TransitiveRefs(root) {
		closure[t.Name] = true
	}
	for _, a := range c.Attrs {
		if !closure[a.Table] {
			return fmt.Errorf("cc %s: attribute %s is outside the FK closure of %s", c.Name, a, c.Root)
		}
		tab := s.MustTable(a.Table)
		if _, ok := tab.Col(a.Col); !ok {
			return fmt.Errorf("cc %s: unknown column %s", c.Name, a)
		}
	}
	for _, t := range c.Pred.Terms {
		for id := range t.Cols {
			if id < 0 || id >= len(c.Attrs) {
				return fmt.Errorf("cc %s: predicate references attr id %d outside Attrs", c.Name, id)
			}
		}
	}
	if c.Count < 0 {
		return fmt.Errorf("cc %s: negative count %d", c.Name, c.Count)
	}
	return nil
}

// Workload is a named set of CCs against one schema, the unit shipped from
// client to vendor.
type Workload struct {
	Name string
	CCs  []CC
}

// Validate validates every CC.
func (w *Workload) Validate(s *schema.Schema) error {
	for i := range w.CCs {
		if err := w.CCs[i].Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// ByRoot groups the workload's CCs by root relation, in deterministic
// order.
func (w *Workload) ByRoot() map[string][]*CC {
	out := map[string][]*CC{}
	for i := range w.CCs {
		c := &w.CCs[i]
		out[c.Root] = append(out[c.Root], c)
	}
	return out
}

// Roots returns the sorted relation names appearing as CC roots.
func (w *Workload) Roots() []string {
	seen := map[string]bool{}
	for i := range w.CCs {
		seen[w.CCs[i].Root] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Dedupe removes exact duplicate CCs (same root, predicate shape, count),
// which arise when multiple workload queries share sub-plans. The paper's
// WLc "131 distinct queries → 351 CCs" counts post-dedup constraints.
func (w *Workload) Dedupe() {
	seen := map[string]bool{}
	var out []CC
	for _, c := range w.CCs {
		key := fmt.Sprintf("%s|%v|%v|%d", c.Root, c.Attrs, c.Pred, c.Count)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	w.CCs = out
}

// CountHistogram buckets CC counts by order of magnitude: bucket i holds
// the number of CCs with count in [10^i, 10^(i+1)); bucket 0 also includes
// counts of 0 and 1. This is the presentation of the paper's Figures 9 and
// 16 (cardinality distribution on a log scale).
func (w *Workload) CountHistogram() []int {
	var buckets []int
	for i := range w.CCs {
		k := w.CCs[i].Count
		b := 0
		for k >= 10 {
			k /= 10
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return buckets
}
