package cc

import (
	"testing"

	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

func toySchema() *schema.Schema {
	return schema.MustNew(
		&schema.Table{Name: "S", Cols: []schema.Column{{Name: "A", Min: 0, Max: 100}}, RowCount: 700},
		&schema.Table{Name: "R", FKs: []schema.ForeignKey{{FKCol: "S_fk", Ref: "S"}}, RowCount: 80000},
	)
}

func selCC(root string, attr schema.AttrRef, lo, hi, count int64, name string) CC {
	return CC{
		Root:  root,
		Attrs: []schema.AttrRef{attr},
		Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(lo, hi))}},
		Count: count,
		Name:  name,
	}
}

func TestIsSize(t *testing.T) {
	c := CC{Root: "S", Pred: pred.True(), Count: 700}
	if !c.IsSize() {
		t.Fatal("True predicate should be a size CC")
	}
	s := selCC("S", schema.AttrRef{Table: "S", Col: "A"}, 0, 10, 5, "x")
	if s.IsSize() {
		t.Fatal("selection CC is not a size CC")
	}
}

func TestValidate(t *testing.T) {
	s := toySchema()
	good := selCC("R", schema.AttrRef{Table: "S", Col: "A"}, 0, 10, 5, "join")
	if err := good.Validate(s); err != nil {
		t.Fatalf("join CC through FK closure must validate: %v", err)
	}
	cases := []CC{
		{Root: "Z", Pred: pred.True(), Name: "unknownRoot"},
		selCC("S", schema.AttrRef{Table: "R", Col: "x"}, 0, 1, 1, "outsideClosure"),
		selCC("S", schema.AttrRef{Table: "S", Col: "missing"}, 0, 1, 1, "unknownCol"),
		{Root: "S", Pred: pred.True(), Count: -1, Name: "negCount"},
		{Root: "S", Attrs: nil,
			Pred: pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(3, pred.Range(0, 1))}},
			Name: "badAttrID"},
	}
	for _, c := range cases {
		if err := c.Validate(s); err == nil {
			t.Errorf("CC %s should fail validation", c.Name)
		}
	}
}

func TestDedupe(t *testing.T) {
	a := selCC("S", schema.AttrRef{Table: "S", Col: "A"}, 0, 10, 5, "q1")
	b := selCC("S", schema.AttrRef{Table: "S", Col: "A"}, 0, 10, 5, "q2") // same shape
	c := selCC("S", schema.AttrRef{Table: "S", Col: "A"}, 0, 20, 9, "q3")
	w := &Workload{CCs: []CC{a, b, c}}
	w.Dedupe()
	if len(w.CCs) != 2 {
		t.Fatalf("deduped to %d, want 2", len(w.CCs))
	}
}

func TestByRootAndRoots(t *testing.T) {
	w := &Workload{CCs: []CC{
		{Root: "S", Pred: pred.True(), Count: 1},
		{Root: "R", Pred: pred.True(), Count: 2},
		{Root: "S", Pred: pred.True(), Count: 3},
	}}
	groups := w.ByRoot()
	if len(groups["S"]) != 2 || len(groups["R"]) != 1 {
		t.Fatalf("ByRoot wrong: %v", groups)
	}
	roots := w.Roots()
	if len(roots) != 2 || roots[0] != "R" || roots[1] != "S" {
		t.Fatalf("Roots = %v", roots)
	}
}

func TestCountHistogram(t *testing.T) {
	w := &Workload{CCs: []CC{
		{Count: 0}, {Count: 1}, {Count: 9},
		{Count: 10}, {Count: 99},
		{Count: 1_000_000},
	}}
	h := w.CountHistogram()
	if h[0] != 3 || h[1] != 2 || h[6] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	if len(h) != 7 {
		t.Fatalf("histogram length = %d", len(h))
	}
}

func TestWorkloadValidate(t *testing.T) {
	s := toySchema()
	w := &Workload{CCs: []CC{
		{Root: "S", Pred: pred.True(), Count: 700, Name: "ok"},
		{Root: "Nope", Pred: pred.True(), Count: 1, Name: "bad"},
	}}
	if err := w.Validate(s); err == nil {
		t.Fatal("workload with bad CC must fail validation")
	}
}
