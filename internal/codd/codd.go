// Package codd is the metadata substrate standing in for the CODD tool the
// paper integrates with (§3, [8]): a "dataless" representation of a
// database consisting purely of catalog statistics. It supports capturing
// metadata from a live database, scaling it to arbitrary volumes (the
// §7.4 exabyte experiment constructs optimizer-grade metadata for a 10¹⁸
// byte database no machine could hold), transferring it between sites, and
// verifying metadata matching — the mechanism that forces the vendor's
// query plans to equal the client's.
package codd

import (
	"fmt"
	"math"
	"sort"

	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

// Bucket is one equi-depth histogram bucket over [Lo, Hi] holding Rows
// tuples.
type Bucket struct {
	Lo, Hi int64
	Rows   int64
}

// ColumnStats is the catalog entry for one column.
type ColumnStats struct {
	Min, Max int64
	NDV      int64 // number of distinct values
	Buckets  []Bucket
}

// TableStats is the catalog entry for one table.
type TableStats struct {
	RowCount int64
	Cols     map[string]ColumnStats
}

// Metadata is the full catalog snapshot.
type Metadata struct {
	Tables map[string]TableStats
}

// DefaultBuckets is the histogram resolution used by Capture.
const DefaultBuckets = 32

// Capture scans every relation of the database and builds catalog
// statistics for the schema's non-key columns.
func Capture(db *engine.Database, s *schema.Schema) (*Metadata, error) {
	md := &Metadata{Tables: map[string]TableStats{}}
	for _, t := range s.Tables {
		rel, err := db.Rel(t.Name)
		if err != nil {
			return nil, err
		}
		ts := TableStats{RowCount: rel.NumRows(), Cols: map[string]ColumnStats{}}
		// Collect per-column values; column c of the schema sits at
		// engine-tuple index c+1.
		vals := make([][]int64, len(t.Cols))
		it := rel.Scan()
		for {
			row, ok := it.Next()
			if !ok {
				break
			}
			for c := range t.Cols {
				vals[c] = append(vals[c], row[c+1])
			}
		}
		if err := it.Close(); err != nil {
			return nil, err
		}
		for c, col := range t.Cols {
			ts.Cols[col.Name] = buildColumnStats(vals[c])
		}
		md.Tables[t.Name] = ts
	}
	return md, nil
}

func buildColumnStats(vals []int64) ColumnStats {
	if len(vals) == 0 {
		return ColumnStats{}
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cs := ColumnStats{Min: sorted[0], Max: sorted[len(sorted)-1]}
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			cs.NDV++
		}
	}
	// Equi-depth buckets with distinct boundaries.
	n := len(sorted)
	per := n / DefaultBuckets
	if per == 0 {
		per = 1
	}
	start := 0
	for start < n {
		end := start + per
		if end > n {
			end = n
		}
		hi := sorted[end-1]
		// Extend the bucket through duplicate boundary values so buckets
		// never split a value.
		for end < n && sorted[end] == hi {
			end++
		}
		cs.Buckets = append(cs.Buckets, Bucket{Lo: sorted[start], Hi: hi, Rows: int64(end - start)})
		start = end
	}
	return cs
}

// Scale returns a copy of the metadata with every row count multiplied by
// factor — CODD's "arbitrary metadata scenario" construction used to model
// the exabyte database of §7.4. Histogram bucket masses scale with the
// table; boundaries, NDVs and min/max are preserved (value domains do not
// grow with volume in the paper's model).
func (m *Metadata) Scale(factor int64) *Metadata {
	out := &Metadata{Tables: map[string]TableStats{}}
	for name, ts := range m.Tables {
		nts := TableStats{RowCount: ts.RowCount * factor, Cols: map[string]ColumnStats{}}
		for cn, cs := range ts.Cols {
			ncs := ColumnStats{Min: cs.Min, Max: cs.Max, NDV: cs.NDV}
			for _, b := range cs.Buckets {
				ncs.Buckets = append(ncs.Buckets, Bucket{Lo: b.Lo, Hi: b.Hi, Rows: b.Rows * factor})
			}
			nts.Cols[cn] = ncs
		}
		out.Tables[name] = nts
	}
	return out
}

// Selectivity estimates the fraction of a table's rows satisfying a DNF
// over its own columns (attr id i = Table.Cols[i] name resolution is the
// caller's concern; here sel is computed per named column). Standard
// histogram math with independence across columns and inclusion-exclusion
// avoided by capping disjunct sums at 1.
func (m *Metadata) Selectivity(s *schema.Schema, table string, p pred.DNF) float64 {
	ts, ok := m.Tables[table]
	if !ok || ts.RowCount == 0 {
		return 1
	}
	t := s.MustTable(table)
	total := 0.0
	for _, term := range p.Terms {
		sel := 1.0
		for colID, set := range term.Cols {
			if colID < 0 || colID >= len(t.Cols) {
				continue
			}
			cs, ok := ts.Cols[t.Cols[colID].Name]
			if !ok {
				continue
			}
			sel *= columnSelectivity(cs, set, ts.RowCount)
		}
		total += sel
	}
	if total > 1 {
		total = 1
	}
	return total
}

func columnSelectivity(cs ColumnStats, set pred.Set, rowCount int64) float64 {
	if rowCount == 0 || len(cs.Buckets) == 0 {
		return 1
	}
	var rows float64
	for _, b := range cs.Buckets {
		width := float64(b.Hi-b.Lo) + 1
		covered := 0.0
		for _, iv := range set.Intervals() {
			lo, hi := iv.Lo, iv.Hi
			if lo < b.Lo {
				lo = b.Lo
			}
			if hi > b.Hi {
				hi = b.Hi
			}
			if lo <= hi {
				covered += float64(hi-lo) + 1
			}
		}
		if covered > 0 {
			rows += float64(b.Rows) * covered / width
		}
	}
	return rows / float64(rowCount)
}

// EstimateCard estimates |σ_p(table)| from the catalog.
func (m *Metadata) EstimateCard(s *schema.Schema, table string, p pred.DNF) int64 {
	ts := m.Tables[table]
	return int64(math.Round(m.Selectivity(s, table, p) * float64(ts.RowCount)))
}

// Match verifies that two metadata snapshots describe the same statistics
// — CODD's metadata-matching step that guarantees identical plan choices
// at client and vendor. It returns a descriptive error on the first
// divergence.
func Match(a, b *Metadata) error {
	if len(a.Tables) != len(b.Tables) {
		return fmt.Errorf("codd: table count differs: %d vs %d", len(a.Tables), len(b.Tables))
	}
	for name, ta := range a.Tables {
		tb, ok := b.Tables[name]
		if !ok {
			return fmt.Errorf("codd: table %s missing", name)
		}
		if ta.RowCount != tb.RowCount {
			return fmt.Errorf("codd: table %s row count %d vs %d", name, ta.RowCount, tb.RowCount)
		}
		for cn, ca := range ta.Cols {
			cb, ok := tb.Cols[cn]
			if !ok {
				return fmt.Errorf("codd: column %s.%s missing", name, cn)
			}
			if ca.Min != cb.Min || ca.Max != cb.Max {
				return fmt.Errorf("codd: column %s.%s bounds differ", name, cn)
			}
		}
	}
	return nil
}

// Estimator adapts the metadata to the engine optimizer's callback for one
// query's filters.
func (m *Metadata) Estimator(s *schema.Schema, filters map[string]pred.DNF) func(table string) float64 {
	return func(table string) float64 {
		p, ok := filters[table]
		if !ok {
			return 1
		}
		return m.Selectivity(s, table, p)
	}
}
