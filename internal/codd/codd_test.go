package codd

import (
	"math"
	"testing"

	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

func statsSchema() *schema.Schema {
	return schema.MustNew(&schema.Table{
		Name: "P",
		Cols: []schema.Column{{Name: "v", Min: 0, Max: 999}},
	})
}

func statsDB(s *schema.Schema, n int) *engine.Database {
	db := engine.NewDatabase()
	rel := engine.NewMemRelation("P", engine.ColLayout(s.MustTable("P")))
	for i := 1; i <= n; i++ {
		rel.Append([]int64{int64(i), int64(i % 1000)})
	}
	db.Add(rel)
	return db
}

func TestCaptureBasics(t *testing.T) {
	s := statsSchema()
	db := statsDB(s, 5000)
	md, err := Capture(db, s)
	if err != nil {
		t.Fatal(err)
	}
	ts := md.Tables["P"]
	if ts.RowCount != 5000 {
		t.Fatalf("rowcount = %d", ts.RowCount)
	}
	cs := ts.Cols["v"]
	if cs.Min != 0 || cs.Max != 999 || cs.NDV != 1000 {
		t.Fatalf("col stats wrong: %+v", cs)
	}
	var total int64
	for _, b := range cs.Buckets {
		total += b.Rows
	}
	if total != 5000 {
		t.Fatalf("bucket mass %d != 5000", total)
	}
}

func TestSelectivityUniform(t *testing.T) {
	s := statsSchema()
	db := statsDB(s, 10000)
	md, _ := Capture(db, s)
	// v in [0,499] covers half of a uniform domain.
	p := pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 499))}}
	sel := md.Selectivity(s, "P", p)
	if math.Abs(sel-0.5) > 0.05 {
		t.Fatalf("selectivity = %f, want ≈0.5", sel)
	}
	est := md.EstimateCard(s, "P", p)
	if est < 4500 || est > 5500 {
		t.Fatalf("estimate = %d, want ≈5000", est)
	}
}

func TestSelectivityDisjunctionCapped(t *testing.T) {
	s := statsSchema()
	db := statsDB(s, 1000)
	md, _ := Capture(db, s)
	// Two disjuncts covering everything must cap at 1.
	p := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.Range(0, 999)),
		pred.NewConjunct().With(0, pred.Range(0, 999)),
	}}
	if sel := md.Selectivity(s, "P", p); sel != 1 {
		t.Fatalf("capped selectivity = %f", sel)
	}
}

func TestScalePreservesShape(t *testing.T) {
	s := statsSchema()
	db := statsDB(s, 1000)
	md, _ := Capture(db, s)
	// Exabyte modeling: scale row counts by 10^12 (§7.4).
	big := md.Scale(1_000_000_000_000)
	ts := big.Tables["P"]
	if ts.RowCount != 1000*1_000_000_000_000 {
		t.Fatalf("scaled rowcount = %d", ts.RowCount)
	}
	cs := ts.Cols["v"]
	if cs.Min != 0 || cs.Max != 999 || cs.NDV != md.Tables["P"].Cols["v"].NDV {
		t.Fatal("scaling must preserve domains and NDV")
	}
	// Selectivity estimates are scale-invariant.
	p := pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 99))}}
	a := md.Selectivity(s, "P", p)
	b := big.Selectivity(s, "P", p)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("selectivity changed under scaling: %f vs %f", a, b)
	}
}

func TestMatch(t *testing.T) {
	s := statsSchema()
	db := statsDB(s, 1000)
	md1, _ := Capture(db, s)
	md2, _ := Capture(db, s)
	if err := Match(md1, md2); err != nil {
		t.Fatalf("identical captures must match: %v", err)
	}
	md3 := md1.Scale(10)
	if err := Match(md1, md3); err == nil {
		t.Fatal("scaled metadata must not match original")
	}
}

func TestEstimatorCallback(t *testing.T) {
	s := statsSchema()
	db := statsDB(s, 1000)
	md, _ := Capture(db, s)
	filters := map[string]pred.DNF{
		"P": {Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 99))}},
	}
	est := md.Estimator(s, filters)
	if sel := est("P"); math.Abs(sel-0.1) > 0.05 {
		t.Fatalf("estimator sel = %f, want ≈0.1", sel)
	}
	if sel := est("unfiltered"); sel != 1 {
		t.Fatalf("unfiltered table must estimate 1, got %f", sel)
	}
}

func TestCaptureEmptyTable(t *testing.T) {
	s := statsSchema()
	db := engine.NewDatabase()
	db.Add(engine.NewMemRelation("P", engine.ColLayout(s.MustTable("P"))))
	md, err := Capture(db, s)
	if err != nil {
		t.Fatal(err)
	}
	if md.Tables["P"].RowCount != 0 {
		t.Fatal("empty table should have 0 rows")
	}
	// Selectivity on empty stats must not divide by zero.
	p := pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 9))}}
	_ = md.Selectivity(s, "P", p)
}
