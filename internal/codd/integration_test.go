package codd_test

import (
	"testing"

	"github.com/dsl-repro/hydra/internal/codd"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

// TestMetadataMatchingForcesSamePlan exercises the CODD flow of §3.2/§7.4:
// the client optimizes against captured metadata; the vendor optimizes
// against the scaled copy of that metadata; both must choose the same join
// order, because histogram selectivities are scale-invariant.
func TestMetadataMatchingForcesSamePlan(t *testing.T) {
	s := schema.MustNew(
		&schema.Table{Name: "d1", Cols: []schema.Column{{Name: "a", Min: 0, Max: 999}}, RowCount: 500},
		&schema.Table{Name: "d2", Cols: []schema.Column{{Name: "b", Min: 0, Max: 999}}, RowCount: 500},
		&schema.Table{Name: "f", FKs: []schema.ForeignKey{
			{FKCol: "d1_fk", Ref: "d1"}, {FKCol: "d2_fk", Ref: "d2"},
		}, RowCount: 5000},
	)
	db := engine.NewDatabase()
	mk := func(name string, rows int64, mod int64) {
		rel := engine.NewMemRelation(name, engine.ColLayout(s.MustTable(name)))
		for i := int64(1); i <= rows; i++ {
			rel.Append([]int64{i, i % mod})
		}
		db.Add(rel)
	}
	mk("d1", 500, 1000)
	mk("d2", 500, 1000)
	f := engine.NewMemRelation("f", engine.ColLayout(s.MustTable("f")))
	for i := int64(1); i <= 5000; i++ {
		f.Append([]int64{i, i%500 + 1, (i*7)%500 + 1})
	}
	db.Add(f)

	md, err := codd.Capture(db, s)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{
		Name: "q",
		Root: "f",
		Joins: []engine.JoinStep{
			{Table: "d1", Via: "f"},
			{Table: "d2", Via: "f"},
		},
		Filters: map[string]pred.DNF{
			// d2's filter is far more selective, so both sites should
			// probe d2 first.
			"d1": {Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 899))}},
			"d2": {Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 9))}},
		},
	}
	clientPlan := engine.Optimize(q, md.Estimator(s, q.Filters))
	vendorMD := md.Scale(1_000_000) // exabyte-style scaling
	vendorPlan := engine.Optimize(q, vendorMD.Estimator(s, q.Filters))
	if clientPlan.Joins[0].Table != "d2" {
		t.Fatalf("client should probe d2 first, got %v", clientPlan.Joins)
	}
	for i := range clientPlan.Joins {
		if clientPlan.Joins[i] != vendorPlan.Joins[i] {
			t.Fatalf("plans diverge at step %d: %v vs %v", i, clientPlan.Joins, vendorPlan.Joins)
		}
	}
	// Metadata matching (identity check) must pass for the copy, fail for
	// the scaled version.
	md2, _ := codd.Capture(db, s)
	if err := codd.Match(md, md2); err != nil {
		t.Fatalf("identical metadata must match: %v", err)
	}
	if err := codd.Match(md, vendorMD); err == nil {
		t.Fatal("scaled metadata must not match the original")
	}
}

// TestAQPSameOnForcedPlan checks that executing the same forced plan twice
// (regardless of optimizer input) yields identical annotations — plans are
// deterministic values.
func TestAQPSameOnForcedPlan(t *testing.T) {
	s := schema.MustNew(
		&schema.Table{Name: "d", Cols: []schema.Column{{Name: "a", Min: 0, Max: 9}}, RowCount: 10},
		&schema.Table{Name: "f", FKs: []schema.ForeignKey{{FKCol: "d_fk", Ref: "d"}}, RowCount: 100},
	)
	db := engine.NewDatabase()
	d := engine.NewMemRelation("d", engine.ColLayout(s.MustTable("d")))
	for i := int64(1); i <= 10; i++ {
		d.Append([]int64{i, i % 10})
	}
	fr := engine.NewMemRelation("f", engine.ColLayout(s.MustTable("f")))
	for i := int64(1); i <= 100; i++ {
		fr.Append([]int64{i, i%10 + 1})
	}
	db.Add(d)
	db.Add(fr)
	q := &engine.Query{
		Name:  "q",
		Root:  "f",
		Joins: []engine.JoinStep{{Table: "d", Via: "f"}},
		Filters: map[string]pred.DNF{
			"d": {Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 4))}},
		},
	}
	a1, err := engine.Execute(db, s, q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := engine.Execute(db, s, q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.JoinOut[0] != a2.JoinOut[0] || a1.FilterOut["d"] != a2.FilterOut["d"] {
		t.Fatal("forced plan must annotate deterministically")
	}
}
