package core

import (
	"testing"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/lp"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/schema"
)

// personView builds the §3.2 Person example as a preprocessed view.
func personView(t *testing.T) *preprocess.View {
	t.Helper()
	s := schema.MustNew(&schema.Table{
		Name: "Person",
		Cols: []schema.Column{
			{Name: "age", Min: 0, Max: 99},
			{Name: "salary", Min: 0, Max: 99999},
		},
		RowCount: 8000,
	})
	age := schema.AttrRef{Table: "Person", Col: "age"}
	sal := schema.AttrRef{Table: "Person", Col: "salary"}
	w := &cc.Workload{CCs: []cc.CC{
		{Root: "Person", Pred: pred.True(), Count: 8000, Name: "total"},
		{Root: "Person", Attrs: []schema.AttrRef{age, sal},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.AtMost(39)).With(1, pred.AtMost(39999)),
			}}, Count: 1000, Name: "cc1"},
		{Root: "Person", Attrs: []schema.AttrRef{age, sal},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(20000, 59999)),
			}}, Count: 2000, Name: "cc2"},
	}}
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		t.Fatal(err)
	}
	return views["Person"]
}

func TestFormulatePersonMatchesPaper(t *testing.T) {
	f := Formulate(personView(t))
	// Figure 3b/4b: exactly 4 region variables, one sub-view.
	if f.Stats.Vars != 4 {
		t.Fatalf("vars = %d, want 4 (paper Fig. 3b)", f.Stats.Vars)
	}
	if f.Stats.SubViews != 1 {
		t.Fatalf("sub-views = %d, want 1", f.Stats.SubViews)
	}
	// Rows: 2 CC rows + 1 total row (paper Fig. 4b).
	if f.Stats.CCRows != 2 || f.Stats.Rows != 3 {
		t.Fatalf("ccRows=%d rows=%d, want 2/3", f.Stats.CCRows, f.Stats.Rows)
	}
}

func checkPersonSolution(t *testing.T, sol *ViewSolution) {
	t.Helper()
	// Verify CC satisfaction directly on region counts.
	v := personView(t)
	for ci, vcc := range v.CCs {
		var got int64
		for _, sv := range sol.SubViews {
			local := localIndex(sv.Attrs)
			p := vcc.Pred.Remap(local)
			for _, r := range sv.Rows {
				if p.Eval(r.Rep) {
					got += r.Count
				}
			}
			break // single sub-view covers everything here
		}
		if got != vcc.Count {
			t.Errorf("cc %d: got %d want %d", ci, got, vcc.Count)
		}
	}
	var total int64
	for _, r := range sol.SubViews[0].Rows {
		total += r.Count
	}
	if total != 8000 {
		t.Errorf("total mass %d, want 8000", total)
	}
}

func TestSolveJoint(t *testing.T) {
	sol, err := Formulate(personView(t)).Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkPersonSolution(t, sol)
}

func TestSolveSequential(t *testing.T) {
	sol, err := Formulate(personView(t)).SolveSequential(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.SequentialFallback {
		t.Fatal("single-sub-view case must not need the joint fallback")
	}
	checkPersonSolution(t, sol)
}

// multiSubViewView builds a view whose CCs split into two overlapping
// sub-views {A,B} and {B,C}, exercising marker atoms, consistency rows and
// the align invariant.
func multiSubViewView(t *testing.T) *preprocess.View {
	t.Helper()
	s := schema.MustNew(&schema.Table{
		Name: "V",
		Cols: []schema.Column{
			{Name: "A", Min: 0, Max: 9}, {Name: "B", Min: 0, Max: 9}, {Name: "C", Min: 0, Max: 9},
		},
		RowCount: 100,
	})
	ref := func(c string) schema.AttrRef { return schema.AttrRef{Table: "V", Col: c} }
	w := &cc.Workload{CCs: []cc.CC{
		{Root: "V", Pred: pred.True(), Count: 100, Name: "total"},
		{Root: "V", Attrs: []schema.AttrRef{ref("A"), ref("B")},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(0, 4)).With(1, pred.Range(0, 4)),
			}}, Count: 30, Name: "ab"},
		{Root: "V", Attrs: []schema.AttrRef{ref("B"), ref("C")},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(0, 4)).With(1, pred.Range(5, 9)),
			}}, Count: 20, Name: "bc"},
		{Root: "V", Attrs: []schema.AttrRef{ref("B")},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(0, 4)),
			}}, Count: 45, Name: "b"},
	}}
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		t.Fatal(err)
	}
	return views["V"]
}

func TestMultiSubViewConsistency(t *testing.T) {
	f := Formulate(multiSubViewView(t))
	if f.Stats.SubViews != 2 {
		t.Fatalf("sub-views = %d, want 2 ({A,B} and {B,C})", f.Stats.SubViews)
	}
	if f.Stats.ConsistencyRows == 0 {
		t.Fatal("expected consistency rows for the shared attribute B")
	}
	for _, solver := range []string{"joint", "sequential"} {
		var sol *ViewSolution
		var err error
		if solver == "joint" {
			sol, err = Formulate(multiSubViewView(t)).Solve(Options{})
		} else {
			sol, err = Formulate(multiSubViewView(t)).SolveSequential(Options{})
		}
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		// Shared-attribute marginals must agree between the two sub-view
		// solutions per atom of B.
		masses := make([]map[int64]int64, len(sol.SubViews))
		for si, sv := range sol.SubViews {
			masses[si] = map[int64]int64{}
			bLocal := -1
			for i, a := range sv.Attrs {
				if personAttrIs(t, f, a, "B") {
					bLocal = i
				}
			}
			if bLocal == -1 {
				t.Fatalf("%s: sub-view %d lacks B", solver, si)
			}
			for _, r := range sv.Rows {
				masses[si][r.Rep[bLocal]] += r.Count
			}
		}
		for bv, m := range masses[0] {
			if masses[1][bv] != m {
				t.Fatalf("%s: marginal mismatch at B=%d: %d vs %d", solver, bv, m, masses[1][bv])
			}
		}
	}
}

func personAttrIs(t *testing.T, f *Formulation, attr int, col string) bool {
	t.Helper()
	return f.View.Attrs[attr].Col == col
}

func TestSequentialMatchesJointOnCCs(t *testing.T) {
	v := multiSubViewView(t)
	for _, opts := range []Options{{Joint: true}, {}} {
		sol, err := FormulateAndSolve(v, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Every CC must be satisfied by the sub-view that covers it.
		for ci, vcc := range v.CCs {
			satisfied := false
			for _, sv := range sol.SubViews {
				local := map[int]int{}
				covered := true
				for i, a := range sv.Attrs {
					local[a] = i
				}
				for _, a := range vcc.Pred.Attrs() {
					if _, ok := local[a]; !ok {
						covered = false
						break
					}
				}
				if !covered {
					continue
				}
				p := vcc.Pred.Remap(local)
				var got int64
				for _, r := range sv.Rows {
					if p.Eval(r.Rep) {
						got += r.Count
					}
				}
				if got == vcc.Count {
					satisfied = true
				} else {
					t.Errorf("joint=%v cc %d (%s): got %d want %d", opts.Joint, ci, vcc.Name, got, vcc.Count)
				}
			}
			if !satisfied {
				t.Errorf("joint=%v cc %d not satisfied in any covering sub-view", opts.Joint, ci)
			}
		}
	}
}

// conflictView builds a view whose clique-tree structure makes a greedy
// per-sub-view solve likely to paint later sub-views into corners: CC1
// lives in clique {x,z}, CC2 in {x,y}, and x's consistency atoms leave the
// first clique free to allocate mass where the second cannot use it. The
// sequential solver must converge regardless (via group merging).
func conflictView(t *testing.T, k int64) *preprocess.View {
	t.Helper()
	s := schema.MustNew(&schema.Table{
		Name: "W",
		Cols: []schema.Column{
			{Name: "x", Min: 0, Max: 99},
			{Name: "y", Min: 0, Max: 99},
			{Name: "z", Min: 0, Max: 99},
		},
		RowCount: 100,
	})
	ref := func(c string) schema.AttrRef { return schema.AttrRef{Table: "W", Col: c} }
	w := &cc.Workload{CCs: []cc.CC{
		{Root: "W", Pred: pred.True(), Count: 100, Name: "total"},
		{Root: "W", Attrs: []schema.AttrRef{ref("x"), ref("z")},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(0, 9)).With(1, pred.Range(0, 49)),
			}}, Count: 40, Name: "xz"},
		{Root: "W", Attrs: []schema.AttrRef{ref("x"), ref("y")},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(5, 19)).With(1, pred.Range(0, 49)),
			}}, Count: k, Name: "xy"},
	}}
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		t.Fatal(err)
	}
	return views["W"]
}

func TestSequentialConvergesOnConflict(t *testing.T) {
	for _, k := range []int64{10, 35, 60, 90} {
		v := conflictView(t, k)
		sol, err := FormulateAndSolve(v, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if sol.Stats.Soft {
			t.Fatalf("k=%d: feasible system must not need soft solve", k)
		}
		// Verify both CCs exactly against the covering sub-views.
		for ci, vcc := range v.CCs {
			for _, sv := range sol.SubViews {
				local := map[int]int{}
				for i, a := range sv.Attrs {
					local[a] = i
				}
				covered := true
				for _, a := range vcc.Pred.Attrs() {
					if _, ok := local[a]; !ok {
						covered = false
					}
				}
				if !covered {
					continue
				}
				p := vcc.Pred.Remap(local)
				var got int64
				for _, r := range sv.Rows {
					if p.Eval(r.Rep) {
						got += r.Count
					}
				}
				if got != vcc.Count {
					t.Errorf("k=%d cc %d: got %d want %d (merges=%d fallback=%v)",
						k, ci, got, vcc.Count, sol.Stats.SequentialMerges, sol.Stats.SequentialFallback)
				}
			}
		}
	}
}

func TestEmptyView(t *testing.T) {
	s := schema.MustNew(&schema.Table{Name: "E", RowCount: 42})
	views, err := preprocess.BuildViews(s, &cc.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := FormulateAndSolve(views["E"], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.SubViews) != 0 && len(sol.SubViews[0].Attrs) != 0 {
		t.Fatalf("empty view should have trivial decomposition: %+v", sol.SubViews)
	}
}

func TestZeroTotal(t *testing.T) {
	s := schema.MustNew(&schema.Table{
		Name: "Z", Cols: []schema.Column{{Name: "x", Min: 0, Max: 9}}, RowCount: 0,
	})
	w := &cc.Workload{CCs: []cc.CC{
		{Root: "Z", Pred: pred.True(), Count: 0, Name: "size"},
	}}
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := FormulateAndSolve(views["Z"], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sv := range sol.SubViews {
		if len(sv.Rows) != 0 {
			t.Fatal("zero-total view must have no populated regions")
		}
	}
}

func TestSubViewInputsExported(t *testing.T) {
	inputs := SubViewInputs(multiSubViewView(t))
	if len(inputs) != 2 {
		t.Fatalf("inputs = %d", len(inputs))
	}
	for _, in := range inputs {
		if len(in.Cons) != len(in.CCIdx) {
			t.Fatal("Cons and CCIdx must align")
		}
		markers := 0
		for _, ci := range in.CCIdx {
			if ci == -1 {
				markers++
			}
		}
		if markers == 0 {
			t.Fatal("shared attribute B should contribute marker atoms")
		}
	}
}

func TestSolveStrictInfeasible(t *testing.T) {
	v := personView(t)
	v.CCs[0].Count = 100000 // cc1 asks for more than Total
	v.Total = 500
	_, err := FormulateAndSolve(v, Options{NoSoftFallback: true, Joint: true})
	if err == nil {
		t.Fatal("strict mode must surface infeasibility")
	}
	// Soft mode produces a best-effort solution.
	sol, err := FormulateAndSolve(v, Options{Joint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Soft || sol.Stats.SoftResidual == 0 {
		t.Fatal("soft solve should record a residual")
	}
}

var _ = lp.Auto // keep the import for option literals in future edits
