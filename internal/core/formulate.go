// Package core implements Hydra's LP Formulator (§4, the thick-bordered
// green box of Fig. 2): for each view it decomposes the attribute space
// into sub-views (maximal cliques of the chordal view-graph), partitions
// every sub-view's domain into regions, assigns one LP variable per region,
// encodes every in-scope CC plus per-sub-view totals plus cross-sub-view
// marginal-consistency rows, and solves the resulting integer program.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/dsl-repro/hydra/internal/lp"
	"github.com/dsl-repro/hydra/internal/partition"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/viewgraph"
)

// Options configures formulation and solving.
type Options struct {
	// Backend selects the LP arithmetic (lp.Auto by default).
	Backend lp.Backend
	// MaxNodes bounds branch and bound (lp.DefaultMaxNodes when 0).
	MaxNodes int
	// NoSoftFallback disables the L1 soft solve on infeasible input;
	// FormulateAndSolve then returns the infeasibility error instead.
	NoSoftFallback bool
	// Joint forces the single joint LP per view instead of the default
	// sequential (per-sub-view) decomposition. Kept for the
	// joint-vs-sequential ablation; results are equivalent, the joint
	// solve is just slower on wide views.
	Joint bool
}

// RegionCount is one populated region of a sub-view solution.
type RegionCount struct {
	Region partition.Region
	// Rep is the region's representative point, aligned with the owning
	// SubViewSolution's Attrs.
	Rep []int64
	// Count is the LP-assigned number of tuples in the region.
	Count int64
}

// SubViewSolution is the solved tuple distribution of one sub-view.
type SubViewSolution struct {
	// Attrs are the view-attribute ids covered by this sub-view, sorted.
	Attrs []int
	// Rows are the populated regions (zero-count regions are dropped).
	Rows []RegionCount
	// AllRegions is the total region count before dropping zeros — the
	// LP-variable tally the paper reports in Figures 12 and 17.
	AllRegions int
}

// ViewStats carries the complexity and accuracy metrics the evaluation
// section reports per view.
type ViewStats struct {
	Vars            int           // LP variables (regions across sub-views)
	Rows            int           // LP rows
	CCRows          int           // rows encoding CCs
	ConsistencyRows int           // marginal-equality rows
	SubViews        int           // clique count
	FillEdges       int           // chordal completion edges added
	SolveTime       time.Duration // LP solve wall time
	Nodes           int           // branch-and-bound nodes
	Pivots          int           // simplex pivots
	SoftResidual    int64         // total |violation| if soft solve was used
	Soft            bool          // true when the soft fallback produced the solution
	// SequentialFallback is true when decomposed solving failed and the
	// joint LP produced the solution instead.
	SequentialFallback bool
	// SequentialMerges counts sub-view group fusions performed by the
	// sequential solver before it converged.
	SequentialMerges int
}

// ViewSolution is the complete solved view: its sub-views in merge order
// plus diagnostics.
type ViewSolution struct {
	View *preprocess.View
	// SubViews are listed in clique-tree preorder (the §5.1.1 merge
	// order): every sub-view intersects the union of its predecessors
	// exactly in its clique-tree separator.
	SubViews []SubViewSolution
	Stats    ViewStats
}

// Formulation is the intermediate LP form, exposed so the experiment
// harness can report complexity (Fig. 12/13) without solving.
type Formulation struct {
	View    *preprocess.View
	Problem *lp.Problem
	// cliques[i] lists view-attr ids of sub-view i, sorted; order follows
	// the clique-tree preorder.
	cliques [][]int
	// regions[i] are sub-view i's regions; variable ids are assigned
	// contiguously per sub-view starting at varBase[i].
	regions [][]partition.Region
	varBase []int
	// ccBits[i] maps position j of sub-view i's label bitset to the
	// index of the ViewCC it encodes, or -1 for marker constraints.
	ccBits [][]int
	// edges lists clique-tree edges as (child, parent) positions in
	// preorder, with the shared attributes (separator); cellKeys[i][r] is
	// region r of sub-view i's atom-cell key over each separator it
	// participates in, keyed by separator signature.
	edges []svEdge
	atoms map[int][]pred.Interval
	Stats ViewStats
}

// svEdge is a clique-tree edge in preorder positions.
type svEdge struct {
	child, parent int
	sep           []int
}

// Strategy partitions one sub-view's domain into labeled regions. Hydra
// uses RegionStrategy (the paper's contribution); the DataSynth baseline
// substitutes GridStrategy. A strategy may fail (e.g. a grid too large to
// enumerate), which Formulate surfaces via the Formulation's Err field —
// the Fig. 13 solver "crash".
type Strategy func(space []pred.Set, cons []pred.DNF) ([]partition.Region, error)

// RegionStrategy is Hydra's optimal region partitioning, guarded by the
// default refinement budget so adversarial constraint sets fail with a
// clear error instead of exhausting memory. It uses the incremental
// label-merged evaluation order, which produces the identical optimal
// partition as the paper's Algorithms 1+2 while keeping intermediate state
// proportional to the answer.
func RegionStrategy(space []pred.Set, cons []pred.DNF) ([]partition.Region, error) {
	return partition.OptimalIncremental(space, cons, partition.DefaultMaxBlocks)
}

// Formulate builds the per-view LP using region partitioning. It follows
// §4 exactly: decompose the view-graph into sub-views; inject marker atoms
// for attributes shared across sub-views; partition each sub-view's domain
// optimally; emit CC rows, per-sub-view totals, and consistency rows.
//
// It panics if the refinement budget is exceeded; use FormulateWith to
// handle that case as an error.
func Formulate(v *preprocess.View) *Formulation {
	f, err := FormulateWith(v, RegionStrategy)
	if err != nil {
		panic(err)
	}
	return f
}

// SubViewInput is one sub-view's partitioning input: its attributes (view
// ids), its domain, and the labeled constraints to partition against (the
// in-scope CC predicates followed by marker atoms; CCIdx maps each
// constraint to the view CC it encodes, or -1 for markers). It is exported
// so alternative partitioning strategies — notably the DataSynth grid
// baseline — can analyze complexity without running a strategy.
type SubViewInput struct {
	Attrs []int
	Space []pred.Set
	Cons  []pred.DNF
	CCIdx []int
}

// MergeFloorThreshold controls the adaptive decomposition policy: the
// maximal-clique decomposition guarantees at least ∏ atoms(d) regions per
// clique over its shared dimensions d (every consistency cell needs its
// own variable). When that floor, summed over cliques, exceeds this
// threshold, the decomposition is costing more than it saves and the view
// is re-decomposed into the connected components of its view-graph
// instead: components share no attributes, so no marker atoms and no
// consistency rows are needed at all, and the region count collapses back
// to the number of distinct constraint-satisfaction labels.
//
// The paper's workloads (few, lightly-overlapping CCs per view) sit far
// below the threshold and use the §3.2 decomposition unchanged; densely
// overlapping workloads trigger the merge. Exposed as a variable so the
// decomposition-policy ablation bench can force either behaviour.
var MergeFloorThreshold = 20_000

// SubViewInputs decomposes the view and returns the per-sub-view
// partitioning inputs in merge order.
func SubViewInputs(v *preprocess.View) []SubViewInput {
	inputs, _, _ := subViewInputs(v)
	return inputs
}

func subViewInputs(v *preprocess.View) ([]SubViewInput, decomposed, map[int][]pred.Interval) {
	n := len(v.Attrs)
	g := viewgraph.New(n)
	for _, vcc := range v.CCs {
		g.AddClique(vcc.Pred.Attrs())
	}
	tree := vgDecompose(g)

	// Order cliques by the RIP merge order.
	cliques := make([][]int, 0, len(tree.t.Cliques))
	for _, ci := range tree.t.Order {
		cliques = append(cliques, tree.t.Cliques[ci])
	}

	// Shared attributes and their atoms.
	occur, atoms := sharedAtoms(v, cliques)

	// Adaptive policy. The maximal-clique decomposition pays a region
	// floor of ∏ atoms(d) per clique over shared dimensions; merging a
	// connected component into one sub-view avoids all markers but pays
	// the label product of its (near-)independent constraints, which can
	// be exponential. Neither dominates, so when the clique floor is
	// painful we TRY the merged form under a budget proportional to that
	// floor and keep whichever side succeeds.
	if MergeFloorThreshold > 0 {
		if floor := regionFloor(cliques, occur, atoms); floor > MergeFloorThreshold {
			comps := g.Components()
			budget := 4 * floor
			if budget > partition.DefaultMaxBlocks {
				budget = partition.DefaultMaxBlocks
			}
			if mergedComponentsViable(v, comps, budget) {
				tree = forestDecomposed(comps)
				cliques = comps
				occur, atoms = sharedAtoms(v, cliques)
			}
		}
	}

	inputs := make([]SubViewInput, 0, len(cliques))
	for _, cl := range cliques {
		in := SubViewInput{Attrs: cl}
		local := make(map[int]int, len(cl))
		in.Space = make([]pred.Set, len(cl))
		for i, a := range cl {
			local[a] = i
			in.Space[i] = v.Domains[a]
		}
		for ci, vcc := range v.CCs {
			if coveredBy(vcc.Pred.Attrs(), cl) {
				in.Cons = append(in.Cons, vcc.Pred.Remap(local))
				in.CCIdx = append(in.CCIdx, ci)
			}
		}
		for i, a := range cl {
			if ats, ok := atoms[a]; ok {
				for _, m := range partition.MarkerDNFs(i, ats) {
					in.Cons = append(in.Cons, m)
					in.CCIdx = append(in.CCIdx, -1)
				}
			}
		}
		inputs = append(inputs, in)
	}
	return inputs, tree, atoms
}

// FormulateWith is Formulate parameterized by the partitioning strategy.
func FormulateWith(v *preprocess.View, strat Strategy) (*Formulation, error) {
	inputs, tree, atoms := subViewInputs(v)
	f := &Formulation{View: v, Problem: &lp.Problem{}, atoms: atoms}
	f.Stats.FillEdges = tree.fill
	f.Stats.SubViews = len(inputs)

	cliques := make([][]int, len(inputs))
	for i, in := range inputs {
		cliques[i] = in.Attrs
	}
	f.cliques = cliques

	// Partition each sub-view.
	for _, in := range inputs {
		regions, err := strat(in.Space, in.Cons)
		if err != nil {
			return nil, fmt.Errorf("core: view %s sub-view %v: %w", v.Table.Name, in.Attrs, err)
		}
		f.varBase = append(f.varBase, f.Problem.NumVars)
		f.Problem.NumVars += len(regions)
		f.regions = append(f.regions, regions)
		f.ccBits = append(f.ccBits, in.CCIdx)
	}
	f.Stats.Vars = f.Problem.NumVars

	// CC rows: a CC is encoded in every sub-view covering it (§4: "every
	// CC that is within its scope"); redundant copies stay consistent
	// through the marginal rows below.
	for si := range cliques {
		for bit, ci := range f.ccBits[si] {
			if ci == -1 {
				continue
			}
			var vars []int
			for ri, r := range f.regions[si] {
				if r.Label.Has(bit) {
					vars = append(vars, f.varBase[si]+ri)
				}
			}
			f.Problem.AddEq(vars, v.CCs[ci].Count, fmt.Sprintf("%s@sv%d", v.CCs[ci].Name, si))
			f.Stats.CCRows++
		}
	}
	// Per-sub-view totals.
	for si := range cliques {
		vars := make([]int, len(f.regions[si]))
		for ri := range vars {
			vars[ri] = f.varBase[si] + ri
		}
		f.Problem.AddEq(vars, v.Total, fmt.Sprintf("total@sv%d", si))
	}
	// Consistency rows along clique-tree edges: equate atom-cell marginals
	// over the separator.
	for oi, ci := range tree.t.Order {
		pi := tree.t.Parent[ci]
		if pi == -1 {
			continue
		}
		// Positions within f's ordered slices.
		childPos := oi
		parentPos := tree.orderPos[pi]
		sep := viewgraph.Intersect(tree.t.Cliques[ci], tree.t.Cliques[pi])
		if len(sep) == 0 {
			continue
		}
		f.edges = append(f.edges, svEdge{child: childPos, parent: parentPos, sep: sep})
		childCells := cellGroups(f, childPos, sep, atoms)
		parentCells := cellGroups(f, parentPos, sep, atoms)
		keys := map[string]bool{}
		for k := range childCells {
			keys[k] = true
		}
		for k := range parentCells {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			var entries []lp.Entry
			for _, vr := range childCells[k] {
				entries = append(entries, lp.Entry{Var: vr, Coef: 1})
			}
			for _, vr := range parentCells[k] {
				entries = append(entries, lp.Entry{Var: vr, Coef: -1})
			}
			f.Problem.AddRow(lp.Row{Entries: entries, Rel: lp.EQ, RHS: 0,
				Name: fmt.Sprintf("cons@sv%d~sv%d:%x", childPos, parentPos, k)})
			f.Stats.ConsistencyRows++
		}
	}
	f.Stats.Rows = len(f.Problem.Rows)
	return f, nil
}

// cellGroups buckets sub-view si's variables by their atom-cell key over
// the separator dims (view-attr ids).
func cellGroups(f *Formulation, si int, sep []int, atoms map[int][]pred.Interval) map[string][]int {
	cl := f.cliques[si]
	local := make(map[int]int, len(cl))
	for i, a := range cl {
		local[a] = i
	}
	out := map[string][]int{}
	for ri, r := range f.regions[si] {
		rep := r.Rep()
		key := make([]byte, 0, len(sep)*4)
		for _, a := range sep {
			v := rep[local[a]]
			ai := atomIndex(atoms[a], v)
			key = append(key, byte(ai), byte(ai>>8), byte(ai>>16), byte(ai>>24))
		}
		out[string(key)] = append(out[string(key)], f.varBase[si]+ri)
	}
	return out
}

func atomIndex(atoms []pred.Interval, v int64) int {
	lo, hi := 0, len(atoms)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case v < atoms[mid].Lo:
			hi = mid - 1
		case v > atoms[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

func coveredBy(attrs, clique []int) bool {
	j := 0
	for _, a := range attrs {
		for j < len(clique) && clique[j] < a {
			j++
		}
		if j == len(clique) || clique[j] != a {
			return false
		}
		j++
	}
	return true
}

type decomposed struct {
	t        *viewgraph.CliqueTree
	fill     int
	orderPos map[int]int // clique index → position in Order
}

func vgDecompose(g *viewgraph.Graph) decomposed {
	peo, fill := g.Chordalize()
	cliques := viewgraph.MaxCliques(g, peo)
	t := viewgraph.NewCliqueTree(cliques)
	pos := make(map[int]int, len(t.Order))
	for i, ci := range t.Order {
		pos[ci] = i
	}
	return decomposed{t: t, fill: fill, orderPos: pos}
}

// forestDecomposed wraps attribute components as a decomposition with no
// tree edges (components share nothing).
func forestDecomposed(comps [][]int) decomposed {
	t := &viewgraph.CliqueTree{Cliques: comps, Parent: make([]int, len(comps))}
	pos := make(map[int]int, len(comps))
	for i := range comps {
		t.Parent[i] = -1
		t.Order = append(t.Order, i)
		pos[i] = i
	}
	return decomposed{t: t, orderPos: pos}
}

// sharedAtoms computes attribute occurrence counts across sub-views and
// the consistency atoms of every shared attribute.
func sharedAtoms(v *preprocess.View, cliques [][]int) ([]int, map[int][]pred.Interval) {
	occur := make([]int, len(v.Attrs))
	for _, c := range cliques {
		for _, a := range c {
			occur[a]++
		}
	}
	var allConjuncts []pred.Conjunct
	for _, vcc := range v.CCs {
		allConjuncts = append(allConjuncts, vcc.Pred.Terms...)
	}
	atoms := make(map[int][]pred.Interval)
	for a := range occur {
		if occur[a] > 1 {
			atoms[a] = partition.Atoms(v.Domains[a], allConjuncts, a)
		}
	}
	return occur, atoms
}

// mergedComponentsViable trial-partitions each connected component as a
// single sub-view under a block budget, reporting whether every component
// stays within it. The trial duplicates the later real partitioning work,
// but only on views whose clique decomposition is already known to be
// expensive.
func mergedComponentsViable(v *preprocess.View, comps [][]int, budget int) bool {
	for _, comp := range comps {
		local := make(map[int]int, len(comp))
		space := make([]pred.Set, len(comp))
		for i, a := range comp {
			local[a] = i
			space[i] = v.Domains[a]
		}
		var cons []pred.DNF
		for _, vcc := range v.CCs {
			if coveredBy(vcc.Pred.Attrs(), comp) {
				cons = append(cons, vcc.Pred.Remap(local))
			}
		}
		if len(cons) == 0 {
			continue
		}
		if _, err := partition.OptimalIncremental(space, cons, budget); err != nil {
			return false
		}
	}
	return true
}

// regionFloor lower-bounds the total region count of a decomposition: each
// clique needs at least one region per combination of consistency atoms
// over its shared dimensions.
func regionFloor(cliques [][]int, occur []int, atoms map[int][]pred.Interval) int {
	const cap = 1 << 40
	total := 0
	for _, cl := range cliques {
		f := 1
		for _, a := range cl {
			if occur[a] > 1 {
				f *= len(atoms[a])
				if f > cap {
					return cap
				}
			}
		}
		total += f
		if total > cap {
			return cap
		}
	}
	return total
}

// Solve runs the integer solver over the formulation and extracts the
// per-sub-view solutions. On infeasible or budget-exhausted systems it
// falls back to the L1-minimal soft solution (unless disabled), recording
// the residual so validation reports it as CC error rather than failure.
func (f *Formulation) Solve(opts Options) (*ViewSolution, error) {
	start := time.Now()
	x, err := f.solveVector(opts)
	if err != nil {
		return nil, err
	}
	f.Stats.SolveTime = time.Since(start)

	vs := &ViewSolution{View: f.View, Stats: f.Stats}
	for si, cl := range f.cliques {
		sv := SubViewSolution{Attrs: cl, AllRegions: len(f.regions[si])}
		for ri, r := range f.regions[si] {
			cnt := x[f.varBase[si]+ri]
			if cnt <= 0 {
				continue
			}
			sv.Rows = append(sv.Rows, RegionCount{Region: r, Rep: r.Rep(), Count: cnt})
		}
		vs.SubViews = append(vs.SubViews, sv)
	}
	vs.Stats = f.Stats
	return vs, nil
}

func (f *Formulation) solveVector(opts Options) ([]int64, error) {
	sol, err := lp.SolveInteger(f.Problem, lp.IntOptions{Backend: opts.Backend, MaxNodes: opts.MaxNodes})
	if err == nil {
		f.Stats.Nodes, f.Stats.Pivots = sol.Nodes, sol.Pivots
		return sol.X, nil
	}
	if errors.Is(err, lp.ErrNodeLimit) && sol != nil && sol.Exact {
		f.Stats.Nodes, f.Stats.Pivots = sol.Nodes, sol.Pivots
		return sol.X, nil
	}
	if opts.NoSoftFallback {
		return nil, fmt.Errorf("core: view %s: %w", f.View.Table.Name, err)
	}
	soft, serr := lp.SolveSoft(f.Problem, opts.Backend)
	if serr != nil {
		return nil, fmt.Errorf("core: view %s: hard solve failed (%v) and soft solve failed: %w", f.View.Table.Name, err, serr)
	}
	f.Stats.Soft = true
	f.Stats.SoftResidual = soft.TotalAbs
	return soft.X, nil
}

// FormulateAndSolve is the one-call convenience wrapper: region
// partitioning plus the default sequential solving path (joint when
// opts.Joint is set).
func FormulateAndSolve(v *preprocess.View, opts Options) (*ViewSolution, error) {
	f, err := FormulateWith(v, RegionStrategy)
	if err != nil {
		return nil, err
	}
	if opts.Joint {
		return f.Solve(opts)
	}
	return f.SolveSequential(opts)
}
