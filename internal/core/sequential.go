package core

import (
	"fmt"
	"os"
	"time"

	"github.com/dsl-repro/hydra/internal/lp"
)

// traceSequential enables per-group solver tracing to stderr when the
// HYDRA_TRACE environment variable is non-empty.
var traceSequential = os.Getenv("HYDRA_TRACE") != ""

// SolveSequential solves the view's sub-views along the clique tree
// instead of as one joint LP: each sub-view's problem contains its own CC
// rows and total, plus equality rows pinning its separator marginals to
// the already-solved parent values.
//
// The decomposition is not complete — a greedy parent assignment can paint
// a descendant into an infeasible corner — so failures trigger *group
// merging*: the failing sub-view is fused with its parent's group and the
// (cheap) pass restarts, with fused groups solved as one LP including
// their internal consistency rows. In the worst case every sub-view fuses
// into a single group, which is exactly the joint LP; in practice groups
// stay tiny and wide fact views solve in milliseconds instead of minutes.
// The trade-off is measured by BenchmarkAblation_JointVsSequential.
func (f *Formulation) SolveSequential(opts Options) (*ViewSolution, error) {
	start := time.Now()
	n := len(f.cliques)
	if n == 0 {
		f.Stats.SolveTime = time.Since(start)
		return &ViewSolution{View: f.View, Stats: f.Stats}, nil
	}

	// Parent edge per sub-view position (preorder ⇒ parent solved first).
	parentEdge := make(map[int]svEdge, len(f.edges))
	for _, e := range f.edges {
		parentEdge[e.child] = e
	}

	// group[i] is the group root of sub-view i (union-find with path
	// halving; roots are the smallest preorder position in the group).
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	find := func(i int) int {
		for group[i] != i {
			group[i] = group[group[i]]
			i = group[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra > rb {
			ra, rb = rb, ra
		}
		group[rb] = ra
	}

	nodesTotal, pivotsTotal := 0, 0
	counts := make([][]int64, n)

	const maxPasses = 64 // ≥ n merges can never be needed; belt and braces
	for pass := 0; ; pass++ {
		if pass > maxPasses || pass > n {
			// Every merge reduces the group count, so this is
			// unreachable; fall back to the joint solve for safety.
			vs, jerr := f.Solve(opts)
			if jerr != nil {
				return nil, fmt.Errorf("core: view %s: sequential merging did not converge and joint solving failed: %w", f.View.Table.Name, jerr)
			}
			vs.Stats.SequentialFallback = true
			return vs, nil
		}
		members := make(map[int][]int, n)
		for i := 0; i < n; i++ {
			r := find(i)
			members[r] = append(members[r], i)
		}
		failedAt := -1
		for root := 0; root < n && failedAt == -1; root++ {
			ms, ok := members[root]
			if !ok {
				continue
			}
			gStart := time.Now()
			sol, err := f.solveGroup(ms, parentEdge, counts, opts)
			if traceSequential {
				nv := 0
				for _, m := range ms {
					nv += len(f.regions[m])
				}
				status := "ok"
				if err != nil {
					status = "err:" + err.Error()
				} else if !sol.Exact {
					status = "inexact"
				}
				fmt.Fprintf(os.Stderr, "[hydra-trace] view=%s pass=%d group=%d members=%d vars=%d %s in %v\n",
					f.View.Table.Name, pass, root, len(ms), nv, status, time.Since(gStart).Round(time.Millisecond))
			}
			if err != nil || !sol.Exact {
				failedAt = root
				break
			}
			// Scatter the group solution into per-sub-view counts.
			base := 0
			for _, m := range ms {
				counts[m] = sol.X[base : base+len(f.regions[m])]
				base += len(f.regions[m])
			}
			nodesTotal += sol.Nodes
			pivotsTotal += sol.Pivots
		}
		if failedAt == -1 {
			break // all groups solved
		}
		// Merge the failing group with its parent's group and retry. A
		// failing root group (no parent edge) means the CC system itself
		// is infeasible at view level: defer to the joint path, whose
		// soft fallback produces the best-effort answer.
		e, ok := parentEdge[failedAt]
		if !ok || find(e.parent) == find(failedAt) {
			vs, jerr := f.Solve(opts)
			if jerr != nil {
				return nil, fmt.Errorf("core: view %s: sequential and joint solving failed: %w", f.View.Table.Name, jerr)
			}
			vs.Stats.SequentialFallback = true
			return vs, nil
		}
		union(e.parent, failedAt)
		f.Stats.SequentialMerges++
	}

	f.Stats.SolveTime = time.Since(start)
	f.Stats.Nodes = nodesTotal
	f.Stats.Pivots = pivotsTotal
	vs := &ViewSolution{View: f.View, Stats: f.Stats}
	for si, cl := range f.cliques {
		sv := SubViewSolution{Attrs: cl, AllRegions: len(f.regions[si])}
		for ri, r := range f.regions[si] {
			if counts[si][ri] > 0 {
				sv.Rows = append(sv.Rows, RegionCount{Region: r, Rep: r.Rep(), Count: counts[si][ri]})
			}
		}
		vs.SubViews = append(vs.SubViews, sv)
	}
	vs.Stats = f.Stats
	return vs, nil
}

// solveGroup formulates and solves the LP of one group: per-member CC rows
// and totals, internal consistency rows for tree edges within the group,
// pinned separator marginals for edges whose parent lies outside (always
// already solved, by preorder).
func (f *Formulation) solveGroup(ms []int, parentEdge map[int]svEdge, counts [][]int64, opts Options) (*lp.IntSolution, error) {
	inGroup := make(map[int]bool, len(ms))
	base := make(map[int]int, len(ms))
	nv := 0
	for _, m := range ms {
		inGroup[m] = true
		base[m] = nv
		nv += len(f.regions[m])
	}
	prob := &lp.Problem{NumVars: nv}

	for _, m := range ms {
		// CC rows.
		for bit, ci := range f.ccBits[m] {
			if ci == -1 {
				continue
			}
			var vars []int
			for ri, r := range f.regions[m] {
				if r.Label.Has(bit) {
					vars = append(vars, base[m]+ri)
				}
			}
			prob.AddEq(vars, f.View.CCs[ci].Count, fmt.Sprintf("%s@sv%d", f.View.CCs[ci].Name, m))
		}
		// Total row.
		all := make([]int, len(f.regions[m]))
		for ri := range all {
			all[ri] = base[m] + ri
		}
		prob.AddEq(all, f.View.Total, fmt.Sprintf("total@sv%d", m))
		// Separator rows toward the parent.
		e, ok := parentEdge[m]
		if !ok {
			continue
		}
		childCells := localCellGroups(f, m, e.sep)
		if inGroup[e.parent] {
			// Internal edge: equate marginals between the two members.
			parentCells := localCellGroups(f, e.parent, e.sep)
			keys := map[string]bool{}
			for k := range childCells {
				keys[k] = true
			}
			for k := range parentCells {
				keys[k] = true
			}
			for k := range keys {
				var entries []lp.Entry
				for _, ri := range childCells[k] {
					entries = append(entries, lp.Entry{Var: base[m] + ri, Coef: 1})
				}
				for _, ri := range parentCells[k] {
					entries = append(entries, lp.Entry{Var: base[e.parent] + ri, Coef: -1})
				}
				prob.AddRow(lp.Row{Entries: entries, Rel: lp.EQ, RHS: 0, Name: fmt.Sprintf("cons@sv%d~sv%d", m, e.parent)})
			}
		} else {
			// External edge: the parent is solved; pin the marginals.
			parentCells := localCellGroups(f, e.parent, e.sep)
			keys := map[string]bool{}
			for k := range childCells {
				keys[k] = true
			}
			for k := range parentCells {
				keys[k] = true
			}
			for k := range keys {
				var msum int64
				for _, ri := range parentCells[k] {
					msum += counts[e.parent][ri]
				}
				vars := make([]int, len(childCells[k]))
				for i, ri := range childCells[k] {
					vars[i] = base[m] + ri
				}
				prob.AddEq(vars, msum, fmt.Sprintf("sep@sv%d:%x", m, k))
			}
		}
	}
	// Deliberately no speculative constraints from outside the group:
	// earlier designs injected implied projections of later CCs as ≥
	// bounds, but inequality rows push the relaxation optimum onto
	// fractional vertices and branch and bound burns its budget there.
	// Failing fast and letting the caller merge groups converges much
	// faster and is exact by construction.
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		// Small budget per group: exhaustion is a signal to merge, not to
		// search deeper.
		maxNodes = 256
	}
	return lp.SolveInteger(prob, lp.IntOptions{Backend: opts.Backend, MaxNodes: maxNodes})
}

// localCellGroups buckets sub-view si's regions (local indices) by their
// atom-cell key over the separator dims.
func localCellGroups(f *Formulation, si int, sep []int) map[string][]int {
	cl := f.cliques[si]
	local := localIndex(cl)
	out := map[string][]int{}
	for ri, r := range f.regions[si] {
		rep := r.Rep()
		key := make([]byte, 0, len(sep)*4)
		for _, a := range sep {
			ai := atomIndex(f.atoms[a], rep[local[a]])
			key = append(key, byte(ai), byte(ai>>8), byte(ai>>16), byte(ai>>24))
		}
		out[string(key)] = append(out[string(key)], ri)
	}
	return out
}

func localIndex(clique []int) map[int]int {
	out := make(map[int]int, len(clique))
	for i, a := range clique {
		out[a] = i
	}
	return out
}
