// Package datasynth re-implements the DataSynth regenerator of Arasu et
// al. [6,7] as the paper describes it, serving as the comparative yardstick
// of the evaluation (§7 uses "our implementation of DataSynth"). The two
// deliberate differences from Hydra are exactly the ones the paper
// isolates:
//
//   - grid partitioning: each sub-view's domain is intervalized per
//     attribute and shattered into the full cross product of cells, one LP
//     variable per cell (§3.2, Fig. 3a/4a) — variable counts explode
//     combinatorially and the solver "crashes" on complex workloads
//     (modeled here as a capacity cap, Fig. 13);
//   - sampling-based instantiation: instead of Hydra's deterministic
//     align-and-merge, view tuples are drawn probabilistically from the
//     sub-view joint/conditional distributions (§5.1), which costs time
//     proportional to the data volume and introduces multinomial error in
//     CC satisfaction (Fig. 10) that is further amplified by the
//     referential-integrity repair (Fig. 11).
package datasynth

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/lp"
	"github.com/dsl-repro/hydra/internal/partition"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/summary"
)

// DefaultMaxCells is the modeled solver capacity: grids larger than this
// per sub-view cannot be formulated. The paper reports Z3 crashing beyond
// roughly a million variables; we keep the same order of magnitude.
const DefaultMaxCells = 1_000_000

// ErrSolverCapacity reports that grid partitioning produced more LP
// variables than the solver can hold — the WLc "crash" of Fig. 13.
type ErrSolverCapacity struct {
	View  string
	Cells *big.Int
}

func (e *ErrSolverCapacity) Error() string {
	return fmt.Sprintf("datasynth: view %s: grid has %v cells, beyond solver capacity", e.View, e.Cells)
}

// Options configures the baseline.
type Options struct {
	// MaxCells caps enumerable grid cells per sub-view (DefaultMaxCells
	// when 0).
	MaxCells int64
	// Backend selects LP arithmetic (lp.Auto default).
	Backend lp.Backend
	// Seed drives the sampling instantiation.
	Seed int64
}

// GridStrategy returns a core.Strategy that partitions with DataSynth's
// grid, failing with ErrSolverCapacity when the grid exceeds maxCells.
func GridStrategy(view string, maxCells int64) core.Strategy {
	return func(space []pred.Set, cons []pred.DNF) ([]partition.Region, error) {
		g := partition.NewGrid(space, cons)
		if !g.Enumerable(maxCells) {
			return nil, &ErrSolverCapacity{View: view, Cells: g.Cells}
		}
		return g.CellRegions(cons, maxCells), nil
	}
}

// GridVars computes, without enumeration, the number of LP variables grid
// partitioning creates for a view: the sum over sub-views of the cell-count
// product. This is the Fig. 12 / Fig. 17 comparison quantity, computable
// even when it reaches 10¹¹.
func GridVars(v *preprocess.View) *big.Int {
	total := new(big.Int)
	for _, in := range core.SubViewInputs(v) {
		g := partition.NewGrid(in.Space, in.Cons)
		total.Add(total, g.Cells)
	}
	return total
}

// Result is the outcome of the DataSynth pipeline.
type Result struct {
	Summary   *summary.Summary
	Views     map[string]*preprocess.View
	TotalVars *big.Int
	SolveTime time.Duration
	// SampleTime is the view-instantiation (sampling) time, the dominant
	// cost at scale (Fig. 14).
	SampleTime time.Duration
	BuildTime  time.Duration
}

// Regenerate runs the full DataSynth pipeline: preprocess (shared with
// Hydra), grid-partitioned LP per view, sampling-based view instantiation,
// then the shared referential-repair and relation-extraction tail.
func Regenerate(s *schema.Schema, w *cc.Workload, opts Options) (*Result, error) {
	start := time.Now()
	maxCells := opts.MaxCells
	if maxCells == 0 {
		maxCells = DefaultMaxCells
	}
	if err := w.Validate(s); err != nil {
		return nil, err
	}
	views, err := preprocess.BuildViews(s, w)
	if err != nil {
		return nil, err
	}
	res := &Result{Views: views, TotalVars: new(big.Int)}
	rng := rand.New(rand.NewSource(opts.Seed))

	vsums := map[string]*summary.ViewSummary{}
	stats := map[string]core.ViewStats{}
	order, err := s.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, t := range order {
		v := views[t.Name]
		res.TotalVars.Add(res.TotalVars, GridVars(v))
		f, err := core.FormulateWith(v, GridStrategy(t.Name, maxCells))
		if err != nil {
			var cap *ErrSolverCapacity
			if errors.As(err, &cap) {
				return nil, cap
			}
			return nil, err
		}
		sol, err := f.SolveSequential(core.Options{Backend: opts.Backend})
		if err != nil {
			return nil, err
		}
		res.SolveTime += sol.Stats.SolveTime
		sampleStart := time.Now()
		vs, err := sampleViewSummary(v, sol, rng)
		if err != nil {
			return nil, fmt.Errorf("datasynth: view %s: %w", t.Name, err)
		}
		res.SampleTime += time.Since(sampleStart)
		vsums[t.Name] = vs
		stats[t.Name] = sol.Stats
	}
	sum, err := summary.BuildFromViewSummaries(s, views, vsums, stats)
	if err != nil {
		return nil, err
	}
	res.Summary = sum
	res.BuildTime = time.Since(start)
	return res, nil
}
