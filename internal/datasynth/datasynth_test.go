package datasynth

import (
	"errors"
	"math"
	"testing"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/summary"
)

func personSchema() *schema.Schema {
	return schema.MustNew(&schema.Table{
		Name: "Person",
		Cols: []schema.Column{
			{Name: "age", Min: 0, Max: 99},
			{Name: "salary", Min: 0, Max: 99_999},
		},
		RowCount: 8000,
	})
}

func personWorkload() *cc.Workload {
	age := schema.AttrRef{Table: "Person", Col: "age"}
	sal := schema.AttrRef{Table: "Person", Col: "salary"}
	return &cc.Workload{Name: "person", CCs: []cc.CC{
		{Root: "Person", Pred: pred.True(), Count: 8000, Name: "size"},
		{Root: "Person", Attrs: []schema.AttrRef{age, sal},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.AtMost(39)).With(1, pred.AtMost(39_999)),
			}},
			Count: 1000, Name: "cc1"},
		{Root: "Person", Attrs: []schema.AttrRef{age, sal},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(20_000, 59_999)),
			}},
			Count: 2000, Name: "cc2"},
	}}
}

func TestGridVarsPersonExample(t *testing.T) {
	views, err := preprocess.BuildViews(personSchema(), personWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// Both constraints cover {age, salary}: one sub-view, 4×4 grid = 16
	// variables — the paper's Fig. 3a/4a.
	vars := GridVars(views["Person"])
	if vars.Int64() != 16 {
		t.Fatalf("grid vars = %v, want 16", vars)
	}
}

func TestRegenerateSingleTableApproximate(t *testing.T) {
	s := personSchema()
	w := personWorkload()
	res, err := Regenerate(s, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := summary.Evaluate(res.Summary, res.Views, w)
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple is drawn multinomially (per §3.2's description of
	// DataSynth), so counts deviate by O(√N) — close, usually not exact.
	// This is precisely the sampling error Fig. 10 charges DataSynth
	// with; the total size is exact because exactly Total draws happen.
	exact := 0
	for _, r := range reports {
		if math.Abs(r.RelErr) > 0.10 {
			t.Errorf("CC %s error beyond sampling noise: want %d got %d", r.Name, r.Want, r.Got)
		}
		if r.RelErr == 0 {
			exact++
		}
		if r.Name == "size" && r.RelErr != 0 {
			t.Errorf("size CC must be exact, got %d", r.Got)
		}
	}
	if exact == len(reports) {
		t.Log("note: all CCs exact on this seed; sampling noise usually prevents this")
	}
}

func multiTableSchema() *schema.Schema {
	return schema.MustNew(
		&schema.Table{Name: "S", Cols: []schema.Column{
			{Name: "A", Min: 0, Max: 100}, {Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&schema.Table{Name: "R", FKs: []schema.ForeignKey{{FKCol: "S_fk", Ref: "S"}}, RowCount: 9000},
	)
}

func multiTableWorkload() *cc.Workload {
	sa := schema.AttrRef{Table: "S", Col: "A"}
	sb := schema.AttrRef{Table: "S", Col: "B"}
	in := func(attr int, lo, hi int64) pred.DNF {
		return pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(attr, pred.Range(lo, hi))}}
	}
	// Two CCs with disjoint attrs create two sub-views {A} and {B} in
	// S_view and R_view... except the joint CC links them in R_view.
	joint := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(10, 29)),
	}}
	return &cc.Workload{Name: "multi", CCs: []cc.CC{
		{Root: "S", Pred: pred.True(), Count: 700, Name: "sizeS"},
		{Root: "R", Pred: pred.True(), Count: 9000, Name: "sizeR"},
		{Root: "S", Attrs: []schema.AttrRef{sa}, Pred: in(0, 20, 59), Count: 300, Name: "selSA"},
		{Root: "S", Attrs: []schema.AttrRef{sb}, Pred: in(0, 10, 29), Count: 250, Name: "selSB"},
		{Root: "R", Attrs: []schema.AttrRef{sa}, Pred: in(0, 20, 59), Count: 5000, Name: "joinA"},
		{Root: "R", Attrs: []schema.AttrRef{sa, sb}, Pred: joint, Count: 2000, Name: "joinAB"},
	}}
}

func TestRegenerateMultiTableApproximate(t *testing.T) {
	s := multiTableSchema()
	w := multiTableWorkload()
	res, err := Regenerate(s, w, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := summary.Evaluate(res.Summary, res.Views, w)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling-based instantiation should be close but need not be exact;
	// the whole point of Fig. 10 is that it usually is not.
	for _, r := range reports {
		if math.Abs(r.RelErr) > 0.25 {
			t.Errorf("CC %s error too large even for sampling: want %d got %d", r.Name, r.Want, r.Got)
		}
	}
	// Referential integrity must hold exactly: every R_view combo exists
	// in S_view.
	if res.Summary.Relations["S"].Total < 700 {
		t.Errorf("|S| = %d, cannot shrink below 700", res.Summary.Relations["S"].Total)
	}
}

func TestSolverCapacityCrash(t *testing.T) {
	// Many multi-attribute CCs over a wide table make the grid explode.
	cols := make([]schema.Column, 6)
	for i := range cols {
		cols[i] = schema.Column{Name: string(rune('a' + i)), Min: 0, Max: 1_000_000}
	}
	s := schema.MustNew(&schema.Table{Name: "W", Cols: cols, RowCount: 100000})
	w := &cc.Workload{Name: "explode"}
	w.CCs = append(w.CCs, cc.CC{Root: "W", Pred: pred.True(), Count: 100000, Name: "size"})
	for k := 0; k < 12; k++ {
		conj := pred.NewConjunct()
		var attrs []schema.AttrRef
		for i := 0; i < 6; i++ {
			lo := int64(k*50_000 + i*1000)
			conj = conj.With(i, pred.Range(lo, lo+40_000))
			attrs = append(attrs, schema.AttrRef{Table: "W", Col: cols[i].Name})
		}
		w.CCs = append(w.CCs, cc.CC{
			Root: "W", Attrs: attrs,
			Pred:  pred.DNF{Terms: []pred.Conjunct{conj}},
			Count: int64(100 * (k + 1)), Name: "wide",
		})
	}
	_, err := Regenerate(s, w, Options{Seed: 1})
	var cap *ErrSolverCapacity
	if !errors.As(err, &cap) {
		t.Fatalf("expected ErrSolverCapacity, got %v", err)
	}
	if cap.Cells.IsInt64() && cap.Cells.Int64() <= DefaultMaxCells {
		t.Fatalf("crash reported but cells %v under cap", cap.Cells)
	}
}

func TestGridNeverBeatsRegionOnVars(t *testing.T) {
	views, err := preprocess.BuildViews(multiTableSchema(), multiTableWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range views {
		grid := GridVars(v)
		var regionVars int64
		for _, in := range SubViewInputsForTest(v) {
			regions, err := GridStrategy(name, 1<<40)(in.Space, in.Cons)
			if err != nil {
				t.Fatal(err)
			}
			regionVars += int64(len(regions))
		}
		if !grid.IsInt64() || grid.Int64() != regionVars {
			t.Fatalf("analytic grid vars %v != enumerated %d for %s", grid, regionVars, name)
		}
	}
}
