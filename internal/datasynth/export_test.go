package datasynth

import (
	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/preprocess"
)

// SubViewInputsForTest re-exports the core decomposition for white-box
// assertions in this package's tests.
func SubViewInputsForTest(v *preprocess.View) []core.SubViewInput {
	return core.SubViewInputs(v)
}
