package datasynth

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/summary"
)

// sampleViewSummary instantiates a view the DataSynth way (§3.2, §5.1 of
// the paper): the first sub-view's solution is treated as a joint
// distribution, every later sub-view as a distribution conditioned on the
// shared attributes, and Total tuples are drawn independently. The result
// is tallied into a view summary so the shared pipeline tail can consume
// it. Work and error both scale with the tuple count — the two
// disadvantages Hydra's deterministic alignment removes.
func sampleViewSummary(v *preprocess.View, sol *core.ViewSolution, rng *rand.Rand) (*summary.ViewSummary, error) {
	vs := &summary.ViewSummary{Table: v.Table.Name, Attrs: v.Attrs}
	if v.Total == 0 {
		return vs, nil
	}
	if len(v.Attrs) == 0 {
		vs.Rows = []summary.ViewRow{{Vals: []int64{}, Count: v.Total}}
		return vs, nil
	}
	if len(sol.SubViews) == 0 {
		return nil, fmt.Errorf("no sub-view solutions")
	}

	type dist struct {
		rows []core.RegionCount
		cum  []int64 // cumulative counts
	}
	mkDist := func(rows []core.RegionCount) dist {
		d := dist{rows: rows, cum: make([]int64, len(rows))}
		var c int64
		for i, r := range rows {
			c += r.Count
			d.cum[i] = c
		}
		return d
	}
	sample := func(d dist) core.RegionCount {
		total := d.cum[len(d.cum)-1]
		x := rng.Int63n(total) + 1
		i := sort.Search(len(d.cum), func(j int) bool { return d.cum[j] >= x })
		return d.rows[i]
	}

	// Precompute, per later sub-view, the conditional groups keyed by
	// shared-attribute values.
	first := sol.SubViews[0]
	if len(first.Rows) == 0 {
		return nil, fmt.Errorf("empty first sub-view solution")
	}
	firstDist := mkDist(first.Rows)

	type condSV struct {
		attrs     []int
		sharedSv  []int // positions of shared attrs within the sub-view
		sharedAcc []int // view-attr ids of the shared attrs
		newPos    []int // positions of new attrs within the sub-view
		newAttrs  []int
		groups    map[string]dist
		fallback  dist
	}
	accAttrSet := map[int]bool{}
	for _, a := range first.Attrs {
		accAttrSet[a] = true
	}
	var conds []condSV
	for _, sv := range sol.SubViews[1:] {
		c := condSV{attrs: sv.Attrs}
		for i, a := range sv.Attrs {
			if accAttrSet[a] {
				c.sharedSv = append(c.sharedSv, i)
				c.sharedAcc = append(c.sharedAcc, a)
			} else {
				c.newPos = append(c.newPos, i)
				c.newAttrs = append(c.newAttrs, a)
			}
		}
		groups := map[string][]core.RegionCount{}
		for _, r := range sv.Rows {
			key := make([]byte, 8*len(c.sharedSv))
			for i, p := range c.sharedSv {
				binary.LittleEndian.PutUint64(key[i*8:], uint64(r.Rep[p]))
			}
			groups[string(key)] = append(groups[string(key)], r)
		}
		c.groups = make(map[string]dist, len(groups))
		for k, rows := range groups {
			c.groups[k] = mkDist(rows)
		}
		if len(sv.Rows) > 0 {
			c.fallback = mkDist(sv.Rows)
		}
		for _, a := range c.newAttrs {
			accAttrSet[a] = true
		}
		conds = append(conds, c)
	}

	// Draw Total tuples.
	vals := make([]int64, len(v.Attrs)) // indexed by view-attr id
	tally := map[string]int64{}
	keyBuf := make([]byte, 8*len(v.Attrs))
	for n := int64(0); n < v.Total; n++ {
		r := sample(firstDist)
		for i, a := range first.Attrs {
			vals[a] = r.Rep[i]
		}
		for _, c := range conds {
			key := make([]byte, 8*len(c.sharedAcc))
			for i, a := range c.sharedAcc {
				binary.LittleEndian.PutUint64(key[i*8:], uint64(vals[a]))
			}
			d, ok := c.groups[string(key)]
			if !ok {
				// Marginal drift from sampling: fall back to the
				// unconditional distribution (this is a source of
				// DataSynth's volumetric error).
				d = c.fallback
			}
			if len(d.rows) == 0 {
				return nil, fmt.Errorf("sub-view has no rows to sample")
			}
			rr := sample(d)
			for _, p := range c.newPos {
				vals[c.attrs[p]] = rr.Rep[p]
			}
		}
		for i, x := range vals {
			binary.LittleEndian.PutUint64(keyBuf[i*8:], uint64(x))
		}
		tally[string(keyBuf)]++
	}

	// Materialize the tally as a sorted view summary.
	keys := make([]string, 0, len(tally))
	for k := range tally {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		row := summary.ViewRow{Vals: make([]int64, len(v.Attrs)), Count: tally[k]}
		for i := range row.Vals {
			row.Vals[i] = int64(binary.LittleEndian.Uint64([]byte(k)[i*8:]))
		}
		vs.Rows = append(vs.Rows, row)
	}
	return vs, nil
}
