package engine

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

// toySchema is the Figure 1 layout: R → S, R → T.
func toySchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		&schema.Table{Name: "S", Cols: []schema.Column{{Name: "A", Min: 0, Max: 100}, {Name: "B", Min: 0, Max: 50}}},
		&schema.Table{Name: "T", Cols: []schema.Column{{Name: "C", Min: 0, Max: 10}}},
		&schema.Table{Name: "R", FKs: []schema.ForeignKey{{FKCol: "S_fk", Ref: "S"}, {FKCol: "T_fk", Ref: "T"}}},
	)
}

// toyDB builds a small deterministic client database on the toy schema.
func toyDB(t testing.TB, s *schema.Schema, nS, nT, nR int, seed int64) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := NewDatabase()
	sRel := NewMemRelation("S", ColLayout(s.MustTable("S")))
	for i := 1; i <= nS; i++ {
		sRel.Append([]int64{int64(i), int64(rng.Intn(101)), int64(rng.Intn(51))})
	}
	tRel := NewMemRelation("T", ColLayout(s.MustTable("T")))
	for i := 1; i <= nT; i++ {
		tRel.Append([]int64{int64(i), int64(rng.Intn(11))})
	}
	rRel := NewMemRelation("R", ColLayout(s.MustTable("R")))
	for i := 1; i <= nR; i++ {
		rRel.Append([]int64{int64(i), int64(1 + rng.Intn(nS)), int64(1 + rng.Intn(nT))})
	}
	db.Add(sRel)
	db.Add(tRel)
	db.Add(rRel)
	return db
}

func toyQuery() *Query {
	return &Query{
		Name: "q1",
		Root: "R",
		Joins: []JoinStep{
			{Table: "S", Via: "R"},
			{Table: "T", Via: "R"},
		},
		Filters: map[string]pred.DNF{
			"S": {Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(20, 59))}},
			"T": {Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(2, 2))}},
		},
	}
}

// bruteForce recomputes the query result size by nested loops.
func bruteForce(db *Database, q *Query, s *schema.Schema) (selS, selT, joinRS, joinRST int64) {
	sRel := db.Rels["S"].(*MemRelation)
	tRel := db.Rels["T"].(*MemRelation)
	rRel := db.Rels["R"].(*MemRelation)
	sOK := map[int64]bool{}
	for i := 0; i < int(sRel.NumRows()); i++ {
		row := sRel.Row(i)
		if row[1] >= 20 && row[1] < 60 {
			sOK[row[0]] = true
			selS++
		}
	}
	tOK := map[int64]bool{}
	for i := 0; i < int(tRel.NumRows()); i++ {
		row := tRel.Row(i)
		if row[1] == 2 {
			tOK[row[0]] = true
			selT++
		}
	}
	for i := 0; i < int(rRel.NumRows()); i++ {
		row := rRel.Row(i)
		if sOK[row[1]] {
			joinRS++
			if tOK[row[2]] {
				joinRST++
			}
		}
	}
	return
}

func TestExecuteMatchesBruteForce(t *testing.T) {
	s := toySchema(t)
	db := toyDB(t, s, 50, 10, 2000, 42)
	q := toyQuery()
	aqp, err := Execute(db, s, q)
	if err != nil {
		t.Fatal(err)
	}
	selS, selT, joinRS, joinRST := bruteForce(db, q, s)
	if aqp.FilterOut["S"] != selS || aqp.FilterOut["T"] != selT {
		t.Fatalf("filters: got S=%d T=%d, want S=%d T=%d", aqp.FilterOut["S"], aqp.FilterOut["T"], selS, selT)
	}
	if aqp.JoinOut[0] != joinRS || aqp.JoinOut[1] != joinRST {
		t.Fatalf("joins: got %v, want [%d %d]", aqp.JoinOut, joinRS, joinRST)
	}
	if aqp.Base["R"] != 2000 || aqp.Base["S"] != 50 || aqp.Base["T"] != 10 {
		t.Fatalf("base cards wrong: %v", aqp.Base)
	}
}

// Property: pipelined hash-join execution equals brute force across random
// databases.
func TestQuickExecuteEqualsBruteForce(t *testing.T) {
	s := toySchema(t)
	f := func(seed int64) bool {
		db := toyDB(t, s, 20, 5, 300, seed)
		aqp, err := Execute(db, s, toyQuery())
		if err != nil {
			return false
		}
		selS, selT, joinRS, joinRST := bruteForce(db, toyQuery(), s)
		return aqp.FilterOut["S"] == selS && aqp.FilterOut["T"] == selT &&
			aqp.JoinOut[0] == joinRS && aqp.JoinOut[1] == joinRST
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestToCCsShape(t *testing.T) {
	s := toySchema(t)
	db := toyDB(t, s, 50, 10, 2000, 7)
	aqp, err := Execute(db, s, toyQuery())
	if err != nil {
		t.Fatal(err)
	}
	ccs := aqp.ToCCs(s)
	// 3 size CCs + 2 filter CCs + 2 join CCs = 7, the Figure 1d tally.
	if len(ccs) != 7 {
		t.Fatalf("got %d CCs, want 7: %v", len(ccs), ccs)
	}
	for _, c := range ccs {
		if err := c.Validate(s); err != nil {
			t.Fatalf("CC %s invalid: %v", c.Name, err)
		}
	}
	// The final join CC must be rooted at R with both attrs.
	last := ccs[len(ccs)-1]
	if last.Root != "R" || len(last.Attrs) != 2 {
		t.Fatalf("final join CC malformed: %+v", last)
	}
}

func TestSnowflakeJoinVia(t *testing.T) {
	// C → B → A chain; query root C joins B via C, then A via B.
	s := schema.MustNew(
		&schema.Table{Name: "A", Cols: []schema.Column{{Name: "x", Min: 0, Max: 9}}},
		&schema.Table{Name: "B", Cols: []schema.Column{{Name: "y", Min: 0, Max: 9}}, FKs: []schema.ForeignKey{{FKCol: "a_fk", Ref: "A"}}},
		&schema.Table{Name: "C", FKs: []schema.ForeignKey{{FKCol: "b_fk", Ref: "B"}}},
	)
	db := NewDatabase()
	a := NewMemRelation("A", ColLayout(s.MustTable("A")))
	a.Append([]int64{1, 3})
	a.Append([]int64{2, 7})
	b := NewMemRelation("B", ColLayout(s.MustTable("B")))
	b.Append([]int64{1, 5, 1}) // y=5 → A1 (x=3)
	b.Append([]int64{2, 5, 2}) // y=5 → A2 (x=7)
	c := NewMemRelation("C", ColLayout(s.MustTable("C")))
	c.Append([]int64{1, 1})
	c.Append([]int64{2, 2})
	c.Append([]int64{3, 2})
	db.Add(a)
	db.Add(b)
	db.Add(c)
	q := &Query{
		Name: "snow",
		Root: "C",
		Joins: []JoinStep{
			{Table: "B", Via: "C"},
			{Table: "A", Via: "B"},
		},
		Filters: map[string]pred.DNF{
			"A": {Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(7, 7))}},
		},
	}
	aqp, err := Execute(db, s, q)
	if err != nil {
		t.Fatal(err)
	}
	// Join 1 (C⋈B): all 3 C rows. Join 2 (⋈σA): only C rows whose B row
	// points at A2 (x=7): C2, C3 → 2.
	if aqp.JoinOut[0] != 3 || aqp.JoinOut[1] != 2 {
		t.Fatalf("snowflake joins = %v, want [3 2]", aqp.JoinOut)
	}
}

func TestQueryValidateRejectsBadJoins(t *testing.T) {
	s := toySchema(t)
	bad := []*Query{
		{Name: "noRoot", Root: "Z"},
		{Name: "viaAbsent", Root: "R", Joins: []JoinStep{{Table: "S", Via: "T"}}},
		{Name: "noFK", Root: "S", Joins: []JoinStep{{Table: "T", Via: "S"}}},
		{Name: "dupJoin", Root: "R", Joins: []JoinStep{{Table: "S", Via: "R"}, {Table: "S", Via: "R"}}},
		{Name: "filterOutside", Root: "S", Filters: map[string]pred.DNF{"T": pred.True()}},
		{Name: "filterBadCol", Root: "S", Filters: map[string]pred.DNF{
			"S": {Terms: []pred.Conjunct{pred.NewConjunct().With(9, pred.Range(0, 1))}},
		}},
	}
	for _, q := range bad {
		if err := q.Validate(s); err == nil {
			t.Errorf("query %s should be rejected", q.Name)
		}
	}
}

func TestWorkloadFromQueriesDedupes(t *testing.T) {
	s := toySchema(t)
	db := toyDB(t, s, 50, 10, 2000, 3)
	// Two identical queries: size CCs must be deduplicated.
	w, aqps, err := WorkloadFromQueries(db, s, "wl", []*Query{toyQuery(), toyQuery()})
	if err != nil {
		t.Fatal(err)
	}
	if len(aqps) != 2 {
		t.Fatalf("aqps = %d", len(aqps))
	}
	if len(w.CCs) != 7 {
		t.Fatalf("deduped CC count = %d, want 7", len(w.CCs))
	}
}

func TestOptimizeOrdersBySelectivity(t *testing.T) {
	q := toyQuery()
	est := func(table string) float64 {
		if table == "T" {
			return 0.1
		}
		return 0.5
	}
	opt := Optimize(q, est)
	if opt.Joins[0].Table != "T" || opt.Joins[1].Table != "S" {
		t.Fatalf("expected T first, got %v", opt.Joins)
	}
}

func TestOptimizeRespectsVia(t *testing.T) {
	q := &Query{
		Name: "snow",
		Root: "C",
		Joins: []JoinStep{
			{Table: "B", Via: "C"},
			{Table: "A", Via: "B"},
		},
	}
	// Even if A looks maximally selective, it cannot precede B.
	est := func(table string) float64 {
		if table == "A" {
			return 0.01
		}
		return 0.9
	}
	opt := Optimize(q, est)
	if opt.Joins[0].Table != "B" {
		t.Fatalf("A must not precede its Via table B: %v", opt.Joins)
	}
}

func TestAggregateScan(t *testing.T) {
	m := NewMemRelation("x", []string{"x_pk", "v"})
	m.Append([]int64{1, 10})
	m.Append([]int64{2, 20})
	count, sum, err := AggregateScan(m, 1)
	if err != nil || count != 2 || sum != 30 {
		t.Fatalf("count=%d sum=%d err=%v", count, sum, err)
	}
}

func TestMaterializeAndDiskRoundTrip(t *testing.T) {
	m := NewMemRelation("x", []string{"x_pk", "v", "w"})
	for i := 1; i <= 5000; i++ {
		m.Append([]int64{int64(i), int64(i % 7), int64(i % 13)})
	}
	path := filepath.Join(t.TempDir(), "x.heap")
	d, err := MaterializeToDisk(m, path)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 5000 {
		t.Fatalf("disk rows = %d", d.NumRows())
	}
	count, sum, err := AggregateScan(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum, _ := AggregateScan(m, 1)
	if count != wantCount || sum != wantSum {
		t.Fatalf("disk scan (%d,%d) != mem scan (%d,%d)", count, sum, wantCount, wantSum)
	}
	// Row-exact comparison.
	mi, di := m.Scan(), d.Scan()
	for {
		a, okA := mi.Next()
		b, okB := di.Next()
		if okA != okB {
			t.Fatal("length mismatch")
		}
		if !okA {
			break
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row mismatch: %v vs %v", a, b)
			}
		}
	}
}
