package engine

import "sort"

// Optimize returns a copy of the query with join steps reordered so that
// the most selective dimensions are probed first — the standard heuristic
// a cost-based optimizer applies to star plans. estimate(table) must
// return the expected fraction of the table's rows surviving its filter
// (1.0 when unfiltered); the CODD substrate supplies it from catalog
// histograms, which is how metadata matching forces the vendor's plan to
// equal the client's (§3.2, §7.4).
//
// Via dependencies are respected: a snowflake step never precedes the step
// that introduces its Via table.
func Optimize(q *Query, estimate func(table string) float64) *Query {
	type cand struct {
		step JoinStep
		sel  float64
		idx  int
	}
	pending := make([]cand, len(q.Joins))
	for i, j := range q.Joins {
		sel := 1.0
		if estimate != nil {
			sel = estimate(j.Table)
		}
		pending[i] = cand{step: j, sel: sel, idx: i}
	}
	present := map[string]bool{q.Root: true}
	var ordered []JoinStep
	for len(pending) > 0 {
		// Deterministic greedy pick: among steps whose Via is present,
		// the smallest selectivity, breaking ties by original index.
		sort.SliceStable(pending, func(a, b int) bool {
			if pending[a].sel != pending[b].sel {
				return pending[a].sel < pending[b].sel
			}
			return pending[a].idx < pending[b].idx
		})
		picked := -1
		for i, c := range pending {
			if present[c.step.Via] {
				picked = i
				break
			}
		}
		if picked == -1 {
			// Unsatisfiable Via chain; fall back to declared order for
			// the remainder (Validate will report the real problem).
			sort.SliceStable(pending, func(a, b int) bool { return pending[a].idx < pending[b].idx })
			for _, c := range pending {
				ordered = append(ordered, c.step)
			}
			break
		}
		c := pending[picked]
		pending = append(pending[:picked], pending[picked+1:]...)
		present[c.step.Table] = true
		ordered = append(ordered, c.step)
	}
	out := &Query{Name: q.Name, Root: q.Root, Joins: ordered, Filters: q.Filters}
	return out
}
