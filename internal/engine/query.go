package engine

import (
	"fmt"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

// JoinStep joins one referenced table into the running result: Via is an
// already-present table (the root or an earlier step's table) holding a
// foreign key into Table. All joins are PK-FK, per the paper's data
// warehouse assumption (§2.2).
type JoinStep struct {
	Table string
	Via   string
}

// Query is a select-project-join query in the shape Hydra's workloads use:
// a root (fact) relation, a chain/star/snowflake of PK-FK joins, and a DNF
// filter per table over that table's own non-key columns (predicate
// attribute id i refers to Table.Cols[i]).
type Query struct {
	Name    string
	Root    string
	Joins   []JoinStep
	Filters map[string]pred.DNF
}

// Tables returns the root plus all joined tables.
func (q *Query) Tables() []string {
	out := []string{q.Root}
	for _, j := range q.Joins {
		out = append(out, j.Table)
	}
	return out
}

// Validate checks the query against the schema: join steps must follow
// declared FK edges and attach to already-present tables; filters must
// reference in-query tables and valid column ids.
func (q *Query) Validate(s *schema.Schema) error {
	if _, ok := s.Table(q.Root); !ok {
		return fmt.Errorf("engine: query %s: unknown root %q", q.Name, q.Root)
	}
	present := map[string]bool{q.Root: true}
	for _, j := range q.Joins {
		if !present[j.Via] {
			return fmt.Errorf("engine: query %s: join of %s via %s before %s is present", q.Name, j.Table, j.Via, j.Via)
		}
		if present[j.Table] {
			return fmt.Errorf("engine: query %s: table %s joined twice", q.Name, j.Table)
		}
		via := s.MustTable(j.Via)
		found := false
		for _, fk := range via.FKs {
			if fk.Ref == j.Table {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("engine: query %s: %s has no FK to %s", q.Name, j.Via, j.Table)
		}
		present[j.Table] = true
	}
	for tab, p := range q.Filters {
		if !present[tab] {
			return fmt.Errorf("engine: query %s: filter on %s which is not in the query", q.Name, tab)
		}
		nCols := len(s.MustTable(tab).Cols)
		for _, a := range p.Attrs() {
			if a < 0 || a >= nCols {
				return fmt.Errorf("engine: query %s: filter on %s references column id %d (table has %d non-key cols)", q.Name, tab, a, nCols)
			}
		}
	}
	return nil
}

// AQP is an annotated query plan: the query plus the output cardinality of
// every operator, as observed during execution (§2.1, Figure 1c).
type AQP struct {
	Query *Query
	// Base is each table's scan cardinality.
	Base map[string]int64
	// FilterOut is each table's post-filter cardinality (equal to Base
	// when the table has no filter).
	FilterOut map[string]int64
	// JoinOut[i] is the output cardinality of join step i.
	JoinOut []int64
}

// fkColIndex returns the engine-tuple index of via's FK column targeting
// ref.
func fkColIndex(via *schema.Table, ref string) int {
	for i, fk := range via.FKs {
		if fk.Ref == ref {
			return 1 + len(via.Cols) + i
		}
	}
	return -1
}

// Execute runs the query with the plan shape given by the join order (the
// "forced plan" of the paper's methodology) and returns the AQP. The
// execution strategy builds a filtered hash table per joined table keyed by
// primary key and pipelines root tuples through the probes.
func Execute(db *Database, s *schema.Schema, q *Query) (*AQP, error) {
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	aqp := &AQP{
		Query:     q,
		Base:      map[string]int64{},
		FilterOut: map[string]int64{},
		JoinOut:   make([]int64, len(q.Joins)),
	}
	// Build per-dim hash tables.
	type dimTable struct {
		rows map[int64][]int64
	}
	dims := make([]dimTable, len(q.Joins))
	for i, j := range q.Joins {
		rel, err := db.Rel(j.Table)
		if err != nil {
			return nil, err
		}
		aqp.Base[j.Table] = rel.NumRows()
		filter, hasFilter := q.Filters[j.Table]
		dims[i].rows = make(map[int64][]int64)
		it := rel.Scan()
		var passed int64
		for {
			row, ok := it.Next()
			if !ok {
				break
			}
			if hasFilter && !evalOwnFilter(filter, row) {
				continue
			}
			passed++
			cp := append([]int64(nil), row...)
			dims[i].rows[cp[0]] = cp
		}
		if err := it.Close(); err != nil {
			return nil, err
		}
		aqp.FilterOut[j.Table] = passed
	}
	// Probe pipeline from the root.
	rootRel, err := db.Rel(q.Root)
	if err != nil {
		return nil, err
	}
	aqp.Base[q.Root] = rootRel.NumRows()
	rootTab := s.MustTable(q.Root)
	rootFilter, hasRootFilter := q.Filters[q.Root]

	// Precompute probe metadata: for each step, which table's row carries
	// the FK and at which index.
	type probe struct {
		viaIdx int // -1 for root, else index of the earlier join step
		fkIdx  int
	}
	stepOf := map[string]int{}
	probes := make([]probe, len(q.Joins))
	for i, j := range q.Joins {
		var via *schema.Table
		var viaIdx int
		if j.Via == q.Root {
			via, viaIdx = rootTab, -1
		} else {
			via, viaIdx = s.MustTable(j.Via), stepOf[j.Via]
		}
		probes[i] = probe{viaIdx: viaIdx, fkIdx: fkColIndex(via, j.Table)}
		stepOf[j.Table] = i
	}

	it := rootRel.Scan()
	joined := make([][]int64, len(q.Joins))
	var rootPassed int64
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		if hasRootFilter && !evalOwnFilter(rootFilter, row) {
			continue
		}
		rootPassed++
		alive := true
		for i := range q.Joins {
			if !alive {
				break
			}
			var src []int64
			if probes[i].viaIdx == -1 {
				src = row
			} else {
				src = joined[probes[i].viaIdx]
			}
			fkVal := src[probes[i].fkIdx]
			dimRow, ok := dims[i].rows[fkVal]
			if !ok {
				alive = false
				break
			}
			joined[i] = dimRow
			aqp.JoinOut[i]++
		}
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	aqp.FilterOut[q.Root] = rootPassed
	return aqp, nil
}

// evalOwnFilter evaluates a per-table DNF (over non-key column ids)
// against an engine tuple (pk at index 0, so column id c lives at c+1).
func evalOwnFilter(p pred.DNF, row []int64) bool {
	for _, t := range p.Terms {
		ok := true
		for c, set := range t.Cols {
			if !set.Contains(row[c+1]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ToCCs converts the AQP into cardinality constraints — the "Parser" of
// Fig. 2 — exactly as Figure 1d derives them: one size CC per base table,
// one selection CC per filtered scan, and one CC per join output whose
// predicate is the conjunction of all filters involved so far.
func (a *AQP) ToCCs(s *schema.Schema) []cc.CC {
	q := a.Query
	var out []cc.CC
	for _, tab := range q.Tables() {
		out = append(out, cc.CC{
			Root: tab, Pred: pred.True(), Count: a.Base[tab],
			Name: fmt.Sprintf("%s/|%s|", q.Name, tab),
		})
	}
	for _, tab := range q.Tables() {
		p, ok := q.Filters[tab]
		if !ok {
			continue
		}
		attrs, mapped := tableFilterCC(s, tab, p)
		out = append(out, cc.CC{
			Root: tab, Attrs: attrs, Pred: mapped, Count: a.FilterOut[tab],
			Name: fmt.Sprintf("%s/σ(%s)", q.Name, tab),
		})
	}
	// Join outputs: conjunction of filters of tables joined so far.
	combined := pred.True()
	var attrs []schema.AttrRef
	attrPos := map[schema.AttrRef]int{}
	addFilter := func(tab string) {
		p, ok := q.Filters[tab]
		if !ok {
			return
		}
		remap := map[int]int{}
		for _, colID := range p.Attrs() {
			ref := schema.AttrRef{Table: tab, Col: s.MustTable(tab).Cols[colID].Name}
			pos, seen := attrPos[ref]
			if !seen {
				pos = len(attrs)
				attrPos[ref] = pos
				attrs = append(attrs, ref)
			}
			remap[colID] = pos
		}
		combined = combined.And(p.Remap(remap))
	}
	addFilter(q.Root)
	for i, j := range q.Joins {
		addFilter(j.Table)
		out = append(out, cc.CC{
			Root:  q.Root,
			Attrs: append([]schema.AttrRef(nil), attrs...),
			Pred:  clonePred(combined),
			Count: a.JoinOut[i],
			Name:  fmt.Sprintf("%s/join[%d]", q.Name, i),
		})
	}
	return out
}

func clonePred(p pred.DNF) pred.DNF {
	out := pred.DNF{Terms: make([]pred.Conjunct, len(p.Terms))}
	for i, t := range p.Terms {
		nt := pred.NewConjunct()
		for a, s := range t.Cols {
			nt = nt.With(a, s)
		}
		out.Terms[i] = nt
	}
	return out
}

// tableFilterCC rewrites a per-table filter into CC form (qualified attrs
// plus remapped predicate).
func tableFilterCC(s *schema.Schema, tab string, p pred.DNF) ([]schema.AttrRef, pred.DNF) {
	t := s.MustTable(tab)
	var attrs []schema.AttrRef
	remap := map[int]int{}
	for _, colID := range p.Attrs() {
		remap[colID] = len(attrs)
		attrs = append(attrs, schema.AttrRef{Table: tab, Col: t.Cols[colID].Name})
	}
	return attrs, p.Remap(remap)
}

// WorkloadFromQueries executes every query against the client database and
// collects the deduplicated CC set — the complete client-side flow of
// Fig. 2 (AQPs → Parser → CCs).
func WorkloadFromQueries(db *Database, s *schema.Schema, name string, queries []*Query) (*cc.Workload, []*AQP, error) {
	w := &cc.Workload{Name: name}
	var aqps []*AQP
	for _, q := range queries {
		aqp, err := Execute(db, s, q)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: query %s: %w", q.Name, err)
		}
		aqps = append(aqps, aqp)
		w.CCs = append(w.CCs, aqp.ToCCs(s)...)
	}
	w.Dedupe()
	return w, aqps, nil
}

// AggregateScan runs the Fig. 15 style probe query "SELECT count(*),
// sum(col) FROM rel": it forces every tuple to be produced (from disk or
// from the dynamic generator) and touched.
func AggregateScan(rel Relation, colIdx int) (count int64, sum int64, err error) {
	it := rel.Scan()
	defer it.Close()
	for {
		row, ok := it.Next()
		if !ok {
			return count, sum, nil
		}
		count++
		if colIdx < len(row) {
			sum += row[colIdx]
		}
	}
}

// Materialize drains a relation into an in-memory copy.
func Materialize(rel Relation) (*MemRelation, error) {
	out := NewMemRelation(rel.Name(), append([]string(nil), rel.Cols()...))
	it := rel.Scan()
	defer it.Close()
	for {
		row, ok := it.Next()
		if !ok {
			return out, nil
		}
		out.Append(append([]int64(nil), row...))
	}
}
