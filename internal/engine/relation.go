// Package engine is the mini relational engine Hydra's evaluation runs on:
// the substitute for the paper's PostgreSQL v9.3 host. It provides row
// relations (in-memory, on-disk, and dynamically generated), filter and
// PK-FK hash-join operators, annotated plan execution (the source of AQPs
// and hence CCs), and a small statistics-driven join-order optimizer used
// by the CODD metadata flow.
//
// Tuples are []int64 with layout [pk, non-key columns..., FK columns...],
// matching schema declaration order. Column names are qualified as
// "table.col" inside plans so join outputs stay unambiguous.
package engine

import (
	"fmt"

	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/storage"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// Relation is anything the engine can scan.
type Relation interface {
	// Name returns the relation name.
	Name() string
	// Cols returns unqualified column names; index 0 is the primary key.
	Cols() []string
	// NumRows returns the cardinality.
	NumRows() int64
	// Scan returns a fresh iterator. Returned row slices may be reused
	// between Next calls.
	Scan() Iterator
}

// Iterator streams rows.
type Iterator interface {
	Next() ([]int64, bool)
	Close() error
}

// MemRelation is an in-memory row store, used for client databases in the
// workload substrates and for materialization targets in tests.
type MemRelation struct {
	name string
	cols []string
	rows [][]int64
}

// NewMemRelation creates an empty in-memory relation. cols must include
// the pk name at index 0.
func NewMemRelation(name string, cols []string) *MemRelation {
	return &MemRelation{name: name, cols: cols}
}

// Append adds a row (takes ownership of the slice).
func (m *MemRelation) Append(row []int64) {
	if len(row) != len(m.cols) {
		panic(fmt.Sprintf("engine: row width %d != %d for %s", len(row), len(m.cols), m.name))
	}
	m.rows = append(m.rows, row)
}

// Row returns the i-th stored row (0-based storage order).
func (m *MemRelation) Row(i int) []int64 { return m.rows[i] }

func (m *MemRelation) Name() string   { return m.name }
func (m *MemRelation) Cols() []string { return m.cols }
func (m *MemRelation) NumRows() int64 { return int64(len(m.rows)) }

type memIter struct {
	rel *MemRelation
	i   int
}

func (m *MemRelation) Scan() Iterator { return &memIter{rel: m} }

func (it *memIter) Next() ([]int64, bool) {
	if it.i >= len(it.rel.rows) {
		return nil, false
	}
	row := it.rel.rows[it.i]
	it.i++
	return row, true
}

func (it *memIter) Close() error { return nil }

// GenRelation adapts a tuple generator as a scannable relation: the
// paper's "datagen" scan replacement (§6). Queries against it never touch
// storage; rows are synthesized on demand from the relation summary.
type GenRelation struct {
	gen *tuplegen.Generator
}

// NewGenRelation wraps a generator.
func NewGenRelation(gen *tuplegen.Generator) *GenRelation {
	return &GenRelation{gen: gen}
}

func (g *GenRelation) Name() string   { return g.gen.Relation().Table }
func (g *GenRelation) Cols() []string { return g.gen.ColNames() }
func (g *GenRelation) NumRows() int64 { return g.gen.NumRows() }

type genIter struct{ it *tuplegen.Iter }

func (g *GenRelation) Scan() Iterator { return &genIter{it: g.gen.Scan()} }

func (it *genIter) Next() ([]int64, bool) { return it.it.Next() }
func (it *genIter) Close() error          { return nil }

// DiskRelation adapts a storage heap file as a scannable relation — the
// materialized ("static") side of the Fig. 15 disk-vs-dynamic comparison.
type DiskRelation struct {
	*storage.DiskRelation
}

// NewDiskRelation wraps an opened heap file.
func NewDiskRelation(d *storage.DiskRelation) DiskRelation { return DiskRelation{d} }

// Scan returns a sequential scan over the heap file.
func (d DiskRelation) Scan() Iterator { return d.DiskRelation.Scan() }

// MaterializeToDisk writes a relation (typically a GenRelation over a
// summary) into a heap file at path and returns the opened disk relation.
func MaterializeToDisk(rel Relation, path string) (DiskRelation, error) {
	w, err := storage.Create(path, rel.Name(), rel.Cols())
	if err != nil {
		return DiskRelation{}, err
	}
	it := rel.Scan()
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		if err := w.Write(row); err != nil {
			w.Close()
			it.Close()
			return DiskRelation{}, err
		}
	}
	if err := it.Close(); err != nil {
		w.Close()
		return DiskRelation{}, err
	}
	if err := w.Close(); err != nil {
		return DiskRelation{}, err
	}
	d, err := storage.Open(path)
	if err != nil {
		return DiskRelation{}, err
	}
	return DiskRelation{d}, nil
}

// Database is a set of relations addressed by table name.
type Database struct {
	Rels map[string]Relation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{Rels: map[string]Relation{}} }

// Add registers a relation.
func (d *Database) Add(r Relation) { d.Rels[r.Name()] = r }

// Rel returns the named relation or an error.
func (d *Database) Rel(name string) (Relation, error) {
	r, ok := d.Rels[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	return r, nil
}

// FromSummary builds a fully dynamic database over a Hydra summary: every
// relation is a GenRelation, so any query executes without materialized
// data — the paper's dynamic regeneration mode.
func FromSummary(s *summary.Summary) *Database {
	db := NewDatabase()
	for _, rs := range s.Relations {
		db.Add(NewGenRelation(tuplegen.New(rs)))
	}
	return db
}

// ColLayout returns the column names of a schema table in engine tuple
// order: pk, non-key columns, FK columns.
func ColLayout(t *schema.Table) []string {
	cols := make([]string, 0, 1+len(t.Cols)+len(t.FKs))
	cols = append(cols, t.Name+"_pk")
	for _, c := range t.Cols {
		cols = append(cols, c.Name)
	}
	for _, fk := range t.FKs {
		cols = append(cols, fk.FKCol)
	}
	return cols
}
