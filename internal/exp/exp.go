// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (§7), each regenerating the same rows/series
// the paper reports. The harness works at laptop scale — absolute numbers
// differ from the paper's 100 GB testbed, but each experiment preserves
// the shape of the paper's result (who wins, by roughly what factor, where
// behaviour changes).
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	fig9   CC cardinality distribution, WLc
//	fig10  volumetric similarity CDF, Hydra vs DataSynth (WLs)
//	fig11  extra tuples for referential integrity
//	fig12  LP variables per relation, region vs grid (WLc)
//	fig13  LP processing time, {WLc, WLs} × {Hydra, DataSynth}
//	fig14  materialization time at three scales
//	sec74  exabyte-scale summary construction (scale independence)
//	fig15  data supply time, disk scan vs dynamic generation
//	fig16  CC cardinality distribution, JOB
//	fig17  LP variables per JOB view
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/workload/job"
	"github.com/dsl-repro/hydra/internal/workload/tpcds"
)

// Config parameterizes the harness.
type Config struct {
	// SF is the TPC-DS substrate scale factor (1.0 ≈ 1M tuples).
	SF float64
	// Seed drives data and workload generation.
	Seed int64
	// QueriesWLc / QueriesWLs / QueriesJOB size the workloads; zero means
	// the paper's counts (131 / 90 / 260).
	QueriesWLc, QueriesWLs, QueriesJOB int
	// Dir is the scratch directory for disk experiments (fig14/fig15).
	Dir string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.SF <= 0 {
		c.SF = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.QueriesWLc == 0 {
		c.QueriesWLc = tpcds.DefaultComplexQueries
	}
	if c.QueriesWLs == 0 {
		c.QueriesWLs = 90
	}
	if c.QueriesJOB == 0 {
		c.QueriesJOB = job.DefaultQueries
	}
	if c.Dir == "" {
		c.Dir = "."
	}
	return c
}

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Env is the shared experimental environment: the synthetic client site.
// Building it executes every workload query against the client database,
// which is the priciest part of several experiments, so it is constructed
// once and passed to each runner.
type Env struct {
	Cfg      Config
	TPCDS    *tpcdsEnv
	builtJOB *jobEnv
}

type tpcdsEnv struct {
	Cfg      tpcds.Config
	Schema   *schema.Schema
	DB       *engine.Database
	QueriesC []*engine.Query
	QueriesS []*engine.Query
	WLc, WLs *cc.Workload
}

type jobEnv struct {
	Cfg     job.Config
	Schema  *schema.Schema
	DB      *engine.Database
	Queries []*engine.Query
	WL      *cc.Workload
}

// NewEnv builds the TPC-DS side of the environment (the JOB side is built
// lazily by the experiments that need it).
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	tcfg := tpcds.Config{SF: cfg.SF, Seed: cfg.Seed}
	s := tpcds.Schema(tcfg)
	db, err := tpcds.GenerateDB(s, tcfg)
	if err != nil {
		return nil, err
	}
	qc := tpcds.QueriesComplex(s, tcfg, cfg.QueriesWLc)
	qs := tpcds.QueriesSimple(s, tcfg, cfg.QueriesWLs)
	wlc, _, err := engine.WorkloadFromQueries(db, s, "WLc", qc)
	if err != nil {
		return nil, err
	}
	wls, _, err := engine.WorkloadFromQueries(db, s, "WLs", qs)
	if err != nil {
		return nil, err
	}
	_ = start
	return &Env{
		Cfg: cfg,
		TPCDS: &tpcdsEnv{
			Cfg: tcfg, Schema: s, DB: db,
			QueriesC: qc, QueriesS: qs,
			WLc: wlc, WLs: wls,
		},
	}, nil
}

// JOB lazily builds the JOB-side environment.
func (e *Env) JOB() (*jobEnv, error) {
	if e.builtJOB != nil {
		return e.builtJOB, nil
	}
	jcfg := job.Config{SF: e.Cfg.SF, Seed: e.Cfg.Seed}
	s := job.Schema(jcfg)
	db, err := job.GenerateDB(s, jcfg)
	if err != nil {
		return nil, err
	}
	qs := job.Queries(s, jcfg, e.Cfg.QueriesJOB)
	wl, _, err := engine.WorkloadFromQueries(db, s, "JOB", qs)
	if err != nil {
		return nil, err
	}
	e.builtJOB = &jobEnv{Cfg: jcfg, Schema: s, DB: db, Queries: qs, WL: wl}
	return e.builtJOB, nil
}

// histogramTable renders a CountHistogram the way Figures 9 and 16 do.
func histogramTable(id, title string, w *cc.Workload) *Table {
	h := w.CountHistogram()
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"cardinality bucket", "#CCs"},
	}
	for i, n := range h {
		lo := int64(1)
		for k := 0; k < i; k++ {
			lo *= 10
		}
		label := fmt.Sprintf("[%d, %d)", lo, lo*10)
		if i == 0 {
			label = "[0, 10)"
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", n)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total CCs: %d", len(w.CCs)))
	return t
}

// Runner is one experiment entry point.
type Runner func(*Env) (*Table, error)

// Runners maps experiment ids to runners in presentation order.
func Runners() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"sec74", Sec74},
		{"fig15", Fig15},
		{"fig16", Fig16},
		{"fig17", Fig17},
	}
}

// Run executes one experiment by id.
func Run(e *Env, id string) (*Table, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r.Run(e)
		}
	}
	known := make([]string, 0)
	for _, r := range Runners() {
		known = append(known, r.ID)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
}
