package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyEnv builds the smallest environment that exercises every experiment
// path; the full-scale runs happen through cmd/hydra-bench and the root
// benchmarks.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(Config{
		SF:         0.02,
		Seed:       42,
		QueriesWLc: 25,
		QueriesWLs: 15,
		QueriesJOB: 20,
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow; skipped with -short")
	}
	env := tinyEnv(t)
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab, err := r.Run(env)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if tab.ID != r.ID {
				t.Fatalf("table id %q != runner id %q", tab.ID, r.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			if !strings.Contains(buf.String(), tab.Title) {
				t.Fatal("rendered table missing title")
			}
			t.Logf("\n%s", buf.String())
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	env := &Env{}
	if _, err := Run(env, "nope"); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SF <= 0 || c.Seed == 0 || c.QueriesWLc != 131 || c.QueriesJOB != 260 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}
