package exp

import (
	"errors"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"time"

	hydra "github.com/dsl-repro/hydra"
	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/core"
	"github.com/dsl-repro/hydra/internal/datasynth"
	"github.com/dsl-repro/hydra/internal/engine"
	"github.com/dsl-repro/hydra/internal/preprocess"
	"github.com/dsl-repro/hydra/internal/schema"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// scaleWorkload returns a copy of the workload and schema with every CC
// count and row count multiplied by k — the paper's §7.4 methodology
// ("executed the obtained plans ... and scaled the intermediate row counts
// with the appropriate scale factor") implemented over CODD-style scaled
// metadata.
func scaleWorkload(s *schema.Schema, w *cc.Workload, k int64) (*schema.Schema, *cc.Workload) {
	tabs := make([]*schema.Table, len(s.Tables))
	for i, t := range s.Tables {
		nt := *t
		nt.RowCount = t.RowCount * k
		tabs[i] = &nt
	}
	ns := schema.MustNew(tabs...)
	nw := &cc.Workload{Name: w.Name}
	nw.CCs = append([]cc.CC(nil), w.CCs...)
	for i := range nw.CCs {
		nw.CCs[i].Count *= k
	}
	return ns, nw
}

// Fig9 reproduces Figure 9: the distribution of CC cardinalities in WLc.
func Fig9(e *Env) (*Table, error) {
	return histogramTable("fig9", "Distribution of cardinality in CCs (WLc)", e.TPCDS.WLc), nil
}

// Fig16 reproduces Figure 16: the JOB workload's CC cardinalities.
func Fig16(e *Env) (*Table, error) {
	j, err := e.JOB()
	if err != nil {
		return nil, err
	}
	return histogramTable("fig16", "Cardinality distribution of CCs in JOB", j.WL), nil
}

// fig10Thresholds are the relative-error levels the CDF is reported at.
var fig10Thresholds = []float64{0, 0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 1.00}

// Fig10 reproduces Figure 10: the percentage of CCs within each relative
// error, Hydra versus DataSynth, on the simple workload both can solve.
func Fig10(e *Env) (*Table, error) {
	t := e.TPCDS
	hres, err := hydra.Regenerate(t.Schema, t.WLs, hydra.Config{})
	if err != nil {
		return nil, err
	}
	hrep, err := hres.Evaluate(t.WLs)
	if err != nil {
		return nil, err
	}
	dres, err := datasynth.Regenerate(t.Schema, t.WLs, datasynth.Options{Seed: e.Cfg.Seed})
	if err != nil {
		return nil, err
	}
	drep, err := summary.Evaluate(dres.Summary, dres.Views, t.WLs)
	if err != nil {
		return nil, err
	}
	hcdf := summary.ErrorCDF(hrep, fig10Thresholds)
	dcdf := summary.ErrorCDF(drep, fig10Thresholds)
	tab := &Table{
		ID:     "fig10",
		Title:  "Quality of volumetric similarity (WLs): % CCs within relative error",
		Header: []string{"|rel err| ≤", "Hydra %", "DataSynth %"},
	}
	for i, th := range fig10Thresholds {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f%%", th*100),
			fmt.Sprintf("%.1f", hcdf[i]),
			fmt.Sprintf("%.1f", dcdf[i]),
		})
	}
	neg := 0
	for _, r := range drep {
		if r.RelErr < 0 {
			neg++
		}
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("%d CCs; DataSynth has %d negative-error CCs, Hydra none (positive-only additive error)", len(hrep), neg))
	return tab, nil
}

// fig11Tables are the representative relations reported in Figure 11.
var fig11Tables = []string{"store_sales", "catalog_sales", "web_sales", "store_returns", "inventory", "item", "customer"}

// Fig11 reproduces Figure 11: extra tuples inserted to restore referential
// integrity, Hydra versus DataSynth (on WLs, the workload both complete).
func Fig11(e *Env) (*Table, error) {
	t := e.TPCDS
	hres, err := hydra.Regenerate(t.Schema, t.WLs, hydra.Config{})
	if err != nil {
		return nil, err
	}
	dres, err := datasynth.Regenerate(t.Schema, t.WLs, datasynth.Options{Seed: e.Cfg.Seed})
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "fig11",
		Title:  "Extra tuples for referential integrity",
		Header: []string{"relation", "Hydra", "DataSynth"},
	}
	var hTot, dTot int64
	for _, name := range fig11Tables {
		h := hres.Summary.Extra[name]
		d := dres.Summary.Extra[name]
		hTot += h
		dTot += d
		tab.Rows = append(tab.Rows, []string{name, fmt.Sprintf("%d", h), fmt.Sprintf("%d", d)})
	}
	tab.Rows = append(tab.Rows, []string{"(all relations)", fmt.Sprintf("%d", sumExtras(hres.Summary)), fmt.Sprintf("%d", sumExtras(dres.Summary))})
	tab.Notes = append(tab.Notes, "Hydra's insertions are scale-independent; DataSynth's grow with sampling error")
	return tab, nil
}

func sumExtras(s *summary.Summary) int64 {
	var n int64
	for _, e := range s.Extra {
		n += e
	}
	return n
}

// fig12Tables are the relations Figure 12 charts.
var fig12Tables = []string{"catalog_sales", "store_sales", "web_sales", "item", "customer", "date_dim"}

// Fig12 reproduces Figure 12: LP variables per relation under region
// partitioning (Hydra) versus grid partitioning (DataSynth) for WLc.
func Fig12(e *Env) (*Table, error) {
	t := e.TPCDS
	views, err := preprocess.BuildViews(t.Schema, t.WLc)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "fig12",
		Title:  "Number of variables in the LP (WLc)",
		Header: []string{"relation", "Hydra (regions)", "DataSynth (grid)", "ratio"},
	}
	for _, name := range fig12Tables {
		v := views[name]
		f := core.Formulate(v)
		grid := datasynth.GridVars(v)
		ratio := new(big.Float).Quo(new(big.Float).SetInt(grid), big.NewFloat(float64(max1(f.Stats.Vars))))
		tab.Rows = append(tab.Rows, []string{
			name,
			fmt.Sprintf("%d", f.Stats.Vars),
			grid.String(),
			fmt.Sprintf("%.1fx", ratio),
		})
	}
	return tab, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Fig13 reproduces the Figure 13 table: LP processing time for the four
// (technique, workload) combinations; DataSynth on WLc exceeds solver
// capacity ("crash" in the paper).
func Fig13(e *Env) (*Table, error) {
	t := e.TPCDS
	hc, err := hydra.Regenerate(t.Schema, t.WLc, hydra.Config{})
	if err != nil {
		return nil, err
	}
	hs, err := hydra.Regenerate(t.Schema, t.WLs, hydra.Config{})
	if err != nil {
		return nil, err
	}
	dsSimple, err := datasynth.Regenerate(t.Schema, t.WLs, datasynth.Options{Seed: e.Cfg.Seed})
	if err != nil {
		return nil, err
	}
	dsComplexCell := "crash"
	if _, err := datasynth.Regenerate(t.Schema, t.WLc, datasynth.Options{Seed: e.Cfg.Seed}); err != nil {
		var cap *datasynth.ErrSolverCapacity
		if !errors.As(err, &cap) {
			return nil, err
		}
		dsComplexCell = fmt.Sprintf("crash (%v grid cells in %s)", cap.Cells, cap.View)
	} else {
		dsComplexCell = "completed (unexpected)"
	}
	tab := &Table{
		ID:     "fig13",
		Title:  "LP processing time",
		Header: []string{"workload", "DataSynth", "Hydra"},
		Rows: [][]string{
			{"complex (WLc)", dsComplexCell, hc.SolveTime.Round(time.Millisecond).String()},
			{"simple (WLs)", dsSimple.SolveTime.Round(time.Millisecond).String(), hs.SolveTime.Round(time.Millisecond).String()},
		},
	}
	return tab, nil
}

// fig14Scales multiply the base environment size; the paper's 10/100/1000
// GB column becomes relative scale 1/10/100 here.
var fig14Scales = []int64{1, 10, 100}

// Fig14 reproduces the Figure 14 table: full data materialization time,
// Hydra versus DataSynth, across three database scales. Hydra's cost is
// summary construction (scale-free) plus a linear write of generated
// tuples; DataSynth additionally pays sampling proportional to the scale at
// view-instantiation time.
func Fig14(e *Env) (*Table, error) {
	t := e.TPCDS
	dir := e.Cfg.Dir
	tab := &Table{
		ID:     "fig14",
		Title:  "Data materialization time (relative scale ×1, ×10, ×100 of the base instance)",
		Header: []string{"scale", "rows", "DataSynth", "Hydra"},
	}
	for _, k := range fig14Scales {
		ss, ws := scaleWorkload(t.Schema, t.WLs, k)

		hStart := time.Now()
		hres, err := hydra.Regenerate(ss, ws, hydra.Config{})
		if err != nil {
			return nil, err
		}
		rows, err := materializeAll(hres.Summary, filepath.Join(dir, fmt.Sprintf("hydra_x%d", k)))
		if err != nil {
			return nil, err
		}
		hTime := time.Since(hStart)

		dStart := time.Now()
		dres, err := datasynth.Regenerate(ss, ws, datasynth.Options{Seed: e.Cfg.Seed})
		if err != nil {
			return nil, err
		}
		if _, err := materializeAll(dres.Summary, filepath.Join(dir, fmt.Sprintf("ds_x%d", k))); err != nil {
			return nil, err
		}
		dTime := time.Since(dStart)

		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("x%d", k),
			fmt.Sprintf("%d", rows),
			dTime.Round(time.Millisecond).String(),
			hTime.Round(time.Millisecond).String(),
		})
	}
	tab.Notes = append(tab.Notes, "both columns include LP + summary/instantiation + writing every tuple to paged heap files")
	return tab, nil
}

// materializeAll writes every relation of the summary to heap files under
// dir, returning total tuples written.
func materializeAll(s *summary.Summary, dir string) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	var rows int64
	names := make([]string, 0, len(s.Relations))
	for name := range s.Relations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gen := engine.NewGenRelation(tuplegen.New(s.Relations[name]))
		d, err := engine.MaterializeToDisk(gen, filepath.Join(dir, name+".heap"))
		if err != nil {
			return 0, err
		}
		rows += d.NumRows()
	}
	return rows, nil
}

// sec74Scales are powers of ten applied to the base instance; the largest
// models the paper's exabyte scenario (≈10¹⁶ rows at ~100 B/row ≈ 10¹⁸ B).
var sec74Scales = []int64{1, 1e3, 1e6, 1e9, 1e11}

// Sec74 reproduces §7.4: summary construction time as the modeled database
// grows to exabyte volume. The table demonstrates the paper's headline
// claim — the time and the summary size are independent of data scale.
func Sec74(e *Env) (*Table, error) {
	t := e.TPCDS
	tab := &Table{
		ID:     "sec74",
		Title:  "Exabyte-scale summary construction (scale independence)",
		Header: []string{"scale", "total rows", "≈bytes", "summary build", "summary rows", "summary bytes"},
	}
	for _, k := range sec74Scales {
		ss, ws := scaleWorkload(t.Schema, t.WLc, k)
		start := time.Now()
		res, err := hydra.Regenerate(ss, ws, hydra.Config{})
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		var rows int64
		for _, tb := range ss.Tables {
			rows += tb.RowCount
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("x%d", k),
			fmt.Sprintf("%.3g", float64(rows)),
			fmt.Sprintf("%.3g", float64(rows)*100),
			build.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Summary.NumRows()),
			fmt.Sprintf("%d", res.Summary.SizeBytes()),
		})
	}
	return tab, nil
}

// fig15Relations are the five biggest relations of the 100 GB instance,
// as in Figure 15.
var fig15Relations = []string{"store_returns", "web_sales", "inventory", "catalog_sales", "store_sales"}

// Fig15 reproduces the Figure 15 table: time to supply every tuple of a
// relation to the executor via a disk scan of the materialized relation
// versus dynamic generation from the summary, measured with an aggregate
// query over each relation.
func Fig15(e *Env) (*Table, error) {
	t := e.TPCDS
	// Scale so the biggest relation has a few million tuples: big enough
	// for stable timing, small enough for a laptop.
	k := int64(1)
	if base := t.Schema.MustTable("store_sales").RowCount; base < 3_000_000 {
		k = 3_000_000 / base
	}
	ss, ws := scaleWorkload(t.Schema, t.WLs, k)
	res, err := hydra.Regenerate(ss, ws, hydra.Config{})
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(e.Cfg.Dir, "fig15_heap")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	tab := &Table{
		ID:     "fig15",
		Title:  "Data supply times: disk scan vs dynamic generation",
		Header: []string{"relation", "rows (millions)", "size (MB)", "disk scan", "dynamic"},
	}
	for _, name := range fig15Relations {
		rs, ok := res.Summary.Relations[name]
		if !ok {
			return nil, fmt.Errorf("summary has no relation %q", name)
		}
		genRel := engine.NewGenRelation(tuplegen.New(rs))
		disk, err := engine.MaterializeToDisk(genRel, filepath.Join(dir, name+".heap"))
		if err != nil {
			return nil, err
		}
		sz, err := disk.SizeBytes()
		if err != nil {
			return nil, err
		}
		dStart := time.Now()
		dc, _, err := engine.AggregateScan(disk, 1)
		if err != nil {
			return nil, err
		}
		diskTime := time.Since(dStart)
		gStart := time.Now()
		gc, _, err := engine.AggregateScan(genRel, 1)
		if err != nil {
			return nil, err
		}
		genTime := time.Since(gStart)
		if dc != gc {
			return nil, fmt.Errorf("fig15: %s: disk scan %d rows != dynamic %d", name, dc, gc)
		}
		tab.Rows = append(tab.Rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(dc)/1e6),
			fmt.Sprintf("%.0f", float64(sz)/1e6),
			diskTime.Round(time.Millisecond).String(),
			genTime.Round(time.Millisecond).String(),
		})
	}
	return tab, nil
}

// Fig17 reproduces Figure 17: LP variables per JOB view under region
// partitioning, with the grid count for contrast.
func Fig17(e *Env) (*Table, error) {
	j, err := e.JOB()
	if err != nil {
		return nil, err
	}
	views, err := preprocess.BuildViews(j.Schema, j.WL)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	sort.Strings(names)
	tab := &Table{
		ID:     "fig17",
		Title:  "Number of variables for JOB",
		Header: []string{"view", "Hydra (regions)", "DataSynth (grid)"},
	}
	maxVars := 0
	for _, name := range names {
		v := views[name]
		if len(v.CCs) == 0 {
			continue
		}
		f := core.Formulate(v)
		if f.Stats.Vars > maxVars {
			maxVars = f.Stats.Vars
		}
		tab.Rows = append(tab.Rows, []string{
			name,
			fmt.Sprintf("%d", f.Stats.Vars),
			datasynth.GridVars(v).String(),
		})
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("max view variables: %d (paper: never exceeding a hundred thousand)", maxVars))
	return tab, nil
}
