// Package faultinject is a deterministic chaos proxy for fleet tests:
// an http.Handler that forwards to one upstream `hydra serve` member
// and injects composable faults on the way through — connection
// refusal, canned error statuses (500/503 + Retry-After), mid-stream
// cuts, stalls, and byte corruption. Which request draws which fault
// is decided by a Decider, a pure function of the request index (and
// optionally the request itself), so a seeded chaos run injects the
// same fault sequence every time even though request interleaving
// varies.
//
// The proxy exists to prove the resilience layer: a fleet client
// pointed at a faulted member must absorb every injected failure —
// failing over, resuming streams at their row offset, honoring
// Retry-After — with zero client-visible errors and byte-identical
// output. The conformance chaos test and the CI chaos job both drive
// it; `hydra faultproxy` exposes the same proxy as a standalone
// process for manual fleet torture.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// KindNone forwards the request untouched.
	KindNone Kind = iota
	// KindRefuse closes the TCP connection without an HTTP response —
	// what a crashed or unreachable member looks like to a client.
	KindRefuse
	// KindStatus answers a canned error status (Fault.Status, default
	// 500) without contacting the upstream; Fault.RetryAfter, when set,
	// is sent as the Retry-After header — the shape of a 503 capacity
	// burst.
	KindStatus
	// KindCut forwards the response but severs the connection after
	// Fault.AfterBytes body bytes — a mid-stream death the client must
	// resume at its row offset.
	KindCut
	// KindStall forwards Fault.AfterBytes body bytes, then goes silent
	// for Fault.StallFor before severing — a hung member that holds a
	// stream open without progress.
	KindStall
	// KindCorrupt forwards the response with the body byte at offset
	// Fault.AfterBytes overwritten with NUL — torn data the client's
	// decoder must detect rather than deliver.
	KindCorrupt
)

// String implements fmt.Stringer (and the metric label values).
func (k Kind) String() string {
	switch k {
	case KindRefuse:
		return "refuse"
	case KindStatus:
		return "status"
	case KindCut:
		return "cut"
	case KindStall:
		return "stall"
	case KindCorrupt:
		return "corrupt"
	default:
		return "none"
	}
}

// Fault is one injected failure: a kind plus its parameters.
type Fault struct {
	Kind Kind
	// Status is the canned response code for KindStatus (0 = 500).
	Status int
	// RetryAfter, when non-empty, is sent as the Retry-After header
	// with a KindStatus response.
	RetryAfter string
	// AfterBytes positions KindCut/KindStall/KindCorrupt within the
	// response body.
	AfterBytes int64
	// StallFor is KindStall's silent period before the sever.
	StallFor time.Duration
}

// Decider picks the fault for request n (1-based, counted across all
// paths — health probes included, so a "down" window takes the member
// out for probes and streams alike). Deciders must be safe for
// concurrent use; the provided constructors are pure functions of
// (seed, n) and therefore trivially safe.
type Decider func(n int64, r *http.Request) Fault

// Healthy returns a Decider that never injects.
func Healthy() Decider {
	return func(int64, *http.Request) Fault { return Fault{} }
}

// Always returns a Decider that injects f on every request.
func Always(f Fault) Decider {
	return func(int64, *http.Request) Fault { return f }
}

// Flaky returns a Decider that injects one of faults with probability
// p per request, drawn deterministically from (seed, n): the same seed
// replays the same fault sequence regardless of timing.
func Flaky(seed int64, p float64, faults ...Fault) Decider {
	return func(n int64, _ *http.Request) Fault {
		if len(faults) == 0 {
			return Fault{}
		}
		rng := rand.New(rand.NewSource(seed ^ (n * 0x5851F42D4C957F2D)))
		if rng.Float64() >= p {
			return Fault{}
		}
		return faults[rng.Intn(len(faults))]
	}
}

// Flap returns a Decider that injects f for the first faultyFor of
// every period requests — a member that goes down, comes back, and
// goes down again, keyed to request count so the flap is deterministic
// under a fixed workload.
func Flap(period, faultyFor int64, f Fault) Decider {
	if period < 1 {
		period = 1
	}
	return func(n int64, _ *http.Request) Fault {
		if (n-1)%period < faultyFor {
			return f
		}
		return Fault{}
	}
}

// ExemptHealth wraps a Decider so /healthz probes always pass through
// clean — a member whose data plane misbehaves while its health check
// lies, the hardest case for a breaker-only client.
func ExemptHealth(d Decider) Decider {
	return func(n int64, r *http.Request) Fault {
		if r != nil && r.URL.Path == "/healthz" {
			return Fault{}
		}
		return d(n, r)
	}
}

// injected counts injections by fault kind.
var injected = func() map[Kind]*obs.Counter {
	m := make(map[Kind]*obs.Counter)
	for _, k := range []Kind{KindNone, KindRefuse, KindStatus, KindCut, KindStall, KindCorrupt} {
		m[k] = obs.Default.Counter("hydra_faultinject_injected_total",
			"faults injected by the chaos proxy, by kind", obs.L("kind", k.String()))
	}
	return m
}()

// ctxKey carries the chosen Fault from ServeHTTP to ModifyResponse.
type ctxKey struct{}

// Proxy is the chaos proxy: an http.Handler forwarding to one
// upstream with faults injected per the Decider.
type Proxy struct {
	upstream *url.URL
	decide   Decider
	rp       *httputil.ReverseProxy
	n        atomic.Int64
}

// New builds a Proxy for the upstream base URL. A nil decide means
// Healthy (pure pass-through).
func New(upstream string, decide Decider) (*Proxy, error) {
	u, err := url.Parse(strings.TrimRight(upstream, "/"))
	if err != nil {
		return nil, fmt.Errorf("faultinject: upstream URL %q: %w", upstream, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("faultinject: upstream URL %q: want http(s)://host[:port]", upstream)
	}
	if decide == nil {
		decide = Healthy()
	}
	p := &Proxy{upstream: u, decide: decide}
	p.rp = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) { pr.SetURL(u) },
		// Streams must flush chunk by chunk, exactly as serve wrote them;
		// buffering would change where a cut lands.
		FlushInterval: -1,
		ModifyResponse: func(resp *http.Response) error {
			f, _ := resp.Request.Context().Value(ctxKey{}).(Fault)
			switch f.Kind {
			case KindCut:
				resp.Body = &cutReader{rc: resp.Body, left: f.AfterBytes}
			case KindStall:
				resp.Body = &stallReader{
					rc: resp.Body, left: f.AfterBytes,
					wait: f.StallFor, ctx: resp.Request.Context(),
				}
			case KindCorrupt:
				resp.Body = &corruptReader{rc: resp.Body, at: f.AfterBytes}
			}
			return nil
		},
		// Upstream dial errors and injected severs are the point of the
		// exercise; keep them off the test log.
		ErrorLog: log.New(io.Discard, "", 0),
	}
	return p, nil
}

// Requests returns how many requests the proxy has seen.
func (p *Proxy) Requests() int64 { return p.n.Load() }

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f := p.decide(p.n.Add(1), r)
	injected[f.Kind].Inc()
	switch f.Kind {
	case KindRefuse:
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	case KindStatus:
		status := f.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		if f.RetryAfter != "" {
			w.Header().Set("Retry-After", f.RetryAfter)
		}
		http.Error(w, "faultinject: injected "+http.StatusText(status), status)
		return
	}
	// ReverseProxy severs the connection (panic ErrAbortHandler) when a
	// wrapped body errors mid-copy — exactly the torn stream we want the
	// client to see.
	p.rp.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKey{}, f)))
}

// errInjected is what the fault readers fail with; ReverseProxy turns
// it into a severed connection.
var errInjected = errors.New("faultinject: injected stream death")

// cutReader delivers left bytes, then dies.
type cutReader struct {
	rc   io.ReadCloser
	left int64
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.left <= 0 {
		return 0, errInjected
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.rc.Read(p)
	c.left -= int64(n)
	return n, err
}

func (c *cutReader) Close() error { return c.rc.Close() }

// stallReader delivers left bytes, goes silent for wait, then dies —
// unless the request context ends first (client gave up).
type stallReader struct {
	rc   io.ReadCloser
	left int64
	wait time.Duration
	ctx  context.Context
}

func (s *stallReader) Read(p []byte) (int, error) {
	if s.left <= 0 {
		t := time.NewTimer(s.wait)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.ctx.Done():
		}
		return 0, errInjected
	}
	if int64(len(p)) > s.left {
		p = p[:s.left]
	}
	n, err := s.rc.Read(p)
	s.left -= int64(n)
	return n, err
}

func (s *stallReader) Close() error { return s.rc.Close() }

// corruptReader passes the body through with the byte at offset at
// overwritten by NUL — never a valid byte inside a csv of integers, so
// the client's decoder must notice.
type corruptReader struct {
	rc  io.ReadCloser
	at  int64
	off int64
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 && c.at >= c.off && c.at < c.off+int64(n) {
		p[c.at-c.off] = 0
	}
	c.off += int64(n)
	return n, err
}

func (c *corruptReader) Close() error { return c.rc.Close() }
