package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstream serves a fixed 4KiB body so fault positions are easy to
// check.
func upstream(t *testing.T) (*httptest.Server, []byte) {
	t.Helper()
	body := bytes.Repeat([]byte("0123456789abcdef"), 256)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts, body
}

func proxyFor(t *testing.T, up string, d Decider) *httptest.Server {
	t.Helper()
	p, err := New(up, d)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts
}

func TestPassThrough(t *testing.T) {
	up, body := upstream(t)
	px := proxyFor(t, up.URL, nil)
	resp, err := http.Get(px.URL + "/data")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("pass-through body differs: %d bytes, want %d", len(got), len(body))
	}
}

func TestRefuse(t *testing.T) {
	up, _ := upstream(t)
	px := proxyFor(t, up.URL, Always(Fault{Kind: KindRefuse}))
	if _, err := http.Get(px.URL + "/data"); err == nil {
		t.Fatal("refused request succeeded")
	}
}

func TestStatus(t *testing.T) {
	up, _ := upstream(t)
	px := proxyFor(t, up.URL, Always(Fault{
		Kind: KindStatus, Status: http.StatusServiceUnavailable, RetryAfter: "7",
	}))
	resp, err := http.Get(px.URL + "/data")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
}

func TestCutTruncates(t *testing.T) {
	up, _ := upstream(t)
	px := proxyFor(t, up.URL, Always(Fault{Kind: KindCut, AfterBytes: 100}))
	resp, err := http.Get(px.URL + "/data")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("cut stream read to completion without error")
	}
	if len(got) > 100 {
		t.Fatalf("cut after 100 bytes delivered %d", len(got))
	}
}

func TestStallDelaysThenDies(t *testing.T) {
	up, _ := upstream(t)
	px := proxyFor(t, up.URL, Always(Fault{
		Kind: KindStall, AfterBytes: 50, StallFor: 300 * time.Millisecond,
	}))
	t0 := time.Now()
	resp, err := http.Get(px.URL + "/data")
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("stalled stream read to completion without error")
	}
	if d := time.Since(t0); d < 250*time.Millisecond {
		t.Fatalf("stalled stream died after %v, want >= ~300ms", d)
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	up, body := upstream(t)
	px := proxyFor(t, up.URL, Always(Fault{Kind: KindCorrupt, AfterBytes: 1000}))
	resp, err := http.Get(px.URL + "/data")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(body) {
		t.Fatalf("corrupt body length %d, want %d", len(got), len(body))
	}
	if got[1000] != 0 {
		t.Fatalf("byte 1000 = %#x, want NUL", got[1000])
	}
	diffs := 0
	for i := range got {
		if got[i] != body[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diffs)
	}
}

// TestFlakyDeterministic: the same (seed, n) always draws the same
// fault; a different seed draws a different sequence.
func TestFlakyDeterministic(t *testing.T) {
	faults := []Fault{{Kind: KindRefuse}, {Kind: KindCut, AfterBytes: 64}}
	a := Flaky(42, 0.5, faults...)
	b := Flaky(42, 0.5, faults...)
	other := Flaky(43, 0.5, faults...)
	same, diff := true, true
	for n := int64(1); n <= 200; n++ {
		if a(n, nil) != b(n, nil) {
			same = false
		}
		if a(n, nil) != other(n, nil) {
			diff = false
		}
	}
	if !same {
		t.Fatal("same seed produced different fault sequences")
	}
	if diff {
		t.Fatal("different seeds produced identical fault sequences")
	}
	injectedSome := false
	for n := int64(1); n <= 200; n++ {
		if a(n, nil).Kind != KindNone {
			injectedSome = true
			break
		}
	}
	if !injectedSome {
		t.Fatal("p=0.5 over 200 requests injected nothing")
	}
}

func TestFlapWindows(t *testing.T) {
	d := Flap(10, 3, Fault{Kind: KindRefuse})
	for n := int64(1); n <= 30; n++ {
		want := KindNone
		if (n-1)%10 < 3 {
			want = KindRefuse
		}
		if got := d(n, nil).Kind; got != want {
			t.Fatalf("request %d: kind %v, want %v", n, got, want)
		}
	}
}

func TestExemptHealth(t *testing.T) {
	d := ExemptHealth(Always(Fault{Kind: KindRefuse}))
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	if got := d(1, hreq).Kind; got != KindNone {
		t.Fatalf("/healthz drew %v, want none", got)
	}
	sreq := httptest.NewRequest(http.MethodGet, "/v1/tables/T", nil)
	if got := d(2, sreq).Kind; got != KindRefuse {
		t.Fatalf("stream drew %v, want refuse", got)
	}
}

func TestNewRejectsBadUpstream(t *testing.T) {
	for _, u := range []string{"", "nope", "ftp://x", "http://"} {
		if _, err := New(u, nil); err == nil {
			t.Errorf("upstream %q accepted, want error", u)
		}
	}
}

func TestProxyCountsRequests(t *testing.T) {
	up, _ := upstream(t)
	p, err := New(up.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := p.Requests(); got != 3 {
		t.Fatalf("Requests() = %d, want 3", got)
	}
	if !strings.HasPrefix(up.URL, "http://") {
		t.Fatal("unexpected upstream scheme")
	}
}
