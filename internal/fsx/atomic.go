// Package fsx holds small filesystem helpers shared by the I/O layers:
// the root facade's schema/workload documents, the summary serializer, and
// the matgen shard manifests all funnel writes through WriteAtomic so a
// crash mid-write never leaves a truncated artifact behind.
package fsx

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// syncFile is the durability barrier between writing the temp file and
// renaming it into place: without it a crash shortly after the rename
// can leave the new name pointing at an empty file on journaled
// filesystems. A variable so tests can observe that the barrier runs,
// and runs before the rename.
var syncFile = func(f *os.File) error { return f.Sync() }

// WriteAtomic writes a file by streaming into a temp file in the target
// directory, fsyncing it, and renaming it into place, then fsyncing the
// directory so the new name itself survives a crash. Readers therefore
// observe either the old content or the complete new content, never a
// partial or empty write. On any error the temp file is removed and the
// original path is untouched.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// CreateTemp's 0600 would stick after the rename; match os.Create's
	// permissions so the swap-in is invisible to downstream readers.
	err = f.Chmod(0o644)
	bw := bufio.NewWriter(f)
	if err == nil {
		err = write(bw)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = syncFile(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// filesystems reject fsync on directories; the rename is still atomic
// there, so those errors are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EBADF)) {
		return nil
	}
	return err
}
