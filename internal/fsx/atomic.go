// Package fsx holds small filesystem helpers shared by the I/O layers:
// the root facade's schema/workload documents, the summary serializer, and
// the matgen shard manifests all funnel writes through WriteAtomic so a
// crash mid-write never leaves a truncated artifact behind.
package fsx

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic writes a file by streaming into a temp file in the target
// directory and renaming it into place. Readers therefore observe either
// the old content or the complete new content, never a partial write. On
// any error the temp file is removed and the original path is untouched.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// CreateTemp's 0600 would stick after the rename; match os.Create's
	// permissions so the swap-in is invisible to downstream readers.
	err = f.Chmod(0o644)
	bw := bufio.NewWriter(f)
	if err == nil {
		err = write(bw)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
