package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	for _, content := range []string{"first", "second, longer than the first"} {
		if err := WriteAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
}

// TestWriteAtomicFailureKeepsOriginal is the crash-safety contract: a
// failed write must leave the previous file intact and no temp debris.
func TestWriteAtomicFailureKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	if err := os.WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write failure")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "intact" {
		t.Fatalf("original clobbered: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp debris left behind: %v", entries)
	}
}
