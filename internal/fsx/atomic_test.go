package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	for _, content := range []string{"first", "second, longer than the first"} {
		if err := WriteAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
}

// TestWriteAtomicSyncsBeforeRename pins the durability ordering: the
// temp file must be fsynced while it still has its temp name — i.e.
// before the rename publishes it — so a crash right after the rename
// cannot expose an empty or partial manifest under the final name.
func TestWriteAtomicSyncsBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	orig := syncFile
	defer func() { syncFile = orig }()
	synced := 0
	syncFile = func(f *os.File) error {
		synced++
		if f.Name() == path {
			t.Fatalf("sync ran on the final path %s; must run on the temp file before rename", f.Name())
		}
		if filepath.Dir(f.Name()) != dir {
			t.Fatalf("sync ran on %s, outside the target directory", f.Name())
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("final path already exists at sync time: rename happened before fsync")
		}
		return f.Sync()
	}
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "durable")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if synced != 1 {
		t.Fatalf("sync path exercised %d times, want 1", synced)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "durable" {
		t.Fatalf("content = %q, %v", got, err)
	}
}

// TestWriteAtomicSyncFailureAborts: a failed fsync must abort the write,
// leave the original intact, and remove the temp file — an unsynced
// manifest must never be renamed into place.
func TestWriteAtomicSyncFailureAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	orig := syncFile
	defer func() { syncFile = orig }()
	boom := errors.New("disk on fire")
	syncFile = func(*os.File) error { return boom }
	err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "lost")
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sync failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "intact" {
		t.Fatalf("original clobbered: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp debris left behind: %v", entries)
	}
}

// TestWriteAtomicFailureKeepsOriginal is the crash-safety contract: a
// failed write must leave the previous file intact and no temp debris.
func TestWriteAtomicFailureKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	if err := os.WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write failure")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "intact" {
		t.Fatalf("original clobbered: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp debris left behind: %v", entries)
	}
}
