package fsx

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
)

// HashFile returns the hex SHA-256 and size of the file at path — the
// verification side of the checksums matgen records in shard manifests.
func HashFile(path string) (sum string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
