// Package loadgen drives concurrent resumable scans against any scan
// backend — a loaded summary, a materialized directory, a serve fleet —
// and reports throughput and latency percentiles. It is the load half
// of the observability story: serve's /metrics histograms describe what
// a fleet member experienced, loadgen's report describes what a client
// population experienced, and CI runs both against each other to put
// p50/p99 numbers next to every change.
//
// The workload is deterministic for a given seed: each worker draws
// tables and pk ranges from its own seeded generator, so two runs
// against the same backend issue the same request sequence (request
// interleaving still depends on timing, as in any load test).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/scan"
	"github.com/dsl-repro/hydra/internal/trace"
)

// Options tunes one load run.
type Options struct {
	// Source is the backend under load. Required; the caller keeps
	// ownership (loadgen never closes it).
	Source scan.Source
	// Tables restricts the workload to a subset of relations (all when
	// nil). Unknown names are an error.
	Tables []string
	// Concurrency is the number of workers issuing scans back to back;
	// 0 means DefaultConcurrency.
	Concurrency int
	// Duration bounds the run's wall time; 0 means DefaultDuration.
	// Requests in flight at the deadline are drained, not aborted, so
	// every latency sample covers a whole request.
	Duration time.Duration
	// RowsPerRequest is each scan's pk-range size; 0 means
	// DefaultRowsPerRequest. Ranges starting near a table's end are
	// clamped and therefore shorter.
	RowsPerRequest int64
	// BatchRows sets the scans' batch granularity (0 = backend default).
	BatchRows int
	// MaxRequests stops the run after this many requests even if
	// Duration has not elapsed (0 = unlimited); the knob CI smoke tests
	// use to bound work deterministically.
	MaxRequests int64
	// Seed makes the request sequence reproducible; 0 means seed 1.
	Seed int64
}

// DefaultConcurrency is the worker count when Options leaves it zero.
const DefaultConcurrency = 8

// DefaultDuration bounds a run when Options leaves it zero.
const DefaultDuration = 10 * time.Second

// DefaultRowsPerRequest is each request's pk-range size when Options
// leaves it zero.
const DefaultRowsPerRequest = 10_000

// maxErrorSamples bounds how many distinct failure messages the report
// carries; the count is exact either way.
const maxErrorSamples = 5

// Latency summarizes the merged request-latency distribution, in
// seconds. Percentiles are nearest-rank over the raw samples — exact,
// not bucket-estimated, since loadgen keeps every sample.
type Latency struct {
	P50  float64 `json:"p50_s"`
	P95  float64 `json:"p95_s"`
	P99  float64 `json:"p99_s"`
	P999 float64 `json:"p999_s"`
	Max  float64 `json:"max_s"`
	Mean float64 `json:"mean_s"`
}

// Report is one load run's outcome.
type Report struct {
	Backend     string  `json:"backend,omitempty"`
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Rows        int64   `json:"rows"`
	ElapsedSec  float64 `json:"elapsed_s"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	ReqPerSec   float64 `json:"requests_per_sec"`
	Latency     Latency `json:"latency"`
	// ErrorSamples holds up to a handful of failure messages — enough to
	// diagnose, bounded so a pathological run cannot balloon the report.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// ErrorsByCategory breaks Errors down by coarse failure class
	// (refused / truncated / busy / timeout / spec / other), so a chaos
	// run reports what was absorbed, not just a count.
	ErrorsByCategory map[string]int64 `json:"errors_by_category,omitempty"`
	// SlowTraces links the run's worst requests to their span trees:
	// the p99.9-rank and slowest samples' trace ids, resolvable against
	// the flight recorder (`hydra traces`, GET /debug/traces) — a bench
	// regression or CI failure points straight at a waterfall.
	SlowTraces []TraceRef `json:"slow_traces,omitempty"`
}

// TraceRef names one request's trace: enough to fetch its span tree.
type TraceRef struct {
	// Rank is which latency statistic this request was: "max" or "p999".
	Rank    string  `json:"rank"`
	TraceID string  `json:"trace_id"`
	Seconds float64 `json:"seconds"`
	Table   string  `json:"table"`
}

// Categorize maps one request failure onto the report's coarse error
// classes. The classes are deliberately few: "refused" (could not
// reach or keep a connection), "truncated" (a stream died or tore
// mid-body), "busy" (capacity 503s exhausted the retry budget),
// "timeout" (deadline expired), "spec" (the request itself was
// rejected), "other" (everything else).
func Categorize(err error) string {
	if err == nil {
		return ""
	}
	var ne net.Error
	switch {
	case errors.Is(err, scan.ErrSpec):
		return "spec"
	case errors.Is(err, context.DeadlineExceeded), errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	case errors.Is(err, io.ErrUnexpectedEOF):
		return "truncated"
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unexpected EOF"),
		strings.Contains(msg, "csv row"),
		strings.Contains(msg, "csv cell"):
		return "truncated"
	case strings.Contains(msg, "503"),
		strings.Contains(msg, "Service Unavailable"):
		return "busy"
	case strings.Contains(msg, "connection refused"),
		strings.Contains(msg, "connection reset"),
		strings.Contains(msg, "EOF"),
		strings.Contains(msg, "no fleet member available"):
		return "refused"
	case strings.Contains(msg, "timeout"),
		strings.Contains(msg, "deadline"):
		return "timeout"
	}
	return "other"
}

// workload is one resolved target: a table and its cardinality.
type workload struct {
	table string
	rows  int64
}

// Run drives the load and blocks until the run completes. The context
// aborts in-flight scans early; a context-canceled run still returns
// the report accumulated so far alongside ctx's error.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Source == nil {
		return nil, errors.New("loadgen: Source is required")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = DefaultConcurrency
	}
	dur := opts.Duration
	if dur <= 0 {
		dur = DefaultDuration
	}
	perReq := opts.RowsPerRequest
	if perReq <= 0 {
		perReq = DefaultRowsPerRequest
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	targets, err := resolveTargets(opts.Source, opts.Tables)
	if err != nil {
		return nil, err
	}

	deadline := time.NewTimer(dur)
	defer deadline.Stop()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-deadline.C:
		case <-runCtx.Done():
		}
		cancel()
	}()

	var (
		budget   = newRequestBudget(opts.MaxRequests)
		mu       sync.Mutex
		requests int64
		errCount int64
		rows     int64
		samples  []sample
		errMsgs  []string
		errCats  map[string]int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < conc; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(k)*1_000_003))
			var localSamples []sample
			var localReqs, localErrs, localRows int64
			var localMsgs []string
			localCats := make(map[string]int64)
			for runCtx.Err() == nil && budget.take() {
				wl := targets[rng.Intn(len(targets))]
				startPK := 1 + rng.Int63n(wl.rows)
				endPK := startPK + perReq - 1
				if endPK > wl.rows {
					endPK = wl.rows
				}
				// Each request is a root trace: the backend's scan span
				// (and, remotely, per-attempt spans) nests inside, and
				// the id links a latency sample to its span tree.
				rctx, sp := trace.Start(runCtx, "loadgen.request",
					trace.Str("table", wl.table))
				t0 := time.Now()
				n, err := oneScan(rctx, opts.Source, scan.Spec{
					Table: wl.table, StartPK: startPK, EndPK: endPK,
					BatchRows: opts.BatchRows,
				})
				d := time.Since(t0)
				sp.Fail(err)
				sp.End()
				localRows += n
				// A request the deadline interrupted is neither a whole
				// sample nor a backend failure; drop it.
				if runCtx.Err() != nil && err != nil {
					break
				}
				localReqs++
				localSamples = append(localSamples, sample{
					sec: d.Seconds(), traceID: sp.TraceID(), table: wl.table})
				if err != nil {
					localErrs++
					localCats[Categorize(err)]++
					if len(localMsgs) < maxErrorSamples {
						localMsgs = append(localMsgs, err.Error())
					}
				}
			}
			mu.Lock()
			requests += localReqs
			errCount += localErrs
			rows += localRows
			samples = append(samples, localSamples...)
			for _, m := range localMsgs {
				if len(errMsgs) < maxErrorSamples {
					errMsgs = append(errMsgs, m)
				}
			}
			for cat, n := range localCats {
				if errCats == nil {
					errCats = make(map[string]int64)
				}
				errCats[cat] += n
			}
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lat, slow := summarize(samples)
	rep := &Report{
		Concurrency: conc,
		Requests:    requests,
		Errors:      errCount,
		Rows:        rows,
		ElapsedSec:  elapsed.Seconds(),
		RowsPerSec:  obs.PerSec(rows, elapsed),
		ReqPerSec:   obs.PerSec(requests, elapsed),
		Latency:     lat,
		SlowTraces:  slow,
	}
	sort.Strings(errMsgs)
	rep.ErrorSamples = errMsgs
	rep.ErrorsByCategory = errCats
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// oneScan issues one ranged scan and drains it, returning the rows read.
func oneScan(ctx context.Context, src scan.Source, spec scan.Spec) (int64, error) {
	sc, err := src.Scan(ctx, spec)
	if err != nil {
		return 0, err
	}
	defer sc.Close()
	var n int64
	for sc.Next() {
		n += int64(sc.Batch().N)
	}
	return n, sc.Err()
}

// resolveTargets validates the table subset against the source.
func resolveTargets(src scan.Source, tables []string) ([]workload, error) {
	names := tables
	if len(names) == 0 {
		var err error
		if names, err = src.Tables(); err != nil {
			return nil, fmt.Errorf("loadgen: list tables: %w", err)
		}
	}
	if len(names) == 0 {
		return nil, errors.New("loadgen: source has no tables")
	}
	targets := make([]workload, 0, len(names))
	for _, name := range names {
		info, err := src.Table(name)
		if err != nil {
			return nil, fmt.Errorf("loadgen: table %q: %w", name, err)
		}
		if info.Rows < 1 {
			continue
		}
		targets = append(targets, workload{table: name, rows: info.Rows})
	}
	if len(targets) == 0 {
		return nil, errors.New("loadgen: every selected table is empty")
	}
	return targets, nil
}

// requestBudget caps total requests across workers (no-op when max<=0).
type requestBudget struct {
	mu   sync.Mutex
	left int64
	cap  bool
}

func newRequestBudget(max int64) *requestBudget {
	return &requestBudget{left: max, cap: max > 0}
}

func (b *requestBudget) take() bool {
	if !b.cap {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.left <= 0 {
		return false
	}
	b.left--
	return true
}

// summarize computes the nearest-rank percentiles over raw samples.
// sample is one completed request: its latency plus the trace that can
// explain it.
type sample struct {
	sec     float64
	traceID string
	table   string
}

func summarize(samples []sample) (Latency, []TraceRef) {
	if len(samples) == 0 {
		return Latency{}, nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].sec < samples[j].sec })
	var total float64
	for _, s := range samples {
		total += s.sec
	}
	rankIdx := func(q float64) int {
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return i
	}
	rank := func(q float64) float64 { return samples[rankIdx(q)].sec }
	lat := Latency{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		P999: rank(0.999),
		Max:  samples[len(samples)-1].sec,
		Mean: total / float64(len(samples)),
	}
	// The tail's names: the slowest request and the p99.9-rank one
	// (when distinct), so the report links straight into the flight
	// recorder. The slowest-N keep rule makes the max trace near-certain
	// to still be retained.
	maxS := samples[len(samples)-1]
	slow := []TraceRef{{Rank: "max", TraceID: maxS.traceID, Seconds: maxS.sec, Table: maxS.table}}
	if p := samples[rankIdx(0.999)]; p.traceID != maxS.traceID {
		slow = append(slow, TraceRef{Rank: "p999", TraceID: p.traceID, Seconds: p.sec, Table: p.table})
	}
	return lat, slow
}

// WriteHuman renders the report the way `hydra loadgen` prints it:
// totals, throughput, exact percentiles, per-category error counts
// alongside the total, sampled error messages, and the slow-trace
// handles into the flight recorder.
func (r *Report) WriteHuman(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %s backend, %d workers, %d requests (%d rows) in %.1fs\n",
		r.Backend, r.Concurrency, r.Requests, r.Rows, r.ElapsedSec)
	fmt.Fprintf(w, "  throughput  %.0f rows/s, %.1f requests/s\n", r.RowsPerSec, r.ReqPerSec)
	fmt.Fprintf(w, "  latency     p50 %s  p95 %s  p99 %s  p99.9 %s  max %s\n",
		fmtSeconds(r.Latency.P50), fmtSeconds(r.Latency.P95),
		fmtSeconds(r.Latency.P99), fmtSeconds(r.Latency.P999), fmtSeconds(r.Latency.Max))
	if r.Errors > 0 {
		cats := make([]string, 0, len(r.ErrorsByCategory))
		for cat := range r.ErrorsByCategory {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
		parts := make([]string, 0, len(cats))
		for _, cat := range cats {
			parts = append(parts, fmt.Sprintf("%s %d", cat, r.ErrorsByCategory[cat]))
		}
		fmt.Fprintf(w, "  errors      %d (%s)\n", r.Errors, strings.Join(parts, ", "))
		for _, msg := range r.ErrorSamples {
			fmt.Fprintf(w, "  error: %s\n", msg)
		}
	} else {
		fmt.Fprintf(w, "  errors      0\n")
	}
	for _, ref := range r.SlowTraces {
		fmt.Fprintf(w, "  trace       %-5s %s  %s  %s\n",
			ref.Rank, fmtSeconds(ref.Seconds), ref.Table, ref.TraceID)
	}
}

// fmtSeconds renders a latency statistic with duration units.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
