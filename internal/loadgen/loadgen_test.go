package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/scan"
	"github.com/dsl-repro/hydra/internal/summary"
)

// testSummary mirrors the scan package's fixture: two relations, small
// enough to scan in microseconds, so MaxRequests (not Duration) bounds
// the runs below.
func testSummary() *summary.Summary {
	tRel := &summary.RelationSummary{
		Table: "T", Cols: []string{"C"},
		Rows: []summary.RelRow{
			{Vals: []int64{2}, Count: 900},
			{Vals: []int64{7}, Count: 613},
		},
		Total: 1513,
	}
	sRel := &summary.RelationSummary{
		Table: "S", Cols: []string{"A", "B"}, FKCols: []string{"t_fk"}, FKRefs: []string{"T"},
		Rows: []summary.RelRow{
			{Vals: []int64{20, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 3001},
			{Vals: []int64{20, 40}, FKs: []int64{901}, FKSpans: []int64{613}, Count: 2500},
			{Vals: []int64{61, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 2707},
		},
		Total: 8208,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"S": sRel, "T": tRel}}
}

func TestRunAgainstSummarySource(t *testing.T) {
	src := scan.NewSummarySource(testSummary())
	rep, err := Run(context.Background(), Options{
		Source:         src,
		Concurrency:    4,
		Duration:       30 * time.Second, // the request budget ends the run long before this
		RowsPerRequest: 500,
		MaxRequests:    50,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case rep.Requests != 50:
		t.Fatalf("requests %d, want 50", rep.Requests)
	case rep.Errors != 0:
		t.Fatalf("errors %d: %v", rep.Errors, rep.ErrorSamples)
	case rep.Rows <= 0:
		t.Fatalf("rows %d", rep.Rows)
	case rep.RowsPerSec <= 0 || rep.ReqPerSec <= 0:
		t.Fatalf("rates %+v", rep)
	case rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99:
		t.Fatalf("latency not ordered: %+v", rep.Latency)
	case rep.Concurrency != 4:
		t.Fatalf("concurrency %d", rep.Concurrency)
	}
}

func TestRunTableSubsetAndErrors(t *testing.T) {
	src := scan.NewSummarySource(testSummary())
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("no error without a Source")
	}
	if _, err := Run(context.Background(), Options{Source: src, Tables: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown table error = %v", err)
	}
	rep, err := Run(context.Background(), Options{
		Source: src, Tables: []string{"T"},
		Concurrency: 2, MaxRequests: 8, RowsPerRequest: 100,
		Duration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 8 || rep.Errors != 0 {
		t.Fatalf("report %+v", rep)
	}
	// Ranges are clamped to T's 1513 rows; 8 requests of <=100 rows each.
	if rep.Rows <= 0 || rep.Rows > 8*100 {
		t.Fatalf("rows %d out of range for 8x100-row requests", rep.Rows)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Options{Source: scan.NewSummarySource(testSummary()), Duration: 30 * time.Second})
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if rep == nil {
		t.Fatal("canceled run returned no report")
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var samples []float64
	for i := 1; i <= 1000; i++ {
		samples = append(samples, float64(i))
	}
	l := summarize(samples)
	if l.P50 != 500 || l.P95 != 950 || l.P99 != 990 || l.P999 != 999 || l.Max != 1000 {
		t.Fatalf("percentiles %+v", l)
	}
	if l.Mean != 500.5 {
		t.Fatalf("mean %v", l.Mean)
	}
	if got := summarize(nil); got != (Latency{}) {
		t.Fatalf("empty summarize %+v", got)
	}
}
