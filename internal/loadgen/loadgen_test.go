package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/scan"
	"github.com/dsl-repro/hydra/internal/summary"
)

// testSummary mirrors the scan package's fixture: two relations, small
// enough to scan in microseconds, so MaxRequests (not Duration) bounds
// the runs below.
func testSummary() *summary.Summary {
	tRel := &summary.RelationSummary{
		Table: "T", Cols: []string{"C"},
		Rows: []summary.RelRow{
			{Vals: []int64{2}, Count: 900},
			{Vals: []int64{7}, Count: 613},
		},
		Total: 1513,
	}
	sRel := &summary.RelationSummary{
		Table: "S", Cols: []string{"A", "B"}, FKCols: []string{"t_fk"}, FKRefs: []string{"T"},
		Rows: []summary.RelRow{
			{Vals: []int64{20, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 3001},
			{Vals: []int64{20, 40}, FKs: []int64{901}, FKSpans: []int64{613}, Count: 2500},
			{Vals: []int64{61, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 2707},
		},
		Total: 8208,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"S": sRel, "T": tRel}}
}

func TestRunAgainstSummarySource(t *testing.T) {
	src := scan.NewSummarySource(testSummary())
	rep, err := Run(context.Background(), Options{
		Source:         src,
		Concurrency:    4,
		Duration:       30 * time.Second, // the request budget ends the run long before this
		RowsPerRequest: 500,
		MaxRequests:    50,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case rep.Requests != 50:
		t.Fatalf("requests %d, want 50", rep.Requests)
	case rep.Errors != 0:
		t.Fatalf("errors %d: %v", rep.Errors, rep.ErrorSamples)
	case rep.Rows <= 0:
		t.Fatalf("rows %d", rep.Rows)
	case rep.RowsPerSec <= 0 || rep.ReqPerSec <= 0:
		t.Fatalf("rates %+v", rep)
	case rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99:
		t.Fatalf("latency not ordered: %+v", rep.Latency)
	case rep.Concurrency != 4:
		t.Fatalf("concurrency %d", rep.Concurrency)
	}
}

func TestRunTableSubsetAndErrors(t *testing.T) {
	src := scan.NewSummarySource(testSummary())
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("no error without a Source")
	}
	if _, err := Run(context.Background(), Options{Source: src, Tables: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown table error = %v", err)
	}
	rep, err := Run(context.Background(), Options{
		Source: src, Tables: []string{"T"},
		Concurrency: 2, MaxRequests: 8, RowsPerRequest: 100,
		Duration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 8 || rep.Errors != 0 {
		t.Fatalf("report %+v", rep)
	}
	// Ranges are clamped to T's 1513 rows; 8 requests of <=100 rows each.
	if rep.Rows <= 0 || rep.Rows > 8*100 {
		t.Fatalf("rows %d out of range for 8x100-row requests", rep.Rows)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Options{Source: scan.NewSummarySource(testSummary()), Duration: 30 * time.Second})
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if rep == nil {
		t.Fatal("canceled run returned no report")
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var samples []sample
	for i := 1; i <= 1000; i++ {
		samples = append(samples, sample{sec: float64(i), traceID: fmt.Sprintf("t%04d", i), table: "orders"})
	}
	l, slow := summarize(samples)
	if l.P50 != 500 || l.P95 != 950 || l.P99 != 990 || l.P999 != 999 || l.Max != 1000 {
		t.Fatalf("percentiles %+v", l)
	}
	if l.Mean != 500.5 {
		t.Fatalf("mean %v", l.Mean)
	}
	// The tail's handles: the slowest request and the distinct p999 one.
	if len(slow) != 2 || slow[0].Rank != "max" || slow[0].TraceID != "t1000" ||
		slow[1].Rank != "p999" || slow[1].TraceID != "t0999" {
		t.Fatalf("slow traces %+v", slow)
	}
	if got, slow := summarize(nil); got != (Latency{}) || slow != nil {
		t.Fatalf("empty summarize %+v %+v", got, slow)
	}
}

func TestWriteHumanReport(t *testing.T) {
	rep := &Report{
		Backend: "remote", Concurrency: 4, Requests: 100, Rows: 5000,
		ElapsedSec: 2.0, RowsPerSec: 2500, ReqPerSec: 50,
		Errors:           3,
		ErrorsByCategory: map[string]int64{"busy": 2, "truncated": 1},
		ErrorSamples:     []string{"x: unexpected EOF"},
		SlowTraces: []TraceRef{
			{Rank: "max", TraceID: "deadbeef", Seconds: 0.5, Table: "orders"},
		},
	}
	var buf strings.Builder
	rep.WriteHuman(&buf)
	out := buf.String()
	for _, want := range []string{
		"remote backend", "errors      3 (busy 2, truncated 1)",
		"error: x: unexpected EOF", "trace       max", "deadbeef",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("human report missing %q:\n%s", want, out)
		}
	}
}

// TestCategorize: each coarse error class is recognized from the
// shapes the scan backends actually produce (usually wrapped in a
// "fleet exhausted" envelope).
func TestCategorize(t *testing.T) {
	wrap := func(msg string) error {
		return fmt.Errorf("scan: fleet exhausted after 6 attempts, last: %s", msg)
	}
	cases := map[string]struct {
		err  error
		want string
	}{
		"nil":            {nil, ""},
		"spec":           {fmt.Errorf("%w: no such table", scan.ErrSpec), "spec"},
		"deadline":       {context.DeadlineExceeded, "timeout"},
		"unexpected eof": {io.ErrUnexpectedEOF, "truncated"},
		"wrapped tear":   {wrap("http://x: unexpected EOF"), "truncated"},
		"torn csv row":   {wrap("csv row has 2 of 3 columns"), "truncated"},
		"corrupt cell":   {wrap(`csv cell 1: parsing "\x00": invalid syntax`), "truncated"},
		"busy 503":       {wrap("http://x answered 503 Service Unavailable: at capacity"), "busy"},
		"refused":        {wrap("http://x: dial tcp: connection refused"), "refused"},
		"reset":          {wrap("http://x: read: connection reset by peer"), "refused"},
		"breakers open":  {wrap("resilience: no fleet member available (all breakers open)"), "refused"},
		"client timeout": {wrap("context deadline exceeded (Client.Timeout)"), "timeout"},
		"something else": {errors.New("disk full"), "other"},
	}
	for name, tc := range cases {
		if got := Categorize(tc.err); got != tc.want {
			t.Errorf("%s: Categorize(%v) = %q, want %q", name, tc.err, got, tc.want)
		}
	}
}

// TestRunReportsErrorCategories: a source that always fails populates
// the per-category breakdown and the totals agree.
func TestRunReportsErrorCategories(t *testing.T) {
	src := failingSource{inner: scan.NewSummarySource(testSummary())}
	rep, err := Run(context.Background(), Options{
		Source: src, Concurrency: 2, MaxRequests: 6,
		RowsPerRequest: 10, Duration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 6 {
		t.Fatalf("errors %d, want 6", rep.Errors)
	}
	var sum int64
	for _, n := range rep.ErrorsByCategory {
		sum += n
	}
	if sum != rep.Errors {
		t.Fatalf("category counts sum to %d, want %d (%v)", sum, rep.Errors, rep.ErrorsByCategory)
	}
	if rep.ErrorsByCategory["busy"] != 6 {
		t.Fatalf("busy = %d, want 6 (%v)", rep.ErrorsByCategory["busy"], rep.ErrorsByCategory)
	}
}

// failingSource delegates metadata but fails every scan like a
// saturated fleet.
type failingSource struct{ inner scan.Source }

func (f failingSource) Tables() ([]string, error)               { return f.inner.Tables() }
func (f failingSource) Table(n string) (*scan.TableInfo, error) { return f.inner.Table(n) }
func (f failingSource) Close() error                            { return f.inner.Close() }
func (f failingSource) Scan(ctx context.Context, spec scan.Spec) (*scan.Scan, error) {
	return nil, errors.New("http://x answered 503 Service Unavailable: at capacity")
}
