package lp

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

// Backend selects the arithmetic used for LP relaxations.
type Backend int

const (
	// Auto picks Rational for small instances and Float for large ones,
	// escalating Float results to Rational whenever exact verification
	// fails.
	Auto Backend = iota
	// Rational forces exact big.Rat simplex.
	Rational
	// Float forces float64 simplex (still exactly verified on output).
	Float
)

// autoRatCells is the tableau-size threshold (rows × columns) below which
// Auto uses the exact rational backend directly. big.Rat pivots are three
// to four orders of magnitude slower than float64 ones and entry bit-widths
// grow during elimination, so exact arithmetic is reserved for genuinely
// small systems; larger ones run in float64 and every integer answer is
// re-verified exactly before acceptance.
const autoRatCells = 20_000

// IntOptions configures SolveInteger.
type IntOptions struct {
	Backend  Backend
	MaxNodes int // branch-and-bound node budget; 0 means DefaultMaxNodes
}

// DefaultMaxNodes bounds the branch-and-bound search. Hydra's constraint
// systems are integrally feasible by construction (the CC counts were
// measured on real data), so the search almost always succeeds within a
// handful of nodes; the budget exists to fail fast on adversarial inputs.
const DefaultMaxNodes = 4000

// ErrNodeLimit reports that branch and bound exhausted its node budget.
// The accompanying best-effort rounded solution may violate some rows;
// callers surface the violations as relative CC error instead of failing.
var ErrNodeLimit = errors.New("lp: branch-and-bound node limit exceeded")

// IntSolution is an integer solution plus diagnostics.
type IntSolution struct {
	X      []int64
	Nodes  int
	Pivots int
	// Exact reports whether X satisfies every row exactly (verified with
	// integer arithmetic).
	Exact bool
}

func relaxBackend(p *Problem, b Backend) Backend {
	if b != Auto {
		return b
	}
	st := p.Stats()
	if (st.Rows+1)*(st.Vars+2*st.Rows+1) <= autoRatCells {
		return Rational
	}
	return Float
}

func solveRelaxation(p *Problem, b Backend) (*Solution, error) {
	if b == Rational {
		return SolveRational(p)
	}
	return SolveFloat(p)
}

// fractionalVar returns the index of a fractional component and its value,
// or -1 when the solution is integral (within tolerance for float-derived
// rationals, exactly for rational ones).
func fractionalVar(x []*big.Rat) (int, *big.Rat) {
	bestIdx, bestDist := -1, 0.0
	for i, v := range x {
		if v.IsInt() {
			continue
		}
		f, _ := v.Float64()
		dist := math.Abs(f - math.Round(f))
		if dist <= fRoundTol {
			continue // float noise; rounding will fix it
		}
		// Most-fractional branching: prefer the variable farthest from
		// an integer.
		if dist > bestDist {
			bestDist, bestIdx = dist, i
		}
	}
	if bestIdx == -1 {
		return -1, nil
	}
	return bestIdx, x[bestIdx]
}

// RoundSolution rounds a rational vector to the nearest non-negative
// integers.
func RoundSolution(x []*big.Rat) []int64 {
	out := make([]int64, len(x))
	half := big.NewRat(1, 2)
	tmp := new(big.Rat)
	for i, v := range x {
		tmp.Add(v, half)
		q := new(big.Int).Quo(tmp.Num(), tmp.Denom())
		n := q.Int64()
		if n < 0 {
			n = 0
		}
		out[i] = n
	}
	return out
}

// SolveInteger finds a non-negative integer solution of p via depth-first
// branch and bound over LP relaxations, exploring the floor branch first
// (Hydra's systems are feasible, so diving almost always succeeds
// immediately). The returned solution is exactly verified; if the node
// budget runs out, the best-effort rounded relaxation is returned together
// with ErrNodeLimit and Exact=false.
func SolveInteger(p *Problem, opts IntOptions) (*IntSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	// Presolve: merge identical columns. Hydra's region LPs contain
	// thousands of twin variables (regions distinguished only by rows this
	// problem does not contain); deduplication both shrinks the tableau
	// and removes the degeneracy that stalls simplex pricing.
	orig := p
	p, expand := DedupColumns(p)
	backend := relaxBackend(p, opts.Backend)

	// Each stack entry is the set of extra branching rows of one node.
	stack := [][]Row{nil}
	nodes, pivots := 0, 0
	var lastRounded []int64

	for len(stack) > 0 && nodes < maxNodes {
		extra := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		sub := &Problem{NumVars: p.NumVars, Objective: p.Objective}
		sub.Rows = make([]Row, 0, len(p.Rows)+len(extra))
		sub.Rows = append(sub.Rows, p.Rows...)
		sub.Rows = append(sub.Rows, extra...)

		sol, err := solveRelaxation(sub, backend)
		if err != nil {
			var inf *Infeasible
			if errors.As(err, &inf) {
				continue // prune
			}
			return nil, err
		}
		pivots += sol.Pivots

		idx, val := fractionalVar(sol.X)
		if idx == -1 {
			x := RoundSolution(sol.X)
			if viol := p.CheckInt(x); viol == "" {
				full := expand(x)
				return &IntSolution{X: full, Nodes: nodes, Pivots: pivots, Exact: orig.CheckInt(full) == ""}, nil
			} else if backend == Float && relaxBackend(sub, Auto) == Rational {
				// Float noise produced a near-integral vertex that does
				// not verify: escalate this subproblem to exact
				// arithmetic, but only when the tableau is small enough
				// for big.Rat pivoting to stay cheap.
				rsol, rerr := SolveRational(sub)
				if rerr == nil {
					pivots += rsol.Pivots
					if ridx, rval := fractionalVar(rsol.X); ridx == -1 {
						rx := RoundSolution(rsol.X)
						if p.CheckInt(rx) == "" {
							full := expand(rx)
							return &IntSolution{X: full, Nodes: nodes, Pivots: pivots, Exact: orig.CheckInt(full) == ""}, nil
						}
					} else {
						stack = pushBranches(stack, extra, ridx, rval)
						continue
					}
				}
				lastRounded = x
				continue
			} else {
				lastRounded = x
				continue
			}
		}
		lastRounded = RoundSolution(sol.X)
		stack = pushBranches(stack, extra, idx, val)
	}

	if len(stack) == 0 && lastRounded == nil {
		return nil, &Infeasible{}
	}
	if lastRounded == nil {
		lastRounded = make([]int64, p.NumVars)
	}
	full := expand(lastRounded)
	return &IntSolution{X: full, Nodes: nodes, Pivots: pivots, Exact: orig.CheckInt(full) == ""},
		fmt.Errorf("%w after %d nodes", ErrNodeLimit, nodes)
}

// pushBranches pushes the ceil branch then the floor branch so the floor
// branch is explored first (LIFO).
func pushBranches(stack [][]Row, base []Row, idx int, val *big.Rat) [][]Row {
	floor := new(big.Int).Quo(val.Num(), val.Denom()).Int64()
	if val.Sign() < 0 && !val.IsInt() {
		floor-- // Quo truncates toward zero; emulate mathematical floor
	}
	mk := func(rel Rel, rhs int64) []Row {
		out := make([]Row, 0, len(base)+1)
		out = append(out, base...)
		out = append(out, Row{
			Entries: []Entry{{Var: idx, Coef: 1}},
			Rel:     rel,
			RHS:     rhs,
			Name:    fmt.Sprintf("branch:x%d%s%d", idx, rel, rhs),
		})
		return out
	}
	return append(stack, mk(GE, floor+1), mk(LE, floor))
}

// SoftResult is the outcome of SolveSoft: an integer assignment that
// minimizes (approximately, after rounding) the L1 violation of the
// equality rows, plus the per-row residuals it attains.
type SoftResult struct {
	X         []int64
	Residuals []int64 // per input row: achieved LHS minus RHS
	TotalAbs  int64   // Σ |residual|
}

// SolveSoft relaxes every equality row with a pair of deviation variables
// and minimizes the total deviation, yielding a best-effort solution for
// inconsistent constraint systems (e.g. a user-edited CC file). Inequality
// rows are kept hard.
func SolveSoft(p *Problem, backend Backend) (*SoftResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	orig := p
	p, expand := DedupColumns(p)
	aug := &Problem{NumVars: p.NumVars}
	next := p.NumVars
	var obj []Entry
	for _, r := range p.Rows {
		nr := Row{Rel: r.Rel, RHS: r.RHS, Name: r.Name}
		nr.Entries = append(nr.Entries, r.Entries...)
		if r.Rel == EQ {
			// LHS + u - v = RHS; u pushes LHS up, v pulls it down.
			nr.Entries = append(nr.Entries, Entry{Var: next, Coef: 1}, Entry{Var: next + 1, Coef: -1})
			obj = append(obj, Entry{Var: next, Coef: 1}, Entry{Var: next + 1, Coef: 1})
			next += 2
		}
		aug.Rows = append(aug.Rows, nr)
	}
	aug.NumVars = next
	aug.Objective = obj

	sol, err := solveRelaxation(aug, relaxBackend(aug, backend))
	if err != nil {
		return nil, err
	}
	rounded := RoundSolution(sol.X)
	x := expand(rounded[:p.NumVars])
	res := &SoftResult{X: x, Residuals: make([]int64, len(orig.Rows))}
	for i, r := range orig.Rows {
		var sum int64
		for _, e := range r.Entries {
			sum += e.Coef * x[e.Var]
		}
		d := sum - r.RHS
		if r.Rel == LE && d < 0 {
			d = 0
		}
		if r.Rel == GE && d > 0 {
			d = 0
		}
		res.Residuals[i] = d
		if d < 0 {
			res.TotalAbs -= d
		} else {
			res.TotalAbs += d
		}
	}
	return res, nil
}
