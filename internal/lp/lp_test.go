package lp

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func eq(vars []int, rhs int64, name string) Row {
	entries := make([]Entry, len(vars))
	for i, v := range vars {
		entries[i] = Entry{Var: v, Coef: 1}
	}
	return Row{Entries: entries, Rel: EQ, RHS: rhs, Name: name}
}

// paperPerson is the "Person" example of §3.2 / Figure 4b: the
// region-partitioned LP
//
//	y1 + y2 = 1000
//	y2 + y3 = 2000
//	y1 + y2 + y3 + y4 = 8000
func paperPerson() *Problem {
	p := &Problem{NumVars: 4}
	p.AddRow(eq([]int{0, 1}, 1000, "cc1"))
	p.AddRow(eq([]int{1, 2}, 2000, "cc2"))
	p.AddRow(eq([]int{0, 1, 2, 3}, 8000, "total"))
	return p
}

func TestSolveRationalPaperExample(t *testing.T) {
	sol, err := SolveRational(paperPerson())
	if err != nil {
		t.Fatalf("SolveRational: %v", err)
	}
	x := RoundSolution(sol.X)
	if v := paperPerson().CheckInt(x); v != "" {
		t.Fatalf("solution violates constraints: %s (x=%v)", v, x)
	}
}

func TestSolveFloatPaperExample(t *testing.T) {
	sol, err := SolveFloat(paperPerson())
	if err != nil {
		t.Fatalf("SolveFloat: %v", err)
	}
	x := RoundSolution(sol.X)
	if v := paperPerson().CheckInt(x); v != "" {
		t.Fatalf("solution violates constraints: %s (x=%v)", v, x)
	}
}

func TestSolveIntegerPaperExample(t *testing.T) {
	for _, backend := range []Backend{Rational, Float, Auto} {
		sol, err := SolveInteger(paperPerson(), IntOptions{Backend: backend})
		if err != nil {
			t.Fatalf("backend %v: %v", backend, err)
		}
		if !sol.Exact {
			t.Fatalf("backend %v: solution not exact", backend)
		}
	}
}

func TestInfeasibleDetection(t *testing.T) {
	p := &Problem{NumVars: 2}
	p.AddRow(eq([]int{0, 1}, 10, "a"))
	p.AddRow(eq([]int{0}, 20, "b")) // x0=20 forces x1=-10 < 0
	if _, err := SolveRational(p); err == nil {
		t.Fatal("rational: expected infeasible")
	} else {
		var inf *Infeasible
		if !errors.As(err, &inf) {
			t.Fatalf("rational: wrong error type: %v", err)
		}
	}
	if _, err := SolveFloat(p); err == nil {
		t.Fatal("float: expected infeasible")
	}
	if _, err := SolveInteger(p, IntOptions{}); err == nil {
		t.Fatal("integer: expected infeasible")
	}
}

func TestInequalities(t *testing.T) {
	// x0 >= 3, x0 <= 5, x0 + x1 = 7, minimize x0 → x0=3, x1=4.
	p := &Problem{NumVars: 2}
	p.AddRow(Row{Entries: []Entry{{0, 1}}, Rel: GE, RHS: 3})
	p.AddRow(Row{Entries: []Entry{{0, 1}}, Rel: LE, RHS: 5})
	p.AddRow(eq([]int{0, 1}, 7, "sum"))
	p.Objective = []Entry{{Var: 0, Coef: 1}}
	sol, err := SolveRational(p)
	if err != nil {
		t.Fatal(err)
	}
	x := RoundSolution(sol.X)
	if x[0] != 3 || x[1] != 4 {
		t.Fatalf("got x=%v, want [3 4]", x)
	}
	if sol.Objective.Cmp(big.NewRat(3, 1)) != 0 {
		t.Fatalf("objective %v, want 3", sol.Objective)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x0 <= -4  (i.e. x0 >= 4), x0 = x1, x0+x1 = 10 → x0=x1=5.
	p := &Problem{NumVars: 2}
	p.AddRow(Row{Entries: []Entry{{0, -1}}, Rel: LE, RHS: -4})
	p.AddRow(Row{Entries: []Entry{{0, 1}, {1, -1}}, Rel: EQ, RHS: 0})
	p.AddRow(eq([]int{0, 1}, 10, "sum"))
	sol, err := SolveInteger(p, IntOptions{Backend: Rational})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] != 5 || sol.X[1] != 5 {
		t.Fatalf("got %v, want [5 5]", sol.X)
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate constraints must not break Phase I or artificial eviction.
	p := &Problem{NumVars: 3}
	p.AddRow(eq([]int{0, 1}, 5, "a"))
	p.AddRow(eq([]int{0, 1}, 5, "a-dup"))
	p.AddRow(eq([]int{0, 1, 2}, 9, "total"))
	sol, err := SolveInteger(p, IntOptions{Backend: Rational})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Fatal("expected exact solution")
	}
}

func TestZeroRHS(t *testing.T) {
	p := &Problem{NumVars: 2}
	p.AddRow(eq([]int{0}, 0, "zero"))
	p.AddRow(eq([]int{0, 1}, 3, "total"))
	sol, err := SolveInteger(p, IntOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] != 0 || sol.X[1] != 3 {
		t.Fatalf("got %v, want [0 3]", sol.X)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{NumVars: 3}
	sol, err := SolveInteger(p, IntOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sol.X {
		if v != 0 {
			t.Fatalf("expected all-zero solution, got %v", sol.X)
		}
	}
}

func TestValidateRejectsBadVar(t *testing.T) {
	p := &Problem{NumVars: 1}
	p.AddRow(eq([]int{2}, 1, "bad"))
	if _, err := SolveRational(p); err == nil {
		t.Fatal("expected validation error")
	}
}

// randomFeasible builds a random 0/1 system that is integrally feasible by
// construction: draw a hidden integer solution, then emit row sums measured
// against it. This mirrors exactly how Hydra's CCs arise (counts measured
// on real data).
func randomFeasible(rng *rand.Rand, nVars, nRows int) (*Problem, []int64) {
	hidden := make([]int64, nVars)
	for i := range hidden {
		hidden[i] = int64(rng.Intn(50))
	}
	p := &Problem{NumVars: nVars}
	for r := 0; r < nRows; r++ {
		var vars []int
		var rhs int64
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				vars = append(vars, v)
				rhs += hidden[v]
			}
		}
		if len(vars) == 0 {
			continue
		}
		p.AddRow(eq(vars, rhs, "rand"))
	}
	// Total-size row, always present in Hydra LPs.
	all := make([]int, nVars)
	var tot int64
	for i := range all {
		all[i] = i
		tot += hidden[i]
	}
	p.AddRow(eq(all, tot, "total"))
	return p, hidden
}

func TestQuickRandomFeasibleRational(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomFeasible(rng, 3+rng.Intn(10), 1+rng.Intn(6))
		sol, err := SolveInteger(p, IntOptions{Backend: Rational})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return sol.Exact
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomFeasibleFloat(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomFeasible(rng, 3+rng.Intn(10), 1+rng.Intn(6))
		sol, err := SolveInteger(p, IntOptions{Backend: Float})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return sol.Exact
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolutionSatisfiesAllRows(t *testing.T) {
	// Property: whatever SolveInteger returns without error passes
	// CheckInt on the ORIGINAL problem (not the branched subproblems).
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomFeasible(rng, 4+rng.Intn(8), 2+rng.Intn(5))
		sol, err := SolveInteger(p, IntOptions{})
		if err != nil {
			return false
		}
		return p.CheckInt(sol.X) == ""
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSoftConsistent(t *testing.T) {
	res, err := SolveSoft(paperPerson(), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAbs != 0 {
		t.Fatalf("consistent system should have zero violation, got %d (residuals %v)", res.TotalAbs, res.Residuals)
	}
}

func TestSolveSoftInconsistent(t *testing.T) {
	// x0 = 10 and x0 = 14 cannot both hold; best L1 outcome is total
	// violation 4 split across the two rows.
	p := &Problem{NumVars: 1}
	p.AddRow(eq([]int{0}, 10, "a"))
	p.AddRow(eq([]int{0}, 14, "b"))
	res, err := SolveSoft(p, Rational)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAbs != 4 {
		t.Fatalf("TotalAbs = %d, want 4 (residuals %v, x %v)", res.TotalAbs, res.Residuals, res.X)
	}
}

func TestFractionalVertexNeedsBranching(t *testing.T) {
	// x0 + x1 = 1, x1 + x2 = 1, x0 + x2 = 1 has the fractional vertex
	// (1/2,1/2,1/2) but no integer solution: odd cycle.
	p := &Problem{NumVars: 3}
	p.AddRow(eq([]int{0, 1}, 1, "a"))
	p.AddRow(eq([]int{1, 2}, 1, "b"))
	p.AddRow(eq([]int{0, 2}, 1, "c"))
	_, err := SolveInteger(p, IntOptions{Backend: Rational})
	if err == nil {
		t.Fatal("expected failure: no integer solution exists")
	}
}

func TestOddCycleWithSlack(t *testing.T) {
	// Same odd cycle but with even sums is integrally solvable.
	p := &Problem{NumVars: 3}
	p.AddRow(eq([]int{0, 1}, 2, "a"))
	p.AddRow(eq([]int{1, 2}, 2, "b"))
	p.AddRow(eq([]int{0, 2}, 2, "c"))
	sol, err := SolveInteger(p, IntOptions{Backend: Rational})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] != 1 || sol.X[1] != 1 || sol.X[2] != 1 {
		t.Fatalf("got %v, want [1 1 1]", sol.X)
	}
}

func TestStats(t *testing.T) {
	p := paperPerson()
	st := p.Stats()
	if st.Vars != 4 || st.Rows != 3 || st.NonZeros != 8 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func BenchmarkSolveRationalSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SolveRational(paperPerson()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveIntegerMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, _ := randomFeasible(rng, 120, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveInteger(p, IntOptions{Backend: Float}); err != nil {
			b.Fatal(err)
		}
	}
}
