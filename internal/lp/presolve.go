package lp

import (
	"sort"
)

// DedupColumns merges variables whose constraint columns (and objective
// coefficients) are identical into a single representative variable.
//
// Hydra's LPs are full of such twins: region partitioning distinguishes
// regions by marker atoms that the current (sub-)problem's rows do not
// reference, so thousands of regions share the exact same column. Beyond
// shrinking the tableau, deduplication removes the massive degeneracy
// those identical columns cause in simplex pricing.
//
// The reduction is exact for feasibility problems: any solution of the
// reduced problem expands to the original by assigning each class's mass
// to its representative (first) variable and zero to the twins, and any
// original solution folds onto the reduced problem by summation. expand
// maps a reduced solution vector back to original coordinates.
func DedupColumns(p *Problem) (reduced *Problem, expand func([]int64) []int64) {
	type entry struct {
		row  int
		coef int64
	}
	cols := make([][]entry, p.NumVars)
	for ri, r := range p.Rows {
		for _, e := range r.Entries {
			cols[e.Var] = append(cols[e.Var], entry{row: ri, coef: e.Coef})
		}
	}
	for _, e := range p.Objective {
		cols[e.Var] = append(cols[e.Var], entry{row: -1, coef: e.Coef})
	}
	sig := func(c []entry) string {
		sort.Slice(c, func(i, j int) bool { return c[i].row < c[j].row })
		buf := make([]byte, 0, len(c)*12)
		for _, e := range c {
			buf = appendVarint(buf, int64(e.row))
			buf = appendVarint(buf, e.coef)
		}
		return string(buf)
	}
	classOf := make([]int, p.NumVars) // original var → reduced var
	rep := make([]int, 0, p.NumVars)  // reduced var → representative original
	seen := map[string]int{}
	for v := 0; v < p.NumVars; v++ {
		s := sig(cols[v])
		if c, ok := seen[s]; ok {
			classOf[v] = c
			continue
		}
		c := len(rep)
		seen[s] = c
		classOf[v] = c
		rep = append(rep, v)
	}
	if len(rep) == p.NumVars {
		// Nothing to merge.
		return p, func(x []int64) []int64 { return x }
	}
	// The reduced column of a class is its REPRESENTATIVE's column (all
	// class members share it by construction; expansion puts the whole
	// class mass on the representative, so summing would double-count).
	isRep := make([]bool, p.NumVars)
	for _, r := range rep {
		isRep[r] = true
	}
	reduced = &Problem{NumVars: len(rep)}
	for _, r := range p.Rows {
		nr := Row{Rel: r.Rel, RHS: r.RHS, Name: r.Name}
		for _, e := range r.Entries {
			if isRep[e.Var] {
				nr.Entries = append(nr.Entries, Entry{Var: classOf[e.Var], Coef: e.Coef})
			}
		}
		reduced.Rows = append(reduced.Rows, nr)
	}
	for _, e := range p.Objective {
		if isRep[e.Var] {
			reduced.Objective = append(reduced.Objective, Entry{Var: classOf[e.Var], Coef: e.Coef})
		}
	}
	expand = func(x []int64) []int64 {
		out := make([]int64, p.NumVars)
		for c, r := range rep {
			out[r] = x[c]
		}
		return out
	}
	return reduced, expand
}

func appendVarint(buf []byte, v int64) []byte {
	u := uint64(v)
	return append(buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}
