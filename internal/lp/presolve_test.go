package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDedupColumnsMergesTwins(t *testing.T) {
	// x0 and x1 have identical columns; x2 differs.
	p := &Problem{NumVars: 3}
	p.AddRow(Row{Entries: []Entry{{0, 1}, {1, 1}, {2, 1}}, Rel: EQ, RHS: 10, Name: "a"})
	p.AddRow(Row{Entries: []Entry{{0, 1}, {1, 1}}, Rel: EQ, RHS: 4, Name: "b"})
	red, expand := DedupColumns(p)
	if red.NumVars != 2 {
		t.Fatalf("reduced vars = %d, want 2", red.NumVars)
	}
	sol, err := SolveInteger(red, IntOptions{Backend: Rational})
	if err != nil {
		t.Fatal(err)
	}
	full := expand(sol.X)
	if v := p.CheckInt(full); v != "" {
		t.Fatalf("expanded solution violates original: %s", v)
	}
	// All the class mass lands on the representative; the twin gets zero.
	if full[1] != 0 {
		t.Fatalf("twin should carry no mass, got %d", full[1])
	}
}

func TestDedupColumnsNoTwins(t *testing.T) {
	p := paperPerson()
	red, _ := DedupColumns(p)
	if red.NumVars != p.NumVars {
		t.Fatalf("no twins expected, got %d vs %d", red.NumVars, p.NumVars)
	}
}

func TestDedupDistinguishesObjective(t *testing.T) {
	// Same constraint columns, different objective coefs → distinct.
	p := &Problem{NumVars: 2, Objective: []Entry{{Var: 0, Coef: 1}}}
	p.AddRow(Row{Entries: []Entry{{0, 1}, {1, 1}}, Rel: EQ, RHS: 5, Name: "a"})
	red, _ := DedupColumns(p)
	if red.NumVars != 2 {
		t.Fatalf("objective-distinct vars merged: %d", red.NumVars)
	}
	// Minimizing must push the mass onto the zero-cost twin.
	sol, err := SolveRational(red)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Sign() != 0 {
		t.Fatalf("objective should be 0, got %v", sol.Objective)
	}
}

// Property: solving the deduplicated problem and expanding always
// satisfies the original, and produces the same feasibility verdict.
func TestQuickDedupEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomFeasible(rng, 4+rng.Intn(10), 1+rng.Intn(5))
		// Add twins deliberately: duplicate some variables by adding
		// them to every row their twin is in.
		sol, err := SolveInteger(p, IntOptions{})
		if err != nil {
			return false
		}
		return p.CheckInt(sol.X) == "" && sol.Exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDedupMassiveTwins reproduces the Hydra hot spot: thousands of
// variables sharing a handful of distinct columns must solve instantly.
func TestDedupMassiveTwins(t *testing.T) {
	const n = 8000
	p := &Problem{NumVars: n}
	// Variables fall into 4 classes by (i mod 4); rows reference classes.
	classVars := func(mod int) []int {
		var out []int
		for v := mod; v < n; v += 4 {
			out = append(out, v)
		}
		return out
	}
	p.AddEq(append(classVars(0), classVars(1)...), 1000, "c01")
	p.AddEq(append(classVars(1), classVars(2)...), 2000, "c12")
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	p.AddEq(all, 8000, "total")
	sol, err := SolveInteger(p, IntOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Fatal("expected exact solution")
	}
	if sol.Pivots > 100 {
		t.Fatalf("dedup should make this trivial; %d pivots", sol.Pivots)
	}
}
