// Package lp is Hydra's linear-programming substrate, standing in for the
// Z3 solver used by the paper (§3.2). The paper uses Z3 purely as an integer
// feasibility oracle for systems of linear cardinality equations over
// non-negative variables; this package provides exactly that:
//
//   - a dense simplex solver over exact rational arithmetic (math/big.Rat),
//     Phase I feasibility + Phase II optimization, with Dantzig pricing and
//     a Bland's-rule anti-cycling fallback;
//   - a float64 twin for large instances where exactness is not required;
//   - a branch-and-bound layer that produces non-negative *integer*
//     solutions (SolveInteger), the form every Hydra LP needs;
//   - a soft mode (SolveSoft) that minimizes the L1 violation when a user
//     supplies inconsistent constraints, reporting per-row residuals
//     instead of failing.
package lp

import (
	"fmt"
	"math/big"
)

// Rel is a row relation.
type Rel int8

const (
	EQ Rel = iota // Σ aᵢxᵢ = b
	LE            // Σ aᵢxᵢ ≤ b
	GE            // Σ aᵢxᵢ ≥ b
)

func (r Rel) String() string {
	switch r {
	case EQ:
		return "="
	case LE:
		return "<="
	case GE:
		return ">="
	}
	return "?"
}

// Entry is one sparse coefficient of a row.
type Entry struct {
	Var  int
	Coef int64
}

// Row is one linear constraint with integer coefficients and right-hand
// side. All Hydra-generated rows are 0/1-coefficient equalities; integer
// coefficients keep the exact backend's rationals small.
type Row struct {
	Entries []Entry
	Rel     Rel
	RHS     int64
	// Name annotates the row for diagnostics (e.g. the CC it encodes).
	Name string
}

// Problem is a feasibility/optimization problem over n non-negative
// variables. The zero objective asks only for feasibility.
type Problem struct {
	NumVars int
	Rows    []Row
	// Objective, if non-nil, is minimized (sparse integer coefficients).
	Objective []Entry
}

// AddRow appends a constraint and returns its index.
func (p *Problem) AddRow(r Row) int {
	p.Rows = append(p.Rows, r)
	return len(p.Rows) - 1
}

// AddEq appends Σ vars = rhs with unit coefficients.
func (p *Problem) AddEq(vars []int, rhs int64, name string) int {
	entries := make([]Entry, len(vars))
	for i, v := range vars {
		entries[i] = Entry{Var: v, Coef: 1}
	}
	return p.AddRow(Row{Entries: entries, Rel: EQ, RHS: rhs, Name: name})
}

// Validate checks variable indices and domain sanity.
func (p *Problem) Validate() error {
	if p.NumVars < 0 {
		return fmt.Errorf("lp: negative variable count %d", p.NumVars)
	}
	for i, r := range p.Rows {
		for _, e := range r.Entries {
			if e.Var < 0 || e.Var >= p.NumVars {
				return fmt.Errorf("lp: row %d (%s): variable %d out of range [0,%d)", i, r.Name, e.Var, p.NumVars)
			}
		}
	}
	for _, e := range p.Objective {
		if e.Var < 0 || e.Var >= p.NumVars {
			return fmt.Errorf("lp: objective variable %d out of range [0,%d)", e.Var, p.NumVars)
		}
	}
	return nil
}

// Stats summarizes problem size, used by the experiment harness (Fig. 12/17
// report variable counts; Fig. 13 reports solve times alongside them).
type Stats struct {
	Vars, Rows, NonZeros int
}

// Stats returns size statistics for the problem.
func (p *Problem) Stats() Stats {
	nz := 0
	for _, r := range p.Rows {
		nz += len(r.Entries)
	}
	return Stats{Vars: p.NumVars, Rows: len(p.Rows), NonZeros: nz}
}

// Solution is a rational solution vector plus solver diagnostics.
type Solution struct {
	X      []*big.Rat
	Pivots int
	// Objective is the attained objective value (zero for pure
	// feasibility problems).
	Objective *big.Rat
}

// Infeasible is returned when the constraint system has no solution over
// the non-negative reals (and hence none over the integers either).
type Infeasible struct {
	// Row optionally names a witness row that could not be satisfied.
	Row string
}

func (e *Infeasible) Error() string {
	if e.Row != "" {
		return "lp: infeasible (unsatisfiable row " + e.Row + ")"
	}
	return "lp: infeasible"
}

// CheckInt verifies that integer assignment x satisfies every row exactly
// and is non-negative; it returns the first violated row name, or "".
// Both the branch-and-bound layer and the test suite use it as the final
// arbiter of correctness.
func (p *Problem) CheckInt(x []int64) string {
	if len(x) != p.NumVars {
		return fmt.Sprintf("length %d != %d", len(x), p.NumVars)
	}
	for i, v := range x {
		if v < 0 {
			return fmt.Sprintf("x%d=%d negative", i, v)
		}
	}
	for _, r := range p.Rows {
		var sum int64
		for _, e := range r.Entries {
			sum += e.Coef * x[e.Var]
		}
		ok := false
		switch r.Rel {
		case EQ:
			ok = sum == r.RHS
		case LE:
			ok = sum <= r.RHS
		case GE:
			ok = sum >= r.RHS
		}
		if !ok {
			return fmt.Sprintf("row %q: %d %s %d violated", r.Name, sum, r.Rel, r.RHS)
		}
	}
	return ""
}
