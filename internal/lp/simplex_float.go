package lp

import (
	"fmt"
	"math"
	"math/big"
)

// floatTableau mirrors ratTableau over float64 arithmetic. It trades
// exactness for speed on large instances; every integer answer produced
// through it is re-verified exactly by Problem.CheckInt before Hydra
// accepts it.
type floatTableau struct {
	rows     [][]float64
	obj      []float64
	basis    []int
	n        int
	cols     int
	artStart int
	pivots   int
}

const (
	fEps      = 1e-9 // pivoting / sign tolerance
	fFeasTol  = 1e-6 // Phase-I objective tolerance
	fRoundTol = 1e-6 // integrality tolerance
)

func newFloatTableau(p *Problem) *floatTableau {
	m := len(p.Rows)
	slacks := 0
	for _, r := range p.Rows {
		if r.Rel != EQ {
			slacks++
		}
	}
	t := &floatTableau{
		n:        p.NumVars,
		artStart: p.NumVars + slacks,
		cols:     p.NumVars + slacks + m,
		basis:    make([]int, m),
	}
	t.rows = make([][]float64, m)
	slackIdx := p.NumVars
	artIdx := t.artStart
	numArt := 0
	for i, r := range p.Rows {
		row := make([]float64, t.cols+1)
		sign := 1.0
		rel := r.Rel
		if r.RHS < 0 {
			sign = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for _, e := range r.Entries {
			row[e.Var] += sign * float64(e.Coef)
		}
		row[t.cols] = sign * float64(r.RHS)
		switch rel {
		case LE:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
			numArt++
		case EQ:
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
			numArt++
		}
		t.rows[i] = row
	}
	used := t.artStart + numArt
	if used < t.cols {
		for i := range t.rows {
			rhs := t.rows[i][t.cols]
			t.rows[i] = t.rows[i][:used+1]
			t.rows[i][used] = rhs
		}
		t.cols = used
	}
	t.obj = make([]float64, t.cols+1)
	for j := t.artStart; j < t.cols; j++ {
		t.obj[j] = 1
	}
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := 0; j <= t.cols; j++ {
				t.obj[j] -= t.rows[i][j]
			}
		}
	}
	return t
}

func (t *floatTableau) pivot(r, jc int) {
	pr := t.rows[r]
	pv := pr[jc]
	if pv != 1 {
		inv := 1 / pv
		for j := 0; j <= t.cols; j++ {
			pr[j] *= inv
		}
	}
	pr[jc] = 1
	for i, row := range t.rows {
		if i == r {
			continue
		}
		f := row[jc]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			row[j] -= f * pr[j]
		}
		row[jc] = 0
	}
	if f := t.obj[jc]; f != 0 {
		for j := 0; j <= t.cols; j++ {
			t.obj[j] -= f * pr[j]
		}
		t.obj[jc] = 0
	}
	t.basis[r] = jc
	t.pivots++
}

// ratioTestRow picks the leaving row. During Dantzig pricing, ties break
// on the largest pivot element — this both improves numerical stability
// and substantially reduces degenerate stalling on Hydra's highly
// degenerate equality systems. In the Bland phase ties must break on the
// smallest basic index to preserve the anti-cycling guarantee.
func (t *floatTableau) ratioTestRow(jc int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i, row := range t.rows {
		if row[jc] <= fEps {
			continue
		}
		ratio := row[t.cols] / row[jc]
		switch {
		case ratio < bestRatio-fEps:
			best = i
			bestRatio = ratio
		case math.Abs(ratio-bestRatio) <= fEps && best != -1:
			if bland {
				if t.basis[i] < t.basis[best] {
					best = i
					bestRatio = ratio
				}
			} else if row[jc] > t.rows[best][jc] {
				best = i
				bestRatio = ratio
			}
		}
	}
	return best
}

func (t *floatTableau) optimize(allowArtificial bool) error {
	m := len(t.rows)
	blandAfter := 60*(m+1) + t.cols
	maxPivots := 400*(m+1) + 8*t.cols + 20000
	limit := t.cols
	if !allowArtificial {
		limit = t.artStart
	}
	for iter := 0; ; iter++ {
		if t.pivots > maxPivots {
			return fmt.Errorf("lp: pivot limit exceeded (%d pivots)", t.pivots)
		}
		jc := -1
		bland := iter >= blandAfter
		if !bland {
			best := -fEps
			for j := 0; j < limit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					jc = j
				}
			}
		} else {
			for j := 0; j < limit; j++ {
				if t.obj[j] < -fEps {
					jc = j
					break
				}
			}
		}
		if jc == -1 {
			return nil
		}
		r := t.ratioTestRow(jc, bland)
		if r == -1 {
			return fmt.Errorf("lp: unbounded (column %d)", jc)
		}
		t.pivot(r, jc)
	}
}

func (t *floatTableau) driveOutArtificials() {
	keep := t.rows[:0]
	keepBasis := t.basis[:0]
	for i := 0; i < len(t.rows); i++ {
		if t.basis[i] < t.artStart {
			keep = append(keep, t.rows[i])
			keepBasis = append(keepBasis, t.basis[i])
			continue
		}
		row := t.rows[i]
		jc := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(row[j]) > fEps {
				jc = j
				break
			}
		}
		if jc == -1 {
			continue
		}
		t.pivot(i, jc)
		keep = append(keep, t.rows[i])
		keepBasis = append(keepBasis, t.basis[i])
	}
	t.rows = keep
	t.basis = keepBasis
}

func (t *floatTableau) setObjective(obj []Entry) {
	c := make([]float64, t.cols+1)
	for _, e := range obj {
		c[e.Var] += float64(e.Coef)
	}
	for i, b := range t.basis {
		if c[b] == 0 {
			continue
		}
		cb := c[b]
		for j := 0; j <= t.cols; j++ {
			c[j] -= cb * t.rows[i][j]
		}
		c[b] = 0
	}
	t.obj = c
}

func (t *floatTableau) extract() []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			x[b] = t.rows[i][t.cols]
		}
	}
	return x
}

// SolveFloat finds a float64 solution of p, minimizing the objective if one
// is set. The caller is responsible for exact verification of any integer
// rounding of the result.
func SolveFloat(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := newFloatTableau(p)
	if err := t.optimize(true); err != nil {
		return nil, err
	}
	if -t.obj[t.cols] > fFeasTol {
		return nil, &Infeasible{}
	}
	t.driveOutArtificials()
	objVal := 0.0
	if len(p.Objective) > 0 {
		t.setObjective(p.Objective)
		if err := t.optimize(false); err != nil {
			return nil, err
		}
		objVal = -t.obj[t.cols]
	}
	x := t.extract()
	sol := &Solution{X: make([]*big.Rat, len(x)), Pivots: t.pivots, Objective: new(big.Rat).SetFloat64(objVal)}
	for i, v := range x {
		if v < 0 && v > -fEps {
			v = 0
		}
		r := new(big.Rat).SetFloat64(v)
		if r == nil {
			return nil, fmt.Errorf("lp: non-finite solution value for x%d", i)
		}
		sol.X[i] = r
	}
	return sol, nil
}
