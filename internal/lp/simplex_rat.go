package lp

import (
	"fmt"
	"math/big"
)

// ratTableau is a dense simplex tableau over exact rationals.
//
// Column layout: [0,n) structural variables, [n, n+slacks) slack/surplus
// variables, [n+slacks, cols) artificial variables; one extra RHS column.
type ratTableau struct {
	rows     [][]*big.Rat // m x (cols+1); last column is RHS
	obj      []*big.Rat   // reduced-cost row, length cols+1 (last = -objective value)
	basis    []int        // basic variable per row
	n        int          // structural variables
	cols     int          // total variables (structural + slack + artificial)
	artStart int          // first artificial column
	pivots   int
}

var ratOne = big.NewRat(1, 1)

// newRatTableau builds the Phase-I tableau for p. Rows are normalized to
// non-negative RHS; LE rows receive slacks (basic when possible), GE rows a
// surplus plus artificial, EQ rows an artificial.
func newRatTableau(p *Problem) *ratTableau {
	m := len(p.Rows)
	// Count slack and artificial columns.
	slacks := 0
	for _, r := range p.Rows {
		if r.Rel != EQ {
			slacks++
		}
	}
	t := &ratTableau{
		n:        p.NumVars,
		artStart: p.NumVars + slacks,
		cols:     p.NumVars + slacks + m, // worst case: artificial per row
		basis:    make([]int, m),
	}
	t.rows = make([][]*big.Rat, m)
	slackIdx := p.NumVars
	artIdx := t.artStart
	numArt := 0
	for i, r := range p.Rows {
		row := make([]*big.Rat, t.cols+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		neg := r.RHS < 0
		sign := int64(1)
		rel := r.Rel
		if neg {
			sign = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for _, e := range r.Entries {
			row[e.Var].Add(row[e.Var], big.NewRat(sign*e.Coef, 1))
		}
		row[t.cols].SetInt64(sign * r.RHS)
		switch rel {
		case LE:
			row[slackIdx].SetInt64(1)
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx].SetInt64(-1)
			slackIdx++
			row[artIdx].SetInt64(1)
			t.basis[i] = artIdx
			artIdx++
			numArt++
		case EQ:
			row[artIdx].SetInt64(1)
			t.basis[i] = artIdx
			artIdx++
			numArt++
		}
		t.rows[i] = row
	}
	// Trim unused artificial columns.
	used := t.artStart + numArt
	if used < t.cols {
		for i := range t.rows {
			t.rows[i] = append(t.rows[i][:used], t.rows[i][t.cols])
		}
		t.cols = used
	}
	// Phase-I reduced costs: minimize w = Σ artificials. With artificials
	// basic, obj[j] = c_j - Σ_{i basic-artificial} T[i][j].
	t.obj = make([]*big.Rat, t.cols+1)
	for j := range t.obj {
		t.obj[j] = new(big.Rat)
	}
	for j := t.artStart; j < t.cols; j++ {
		t.obj[j].SetInt64(1)
	}
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := 0; j <= t.cols; j++ {
				t.obj[j].Sub(t.obj[j], t.rows[i][j])
			}
		}
	}
	return t
}

// pivot performs the simplex pivot on (row r, column jc).
func (t *ratTableau) pivot(r, jc int) {
	pr := t.rows[r]
	inv := new(big.Rat).Inv(pr[jc])
	if inv.Cmp(ratOne) != 0 {
		for j := 0; j <= t.cols; j++ {
			if pr[j].Sign() != 0 {
				pr[j].Mul(pr[j], inv)
			}
		}
	}
	pr[jc].SetInt64(1)
	tmp := new(big.Rat)
	for i, row := range t.rows {
		if i == r || row[jc].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(row[jc])
		for j := 0; j <= t.cols; j++ {
			if pr[j].Sign() != 0 {
				row[j].Sub(row[j], tmp.Mul(f, pr[j]))
			}
		}
		row[jc].SetInt64(0)
	}
	if t.obj[jc].Sign() != 0 {
		f := new(big.Rat).Set(t.obj[jc])
		for j := 0; j <= t.cols; j++ {
			if pr[j].Sign() != 0 {
				t.obj[j].Sub(t.obj[j], tmp.Mul(f, pr[j]))
			}
		}
		t.obj[jc].SetInt64(0)
	}
	t.basis[r] = jc
	t.pivots++
}

// ratioTestRow returns the leaving row for entering column jc, or -1 if the
// column is unbounded. Ties break on the smallest basic variable index
// (Bland-compatible).
func (t *ratTableau) ratioTestRow(jc int) int {
	best := -1
	var bestRatio big.Rat
	ratio := new(big.Rat)
	for i, row := range t.rows {
		if row[jc].Sign() <= 0 {
			continue
		}
		ratio.Quo(row[t.cols], row[jc])
		if best == -1 || ratio.Cmp(&bestRatio) < 0 ||
			(ratio.Cmp(&bestRatio) == 0 && t.basis[i] < t.basis[best]) {
			best = i
			bestRatio.Set(ratio)
		}
	}
	return best
}

// optimize pivots until the reduced-cost row is non-negative (minimization
// optimum). allowArtificial controls whether artificial columns may enter
// (false in Phase II). It uses Dantzig pricing and switches to Bland's rule
// after blandAfter pivots to guarantee termination.
func (t *ratTableau) optimize(allowArtificial bool) error {
	m := len(t.rows)
	blandAfter := 60*(m+1) + t.cols
	maxPivots := 400*(m+1) + 8*t.cols + 20000
	limit := t.cols
	if !allowArtificial {
		limit = t.artStart
	}
	for iter := 0; ; iter++ {
		if t.pivots > maxPivots {
			return fmt.Errorf("lp: pivot limit exceeded (%d pivots)", t.pivots)
		}
		jc := -1
		if iter < blandAfter {
			// Dantzig: most negative reduced cost.
			var best *big.Rat
			for j := 0; j < limit; j++ {
				if t.obj[j].Sign() < 0 && (best == nil || t.obj[j].Cmp(best) < 0) {
					best = t.obj[j]
					jc = j
				}
			}
		} else {
			// Bland: smallest index with negative reduced cost.
			for j := 0; j < limit; j++ {
				if t.obj[j].Sign() < 0 {
					jc = j
					break
				}
			}
		}
		if jc == -1 {
			return nil // optimal
		}
		r := t.ratioTestRow(jc)
		if r == -1 {
			return fmt.Errorf("lp: unbounded (column %d)", jc)
		}
		t.pivot(r, jc)
	}
}

// driveOutArtificials removes artificial variables left basic at level zero
// after Phase I, pivoting them out where possible and discarding redundant
// rows otherwise.
func (t *ratTableau) driveOutArtificials() {
	keep := t.rows[:0]
	keepBasis := t.basis[:0]
	for i := 0; i < len(t.rows); i++ {
		if t.basis[i] < t.artStart {
			keep = append(keep, t.rows[i])
			keepBasis = append(keepBasis, t.basis[i])
			continue
		}
		// Basic artificial at zero: find a structural/slack pivot column.
		row := t.rows[i]
		jc := -1
		for j := 0; j < t.artStart; j++ {
			if row[j].Sign() != 0 {
				jc = j
				break
			}
		}
		if jc == -1 {
			// Row is all zeros over real variables: redundant, drop it.
			continue
		}
		// Manual pivot limited to this stage (the row may have a negative
		// pivot element; at zero level that is still a valid basis change).
		t.pivotRowAt(i, jc)
		keep = append(keep, t.rows[i])
		keepBasis = append(keepBasis, t.basis[i])
	}
	t.rows = keep
	t.basis = keepBasis
}

// pivotRowAt pivots on (i, jc) regardless of sign, used only when the row's
// RHS is zero (degenerate artificial eviction).
func (t *ratTableau) pivotRowAt(i, jc int) {
	t.pivot(i, jc)
}

// setObjective installs Phase-II reduced costs for minimizing c·x given the
// current basis.
func (t *ratTableau) setObjective(obj []Entry) {
	c := make([]*big.Rat, t.cols+1)
	for j := range c {
		c[j] = new(big.Rat)
	}
	for _, e := range obj {
		c[e.Var].Add(c[e.Var], big.NewRat(e.Coef, 1))
	}
	// Reduced costs: c_j - Σ_i c_{basis[i]} T[i][j].
	tmp := new(big.Rat)
	for i, b := range t.basis {
		if c[b].Sign() == 0 {
			continue
		}
		cb := new(big.Rat).Set(c[b])
		for j := 0; j <= t.cols; j++ {
			if t.rows[i][j].Sign() != 0 {
				c[j].Sub(c[j], tmp.Mul(cb, t.rows[i][j]))
			}
		}
		// The basic column itself must read exactly zero.
		c[b].SetInt64(0)
	}
	t.obj = c
}

// extract returns the structural solution vector.
func (t *ratTableau) extract() []*big.Rat {
	x := make([]*big.Rat, t.n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i, b := range t.basis {
		if b < t.n {
			x[b].Set(t.rows[i][t.cols])
		}
	}
	return x
}

// SolveRational finds an exact rational solution of p, minimizing the
// objective if one is set. It returns *Infeasible when no non-negative
// solution exists.
func SolveRational(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := newRatTableau(p)
	if err := t.optimize(true); err != nil {
		return nil, err
	}
	// Phase-I objective value is -obj[cols].
	w := new(big.Rat).Neg(t.obj[t.cols])
	if w.Sign() > 0 {
		return nil, &Infeasible{}
	}
	t.driveOutArtificials()
	objVal := new(big.Rat)
	if len(p.Objective) > 0 {
		t.setObjective(p.Objective)
		if err := t.optimize(false); err != nil {
			return nil, err
		}
		objVal.Neg(t.obj[t.cols])
	}
	return &Solution{X: t.extract(), Pivots: t.pivots, Objective: objVal}, nil
}
