package matgen

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Compressor wraps a sink's byte stream in a compression codec without
// giving up matgen's determinism contract. The engine compresses each
// deterministic chunk — plus one frame for the header and one for the
// footer — into an independent, self-terminating member of the codec's
// stream format, inside the encode workers so members compress
// concurrently. Because chunk boundaries depend only on (BatchRows, sink
// alignment, shard range) and never on the worker count, the framed
// output is byte-identical for any -workers value, and concatenating
// compressed shard parts in shard order yields a valid multi-member
// stream whose decompression is the whole-table file.
type Compressor interface {
	// Name is the codec name used by Options.Compress and the CLI
	// -compress flag.
	Name() string
	// Ext is the file suffix appended after the sink extension and part
	// suffix, e.g. ".gz".
	Ext() string
	// AppendFrame appends one compressed frame containing exactly src to
	// dst and returns it. Frames must be self-terminating: a decoder of
	// the concatenated frames recovers the concatenated sources. The
	// engine calls AppendFrame from concurrent workers; implementations
	// must be safe for concurrent use (pool any writer state).
	AppendFrame(dst, src []byte) ([]byte, error)
	// NewReader decompresses a stream of concatenated frames.
	NewReader(r io.Reader) (io.ReadCloser, error)
}

var (
	compMu   sync.RWMutex
	compReg  = map[string]Compressor{}
	compName []string
)

// RegisterCompressor makes a codec selectable by Options.Compress. It
// panics on a duplicate or empty name. gzip is built in; a zstd
// implementation (external dependency) plugs in through the same
// interface.
func RegisterCompressor(c Compressor) {
	compMu.Lock()
	defer compMu.Unlock()
	name := c.Name()
	if name == "" {
		panic("matgen: compressor with empty name")
	}
	if _, dup := compReg[name]; dup {
		panic("matgen: duplicate compressor " + name)
	}
	compReg[name] = c
	compName = append(compName, name)
	sort.Strings(compName)
}

// CompressorNames lists the registered codec names, sorted.
func CompressorNames() []string {
	compMu.RLock()
	defer compMu.RUnlock()
	return append([]string(nil), compName...)
}

// CompressorFor resolves a codec by name; "" and "none" mean no
// compression (nil, nil).
func CompressorFor(name string) (Compressor, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	compMu.RLock()
	defer compMu.RUnlock()
	c, ok := compReg[name]
	if !ok {
		return nil, fmt.Errorf("matgen: unknown compression %q (have %s; others via RegisterCompressor)",
			name, strings.Join(compName, ", "))
	}
	return c, nil
}

func init() {
	RegisterCompressor(gzipCompressor{})
}

// --- gzip ---

// gzipCompressor frames chunks as independent gzip members. Go's gzip
// writer emits a fixed header (zero mtime, no name) so the frame bytes
// are a pure function of the source bytes, keeping compressed output
// deterministic across runs and worker counts.
type gzipCompressor struct{}

// appendSliceWriter adapts append-to-slice to io.Writer so a pooled gzip
// writer can emit straight into the caller's buffer.
type appendSliceWriter struct{ b []byte }

func (a *appendSliceWriter) Write(p []byte) (int, error) {
	a.b = append(a.b, p...)
	return len(p), nil
}

var gzipPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

func (gzipCompressor) Name() string { return "gzip" }
func (gzipCompressor) Ext() string  { return ".gz" }

func (gzipCompressor) AppendFrame(dst, src []byte) ([]byte, error) {
	aw := &appendSliceWriter{b: dst}
	zw := gzipPool.Get().(*gzip.Writer)
	defer gzipPool.Put(zw)
	zw.Reset(aw)
	if _, err := zw.Write(src); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return aw.b, nil
}

func (gzipCompressor) NewReader(r io.Reader) (io.ReadCloser, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	return zr, nil // multistream mode reads concatenated members
}
