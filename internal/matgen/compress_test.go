package matgen

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/dsl-repro/hydra/internal/fsx"
)

func gunzip(t *testing.T, b []byte) []byte {
	t.Helper()
	c, err := CompressorFor("gzip")
	if err != nil {
		t.Fatal(err)
	}
	zr, err := c.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCompressedWorkerCountDeterminism extends the headline guarantee to
// compressed output: because chunks are framed as independent gzip
// members on chunk boundaries that depend only on (BatchRows, alignment,
// range), the compressed bytes must be identical for any worker count.
func TestCompressedWorkerCountDeterminism(t *testing.T) {
	sum := testSummary()
	for _, format := range []string{"csv", "heap", "sql"} {
		t.Run(format, func(t *testing.T) {
			var got map[string][]byte
			for _, workers := range []int{1, 8} {
				dir := t.TempDir()
				rep, err := Materialize(sum, Options{
					Dir: dir, Format: format, Compress: "gzip",
					Workers: workers, BatchRows: 64,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Compression != "gzip" {
					t.Fatalf("report compression = %q", rep.Compression)
				}
				files := readDirFiles(t, dir)
				if got == nil {
					got = files
					continue
				}
				for name, b := range files {
					if !bytes.Equal(b, got[name]) {
						t.Fatalf("workers=%d: %s differs from workers=1 compressed output", workers, name)
					}
				}
			}
			for name := range got {
				if filepath.Ext(name) != ".gz" {
					t.Fatalf("compressed output %s lacks .gz suffix", name)
				}
			}
		})
	}
}

// TestCompressedRoundTrip: decompressing the compressed single-shard file
// must reproduce the uncompressed run byte-for-byte.
func TestCompressedRoundTrip(t *testing.T) {
	sum := testSummary()
	plain := t.TempDir()
	if _, err := Materialize(sum, Options{Dir: plain, Format: "csv", Workers: 2, BatchRows: 64}); err != nil {
		t.Fatal(err)
	}
	packed := t.TempDir()
	rep, err := Materialize(sum, Options{Dir: packed, Format: "csv", Compress: "gzip", Workers: 2, BatchRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range readDirFiles(t, plain) {
		b, err := os.ReadFile(filepath.Join(packed, name+".gz"))
		if err != nil {
			t.Fatal(err)
		}
		if got := gunzip(t, b); !bytes.Equal(got, want) {
			t.Fatalf("%s: decompressed %d bytes != plain %d bytes", name, len(got), len(want))
		}
	}
	for _, tr := range rep.Tables {
		if tr.RawBytes <= tr.Bytes || tr.RawBytes <= 0 {
			t.Fatalf("%s: raw %d vs compressed %d bytes; compression should shrink this data", tr.Table, tr.RawBytes, tr.Bytes)
		}
	}
}

// TestCompressedShardsConcatenate is the multi-machine contract under
// compression, both ways: decompressed parts concatenate into the plain
// whole-table file, and the raw .gz parts concatenate into a valid
// multi-member stream that decompresses to the same thing.
func TestCompressedShardsConcatenate(t *testing.T) {
	sum := testSummary()
	const shards = 3
	for _, format := range []string{"csv", "heap"} {
		t.Run(format, func(t *testing.T) {
			whole := t.TempDir()
			if _, err := Materialize(sum, Options{Dir: whole, Format: format, Workers: 2, BatchRows: 128}); err != nil {
				t.Fatal(err)
			}
			parts := t.TempDir()
			for i := 0; i < shards; i++ {
				if _, err := Materialize(sum, Options{
					Dir: parts, Format: format, Compress: "gzip",
					Workers: 3, Shards: shards, Shard: i, BatchRows: 128,
				}); err != nil {
					t.Fatal(err)
				}
			}
			for name, want := range readDirFiles(t, whole) {
				var catPlain, catGz []byte
				for i := 0; i < shards; i++ {
					b, err := os.ReadFile(filepath.Join(parts, fmt.Sprintf("%s.part-%03d-of-%03d.gz", name, i, shards)))
					if err != nil {
						t.Fatal(err)
					}
					catPlain = append(catPlain, gunzip(t, b)...)
					catGz = append(catGz, b...)
				}
				if !bytes.Equal(catPlain, want) {
					t.Fatalf("%s: concatenated decompressed parts != whole file", name)
				}
				if got := gunzip(t, catGz); !bytes.Equal(got, want) {
					t.Fatalf("%s: decompressing concatenated .gz parts != whole file", name)
				}
			}
		})
	}
}

// TestManifestRecordsChecksumAndCodec: the manifest must carry what a
// verifier needs — codec, post-compression size, and a checksum that
// matches a re-hash of the file as written.
func TestManifestRecordsChecksumAndCodec(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	rep, err := Materialize(sum, Options{Dir: dir, Format: "jsonl", Compress: "gzip", Workers: 2, Shards: 2, Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(rep.ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Compression != "gzip" {
		t.Fatalf("manifest compression = %q", m.Compression)
	}
	for _, tr := range m.Tables {
		sum, size, err := fsx.HashFile(tr.Path)
		if err != nil {
			t.Fatal(err)
		}
		if size != tr.Bytes {
			t.Fatalf("%s: file %d bytes, manifest %d", tr.Table, size, tr.Bytes)
		}
		if sum != tr.Checksum {
			t.Fatalf("%s: re-hash %s != manifest checksum %s", tr.Table, sum, tr.Checksum)
		}
	}
}

func TestCompressValidation(t *testing.T) {
	sum := testSummary()
	if _, err := Materialize(sum, Options{Dir: t.TempDir(), Format: "csv", Compress: "zstd"}); err == nil {
		t.Fatal("unregistered codec must error")
	}
	if _, err := Materialize(sum, Options{Format: "discard", Compress: "gzip"}); err == nil {
		t.Fatal("compressing the discard sink must error")
	}
	// The test binary registers an extra failing codec; gzip must be
	// present regardless.
	found := false
	for _, name := range CompressorNames() {
		if name == "gzip" {
			found = true
		}
	}
	if !found {
		t.Fatalf("CompressorNames = %v, want gzip present", CompressorNames())
	}
	if c, err := CompressorFor("none"); c != nil || err != nil {
		t.Fatalf("CompressorFor(none) = %v, %v", c, err)
	}
}
