// Package matgen is Hydra's parallel materialization engine: it turns a
// scale-independent database summary into actual big data volumes. Where
// the original materialize path generated one tuple at a time into one
// heap file, matgen streams column-major batches (tuplegen.Batch) through
// a deterministic sharded worker pool into pluggable sinks (heap, CSV,
// JSONL, SQL INSERT, discard).
//
// Determinism is the design center, in three layers:
//
//  1. Sinks are stateless encoders: a chunk's bytes depend only on the
//     table layout and the chunk's absolute row offsets.
//  2. Chunk and shard boundaries respect the sink's alignment (heap page
//     capacity, SQL statement group), so independently encoded pieces
//     concatenate into exactly a sequential encoder's output.
//  3. An ordered collector writes worker results strictly in chunk order.
//
// Consequently K workers produce byte-identical files to 1 worker, and a
// table split -shard i/N across N machines concatenates, in shard order,
// into the byte-identical whole-table file. Each shard also writes a JSON
// manifest describing its piece, the coordination artifact for
// multi-machine runs.
package matgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// DefaultBatchRows is the generator batch granularity when Options leaves
// BatchRows zero: big enough to amortize the prefix walk and channel
// hand-off, small enough to stay cache-resident.
const DefaultBatchRows = 8192

// Options tunes Materialize.
type Options struct {
	// Dir is the output directory, created if missing. Required for every
	// sink that writes files (all but discard).
	Dir string
	// Format names the sink: "heap" (default), "csv", "jsonl", "sql" or
	// "discard". Ignored when Sink is set.
	Format string
	// Sink plugs in a custom encoder, overriding Format.
	Sink Sink
	// Compress names an output codec ("gzip"; "" or "none" disables).
	// Each deterministic chunk is framed as an independent compressed
	// member, so compressed output stays byte-identical for any worker
	// count and compressed shard parts concatenate into a valid stream
	// that decompresses to the whole-table file.
	Compress string
	// Workers is the parallel encode worker count; 0 means GOMAXPROCS.
	// Output bytes are identical for every worker count.
	Workers int
	// Shards and Shard select one piece of an N-way split: only rows of
	// shard Shard (0-based) of Shards are generated, into files suffixed
	// ".part-<i>-of-<n>". Concatenating all parts in shard order yields
	// byte-identical whole-table output. Zero values mean the single
	// piece 0 of 1.
	Shards int
	Shard  int
	// Tables restricts materialization to a subset (all when nil).
	Tables []string
	// BatchRows overrides DefaultBatchRows.
	BatchRows int
	// FKSpread enables tuplegen's spread-FK extension (round-robin FKs
	// within referenced spans instead of first-row).
	FKSpread bool
	// NoManifest suppresses the per-shard JSON manifest.
	NoManifest bool
}

// TableReport describes one relation's output from one shard.
type TableReport struct {
	Table string `json:"table"`
	// Path is the file this shard wrote (empty for the discard sink).
	Path string `json:"path,omitempty"`
	// StartRow is the absolute 0-based offset of this shard's first row;
	// the shard covers rows [StartRow, StartRow+Rows).
	StartRow int64 `json:"start_row"`
	Rows     int64 `json:"rows"`
	// Bytes is the size of the file as written (post-compression).
	Bytes int64 `json:"bytes"`
	// RawBytes is the encoded size before compression; equal to Bytes
	// for uncompressed output and omitted then.
	RawBytes int64 `json:"raw_bytes,omitempty"`
	// Checksum is the hex SHA-256 of the file as written; verifiers
	// re-hash the file and compare without decompressing.
	Checksum string `json:"checksum,omitempty"`
	// TotalRows is the full-relation cardinality across all shards.
	TotalRows int64 `json:"total_rows"`
}

// Report aggregates one Materialize invocation.
type Report struct {
	Format string
	// Compression is the output codec name, empty when uncompressed.
	Compression string
	Shard       int
	Shards      int
	Workers     int
	Tables      []TableReport
	Rows        int64
	Bytes       int64
	Elapsed     time.Duration
	// ManifestPath is where the shard manifest was written, if it was.
	ManifestPath string
}

// RowsPerSec returns the generation throughput of the run.
func (r *Report) RowsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Elapsed.Seconds()
}

// Materialize generates the summary's relations through the configured
// sink. See the package comment for the determinism guarantees.
func Materialize(sum *summary.Summary, opts Options) (*Report, error) {
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.Shards < 1 || opts.Shard < 0 || opts.Shard >= opts.Shards {
		return nil, fmt.Errorf("matgen: shard %d of %d out of range", opts.Shard, opts.Shards)
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("matgen: workers %d out of range", opts.Workers)
	}
	if opts.BatchRows == 0 {
		opts.BatchRows = DefaultBatchRows
	}
	if opts.BatchRows < 1 {
		return nil, fmt.Errorf("matgen: batch rows %d out of range", opts.BatchRows)
	}
	sink := opts.Sink
	if sink == nil {
		format := opts.Format
		if format == "" {
			format = "heap"
		}
		var err error
		if sink, err = sinkFor(format); err != nil {
			return nil, err
		}
	}
	comp, err := CompressorFor(opts.Compress)
	if err != nil {
		return nil, err
	}
	tables, err := resolveTables(sum, opts.Tables)
	if err != nil {
		return nil, err
	}
	needFiles := sink.Ext() != ""
	if needFiles {
		if opts.Dir == "" {
			return nil, fmt.Errorf("matgen: format %q writes files; Dir is required", sink.Name())
		}
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
	} else if comp != nil {
		return nil, fmt.Errorf("matgen: format %q produces no files to compress", sink.Name())
	}
	rep := &Report{Format: sink.Name(), Shard: opts.Shard, Shards: opts.Shards, Workers: opts.Workers}
	if comp != nil {
		rep.Compression = comp.Name()
	}
	start := time.Now()
	for _, name := range tables {
		tr, err := materializeTable(sum.Relations[name], sink, comp, opts)
		if err != nil {
			return nil, fmt.Errorf("matgen: %s: %w", name, err)
		}
		rep.Tables = append(rep.Tables, tr)
		rep.Rows += tr.Rows
		rep.Bytes += tr.Bytes
	}
	rep.Elapsed = time.Since(start)
	if needFiles && !opts.NoManifest {
		m := &Manifest{
			Version: manifestVersion, Format: rep.Format, Compression: rep.Compression,
			Shard: rep.Shard, Shards: rep.Shards,
			Tables: rep.Tables, Rows: rep.Rows, Bytes: rep.Bytes,
		}
		path := ManifestPath(opts.Dir, opts.Shard, opts.Shards)
		if err := writeManifest(path, m); err != nil {
			return nil, err
		}
		rep.ManifestPath = path
	}
	return rep, nil
}

func resolveTables(sum *summary.Summary, subset []string) ([]string, error) {
	if subset == nil {
		names := make([]string, 0, len(sum.Relations))
		for name := range sum.Relations {
			names = append(names, name)
		}
		sort.Strings(names)
		return names, nil
	}
	seen := make(map[string]bool, len(subset))
	names := make([]string, 0, len(subset))
	for _, name := range subset {
		if _, ok := sum.Relations[name]; !ok {
			return nil, fmt.Errorf("matgen: summary has no relation %q", name)
		}
		if !seen[name] { // a duplicate would double-count rows in the report
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// partPath returns the output file for one table and shard. Single-shard
// runs write the plain table file; multi-shard runs add a part suffix
// whose lexical order is the concatenation order.
func partPath(dir, table, ext string, shard, shards int) string {
	path := filepath.Join(dir, table+ext)
	if shards > 1 {
		path += fmt.Sprintf(".part-%03d-of-%03d", shard, shards)
	}
	return path
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func materializeTable(rs *summary.RelationSummary, sink Sink, comp Compressor, opts Options) (TableReport, error) {
	g := tuplegen.New(rs)
	g.SetFKSpread(opts.FKSpread)
	l := Layout{Table: rs.Table, Cols: g.ColNames(), TotalRows: g.NumRows()}
	align, err := sink.Align(len(l.Cols))
	if err != nil {
		return TableReport{}, err
	}
	if align < 1 {
		return TableReport{}, fmt.Errorf("sink %q alignment %d out of range", sink.Name(), align)
	}
	rng := shardRange(l.TotalRows, opts.Shard, opts.Shards, align)
	tr := TableReport{Table: rs.Table, StartRow: rng.Lo, Rows: rng.Rows(), TotalRows: l.TotalRows}

	// Writer stack, bottom up: file ← size counter ← checksum tee ←
	// [compressor framing] ← raw counter ← sink encoding. Bytes and
	// Checksum describe the file as written; RawBytes the encoding
	// before compression.
	var out io.Writer = io.Discard
	var file *os.File
	var hash hash.Hash
	if sink.Ext() != "" {
		ext := sink.Ext()
		compExt := ""
		if comp != nil {
			compExt = comp.Ext()
		}
		tr.Path = partPath(opts.Dir, rs.Table, ext, opts.Shard, opts.Shards) + compExt
		if file, err = os.Create(tr.Path); err != nil {
			return TableReport{}, err
		}
		hash = sha256.New()
		out = io.MultiWriter(file, hash)
	}
	fileCount := &countingWriter{w: out}
	var enc io.Writer = fileCount
	if comp != nil {
		enc = &frameWriter{w: fileCount, comp: comp}
	}
	raw := &countingWriter{w: enc}
	err = writeTable(g, sink, l, rng, align, opts, raw)
	if file != nil {
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(tr.Path)
		}
	}
	if err != nil {
		return TableReport{}, err
	}
	tr.Bytes = fileCount.n
	if comp != nil {
		tr.RawBytes = raw.n
	}
	if hash != nil {
		tr.Checksum = hex.EncodeToString(hash.Sum(nil))
	}
	return tr, nil
}

func writeTable(g *tuplegen.Generator, sink Sink, l Layout, rng Range, align int, opts Options, w io.Writer) error {
	if opts.Shard == 0 {
		hdr, err := sink.Header(l)
		if err != nil {
			return err
		}
		if len(hdr) > 0 {
			if _, err := w.Write(hdr); err != nil {
				return err
			}
		}
	}
	if err := encodeRangeTo(g, sink, l, rng, align, opts, w); err != nil {
		return err
	}
	if opts.Shard == opts.Shards-1 {
		ftr, err := sink.Footer(l)
		if err != nil {
			return err
		}
		if len(ftr) > 0 {
			if _, err := w.Write(ftr); err != nil {
				return err
			}
		}
	}
	return nil
}

// encodeRangeTo streams rng through the worker pool into w. Chunks are
// dealt to workers in order; a dispatcher queues each chunk's result
// channel before its job so the collector below drains results strictly
// in chunk order regardless of which worker finishes first. The order
// channel's capacity bounds how far encoding runs ahead of writing.
func encodeRangeTo(g *tuplegen.Generator, sink Sink, l Layout, rng Range, align int, opts Options, w io.Writer) error {
	if rng.Rows() == 0 {
		return nil
	}
	batchRows := opts.BatchRows
	cRows := chunkRows(batchRows, align)
	nChunks := (rng.Rows() + cRows - 1) / cRows
	if opts.Workers == 1 || nChunks == 1 {
		// Sequential fast path: one reusable batch and buffer. Produces
		// the same bytes as the pool by construction (same chunking, same
		// stateless encoding), and issues one Write per chunk so that
		// downstream framing (compression) sees identical boundaries at
		// every worker count.
		var b *tuplegen.Batch
		var buf []byte
		for lo := rng.Lo; lo < rng.Hi; lo += cRows {
			hi := lo + cRows
			if hi > rng.Hi {
				hi = rng.Hi
			}
			buf = buf[:0]
			for off := lo; off < hi; {
				n := int64(batchRows)
				if off+n > hi {
					n = hi - off
				}
				b = g.Batch(off+1, int(n), b)
				buf = sink.AppendBatch(buf, l, b, off)
				off += n
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}

	type job struct {
		lo, hi int64
		out    chan []byte
	}
	jobs := make(chan job)
	order := make(chan chan []byte, opts.Workers*2)
	var wg sync.WaitGroup
	for k := 0; k < opts.Workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b *tuplegen.Batch
			for j := range jobs {
				// Start nil and let append size the buffer: sinks like
				// discard emit nothing, and the others grow it once per
				// chunk's first batches.
				var buf []byte
				for off := j.lo; off < j.hi; {
					n := int64(batchRows)
					if off+n > j.hi {
						n = j.hi - off
					}
					b = g.Batch(off+1, int(n), b)
					buf = sink.AppendBatch(buf, l, b, off)
					off += n
				}
				j.out <- buf
			}
		}()
	}
	go func() {
		for lo := rng.Lo; lo < rng.Hi; lo += cRows {
			hi := lo + cRows
			if hi > rng.Hi {
				hi = rng.Hi
			}
			ch := make(chan []byte, 1)
			order <- ch
			jobs <- job{lo: lo, hi: hi, out: ch}
		}
		close(jobs)
		close(order)
	}()
	var firstErr error
	for ch := range order {
		buf := <-ch
		if firstErr != nil {
			continue // drain so the workers can finish
		}
		if _, err := w.Write(buf); err != nil {
			firstErr = err
		}
	}
	wg.Wait()
	return firstErr
}
