// Package matgen is Hydra's parallel materialization engine: it turns a
// scale-independent database summary into actual big data volumes. Where
// the original materialize path generated one tuple at a time into one
// heap file, matgen streams the summary's run structure (tuplegen.Span)
// or column-major batches (tuplegen.Batch) through a deterministic
// sharded worker pool into pluggable sinks (heap, CSV, JSONL, SQL
// INSERT, discard).
//
// Determinism is the design center, in three layers:
//
//  1. Encoders are positionally pure: a chunk's bytes depend only on the
//     table layout and the chunk's absolute row offsets, never on state
//     accumulated across chunks.
//  2. Chunk and shard boundaries respect the sink's alignment (heap page
//     capacity, SQL statement group), so independently encoded pieces
//     concatenate into exactly a sequential encoder's output.
//  3. An ordered collector writes worker results strictly in chunk order.
//
// Consequently K workers produce byte-identical files to 1 worker, and a
// table split -shard i/N across N machines concatenates, in shard order,
// into the byte-identical whole-table file. Each shard also writes a JSON
// manifest describing its piece, the coordination artifact for
// multi-machine runs.
//
// The encode pipeline is built to run at memory bandwidth, not GC or
// strconv bandwidth: workers render each summary-row run's constant
// column tail once and stamp it per row with an incrementing-decimal pk
// writer (SpanEncoder), chunk buffers are recycled through a sync.Pool
// so steady-state materialization allocates ~zero bytes per chunk, and
// compression happens inside the workers — each chunk is an independent
// gzip member, so members compress concurrently and the collector only
// writes and hashes. Byte-determinism survives all of this by
// construction because chunk boundaries never move.
package matgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dsl-repro/hydra/internal/rate"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// DefaultBatchRows is the generator batch granularity when Options leaves
// BatchRows zero: big enough to amortize the prefix walk and channel
// hand-off, small enough to stay cache-resident.
const DefaultBatchRows = 8192

// CompressChunkRows caps the per-chunk row count of compressed runs.
// Each chunk is one independent codec member compressed inside a worker,
// so the cap is what lets compression scale across workers even for
// tables no bigger than a few default batches. Like every chunking
// input it is independent of the worker count, so compressed output
// stays byte-identical for any -workers value; it does shape the member
// framing, so changing it (or BatchRows below it) changes compressed —
// never decompressed — bytes.
const CompressChunkRows = 2048

// Options tunes Materialize.
type Options struct {
	// Dir is the output directory, created if missing. Required for every
	// sink that writes files (all but discard).
	Dir string
	// Format names the sink: "heap" (default), "csv", "jsonl", "sql" or
	// "discard". Ignored when Sink is set.
	Format string
	// Sink plugs in a custom encoder, overriding Format.
	Sink Sink
	// Compress names an output codec ("gzip"; "" or "none" disables).
	// Each deterministic chunk is framed as an independent compressed
	// member, so compressed output stays byte-identical for any worker
	// count and compressed shard parts concatenate into a valid stream
	// that decompresses to the whole-table file.
	Compress string
	// Workers is the parallel encode worker count; 0 means GOMAXPROCS.
	// Output bytes are identical for every worker count.
	Workers int
	// Shards and Shard select one piece of an N-way split: only rows of
	// shard Shard (0-based) of Shards are generated, into files suffixed
	// ".part-<i>-of-<n>". Concatenating all parts in shard order yields
	// byte-identical whole-table output. Zero values mean the single
	// piece 0 of 1.
	Shards int
	Shard  int
	// Tables restricts materialization to a subset (all when nil).
	Tables []string
	// Columns projects the output onto a subset of columns, in the order
	// given (nil means every column in tuple order: pk, non-key columns,
	// FKs). Projection is pushed down to the encoder layer: only the
	// selected columns are generated and encoded, and the layout every
	// sink sees (csv header, jsonl keys, SQL column list, heap page
	// geometry) is the projected one. All determinism guarantees hold
	// per projection; projected output is its own byte-stable format,
	// not a substring of the full-width one.
	Columns []string
	// BatchRows overrides DefaultBatchRows.
	BatchRows int
	// FKSpread enables tuplegen's spread-FK extension (round-robin FKs
	// within referenced spans instead of first-row).
	FKSpread bool
	// NoManifest suppresses the per-shard JSON manifest.
	NoManifest bool
	// RateLimit caps the whole run's emit rate in rows per second
	// (0 = unlimited). The limiter paces the ordered collectors, so one
	// budget is shared across every table of the run; encoding may run
	// ahead only as far as the pool's in-flight chunk window. This is
	// the load-generation knob: output bytes are unaffected, only the
	// rate at which they are released.
	RateLimit float64
}

// TableReport describes one relation's output from one shard.
type TableReport struct {
	Table string `json:"table"`
	// Path is the file this shard wrote (empty for the discard sink).
	Path string `json:"path,omitempty"`
	// Cols are the output column names in encoded order — the full tuple
	// layout normally, the projected one under Options.Columns. Readers
	// (internal/scan's DirSource) decode against this list.
	Cols []string `json:"cols,omitempty"`
	// StartRow is the absolute 0-based offset of this shard's first row;
	// the shard covers rows [StartRow, StartRow+Rows).
	StartRow int64 `json:"start_row"`
	Rows     int64 `json:"rows"`
	// Bytes is the size of the file as written (post-compression).
	Bytes int64 `json:"bytes"`
	// RawBytes is the encoded size before compression; equal to Bytes
	// for uncompressed output and omitted then.
	RawBytes int64 `json:"raw_bytes,omitempty"`
	// Checksum is the hex SHA-256 of the file as written; verifiers
	// re-hash the file and compare without decompressing.
	Checksum string `json:"checksum,omitempty"`
	// TotalRows is the full-relation cardinality across all shards.
	TotalRows int64 `json:"total_rows"`
}

// Report aggregates one Materialize invocation.
type Report struct {
	Format string
	// Compression is the output codec name, empty when uncompressed.
	Compression string
	Shard       int
	Shards      int
	Workers     int
	Tables      []TableReport
	Rows        int64
	Bytes       int64
	// RawBytes is the total encoded size before compression; equal to
	// Bytes for uncompressed output.
	RawBytes int64
	Elapsed  time.Duration
	// ManifestPath is where the shard manifest was written, if it was.
	ManifestPath string
}

// RowsPerSec returns the generation throughput of the run.
func (r *Report) RowsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Elapsed.Seconds()
}

// Materialize generates the summary's relations through the configured
// sink. See the package comment for the determinism guarantees.
func Materialize(sum *summary.Summary, opts Options) (*Report, error) {
	return MaterializeContext(context.Background(), sum, opts)
}

// MaterializeContext is Materialize under a cancellation context: when
// ctx is done, dispatch and encoding stop promptly, partial output files
// are removed, and the context's error is returned. This is what lets a
// serving layer abort a shard job cleanly when its client disconnects.
func MaterializeContext(ctx context.Context, sum *summary.Summary, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.Shards < 1 || opts.Shard < 0 || opts.Shard >= opts.Shards {
		return nil, fmt.Errorf("matgen: shard %d of %d out of range", opts.Shard, opts.Shards)
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("matgen: workers %d out of range", opts.Workers)
	}
	if opts.BatchRows == 0 {
		opts.BatchRows = DefaultBatchRows
	}
	if opts.BatchRows < 1 {
		return nil, fmt.Errorf("matgen: batch rows %d out of range", opts.BatchRows)
	}
	sink := opts.Sink
	if sink == nil {
		format := opts.Format
		if format == "" {
			format = "heap"
		}
		var err error
		if sink, err = sinkFor(format); err != nil {
			return nil, err
		}
	}
	comp, err := CompressorFor(opts.Compress)
	if err != nil {
		return nil, err
	}
	lim, err := newRunLimiter(opts)
	if err != nil {
		return nil, err
	}
	tables, err := resolveTables(sum, opts.Tables)
	if err != nil {
		return nil, err
	}
	needFiles := sink.Ext() != ""
	if needFiles {
		if opts.Dir == "" {
			return nil, fmt.Errorf("matgen: format %q writes files; Dir is required", sink.Name())
		}
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
	} else if comp != nil {
		return nil, fmt.Errorf("matgen: format %q produces no files to compress", sink.Name())
	}
	rep := &Report{Format: sink.Name(), Shard: opts.Shard, Shards: opts.Shards, Workers: opts.Workers}
	if comp != nil {
		rep.Compression = comp.Name()
	}
	start := time.Now()
	tasks := make([]*tableTask, len(tables))
	for i, name := range tables {
		t, err := newTableTask(sum.Relations[name], sink, comp, opts)
		if err != nil {
			return nil, fmt.Errorf("matgen: %s: %w", name, err)
		}
		t.idx = i
		tasks[i] = t
	}
	if opts.Workers == 1 {
		// Sequential fast path: tables in order, one encoder, no
		// goroutines. Byte-identical to the pool by construction (same
		// chunking, same positionally pure encoding, one frame per chunk).
		for _, t := range tasks {
			t.run(comp, func(w io.Writer) (int64, error) {
				return sequentialEncodeTable(ctx, t, sink, comp, opts, lim, w)
			})
			if t.err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, fmt.Errorf("matgen: %w", cerr)
				}
				return nil, fmt.Errorf("matgen: %s: %w", t.l.Table, t.err)
			}
		}
	} else if err := materializePool(ctx, tasks, sink, comp, opts, lim); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("matgen: %w", cerr)
		}
		return nil, err
	}
	for _, t := range tasks {
		rep.Tables = append(rep.Tables, t.tr)
		rep.Rows += t.tr.Rows
		rep.Bytes += t.tr.Bytes
		if t.tr.RawBytes > 0 {
			rep.RawBytes += t.tr.RawBytes
		} else {
			rep.RawBytes += t.tr.Bytes
		}
	}
	rep.Elapsed = time.Since(start)
	if needFiles && !opts.NoManifest {
		m := &Manifest{
			Version: manifestVersion, Format: rep.Format, Compression: rep.Compression,
			Shard: rep.Shard, Shards: rep.Shards,
			Tables: rep.Tables, Rows: rep.Rows, Bytes: rep.Bytes, RawBytes: rep.RawBytes,
		}
		path := ManifestPath(opts.Dir, opts.Shard, opts.Shards)
		if err := writeManifest(path, m); err != nil {
			return nil, err
		}
		rep.ManifestPath = path
	}
	return rep, nil
}

// newRunLimiter builds the run's shared row limiter from Options, with
// the default schedule tolerance: chunks release whole, but each only
// once its own emission time has elapsed, so even single-chunk tables
// are paced.
func newRunLimiter(opts Options) (*rate.Limiter, error) {
	if opts.RateLimit == 0 {
		return nil, nil
	}
	lim, err := rate.NewLimiter(opts.RateLimit, 0)
	if err != nil {
		return nil, fmt.Errorf("matgen: rate limit: %w", err)
	}
	return lim, nil
}

func resolveTables(sum *summary.Summary, subset []string) ([]string, error) {
	if subset == nil {
		names := make([]string, 0, len(sum.Relations))
		for name := range sum.Relations {
			names = append(names, name)
		}
		sort.Strings(names)
		return names, nil
	}
	seen := make(map[string]bool, len(subset))
	names := make([]string, 0, len(subset))
	for _, name := range subset {
		if _, ok := sum.Relations[name]; !ok {
			return nil, fmt.Errorf("matgen: summary has no relation %q", name)
		}
		if !seen[name] { // a duplicate would double-count rows in the report
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// partPath returns the output file for one table and shard. Single-shard
// runs write the plain table file; multi-shard runs add a part suffix
// whose lexical order is the concatenation order.
func partPath(dir, table, ext string, shard, shards int) string {
	path := filepath.Join(dir, table+ext)
	if shards > 1 {
		path += fmt.Sprintf(".part-%03d-of-%03d", shard, shards)
	}
	return path
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// chunkBufPool recycles chunk encode and compress buffers across chunks,
// workers, tables, and Materialize calls: once the pool is warm,
// steady-state materialization allocates ~zero bytes per chunk.
var chunkBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getChunkBuf() *[]byte { return chunkBufPool.Get().(*[]byte) }

func putChunkBuf(b *[]byte) {
	*b = (*b)[:0]
	chunkBufPool.Put(b)
}

// batchPool recycles per-worker column batches the same way; Batch
// reshapes its buffers when the column count changes between tables.
var batchPool = sync.Pool{New: func() any { return new(tuplegen.Batch) }}

// chunkResult is one encoded (and possibly compressed) chunk handed from
// a worker to the collector.
type chunkResult struct {
	// buf is the pooled output buffer: the compressed frame when a codec
	// is configured, the raw encoding otherwise. nil when the worker was
	// cancelled or failed.
	buf *[]byte
	// raw is the encoded size before compression; rows the chunk's row
	// count, which the collector's rate limiter charges on release.
	raw  int64
	rows int64
	err  error
}

// resultChanPool recycles the per-chunk result channels; each carries
// exactly one value and is fully drained before reuse.
var resultChanPool = sync.Pool{New: func() any { return make(chan chunkResult, 1) }}

// errCanceled marks a table whose materialization was cut short because
// another table failed; its partial output is removed and the failing
// table's error is the one reported.
var errCanceled = errors.New("matgen: canceled after another table failed")

// tableTask carries one relation's state through a Materialize run.
type tableTask struct {
	idx       int
	g         *tuplegen.Generator
	l         Layout
	proj      []int // tuple-order indices of the projected columns; nil = all
	rng       Range
	cRows     int64 // rows per chunk, an align multiple
	batchRows int
	tr        TableReport
	err       error
}

// newTableTask resolves one relation's layout (projected when
// Options.Columns is set), alignment, shard range, chunk geometry, and
// output path.
func newTableTask(rs *summary.RelationSummary, sink Sink, comp Compressor, opts Options) (*tableTask, error) {
	g := tuplegen.New(rs)
	g.SetFKSpread(opts.FKSpread)
	proj, err := g.Project(opts.Columns)
	if err != nil {
		return nil, err
	}
	cols := g.ColNames()
	if proj != nil {
		projected := make([]string, len(proj))
		for i, src := range proj {
			projected[i] = cols[src]
		}
		cols = projected
	}
	l := Layout{Table: rs.Table, Cols: cols, TotalRows: g.NumRows()}
	align, err := sink.Align(len(l.Cols))
	if err != nil {
		return nil, err
	}
	if align < 1 {
		return nil, fmt.Errorf("sink %q alignment %d out of range", sink.Name(), align)
	}
	rng := shardRange(l.TotalRows, opts.Shard, opts.Shards, align)
	chunkBatch := opts.BatchRows
	if comp != nil && chunkBatch > CompressChunkRows {
		chunkBatch = CompressChunkRows
	}
	t := &tableTask{
		g: g, l: l, proj: proj, rng: rng,
		cRows:     chunkRows(chunkBatch, align),
		batchRows: opts.BatchRows,
		tr: TableReport{Table: rs.Table, Cols: l.Cols,
			StartRow: rng.Lo, Rows: rng.Rows(), TotalRows: l.TotalRows},
	}
	if sink.Ext() != "" {
		compExt := ""
		if comp != nil {
			compExt = comp.Ext()
		}
		t.tr.Path = partPath(opts.Dir, rs.Table, sink.Ext(), opts.Shard, opts.Shards) + compExt
	}
	return t, nil
}

// nChunks returns how many chunks the task's range splits into.
func (t *tableTask) nChunks() int64 { return (t.rng.Rows() + t.cRows - 1) / t.cRows }

// run wraps one table's encode in its writer stack — file ← size counter
// ← checksum tee — and fills in the report. Compression happens
// upstream, inside the encode workers, so this stack only writes and
// hashes the file bytes as written; raw (pre-compression) sizes are
// accounted by the encode side and returned by the callback.
func (t *tableTask) run(comp Compressor, encode func(w io.Writer) (int64, error)) {
	var out io.Writer = io.Discard
	var file *os.File
	var h hash.Hash
	if t.tr.Path != "" {
		var err error
		if file, err = os.Create(t.tr.Path); err != nil {
			t.err = err
			return
		}
		h = sha256.New()
		out = io.MultiWriter(file, h)
	}
	fileCount := &countingWriter{w: out}
	raw, err := encode(fileCount)
	if file != nil {
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(t.tr.Path)
		}
	}
	if err != nil {
		t.err = err
		return
	}
	t.tr.Bytes = fileCount.n
	if comp != nil {
		t.tr.RawBytes = raw
	}
	if h != nil {
		t.tr.Checksum = hex.EncodeToString(h.Sum(nil))
	}
}

// writeFramed writes p to w, as one compressed frame when a codec is
// configured. Empty payloads produce no output, matching the historical
// framing (header and footer frames exist only when non-empty).
func writeFramed(w io.Writer, comp Compressor, p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if comp != nil {
		buf := getChunkBuf()
		defer putChunkBuf(buf)
		var err error
		if *buf, err = comp.AppendFrame((*buf)[:0], p); err != nil {
			return err
		}
		p = *buf
	}
	_, err := w.Write(p)
	return err
}

// encodeChunk renders rows [lo, hi) of t through enc into dst. When the
// encoder understands run structure and no projection is active, the
// summary-row spans are encoded directly — no column batch is
// materialized at all; otherwise the rows are generated batch-wise
// (projected batches under Options.Columns, whose column set matches the
// encoder's projected layout) and encoded value by value. The paths
// yield identical bytes for the same layout because encoding is a pure
// function of layout, values, and absolute offsets.
func encodeChunk(t *tableTask, enc Encoder, se SpanEncoder, b *tuplegen.Batch, dst []byte, lo, hi int64) []byte {
	g := t.g
	if se != nil && t.proj == nil {
		it := g.Spans(lo+1, hi-lo)
		for sp, ok := it.Next(); ok; sp, ok = it.Next() {
			dst = se.AppendSpan(dst, sp)
		}
		return dst
	}
	for off := lo; off < hi; {
		n := int64(t.batchRows)
		if off+n > hi {
			n = hi - off
		}
		g.BatchCols(off+1, int(n), b, t.proj)
		dst = enc.AppendBatch(dst, b, off)
		off += n
	}
	return dst
}

// sequentialEncodeTable emits one table's shard — header, chunks, footer
// — on the calling goroutine and returns the raw (pre-compression) byte
// count. It produces one frame per chunk, exactly like the pool.
func sequentialEncodeTable(ctx context.Context, t *tableTask, sink Sink, comp Compressor, opts Options, lim *rate.Limiter, w io.Writer) (int64, error) {
	var raw int64
	if opts.Shard == 0 {
		hdr, err := sink.Header(t.l)
		if err != nil {
			return raw, err
		}
		raw += int64(len(hdr))
		if err := writeFramed(w, comp, hdr); err != nil {
			return raw, err
		}
	}
	if t.rng.Rows() > 0 {
		enc := sink.NewEncoder(t.l)
		se, _ := enc.(SpanEncoder)
		b := batchPool.Get().(*tuplegen.Batch)
		defer batchPool.Put(b)
		buf := getChunkBuf()
		defer putChunkBuf(buf)
		for lo := t.rng.Lo; lo < t.rng.Hi; lo += t.cRows {
			hi := lo + t.cRows
			if hi > t.rng.Hi {
				hi = t.rng.Hi
			}
			// WaitN doubles as the cancellation poll: a nil limiter
			// still fails fast on a done context.
			if err := lim.WaitN(ctx, hi-lo); err != nil {
				return raw, err
			}
			*buf = encodeChunk(t, enc, se, b, (*buf)[:0], lo, hi)
			raw += int64(len(*buf))
			if err := writeFramed(w, comp, *buf); err != nil {
				return raw, err
			}
		}
	}
	if opts.Shard == opts.Shards-1 {
		ftr, err := sink.Footer(t.l)
		if err != nil {
			return raw, err
		}
		raw += int64(len(ftr))
		if err := writeFramed(w, comp, ftr); err != nil {
			return raw, err
		}
	}
	return raw, nil
}

// encJob is one chunk of one table, schedulable by any pool worker.
type encJob struct {
	ti     int
	lo, hi int64
	out    chan chunkResult
}

// materializePool runs every table through one shared worker pool: all
// chunks of all tables feed the same Workers encode workers — so
// encoding and compression scale with the worker count even when the
// summary holds many small relations — while each table keeps its own
// dispatcher and ordered collector, which writes chunks strictly in
// order and hashes sequentially. Workers hold one encoder and one batch
// per (worker, table), created on first contact, so the steady-state
// encode path allocates nothing per chunk. On the first error anywhere
// (or when ctx is done) a done channel closes: every dispatcher stops
// submitting, workers answer remaining jobs without encoding, unfinished
// tables remove their partial files, and the failing table's error is
// reported.
func materializePool(ctx context.Context, tasks []*tableTask, sink Sink, comp Compressor, opts Options, lim *rate.Limiter) error {
	jobs := make(chan encJob)
	done := make(chan struct{})
	var abortOnce sync.Once
	abort := func() { abortOnce.Do(func() { close(done) }) }
	stop := context.AfterFunc(ctx, abort)
	defer stop()

	var workers sync.WaitGroup
	for k := 0; k < opts.Workers; k++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			encs := make([]Encoder, len(tasks))
			spanEncs := make([]SpanEncoder, len(tasks))
			// One batch per worker serves every table: Batch reshapes
			// across column widths without dropping its buffers.
			b := batchPool.Get().(*tuplegen.Batch)
			defer batchPool.Put(b)
			for j := range jobs {
				select {
				case <-done: // run failed; answer without encoding
					j.out <- chunkResult{}
					continue
				default:
				}
				t := tasks[j.ti]
				if encs[j.ti] == nil {
					encs[j.ti] = sink.NewEncoder(t.l)
					spanEncs[j.ti], _ = encs[j.ti].(SpanEncoder)
				}
				buf := getChunkBuf()
				*buf = encodeChunk(t, encs[j.ti], spanEncs[j.ti], b, (*buf)[:0], j.lo, j.hi)
				res := chunkResult{buf: buf, raw: int64(len(*buf)), rows: j.hi - j.lo}
				// An empty encoding produces no frame and no write,
				// mirroring writeFramed on the sequential path, so
				// worker-count determinism holds for sinks that emit
				// nothing for some chunks.
				if comp != nil && len(*buf) > 0 {
					frame := getChunkBuf()
					var err error
					*frame, err = comp.AppendFrame((*frame)[:0], *buf)
					putChunkBuf(buf)
					if err != nil {
						putChunkBuf(frame)
						res = chunkResult{raw: res.raw, rows: res.rows, err: err}
					} else {
						res.buf = frame
					}
				}
				j.out <- res
			}
		}()
	}

	var drivers sync.WaitGroup
	for _, t := range tasks {
		drivers.Add(1)
		go func(t *tableTask) {
			defer drivers.Done()
			t.run(comp, func(w io.Writer) (int64, error) {
				return poolEncodeTable(ctx, t, sink, comp, opts, lim, jobs, done, abort, w)
			})
			if t.err != nil && t.err != errCanceled {
				abort()
			}
		}(t)
	}
	drivers.Wait()
	close(jobs)
	workers.Wait()

	for _, t := range tasks {
		if t.err != nil && t.err != errCanceled {
			return fmt.Errorf("matgen: %s: %w", t.l.Table, t.err)
		}
	}
	for _, t := range tasks {
		if t.err != nil {
			return fmt.Errorf("matgen: %s: %w", t.l.Table, t.err)
		}
	}
	return nil
}

// poolEncodeTable is one table's driver on the shared pool: it writes
// the header, dispatches the table's chunks into the global job channel,
// collects results strictly in chunk order, and writes the footer. The
// dispatcher queues each chunk's result channel before the next job so
// the collector drains results in order regardless of which worker
// finishes first; the order channel's capacity bounds how far this
// table's encoding runs ahead of its writing — which is also how far
// encoding may outrun a rate limiter pacing the collector. Returns the
// raw (pre-compression) byte count.
func poolEncodeTable(ctx context.Context, t *tableTask, sink Sink, comp Compressor, opts Options, lim *rate.Limiter, jobs chan<- encJob, done <-chan struct{}, abort func(), w io.Writer) (int64, error) {
	var raw int64
	if opts.Shard == 0 {
		hdr, err := sink.Header(t.l)
		if err != nil {
			return raw, err
		}
		raw += int64(len(hdr))
		if err := writeFramed(w, comp, hdr); err != nil {
			return raw, err
		}
	}
	if t.rng.Rows() > 0 {
		order := make(chan chan chunkResult, opts.Workers*2)
		go func() {
			defer close(order)
			for lo := t.rng.Lo; lo < t.rng.Hi; lo += t.cRows {
				hi := lo + t.cRows
				if hi > t.rng.Hi {
					hi = t.rng.Hi
				}
				ch := resultChanPool.Get().(chan chunkResult)
				select {
				case jobs <- encJob{ti: t.idx, lo: lo, hi: hi, out: ch}:
					order <- ch // queued strictly in chunk order
				case <-done:
					resultChanPool.Put(ch)
					return
				}
			}
		}()
		var firstErr error
		fail := func(err error) {
			if firstErr == nil {
				firstErr = err
				if err != errCanceled {
					abort()
				}
			}
		}
		var got int64
		for ch := range order {
			res := <-ch
			resultChanPool.Put(ch)
			got++
			if firstErr != nil {
				if res.buf != nil {
					putChunkBuf(res.buf)
				}
				continue
			}
			if res.err != nil {
				fail(res.err)
				continue
			}
			if res.buf == nil {
				fail(errCanceled) // worker answered after the run failed
				continue
			}
			raw += res.raw
			// Pace the release of this chunk's rows; encoding upstream
			// runs ahead only as far as the order channel's capacity.
			if err := lim.WaitN(ctx, res.rows); err != nil {
				fail(err)
				putChunkBuf(res.buf)
				continue
			}
			if len(*res.buf) > 0 {
				if _, err := w.Write(*res.buf); err != nil {
					fail(err)
				}
			}
			putChunkBuf(res.buf)
		}
		if firstErr == nil && got != t.nChunks() {
			firstErr = errCanceled // dispatcher stopped early
		}
		if firstErr != nil {
			return raw, firstErr
		}
	}
	if opts.Shard == opts.Shards-1 {
		ftr, err := sink.Footer(t.l)
		if err != nil {
			return raw, err
		}
		raw += int64(len(ftr))
		if err := writeFramed(w, comp, ftr); err != nil {
			return raw, err
		}
	}
	return raw, nil
}
