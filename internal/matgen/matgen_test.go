package matgen

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dsl-repro/hydra/internal/storage"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// testSummary is a two-relation summary with FK spans, sized so that
// every sink's chunking (heap pages, SQL statement groups) is exercised
// across multiple chunks at small batch sizes.
func testSummary() *summary.Summary {
	tRel := &summary.RelationSummary{
		Table: "T", Cols: []string{"C"},
		Rows: []summary.RelRow{
			{Vals: []int64{2}, Count: 900},
			{Vals: []int64{7}, Count: 613},
		},
		Total: 1513,
	}
	sRel := &summary.RelationSummary{
		Table: "S", Cols: []string{"A", "B"}, FKCols: []string{"t_fk"}, FKRefs: []string{"T"},
		Rows: []summary.RelRow{
			{Vals: []int64{20, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 3001},
			{Vals: []int64{20, 40}, FKs: []int64{901}, FKSpans: []int64{613}, Count: 2500},
			{Vals: []int64{61, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 2707},
		},
		Total: 8208,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"S": sRel, "T": tRel}}
}

func fileFormats() []string {
	var out []string
	for _, name := range SinkNames() {
		s, err := sinkFor(name)
		if err != nil {
			panic(err)
		}
		if s.Ext() != "" {
			out = append(out, name)
		}
	}
	return out
}

func readDirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "manifest-") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestWorkerCountDeterminism is the headline guarantee: for every file
// format and both FK-spread settings, 1 worker and 8 workers must write
// byte-identical files. Small batches force many chunks through the pool.
func TestWorkerCountDeterminism(t *testing.T) {
	sum := testSummary()
	for _, format := range fileFormats() {
		for _, spread := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/spread=%v", format, spread), func(t *testing.T) {
				var got map[string][]byte
				for _, workers := range []int{1, 8} {
					dir := t.TempDir()
					rep, err := Materialize(sum, Options{
						Dir: dir, Format: format, Workers: workers,
						BatchRows: 64, FKSpread: spread,
					})
					if err != nil {
						t.Fatal(err)
					}
					if rep.Rows != 8208+1513 {
						t.Fatalf("rows = %d", rep.Rows)
					}
					files := readDirFiles(t, dir)
					if len(files) != 2 {
						t.Fatalf("files = %v", files)
					}
					if got == nil {
						got = files
						continue
					}
					for name, b := range files {
						if !bytes.Equal(b, got[name]) {
							t.Fatalf("workers=%d: %s differs from workers=1 output (%d vs %d bytes)",
								workers, name, len(b), len(got[name]))
						}
					}
				}
			})
		}
	}
}

// TestShardsConcatenate verifies the multi-machine contract: generating
// piece i/N for every i and concatenating the parts in shard order must
// reproduce the single-shard file byte-for-byte, for every format.
func TestShardsConcatenate(t *testing.T) {
	sum := testSummary()
	const shards = 3
	for _, format := range fileFormats() {
		t.Run(format, func(t *testing.T) {
			whole := t.TempDir()
			if _, err := Materialize(sum, Options{Dir: whole, Format: format, Workers: 2, BatchRows: 128}); err != nil {
				t.Fatal(err)
			}
			parts := t.TempDir()
			for i := 0; i < shards; i++ {
				rep, err := Materialize(sum, Options{
					Dir: parts, Format: format, Workers: 3,
					Shards: shards, Shard: i, BatchRows: 128,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.ManifestPath == "" {
					t.Fatal("sharded run must write a manifest")
				}
			}
			for name, want := range readDirFiles(t, whole) {
				var cat []byte
				for i := 0; i < shards; i++ {
					b, err := os.ReadFile(filepath.Join(parts, fmt.Sprintf("%s.part-%03d-of-%03d", name, i, shards)))
					if err != nil {
						t.Fatal(err)
					}
					cat = append(cat, b...)
				}
				if !bytes.Equal(cat, want) {
					t.Fatalf("%s: concatenated parts (%d bytes) != whole file (%d bytes)", name, len(cat), len(want))
				}
			}
		})
	}
}

// TestHeapMatchesSequentialWriter pins the heap sink to the storage
// package's own Writer: the parallel engine must emit the exact bytes a
// row-at-a-time storage.Writer produces, and storage.Open must read them.
func TestHeapMatchesSequentialWriter(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	if _, err := Materialize(sum, Options{Dir: dir, Format: "heap", Workers: 4, BatchRows: 100}); err != nil {
		t.Fatal(err)
	}
	for name, rs := range sum.Relations {
		g := tuplegen.New(rs)
		ref := filepath.Join(dir, name+".ref")
		w, err := storage.Create(ref, name, g.ColNames())
		if err != nil {
			t.Fatal(err)
		}
		var row []int64
		for pk := int64(1); pk <= g.NumRows(); pk++ {
			row = g.Row(pk, row)
			if err := w.Write(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		want, _ := os.ReadFile(ref)
		got, _ := os.ReadFile(filepath.Join(dir, name+".heap"))
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: matgen heap (%d bytes) != storage.Writer heap (%d bytes)", name, len(got), len(want))
		}
		d, err := storage.Open(filepath.Join(dir, name+".heap"))
		if err != nil {
			t.Fatal(err)
		}
		if d.NumRows() != g.NumRows() {
			t.Fatalf("%s: reopened rows = %d, want %d", name, d.NumRows(), g.NumRows())
		}
		it := d.Scan()
		var n int64
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			if n == 0 && r[0] != 1 {
				t.Fatalf("%s: first pk = %d", name, r[0])
			}
			n++
		}
		it.Close()
		if n != g.NumRows() {
			t.Fatalf("%s: scanned %d rows, want %d", name, n, g.NumRows())
		}
	}
}

// TestCSVAndSQLShape spot-checks the text formats' structure.
func TestCSVAndSQLShape(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	if _, err := Materialize(sum, Options{Dir: dir, Format: "csv", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "T.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(csv), "\n"), "\n")
	if lines[0] != "T_pk,C" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 1+1513 {
		t.Fatalf("csv line count = %d", len(lines))
	}
	if lines[1] != "1,2" || lines[len(lines)-1] != "1513,7" {
		t.Fatalf("csv rows: first %q last %q", lines[1], lines[len(lines)-1])
	}
	if _, err := Materialize(sum, Options{Dir: dir, Format: "sql", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	sql, err := os.ReadFile(filepath.Join(dir, "T.sql"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(sql)
	if !strings.Contains(text, "BEGIN;\n") || !strings.HasSuffix(text, "COMMIT;\n") {
		t.Fatal("sql missing transaction wrapper")
	}
	wantStmts := (1513 + sqlRowsPerStmt - 1) / sqlRowsPerStmt
	if got := strings.Count(text, "INSERT INTO T (T_pk,C) VALUES\n"); got != wantStmts {
		t.Fatalf("sql INSERT count = %d, want %d", got, wantStmts)
	}
	if got := strings.Count(text, ";\n"); got != wantStmts+2 { // + BEGIN/COMMIT
		t.Fatalf("sql terminator count = %d, want %d", got, wantStmts+2)
	}
}

func TestDiscardAndSubset(t *testing.T) {
	sum := testSummary()
	rep, err := Materialize(sum, Options{Format: "discard", Workers: 4, Tables: []string{"S"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 8208 || rep.Bytes != 0 {
		t.Fatalf("discard report rows=%d bytes=%d", rep.Rows, rep.Bytes)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].Path != "" {
		t.Fatalf("discard tables = %+v", rep.Tables)
	}
	if rep.RowsPerSec() <= 0 {
		t.Fatal("rows/sec not measured")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	rep, err := Materialize(sum, Options{Dir: dir, Format: "jsonl", Workers: 2, Shards: 2, Shard: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(rep.ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shard != 1 || m.Shards != 2 || m.Format != "jsonl" || m.Rows != rep.Rows {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.Tables) != 2 {
		t.Fatalf("manifest tables = %+v", m.Tables)
	}
	for _, tr := range m.Tables {
		if tr.StartRow+tr.Rows > tr.TotalRows || tr.Rows < 0 {
			t.Fatalf("bad table range: %+v", tr)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	sum := testSummary()
	cases := []Options{
		{Format: "parquet", Dir: t.TempDir()},
		{Format: "csv"}, // no Dir
		{Format: "discard", Shards: 2, Shard: 5},
		{Format: "discard", Workers: -1},
		{Format: "discard", Tables: []string{"nope"}},
		{Format: "discard", BatchRows: -3},
	}
	for i, opts := range cases {
		if _, err := Materialize(sum, opts); err == nil {
			t.Fatalf("case %d (%+v): expected error", i, opts)
		}
	}
}

func TestShardRangePartition(t *testing.T) {
	for _, total := range []int64{0, 1, 99, 1513, 8208, 1_000_000} {
		for _, align := range []int{1, 7, 256, 500} {
			for _, n := range []int{1, 2, 3, 8} {
				var covered int64
				prevHi := int64(0)
				for i := 0; i < n; i++ {
					r := shardRange(total, i, n, align)
					if r.Lo != prevHi {
						t.Fatalf("total=%d align=%d n=%d shard=%d: lo %d != prev hi %d", total, align, n, i, r.Lo, prevHi)
					}
					if i != n-1 && r.Hi%int64(align) != 0 {
						t.Fatalf("interior boundary %d not aligned to %d", r.Hi, align)
					}
					covered += r.Rows()
					prevHi = r.Hi
				}
				if covered != total || prevHi != total {
					t.Fatalf("total=%d align=%d n=%d: covered %d, end %d", total, align, n, covered, prevHi)
				}
			}
		}
	}
}
