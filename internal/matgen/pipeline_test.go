package matgen

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// failingCompressor counts AppendFrame calls and fails permanently from
// failAt on — a stand-in for a mid-run write/compress failure that lets
// the tests observe how much work the pipeline performs after the first
// error.
type failingCompressor struct {
	calls  atomic.Int64
	failAt int64
}

func (f *failingCompressor) Name() string { return "testfail" }
func (f *failingCompressor) Ext() string  { return ".tf" }

func (f *failingCompressor) AppendFrame(dst, src []byte) ([]byte, error) {
	if f.calls.Add(1) >= f.failAt {
		return nil, errors.New("synthetic compress failure")
	}
	return append(dst, src...), nil
}

func (f *failingCompressor) NewReader(r io.Reader) (io.ReadCloser, error) {
	return io.NopCloser(r), nil
}

var failComp = &failingCompressor{}

func init() { RegisterCompressor(failComp) }

// bigSummary is one relation with enough rows to split into many small
// chunks, so a prompt stop is distinguishable from a full drain.
func bigSummary(rows int64) *summary.Summary {
	rel := &summary.RelationSummary{
		Table: "B", Cols: []string{"C"},
		Rows:  []summary.RelRow{{Vals: []int64{5}, Count: rows}},
		Total: rows,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"B": rel}}
}

// TestErrorStopsPipelinePromptly is the wasted-work regression test: when
// a chunk fails mid-run, the dispatcher must stop submitting and the
// workers must stop encoding, instead of generating and compressing every
// remaining chunk into the void.
func TestErrorStopsPipelinePromptly(t *testing.T) {
	const rows = 200_000
	const batch = 64
	totalChunks := int64((rows + batch - 1) / batch)
	failComp.calls.Store(0)
	failComp.failAt = 3
	dir := t.TempDir()
	_, err := Materialize(bigSummary(rows), Options{
		Dir: dir, Format: "csv", Compress: "testfail",
		Workers: 4, BatchRows: batch,
	})
	if err == nil {
		t.Fatal("expected the synthetic failure to surface")
	}
	if got := err.Error(); got != "matgen: B: synthetic compress failure" {
		t.Fatalf("error = %q", got)
	}
	attempted := failComp.calls.Load()
	if attempted >= totalChunks/4 {
		t.Fatalf("pipeline attempted %d of %d chunks after the failure; want a prompt stop", attempted, totalChunks)
	}
	// The failed table's partial file and the manifest must be gone.
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, e := range entries {
		t.Errorf("failed run left %s behind", e.Name())
	}
}

// TestErrorCancelsSiblingTables: a failure in one table must cancel the
// others, remove their partial output, and report the failing table.
func TestErrorCancelsSiblingTables(t *testing.T) {
	sum := bigSummary(100_000)
	sum.Relations["A2"] = &summary.RelationSummary{
		Table: "A2", Cols: []string{"D"},
		Rows:  []summary.RelRow{{Vals: []int64{9}, Count: 100_000}},
		Total: 100_000,
	}
	failComp.calls.Store(0)
	failComp.failAt = 1 // every frame fails, whichever table gets there first
	dir := t.TempDir()
	_, err := Materialize(sum, Options{
		Dir: dir, Format: "csv", Compress: "testfail",
		Workers: 4, BatchRows: 64,
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, e := range entries {
		t.Errorf("failed run left %s behind", e.Name())
	}
}

// sparseSink emits output for only the first 128 rows of a relation, so
// every later chunk encodes to zero bytes — the shape of a filtering or
// sampling custom sink.
type sparseSink struct{}

func (sparseSink) Name() string                  { return "sparsetest" }
func (sparseSink) Ext() string                   { return ".sp" }
func (sparseSink) Align(int) (int, error)        { return 1, nil }
func (sparseSink) Header(Layout) ([]byte, error) { return nil, nil }
func (sparseSink) Footer(Layout) ([]byte, error) { return nil, nil }
func (sparseSink) NewEncoder(Layout) Encoder     { return sparseEncoder{} }

type sparseEncoder struct{}

func (sparseEncoder) AppendBatch(dst []byte, b *tuplegen.Batch, rowOff int64) []byte {
	for i := 0; i < b.N; i++ {
		if rowOff+int64(i) < 128 {
			dst = append(dst, fmt.Sprintf("%d\n", b.Cols[0][i])...)
		}
	}
	return dst
}

// TestEmptyChunksStayDeterministic: a sink that encodes nothing for some
// chunks must still produce byte-identical compressed output at every
// worker count — empty chunks yield no frame on either the sequential or
// the pool path.
func TestEmptyChunksStayDeterministic(t *testing.T) {
	sum := bigSummary(50_000)
	var got []byte
	for _, workers := range []int{1, 8} {
		dir := t.TempDir()
		if _, err := Materialize(sum, Options{
			Dir: dir, Sink: sparseSink{}, Compress: "gzip",
			Workers: workers, BatchRows: 64, NoManifest: true,
		}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "B.sp.gz"))
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			got = b
			continue
		}
		if !bytes.Equal(b, got) {
			t.Fatalf("workers=%d: sparse compressed output differs from workers=1 (%d vs %d bytes)", workers, len(b), len(got))
		}
	}
	c, err := CompressorFor("gzip")
	if err != nil {
		t.Fatal(err)
	}
	zr, err := c.NewReader(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(plain, []byte{'\n'}); lines != 128 {
		t.Fatalf("sparse output has %d lines, want 128", lines)
	}
}

// TestEncoderSteadyStateAllocs pins the zero-allocation property of the
// hot encode path: after a warmup call sizes the scratch buffers, both
// the span path and the batch path of every built-in encoder must
// allocate nothing.
func TestEncoderSteadyStateAllocs(t *testing.T) {
	sum := testSummary()
	rs := sum.Relations["S"]
	for _, spread := range []bool{false, true} {
		g := tuplegen.New(rs)
		g.SetFKSpread(spread)
		l := Layout{Table: rs.Table, Cols: g.ColNames(), TotalRows: g.NumRows()}
		for _, name := range SinkNames() {
			s, err := sinkFor(name)
			if err != nil {
				t.Fatal(err)
			}
			enc := s.NewEncoder(l)
			var dst []byte
			if se, ok := enc.(SpanEncoder); ok {
				allocs := testing.AllocsPerRun(50, func() {
					dst = dst[:0]
					it := g.Spans(1, 4096)
					for sp, ok := it.Next(); ok; sp, ok = it.Next() {
						dst = se.AppendSpan(dst, sp)
					}
				})
				if allocs != 0 {
					t.Errorf("%s/spread=%v: AppendSpan path allocates %.1f per chunk, want 0", name, spread, allocs)
				}
			}
			b := g.Batch(1, 4096, nil)
			dst = dst[:0]
			allocs := testing.AllocsPerRun(50, func() {
				dst = dst[:0]
				dst = enc.AppendBatch(dst, b, 0)
			})
			if allocs != 0 {
				t.Errorf("%s/spread=%v: AppendBatch path allocates %.1f per chunk, want 0", name, spread, allocs)
			}
		}
	}
}

// TestSpanEncodersCoverFileSinks pins the design decision that every
// file sink takes the run-aware path while discard deliberately keeps
// materializing batches (it measures generation).
func TestSpanEncodersCoverFileSinks(t *testing.T) {
	l := Layout{Table: "T", Cols: []string{"T_pk", "c"}, TotalRows: 10}
	for _, name := range SinkNames() {
		s, _ := sinkFor(name)
		_, spanAware := s.NewEncoder(l).(SpanEncoder)
		if want := s.Ext() != ""; spanAware != want {
			t.Errorf("%s: span-aware = %v, want %v", name, spanAware, want)
		}
	}
}

// TestReportRawBytes: RawBytes must equal Bytes for uncompressed runs
// and the decompressed size for compressed runs.
func TestReportRawBytes(t *testing.T) {
	sum := testSummary()
	plain, err := Materialize(sum, Options{Dir: t.TempDir(), Format: "csv", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.RawBytes != plain.Bytes {
		t.Fatalf("uncompressed RawBytes %d != Bytes %d", plain.RawBytes, plain.Bytes)
	}
	packed, err := Materialize(sum, Options{Dir: t.TempDir(), Format: "csv", Compress: "gzip", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if packed.RawBytes != plain.Bytes {
		t.Fatalf("compressed RawBytes %d != uncompressed Bytes %d", packed.RawBytes, plain.Bytes)
	}
	if packed.Bytes >= packed.RawBytes {
		t.Fatalf("compressed Bytes %d should undercut RawBytes %d on this data", packed.Bytes, packed.RawBytes)
	}
	m, err := ReadManifest(packed.ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.RawBytes != packed.RawBytes {
		t.Fatalf("manifest RawBytes %d != report %d", m.RawBytes, packed.RawBytes)
	}
}

// TestPkWriter exercises the incrementing-decimal writer across digit
// growth and carry chains.
func TestPkWriter(t *testing.T) {
	var p pkWriter
	for _, start := range []int64{1, 7, 9, 42, 99, 100, 987, 999999999999999998} {
		p.set(start)
		for v := start; v < start+1200 && v > 0; v++ {
			if got := string(p.digits()); got != fmt.Sprint(v) {
				t.Fatalf("pkWriter at %d = %q", v, got)
			}
			p.inc()
		}
	}
}
