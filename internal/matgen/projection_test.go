package matgen

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// TestProjectionDeterminism extends the worker-count contract to
// projected materializations: for every file format, a column subset
// (reordered, pk-less where the format allows) must produce
// byte-identical files for 1 and 8 workers, and shard parts must
// concatenate into the single-shard file.
func TestProjectionDeterminism(t *testing.T) {
	sum := testSummary()
	cols := []string{"t_fk", "A"} // reordered, no pk
	for _, format := range fileFormats() {
		t.Run(format, func(t *testing.T) {
			var whole map[string][]byte
			for _, workers := range []int{1, 8} {
				dir := t.TempDir()
				if _, err := Materialize(sum, Options{
					Dir: dir, Format: format, Workers: workers,
					BatchRows: 64, Tables: []string{"S"}, Columns: cols,
				}); err != nil {
					t.Fatal(err)
				}
				files := readDirFiles(t, dir)
				if whole == nil {
					whole = files
					continue
				}
				for name, b := range files {
					if !bytes.Equal(b, whole[name]) {
						t.Fatalf("workers=8: %s differs from workers=1", name)
					}
				}
			}
			// Shard concatenation under projection.
			dir := t.TempDir()
			const shards = 3
			for i := 0; i < shards; i++ {
				if _, err := Materialize(sum, Options{
					Dir: dir, Format: format, Workers: 4, Shards: shards, Shard: i,
					BatchRows: 64, Tables: []string{"S"}, Columns: cols,
				}); err != nil {
					t.Fatal(err)
				}
			}
			var cat []byte
			for i := 0; i < shards; i++ {
				sink, _ := sinkFor(format)
				name := fmt.Sprintf("S%s.part-%03d-of-%03d", sink.Ext(), i, shards)
				cat = append(cat, readDirFiles(t, dir)[name]...)
			}
			for name, b := range whole {
				if !bytes.Equal(cat, b) {
					t.Fatalf("projected shards of %s do not concatenate to the whole file (%d vs %d bytes)",
						name, len(cat), len(b))
				}
			}
		})
	}
}

// TestStreamProjection: a projected stream is byte-identical to a
// projected materialization, and resuming a projected stream on the
// chunk grid splices exactly.
func TestStreamProjection(t *testing.T) {
	sum := testSummary()
	cols := []string{"S_pk", "B"}
	dir := t.TempDir()
	if _, err := Materialize(sum, Options{
		Dir: dir, Format: "csv", Workers: 2, Tables: []string{"S"}, Columns: cols,
	}); err != nil {
		t.Fatal(err)
	}
	want := readDirFiles(t, dir)["S.csv"]

	var whole bytes.Buffer
	rep, err := Stream(context.Background(), sum, StreamOptions{
		Table: "S", Format: "csv", Columns: cols, BatchRows: 512,
	}, &whole)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), want) {
		t.Fatalf("projected stream differs from projected file (%d vs %d bytes)", whole.Len(), len(want))
	}
	if len(rep.Cols) != 2 || rep.Cols[0] != "S_pk" || rep.Cols[1] != "B" {
		t.Fatalf("report cols = %v", rep.Cols)
	}

	// Resume at a grid offset: prefix+suffix must equal the whole stream.
	off := rep.ChunkRows * 2
	var prefix, suffix bytes.Buffer
	if _, err := Stream(context.Background(), sum, StreamOptions{
		Table: "S", Format: "csv", Columns: cols, BatchRows: 512, Limit: off,
	}, &prefix); err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(context.Background(), sum, StreamOptions{
		Table: "S", Format: "csv", Columns: cols, BatchRows: 512, Offset: off,
	}, &suffix); err != nil {
		t.Fatal(err)
	}
	if got := append(prefix.Bytes(), suffix.Bytes()...); !bytes.Equal(got, want) {
		t.Fatalf("resumed projected stream does not splice (%d vs %d bytes)", len(got), len(want))
	}
}
