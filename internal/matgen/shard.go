package matgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsl-repro/hydra/internal/fsx"
)

// Range is a half-open interval [Lo, Hi) of absolute 0-based row offsets;
// row r holds primary key r+1.
type Range struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// Rows returns the range's cardinality.
func (r Range) Rows() int64 { return r.Hi - r.Lo }

// shardRange computes shard i of n over total rows, with interior
// boundaries aligned down to align so every piece starts and ends on an
// encoding boundary of the sink. The partition depends only on
// (total, n, align) — never on which shard asks or how many workers run —
// which is what lets K machines generate pieces that concatenate, in
// shard order, into byte-identical whole-table output.
func shardRange(total int64, shard, n, align int) Range {
	lo := alignDown(total*int64(shard)/int64(n), align)
	hi := total
	if shard != n-1 {
		hi = alignDown(total*int64(shard+1)/int64(n), align)
	}
	if hi < lo {
		hi = lo
	}
	return Range{Lo: lo, Hi: hi}
}

func alignDown(x int64, a int) int64 { return x - x%int64(a) }

// chunkRows picks the per-chunk row count handed to one worker: the
// configured batch size rounded up to the sink's alignment, so every
// chunk starts on an encoding boundary.
func chunkRows(batchRows, align int) int64 {
	if batchRows < align {
		return int64(align)
	}
	return int64((batchRows + align - 1) / align * align)
}

// Manifest is the per-shard JSON document written next to the output
// files. It records exactly which piece of the split this invocation
// produced — the coordination artifact for multi-machine runs: each
// machine materializes its shard, ships the parts, and the manifests say
// how to concatenate and verify them.
type Manifest struct {
	Version int    `json:"version"`
	Format  string `json:"format"`
	// Compression is the output codec recorded at generation time; a
	// verifier needs it to decompress parts, but checksums are over the
	// file bytes as written so verification itself needs no decoder.
	Compression string        `json:"compression,omitempty"`
	Shard       int           `json:"shard"`
	Shards      int           `json:"shards"`
	Tables      []TableReport `json:"tables"`
	Rows        int64         `json:"rows"`
	Bytes       int64         `json:"bytes"`
	// RawBytes is the shard's encoded size before compression (equal to
	// Bytes for uncompressed output) — the number a capacity planner
	// wants when deciding whether regenerating beats shipping.
	RawBytes int64 `json:"raw_bytes,omitempty"`
}

const manifestVersion = 1

// ManifestPath returns the manifest file name for one shard under dir.
func ManifestPath(dir string, shard, shards int) string {
	return filepath.Join(dir, fmt.Sprintf("manifest-%03d-of-%03d.json", shard, shards))
}

func writeManifest(path string, m *Manifest) error {
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// ReadManifest loads a manifest written by Materialize.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Manifest
	dec := json.NewDecoder(bufio.NewReader(f))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("matgen: %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("matgen: %s: unsupported manifest version %d", path, m.Version)
	}
	return &m, nil
}
