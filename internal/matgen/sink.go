package matgen

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/dsl-repro/hydra/internal/storage"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// Layout describes one relation's output stream: the table name, the
// column names in tuple order (pk first), and the full-relation
// cardinality, which every shard knows up front from the summary.
type Layout struct {
	Table     string
	Cols      []string
	TotalRows int64
}

// Sink describes one output format and manufactures its encoders. The
// engine hands disjoint chunks of a relation to parallel workers; each
// worker holds a private Encoder built by NewEncoder, encodes its chunks
// into pooled buffers, and an ordered collector concatenates the
// results. For that to be byte-deterministic, the encoding of a tuple
// may depend only on the layout, the tuple values, and the tuple's
// absolute row offset — encoders may carry precomputed layout constants
// and scratch buffers, but never state accumulated across chunks.
type Sink interface {
	// Name is the format name used by Options.Format and the CLI -format
	// flag.
	Name() string
	// Ext is the output file extension including the dot; empty means the
	// sink produces no files (the discard sink).
	Ext() string
	// Align returns the row-count multiple that chunk and shard
	// boundaries must respect so independently encoded pieces concatenate
	// into exactly the bytes a single sequential encoder would produce
	// (heap pages, SQL statement groups). Alignment 1 means any split
	// works. It may reject impossible layouts (a row wider than a heap
	// page).
	Align(ncols int) (int, error)
	// Header returns the file prologue, emitted once per table by shard 0.
	Header(l Layout) ([]byte, error)
	// NewEncoder returns a fresh encoder for one relation. Layout-derived
	// constants (quoted JSON keys, SQL statement prologues, heap page
	// geometry) are computed here, once per worker per table, instead of
	// on every encode call.
	NewEncoder(l Layout) Encoder
	// Footer returns the file epilogue, emitted once per table by the
	// last shard.
	Footer(l Layout) ([]byte, error)
}

// Encoder turns tuple batches into one table's byte stream. Encoders are
// not safe for concurrent use; the engine builds one per worker.
type Encoder interface {
	// AppendBatch appends the encoding of b to dst and returns it. rowOff
	// is the absolute 0-based row offset of b's first tuple (row r holds
	// primary key r+1); position-dependent formats derive page and
	// statement boundaries from it.
	AppendBatch(dst []byte, b *tuplegen.Batch, rowOff int64) []byte
}

// SpanEncoder is implemented by encoders that can render a summary-row
// run directly from its span structure, without materializing a
// column-major batch first. The engine prefers this path: a run's
// constant column tail is rendered once and stamped per row with an
// incrementing primary key, turning O(rows x cols) value encodings into
// O(rows + spans x cols).
type SpanEncoder interface {
	Encoder
	// AppendSpan appends the encoding of the span's sp.N tuples to dst
	// and returns it. The absolute 0-based row offset of the first tuple
	// is sp.Start-1. The span is passed by value so iteration stays
	// allocation-free across the interface boundary.
	AppendSpan(dst []byte, sp tuplegen.Span) []byte
}

var (
	sinkMu   sync.RWMutex
	sinkReg  = map[string]Sink{}
	sinkName []string
)

// RegisterSink makes a sink selectable by Options.Format. It panics on a
// duplicate or empty name; the built-in formats register themselves.
func RegisterSink(s Sink) {
	sinkMu.Lock()
	defer sinkMu.Unlock()
	name := s.Name()
	if name == "" {
		panic("matgen: sink with empty name")
	}
	if _, dup := sinkReg[name]; dup {
		panic("matgen: duplicate sink " + name)
	}
	sinkReg[name] = s
	sinkName = append(sinkName, name)
	sort.Strings(sinkName)
}

// SinkNames lists the registered format names, sorted.
func SinkNames() []string {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	return append([]string(nil), sinkName...)
}

// SinkFor resolves a registered sink by format name.
func SinkFor(name string) (Sink, error) { return sinkFor(name) }

func sinkFor(name string) (Sink, error) {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	s, ok := sinkReg[name]
	if !ok {
		return nil, fmt.Errorf("matgen: unknown format %q (have %s)", name, strings.Join(sinkName, ", "))
	}
	return s, nil
}

func init() {
	RegisterSink(csvSink{})
	RegisterSink(jsonlSink{})
	RegisterSink(heapSink{})
	RegisterSink(sqlSink{})
	RegisterSink(discardSink{})
}

// pkWriter emits consecutive decimal integers without per-value strconv:
// the digits of the current value are kept right-aligned in a small
// buffer and incremented in place, so stamping a run's primary keys
// costs one buffer copy plus one digit increment per row.
type pkWriter struct {
	buf [20]byte // max int64 has 19 digits; one spare for the carry
	n   int      // digit count of the current value
}

//hydra:hotpath
func (p *pkWriter) set(v int64) {
	var tmp [20]byte
	s := strconv.AppendInt(tmp[:0], v, 10)
	p.n = len(s)
	// Zero the prefix so a carry past the current width lands on '0'+1.
	for i := 0; i < len(p.buf)-p.n; i++ {
		p.buf[i] = '0'
	}
	copy(p.buf[len(p.buf)-p.n:], s)
}

func (p *pkWriter) digits() []byte { return p.buf[len(p.buf)-p.n:] }

//hydra:hotpath
func (p *pkWriter) inc() {
	i := len(p.buf) - 1
	for p.buf[i] == '9' {
		p.buf[i] = '0'
		i--
	}
	p.buf[i]++
	if w := len(p.buf) - i; w > p.n {
		p.n = w
	}
}

// --- CSV ---

type csvSink struct{}

func (csvSink) Name() string                  { return "csv" }
func (csvSink) Ext() string                   { return ".csv" }
func (csvSink) Align(int) (int, error)        { return 1, nil }
func (csvSink) Footer(Layout) ([]byte, error) { return nil, nil }

func (csvSink) Header(l Layout) ([]byte, error) {
	return []byte(strings.Join(l.Cols, ",") + "\n"), nil
}

func (csvSink) NewEncoder(Layout) Encoder { return &csvEncoder{} }

type csvEncoder struct {
	pk   pkWriter
	tail []byte // scratch for the current span's constant column tail
}

func (e *csvEncoder) AppendBatch(dst []byte, b *tuplegen.Batch, _ int64) []byte {
	for i := 0; i < b.N; i++ {
		for c, col := range b.Cols {
			if c > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, col[i], 10)
		}
		dst = append(dst, '\n')
	}
	return dst
}

func (e *csvEncoder) AppendSpan(dst []byte, sp tuplegen.Span) []byte {
	t := e.tail[:0]
	for _, v := range sp.Vals {
		t = append(t, ',')
		t = strconv.AppendInt(t, v, 10)
	}
	if sp.ConstFKs() {
		for _, fk := range sp.FKs {
			t = append(t, ',')
			t = strconv.AppendInt(t, fk, 10)
		}
		t = append(t, '\n')
		e.tail = t
		e.pk.set(sp.Start)
		for i := int64(0); i < sp.N; i++ {
			dst = append(dst, e.pk.digits()...)
			dst = append(dst, t...)
			e.pk.inc()
		}
		return dst
	}
	e.tail = t
	e.pk.set(sp.Start)
	for i := int64(0); i < sp.N; i++ {
		dst = append(dst, e.pk.digits()...)
		dst = append(dst, t...)
		for c, fk := range sp.FKs {
			if span := sp.FKSpans[c]; span > 1 {
				fk += (sp.Off + i) % span
			}
			dst = append(dst, ',')
			dst = strconv.AppendInt(dst, fk, 10)
		}
		dst = append(dst, '\n')
		e.pk.inc()
	}
	return dst
}

// --- JSONL ---

type jsonlSink struct{}

func (jsonlSink) Name() string                  { return "jsonl" }
func (jsonlSink) Ext() string                   { return ".jsonl" }
func (jsonlSink) Align(int) (int, error)        { return 1, nil }
func (jsonlSink) Header(Layout) ([]byte, error) { return nil, nil }
func (jsonlSink) Footer(Layout) ([]byte, error) { return nil, nil }

// NewEncoder quotes the column names through the JSON encoder once per
// table; the per-row path only copies the precomputed `"name":` bytes.
func (jsonlSink) NewEncoder(l Layout) Encoder {
	e := &jsonlEncoder{keys: make([][]byte, len(l.Cols))}
	for c, name := range l.Cols {
		q, _ := json.Marshal(name)
		e.keys[c] = append(q, ':')
	}
	return e
}

type jsonlEncoder struct {
	keys [][]byte // quoted column names, each with the trailing ':'
	pk   pkWriter
	tail []byte
}

func (e *jsonlEncoder) AppendBatch(dst []byte, b *tuplegen.Batch, _ int64) []byte {
	for i := 0; i < b.N; i++ {
		dst = append(dst, '{')
		for c, col := range b.Cols {
			if c > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, e.keys[c]...)
			dst = strconv.AppendInt(dst, col[i], 10)
		}
		dst = append(dst, '}', '\n')
	}
	return dst
}

func (e *jsonlEncoder) AppendSpan(dst []byte, sp tuplegen.Span) []byte {
	t := e.tail[:0]
	for c, v := range sp.Vals {
		t = append(t, ',')
		t = append(t, e.keys[1+c]...)
		t = strconv.AppendInt(t, v, 10)
	}
	nvals := len(sp.Vals)
	if sp.ConstFKs() {
		for c, fk := range sp.FKs {
			t = append(t, ',')
			t = append(t, e.keys[1+nvals+c]...)
			t = strconv.AppendInt(t, fk, 10)
		}
		t = append(t, '}', '\n')
		e.tail = t
		e.pk.set(sp.Start)
		for i := int64(0); i < sp.N; i++ {
			dst = append(dst, '{')
			dst = append(dst, e.keys[0]...)
			dst = append(dst, e.pk.digits()...)
			dst = append(dst, t...)
			e.pk.inc()
		}
		return dst
	}
	e.tail = t
	e.pk.set(sp.Start)
	for i := int64(0); i < sp.N; i++ {
		dst = append(dst, '{')
		dst = append(dst, e.keys[0]...)
		dst = append(dst, e.pk.digits()...)
		dst = append(dst, t...)
		for c, fk := range sp.FKs {
			if span := sp.FKSpans[c]; span > 1 {
				fk += (sp.Off + i) % span
			}
			dst = append(dst, ',')
			dst = append(dst, e.keys[1+nvals+c]...)
			dst = strconv.AppendInt(dst, fk, 10)
		}
		dst = append(dst, '}', '\n')
		e.pk.inc()
	}
	return dst
}

// --- heap (internal/storage) ---

// heapSink emits the paged heap-file format of internal/storage,
// byte-identical to a sequential storage.Writer and readable by
// storage.Open. Alignment is the page's row capacity so every chunk and
// shard starts at a page boundary; the header page carries the exact row
// count, which the summary provides before generation starts.
type heapSink struct{}

var zeroPage [storage.PageSize]byte

func (heapSink) Name() string { return "heap" }
func (heapSink) Ext() string  { return ".heap" }

func (heapSink) Align(ncols int) (int, error) { return storage.RowsPerPage(ncols) }

func (heapSink) Header(l Layout) ([]byte, error) {
	return storage.EncodeHeaderPage(l.Table, l.Cols, l.TotalRows)
}

func (heapSink) Footer(l Layout) ([]byte, error) {
	ncols := len(l.Cols)
	perPage, err := storage.RowsPerPage(ncols)
	if err != nil {
		return nil, err
	}
	rem := int(l.TotalRows % int64(perPage))
	if rem == 0 {
		return nil, nil
	}
	return zeroPage[:storage.PageSize-rem*8*ncols], nil
}

// NewEncoder computes the page geometry once per table, through the
// same storage helper Align and Footer use so the three can never
// diverge. The engine validates Align before building encoders, so the
// layout is known to fit a page here.
func (heapSink) NewEncoder(l Layout) Encoder {
	ncols := len(l.Cols)
	perPage, err := storage.RowsPerPage(ncols)
	if err != nil {
		panic("matgen: heap encoder built for a layout Align rejected: " + err.Error())
	}
	return &heapEncoder{
		perPage: perPage,
		pagePad: storage.PageSize - perPage*8*ncols,
	}
}

type heapEncoder struct {
	perPage int
	pagePad int
	row     []byte // scratch: one encoded row, the span template
}

func (e *heapEncoder) AppendBatch(dst []byte, b *tuplegen.Batch, rowOff int64) []byte {
	inPage := int(rowOff % int64(e.perPage))
	var tmp [8]byte
	for i := 0; i < b.N; i++ {
		for _, col := range b.Cols {
			binary.LittleEndian.PutUint64(tmp[:], uint64(col[i]))
			dst = append(dst, tmp[:]...)
		}
		inPage++
		if inPage == e.perPage {
			dst = append(dst, zeroPage[:e.pagePad]...)
			inPage = 0
		}
	}
	return dst
}

// AppendSpan renders the run's constant columns into a one-row template
// once, then per row copies the template and patches the pk (and any
// spread FK columns) in place.
func (e *heapEncoder) AppendSpan(dst []byte, sp tuplegen.Span) []byte {
	t := e.row[:0]
	var tmp [8]byte // pk placeholder, patched per row
	t = append(t, tmp[:]...)
	for _, v := range sp.Vals {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		t = append(t, tmp[:]...)
	}
	for _, fk := range sp.FKs {
		binary.LittleEndian.PutUint64(tmp[:], uint64(fk))
		t = append(t, tmp[:]...)
	}
	e.row = t
	constFK := sp.ConstFKs()
	fkBase := 8 * (1 + len(sp.Vals))
	inPage := int((sp.Start - 1) % int64(e.perPage))
	for i := int64(0); i < sp.N; i++ {
		at := len(dst)
		dst = append(dst, t...)
		binary.LittleEndian.PutUint64(dst[at:], uint64(sp.Start+i))
		if !constFK {
			for c, fk := range sp.FKs {
				if span := sp.FKSpans[c]; span > 1 {
					fk += (sp.Off + i) % span
					binary.LittleEndian.PutUint64(dst[at+fkBase+8*c:], uint64(fk))
				}
			}
		}
		inPage++
		if inPage == e.perPage {
			dst = append(dst, zeroPage[:e.pagePad]...)
			inPage = 0
		}
	}
	return dst
}

// --- SQL INSERT ---

// sqlRowsPerStmt groups this many tuples per INSERT statement. Statement
// boundaries fall on absolute row offsets, so the alignment guarantees
// every shard and chunk begins exactly at a statement start.
const sqlRowsPerStmt = 500

type sqlSink struct{}

func (sqlSink) Name() string           { return "sql" }
func (sqlSink) Ext() string            { return ".sql" }
func (sqlSink) Align(int) (int, error) { return sqlRowsPerStmt, nil }

func (sqlSink) Header(l Layout) ([]byte, error) {
	return []byte(fmt.Sprintf("-- hydra materialization of %s (%d rows)\nBEGIN;\n",
		l.Table, l.TotalRows)), nil
}

func (sqlSink) Footer(Layout) ([]byte, error) { return []byte("COMMIT;\n"), nil }

// NewEncoder builds the INSERT prologue string once per table.
func (sqlSink) NewEncoder(l Layout) Encoder {
	return &sqlEncoder{
		prologue: []byte("INSERT INTO " + l.Table + " (" + strings.Join(l.Cols, ",") + ") VALUES\n"),
		total:    l.TotalRows,
	}
}

type sqlEncoder struct {
	prologue []byte
	total    int64
	pk       pkWriter
	tail     []byte
}

// appendTerm closes one VALUES row: ';' at statement and table ends,
// ',' otherwise.
func (e *sqlEncoder) appendTerm(dst []byte, abs int64) []byte {
	if abs+1 == e.total || (abs+1)%sqlRowsPerStmt == 0 {
		return append(dst, ')', ';', '\n')
	}
	return append(dst, ')', ',', '\n')
}

func (e *sqlEncoder) AppendBatch(dst []byte, b *tuplegen.Batch, rowOff int64) []byte {
	for i := 0; i < b.N; i++ {
		abs := rowOff + int64(i)
		if abs%sqlRowsPerStmt == 0 {
			dst = append(dst, e.prologue...)
		}
		dst = append(dst, '(')
		for c, col := range b.Cols {
			if c > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, col[i], 10)
		}
		dst = e.appendTerm(dst, abs)
	}
	return dst
}

func (e *sqlEncoder) AppendSpan(dst []byte, sp tuplegen.Span) []byte {
	t := e.tail[:0]
	for _, v := range sp.Vals {
		t = append(t, ',')
		t = strconv.AppendInt(t, v, 10)
	}
	constFK := sp.ConstFKs()
	if constFK {
		for _, fk := range sp.FKs {
			t = append(t, ',')
			t = strconv.AppendInt(t, fk, 10)
		}
	}
	e.tail = t
	e.pk.set(sp.Start)
	rowOff := sp.Start - 1
	for i := int64(0); i < sp.N; i++ {
		abs := rowOff + i
		if abs%sqlRowsPerStmt == 0 {
			dst = append(dst, e.prologue...)
		}
		dst = append(dst, '(')
		dst = append(dst, e.pk.digits()...)
		dst = append(dst, t...)
		if !constFK {
			for c, fk := range sp.FKs {
				if span := sp.FKSpans[c]; span > 1 {
					fk += (sp.Off + i) % span
				}
				dst = append(dst, ',')
				dst = strconv.AppendInt(dst, fk, 10)
			}
		}
		dst = e.appendTerm(dst, abs)
		e.pk.inc()
	}
	return dst
}

// --- discard ---

// discardSink drops every batch after generation: the throughput-
// measurement sink, isolating the generator and worker-pool cost from
// encoding and disk. Its encoder deliberately does not implement
// SpanEncoder — the point is to measure batch generation, so the engine
// must take the materializing path.
type discardSink struct{}

func (discardSink) Name() string                  { return "discard" }
func (discardSink) Ext() string                   { return "" }
func (discardSink) Align(int) (int, error)        { return 1, nil }
func (discardSink) Header(Layout) ([]byte, error) { return nil, nil }
func (discardSink) Footer(Layout) ([]byte, error) { return nil, nil }
func (discardSink) NewEncoder(Layout) Encoder     { return discardEncoder{} }

type discardEncoder struct{}

func (discardEncoder) AppendBatch(dst []byte, _ *tuplegen.Batch, _ int64) []byte { return dst }
