package matgen

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/dsl-repro/hydra/internal/storage"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// Layout describes one relation's output stream: the table name, the
// column names in tuple order (pk first), and the full-relation
// cardinality, which every shard knows up front from the summary.
type Layout struct {
	Table     string
	Cols      []string
	TotalRows int64
}

// Sink encodes column-major tuple batches into one output format's byte
// stream. Sinks are stateless encoders rather than stateful writers: the
// engine hands disjoint chunks of a relation to parallel workers, each
// worker encodes its chunk into a private buffer with AppendBatch, and an
// ordered collector concatenates the buffers. For that to be
// byte-deterministic, the encoding of a tuple may depend only on the
// layout, the tuple values, and the tuple's absolute row offset — never on
// encoder state accumulated across calls.
type Sink interface {
	// Name is the format name used by Options.Format and the CLI -format
	// flag.
	Name() string
	// Ext is the output file extension including the dot; empty means the
	// sink produces no files (the discard sink).
	Ext() string
	// Align returns the row-count multiple that chunk and shard
	// boundaries must respect so independently encoded pieces concatenate
	// into exactly the bytes a single sequential encoder would produce
	// (heap pages, SQL statement groups). Alignment 1 means any split
	// works. It may reject impossible layouts (a row wider than a heap
	// page).
	Align(ncols int) (int, error)
	// Header returns the file prologue, emitted once per table by shard 0.
	Header(l Layout) ([]byte, error)
	// AppendBatch appends the encoding of b to dst and returns it. rowOff
	// is the absolute 0-based row offset of b's first tuple (row r holds
	// primary key r+1); position-dependent formats derive page and
	// statement boundaries from it.
	AppendBatch(dst []byte, l Layout, b *tuplegen.Batch, rowOff int64) []byte
	// Footer returns the file epilogue, emitted once per table by the
	// last shard.
	Footer(l Layout) ([]byte, error)
}

var (
	sinkMu   sync.RWMutex
	sinkReg  = map[string]Sink{}
	sinkName []string
)

// RegisterSink makes a sink selectable by Options.Format. It panics on a
// duplicate or empty name; the built-in formats register themselves.
func RegisterSink(s Sink) {
	sinkMu.Lock()
	defer sinkMu.Unlock()
	name := s.Name()
	if name == "" {
		panic("matgen: sink with empty name")
	}
	if _, dup := sinkReg[name]; dup {
		panic("matgen: duplicate sink " + name)
	}
	sinkReg[name] = s
	sinkName = append(sinkName, name)
	sort.Strings(sinkName)
}

// SinkNames lists the registered format names, sorted.
func SinkNames() []string {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	return append([]string(nil), sinkName...)
}

func sinkFor(name string) (Sink, error) {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	s, ok := sinkReg[name]
	if !ok {
		return nil, fmt.Errorf("matgen: unknown format %q (have %s)", name, strings.Join(sinkName, ", "))
	}
	return s, nil
}

func init() {
	RegisterSink(csvSink{})
	RegisterSink(jsonlSink{})
	RegisterSink(heapSink{})
	RegisterSink(sqlSink{})
	RegisterSink(discardSink{})
}

// --- CSV ---

type csvSink struct{}

func (csvSink) Name() string                  { return "csv" }
func (csvSink) Ext() string                   { return ".csv" }
func (csvSink) Align(int) (int, error)        { return 1, nil }
func (csvSink) Footer(Layout) ([]byte, error) { return nil, nil }

func (csvSink) Header(l Layout) ([]byte, error) {
	return []byte(strings.Join(l.Cols, ",") + "\n"), nil
}

func (csvSink) AppendBatch(dst []byte, _ Layout, b *tuplegen.Batch, _ int64) []byte {
	for i := 0; i < b.N; i++ {
		for c, col := range b.Cols {
			if c > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, col[i], 10)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// --- JSONL ---

type jsonlSink struct{}

func (jsonlSink) Name() string                  { return "jsonl" }
func (jsonlSink) Ext() string                   { return ".jsonl" }
func (jsonlSink) Align(int) (int, error)        { return 1, nil }
func (jsonlSink) Header(Layout) ([]byte, error) { return nil, nil }
func (jsonlSink) Footer(Layout) ([]byte, error) { return nil, nil }

func (jsonlSink) AppendBatch(dst []byte, l Layout, b *tuplegen.Batch, _ int64) []byte {
	// Column names come from the schema and are almost always plain
	// identifiers, but quote them through the JSON encoder anyway; the
	// per-batch cost is negligible at thousands of rows per call.
	keys := make([][]byte, len(l.Cols))
	for c, name := range l.Cols {
		q, _ := json.Marshal(name)
		keys[c] = append(q, ':')
	}
	for i := 0; i < b.N; i++ {
		dst = append(dst, '{')
		for c, col := range b.Cols {
			if c > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, keys[c]...)
			dst = strconv.AppendInt(dst, col[i], 10)
		}
		dst = append(dst, '}', '\n')
	}
	return dst
}

// --- heap (internal/storage) ---

// heapSink emits the paged heap-file format of internal/storage,
// byte-identical to a sequential storage.Writer and readable by
// storage.Open. Alignment is the page's row capacity so every chunk and
// shard starts at a page boundary; the header page carries the exact row
// count, which the summary provides before generation starts.
type heapSink struct{}

var zeroPage [storage.PageSize]byte

func (heapSink) Name() string { return "heap" }
func (heapSink) Ext() string  { return ".heap" }

func (heapSink) Align(ncols int) (int, error) { return storage.RowsPerPage(ncols) }

func (heapSink) Header(l Layout) ([]byte, error) {
	return storage.EncodeHeaderPage(l.Table, l.Cols, l.TotalRows)
}

func (heapSink) AppendBatch(dst []byte, l Layout, b *tuplegen.Batch, rowOff int64) []byte {
	ncols := len(b.Cols)
	perPage := storage.PageSize / (8 * ncols)
	pagePad := storage.PageSize - perPage*8*ncols
	inPage := int(rowOff % int64(perPage))
	var tmp [8]byte
	for i := 0; i < b.N; i++ {
		for _, col := range b.Cols {
			binary.LittleEndian.PutUint64(tmp[:], uint64(col[i]))
			dst = append(dst, tmp[:]...)
		}
		inPage++
		if inPage == perPage {
			dst = append(dst, zeroPage[:pagePad]...)
			inPage = 0
		}
	}
	return dst
}

func (heapSink) Footer(l Layout) ([]byte, error) {
	ncols := len(l.Cols)
	perPage, err := storage.RowsPerPage(ncols)
	if err != nil {
		return nil, err
	}
	rem := int(l.TotalRows % int64(perPage))
	if rem == 0 {
		return nil, nil
	}
	return zeroPage[:storage.PageSize-rem*8*ncols], nil
}

// --- SQL INSERT ---

// sqlRowsPerStmt groups this many tuples per INSERT statement. Statement
// boundaries fall on absolute row offsets, so the alignment guarantees
// every shard and chunk begins exactly at a statement start.
const sqlRowsPerStmt = 500

type sqlSink struct{}

func (sqlSink) Name() string           { return "sql" }
func (sqlSink) Ext() string            { return ".sql" }
func (sqlSink) Align(int) (int, error) { return sqlRowsPerStmt, nil }

func (sqlSink) Header(l Layout) ([]byte, error) {
	return []byte(fmt.Sprintf("-- hydra materialization of %s (%d rows)\nBEGIN;\n",
		l.Table, l.TotalRows)), nil
}

func (sqlSink) AppendBatch(dst []byte, l Layout, b *tuplegen.Batch, rowOff int64) []byte {
	prologue := []byte("INSERT INTO " + l.Table + " (" + strings.Join(l.Cols, ",") + ") VALUES\n")
	for i := 0; i < b.N; i++ {
		abs := rowOff + int64(i)
		if abs%sqlRowsPerStmt == 0 {
			dst = append(dst, prologue...)
		}
		dst = append(dst, '(')
		for c, col := range b.Cols {
			if c > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, col[i], 10)
		}
		if abs+1 == l.TotalRows || (abs+1)%sqlRowsPerStmt == 0 {
			dst = append(dst, ')', ';', '\n')
		} else {
			dst = append(dst, ')', ',', '\n')
		}
	}
	return dst
}

func (sqlSink) Footer(Layout) ([]byte, error) { return []byte("COMMIT;\n"), nil }

// --- discard ---

// discardSink drops every batch after generation: the throughput-
// measurement sink, isolating the generator and worker-pool cost from
// encoding and disk.
type discardSink struct{}

func (discardSink) Name() string                  { return "discard" }
func (discardSink) Ext() string                   { return "" }
func (discardSink) Align(int) (int, error)        { return 1, nil }
func (discardSink) Header(Layout) ([]byte, error) { return nil, nil }
func (discardSink) Footer(Layout) ([]byte, error) { return nil, nil }

func (discardSink) AppendBatch(dst []byte, _ Layout, _ *tuplegen.Batch, _ int64) []byte {
	return dst
}
