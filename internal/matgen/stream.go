package matgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/rate"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// ErrStream marks a stream request the caller got wrong — unknown
// table, shard out of range, misaligned offset or limit, a sink with no
// byte stream. A serving layer maps errors.Is(err, ErrStream) to a
// client error; anything else is a generation failure.
var ErrStream = errors.New("matgen: invalid stream request")

// ErrFilter marks a stream request whose Filter was unusable — a column
// the relation does not have, or a format that cannot carry filtered
// (gap-bearing) row streams. It wraps ErrStream, so existing client
// error mapping keeps working; a serving layer can additionally count
// filter rejections by matching this sentinel.
var ErrFilter = fmt.Errorf("%w: invalid filter", ErrStream)

// StreamOptions selects one relation range scan for Stream. The encoded
// bytes are, by construction, exactly the bytes Materialize would put in
// the corresponding part file: same header/footer placement, same chunk
// grid, same per-chunk compression framing. That identity is what makes
// a network data plane trustworthy — a fetched stream and a shipped file
// verify against the same checksums.
type StreamOptions struct {
	// Table names the relation to scan. Required.
	Table string
	// Format names the sink ("heap" when empty). The sink must produce a
	// byte stream; "discard" is rejected.
	Format string
	// Compress names the output codec ("gzip"; "" or "none" disables).
	Compress string
	// Shards and Shard select the piece of an N-way split to stream,
	// exactly as in Options. Zero values mean the whole table.
	Shards int
	Shard  int
	// Offset skips this many rows into the shard's range — the resume
	// cursor. It must be a multiple of the sink's alignment. A stream
	// resumed at an offset on the chunk grid (see Align and ChunkRows in
	// the report) is byte-identical to the suffix of the original
	// stream, compressed output included.
	Offset int64
	// Limit caps the scanned rows (0 = the rest of the shard). Unless it
	// reaches the shard's end it must be a multiple of the sink's
	// alignment, so a follow-up stream can resume exactly where this one
	// stopped.
	Limit int64
	// BatchRows overrides DefaultBatchRows.
	BatchRows int
	// FKSpread enables tuplegen's spread-FK extension.
	FKSpread bool
	// RateLimit paces this stream in rows per second (0 = unlimited).
	RateLimit float64
	// Columns projects the stream onto a subset of columns, in the order
	// given (nil = every column). The projection is pushed down to the
	// encoder layer — only selected columns are generated and encoded —
	// and changes the stream's layout: header, alignment, and chunk grid
	// are those of the projected column set, so a projected stream is
	// byte-identical to a materialization with the same Columns, not a
	// substring of the full-width file.
	Columns []string
	// Filter restricts the stream to rows satisfying a conjunction of
	// per-column predicates, evaluated inside the encode path at span
	// granularity — rows that fail are never generated, let alone
	// encoded. The filter binds against the relation's full column set,
	// independent of Columns, so a stream may filter on columns it does
	// not carry. Offset and Limit still address the unfiltered row space
	// (the resume cursor stays meaningful); only matching rows are
	// emitted, so a filtered stream has no predeclared row count and
	// simply ends when its range is exhausted. Filtered streams require
	// a row-aligned format (csv, jsonl): page- and statement-structured
	// sinks cannot carry row gaps.
	Filter pred.Filter
}

// StreamReport describes one stream: its geometry (known before any
// byte is produced — StreamInfo returns it without generating) and, once
// streamed, the emitted sizes.
type StreamReport struct {
	Table       string `json:"table"`
	Format      string `json:"format"`
	Compression string `json:"compression,omitempty"`
	Shard       int    `json:"shard"`
	Shards      int    `json:"shards"`
	// StartRow is the absolute 0-based offset of the first streamed row.
	StartRow int64 `json:"start_row"`
	// Rows is the number of rows the stream covers.
	Rows int64 `json:"rows"`
	// TotalRows is the full-relation cardinality.
	TotalRows int64 `json:"total_rows"`
	// Cols are the stream's column names in encoded order — projected
	// when the request carried a projection. Remote readers decode
	// against this list.
	Cols []string `json:"cols,omitempty"`
	// Align is the sink's row alignment: valid offsets and limits are
	// its multiples.
	Align int `json:"align"`
	// ChunkRows is the chunk grid step anchored at the shard range's
	// start; resuming on the grid reproduces compressed framing exactly.
	ChunkRows int64 `json:"chunk_rows"`
	// Bytes is the stream size as written (post-compression); RawBytes
	// the encoded size before compression. Zero in StreamInfo results.
	Bytes    int64 `json:"bytes,omitempty"`
	RawBytes int64 `json:"raw_bytes,omitempty"`
	// Stage timings for this stream, filled by Run: wall seconds spent
	// encoding chunks, compressing frames, and writing bytes to the
	// destination. The same instants feed the process-wide
	// hydra_matgen_{encode,compress}_seconds_total counters; these are
	// the per-stream share, the numbers a stream's trace span reports.
	EncodeSeconds   float64 `json:"encode_s,omitempty"`
	CompressSeconds float64 `json:"compress_s,omitempty"`
	WriteSeconds    float64 `json:"write_s,omitempty"`
}

// streamPlan is a resolved, validated stream request.
type streamPlan struct {
	t          *tableTask
	sink       Sink
	comp       Compressor
	align      int
	start, end int64 // absolute row range to encode
	header     bool
	footer     bool
	filt       *tuplegen.SpanFilter // nil = unfiltered
}

func planStream(sum *summary.Summary, opts StreamOptions) (*streamPlan, error) {
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.Shards < 1 || opts.Shard < 0 || opts.Shard >= opts.Shards {
		return nil, fmt.Errorf("%w: shard %d of %d out of range", ErrStream, opts.Shard, opts.Shards)
	}
	if opts.BatchRows == 0 {
		opts.BatchRows = DefaultBatchRows
	}
	if opts.BatchRows < 1 {
		return nil, fmt.Errorf("%w: batch rows %d out of range", ErrStream, opts.BatchRows)
	}
	if opts.RateLimit != 0 {
		if err := rate.Validate(opts.RateLimit); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStream, err)
		}
	}
	format := opts.Format
	if format == "" {
		format = "heap"
	}
	sink, err := sinkFor(format)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStream, err)
	}
	if sink.Ext() == "" {
		return nil, fmt.Errorf("%w: format %q produces no byte stream", ErrStream, sink.Name())
	}
	comp, err := CompressorFor(opts.Compress)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStream, err)
	}
	rs, ok := sum.Relations[opts.Table]
	if !ok {
		return nil, fmt.Errorf("%w: summary has no relation %q", ErrStream, opts.Table)
	}
	t, err := newTableTask(rs, sink, comp, Options{
		Format: format, Shards: opts.Shards, Shard: opts.Shard,
		BatchRows: opts.BatchRows, FKSpread: opts.FKSpread,
		Columns: opts.Columns,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStream, err)
	}
	align, err := sink.Align(len(t.l.Cols))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStream, err)
	}
	p := &streamPlan{t: t, sink: sink, comp: comp, align: align}
	switch {
	case opts.Offset < 0 || opts.Offset > t.rng.Rows():
		return nil, fmt.Errorf("%w: offset %d outside shard rows [0, %d]", ErrStream, opts.Offset, t.rng.Rows())
	case opts.Offset%int64(align) != 0:
		return nil, fmt.Errorf("%w: offset %d not a multiple of the %s alignment %d", ErrStream, opts.Offset, sink.Name(), align)
	case opts.Limit < 0:
		return nil, fmt.Errorf("%w: limit %d out of range", ErrStream, opts.Limit)
	}
	p.start, p.end = t.rng.Lo+opts.Offset, t.rng.Hi
	if opts.Limit > 0 && p.start+opts.Limit < t.rng.Hi {
		if opts.Limit%int64(align) != 0 {
			return nil, fmt.Errorf("%w: limit %d not a multiple of the %s alignment %d", ErrStream, opts.Limit, sink.Name(), align)
		}
		p.end = p.start + opts.Limit
	}
	p.header = opts.Shard == 0 && opts.Offset == 0
	p.footer = opts.Shard == opts.Shards-1 && p.end == t.rng.Hi
	if !opts.Filter.Empty() {
		if align != 1 {
			return nil, fmt.Errorf("%w: format %q (alignment %d) cannot carry filtered row streams", ErrFilter, sink.Name(), align)
		}
		conj, err := opts.Filter.Bind(t.g.ColNames())
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFilter, err)
		}
		if p.filt, err = t.g.BindSpanFilter(conj); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFilter, err)
		}
		if p.filt == nil {
			// Constrained in name only (full-domain restrictions): stream
			// unfiltered, which yields the identical row set.
			p.filt = &tuplegen.SpanFilter{}
		}
	}
	return p, nil
}

func (p *streamPlan) report(opts StreamOptions) *StreamReport {
	shards := opts.Shards
	if shards == 0 {
		shards = 1
	}
	rep := &StreamReport{
		Table: p.t.l.Table, Format: p.sink.Name(),
		Shard: opts.Shard, Shards: shards,
		StartRow: p.start, Rows: p.end - p.start, TotalRows: p.t.l.TotalRows,
		Cols:  append([]string(nil), p.t.l.Cols...),
		Align: p.align, ChunkRows: p.t.cRows,
	}
	if p.comp != nil {
		rep.Compression = p.comp.Name()
	}
	return rep
}

// StreamPlan is a validated, resolved stream request: the geometry is
// known (Info) and the bytes can be produced (Run). Plans are not safe
// for concurrent use — a serving layer builds one per request, reads
// the geometry for its response headers, then runs it.
type StreamPlan struct {
	p    *streamPlan
	opts StreamOptions
}

// PlanStream validates and resolves a stream request without generating
// a byte. Invalid requests fail here, wrapped in ErrStream, before a
// serving layer has committed any response.
func PlanStream(sum *summary.Summary, opts StreamOptions) (*StreamPlan, error) {
	p, err := planStream(sum, opts)
	if err != nil {
		return nil, err
	}
	return &StreamPlan{p: p, opts: opts}, nil
}

// Info returns the plan's geometry — rows, start row, alignment, chunk
// grid — with the size fields zero until Run produces the bytes.
func (sp *StreamPlan) Info() *StreamReport { return sp.p.report(sp.opts) }

// StreamInfo validates a stream request and returns its geometry
// without generating a byte.
func StreamInfo(sum *summary.Summary, opts StreamOptions) (*StreamReport, error) {
	sp, err := PlanStream(sum, opts)
	if err != nil {
		return nil, err
	}
	return sp.Info(), nil
}

// Stream encodes one relation range scan into w: the resumable,
// rate-limitable network face of the materialization engine. The bytes
// are identical to the corresponding Materialize part file (prefix or
// suffix thereof for limited or resumed streams); chunk boundaries sit
// on the same grid, so compressed members frame identically when the
// offset and limit sit on the grid too. Cancellation is checked between
// chunks; the returned error is ctx.Err() when the context ended the
// stream.
func Stream(ctx context.Context, sum *summary.Summary, opts StreamOptions, w io.Writer) (*StreamReport, error) {
	sp, err := PlanStream(sum, opts)
	if err != nil {
		return nil, err
	}
	return sp.Run(ctx, w)
}

// Run produces the planned stream into w. See Stream.
//
//hydra:nondeterministic stage stopwatches feed StreamReport timings only, never stream bytes
func (sp *StreamPlan) Run(ctx context.Context, w io.Writer) (*StreamReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, opts := sp.p, sp.opts
	var lim *rate.Limiter
	if opts.RateLimit > 0 {
		var err error
		if lim, err = rate.NewLimiter(opts.RateLimit, 0); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStream, err)
		}
	}
	rep := p.report(opts)
	cw := &countingWriter{w: w}
	t := p.t
	if p.header {
		hdr, err := p.sink.Header(t.l)
		if err != nil {
			return rep, err
		}
		rep.RawBytes += int64(len(hdr))
		if err := rep.writeFramed(cw, p.comp, hdr); err != nil {
			return rep, err
		}
	}
	if p.start < p.end {
		enc := p.sink.NewEncoder(t.l)
		se, _ := enc.(SpanEncoder)
		b := batchPool.Get().(*tuplegen.Batch)
		defer batchPool.Put(b)
		buf := getChunkBuf()
		defer putChunkBuf(buf)
		for lo := p.start; lo < p.end; {
			// Chunk upper bounds sit on the grid anchored at the shard
			// range's start, exactly where Materialize puts them, so a
			// resumed stream re-joins the original chunk (and compressed
			// member) structure instead of shifting it.
			hi := t.rng.Lo + ((lo-t.rng.Lo)/t.cRows+1)*t.cRows
			if hi > p.end {
				hi = p.end
			}
			if err := lim.WaitN(ctx, hi-lo); err != nil {
				return rep, err
			}
			t0 := time.Now()
			if p.filt != nil {
				*buf = encodeFilteredChunk(t, enc, se, b, (*buf)[:0], lo, hi, p.filt)
			} else {
				*buf = encodeChunk(t, enc, se, b, (*buf)[:0], lo, hi)
			}
			enc0 := time.Since(t0)
			mEncodeSeconds.AddDuration(enc0)
			rep.EncodeSeconds += enc0.Seconds()
			t.m.rows.Add(hi - lo)
			t.m.chunks.Inc()
			rep.RawBytes += int64(len(*buf))
			if err := rep.writeFramed(cw, p.comp, *buf); err != nil {
				return rep, err
			}
			lo = hi
		}
	}
	if p.footer {
		ftr, err := p.sink.Footer(t.l)
		if err != nil {
			return rep, err
		}
		rep.RawBytes += int64(len(ftr))
		if err := rep.writeFramed(cw, p.comp, ftr); err != nil {
			return rep, err
		}
	}
	rep.Bytes = cw.n
	return rep, nil
}

// writeFramed frames one buffer onto the stream, folding the stage
// durations into the report's per-stream totals.
func (rep *StreamReport) writeFramed(w io.Writer, comp Compressor, p []byte) error {
	c, wr, err := writeFramedTimed(w, comp, p)
	rep.CompressSeconds += c.Seconds()
	rep.WriteSeconds += wr.Seconds()
	return err
}
