package matgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// streamBytes runs one Stream call and returns its output.
func streamBytes(t *testing.T, opts StreamOptions) ([]byte, *StreamReport) {
	t.Helper()
	var buf bytes.Buffer
	rep, err := Stream(context.Background(), testSummary(), opts, &buf)
	if err != nil {
		t.Fatalf("stream %+v: %v", opts, err)
	}
	if rep.Bytes != int64(buf.Len()) {
		t.Fatalf("report bytes %d != written %d", rep.Bytes, buf.Len())
	}
	return buf.Bytes(), rep
}

// TestStreamMatchesMaterialize is the golden equivalence: for every file
// format, plain and gzip, whole tables and shard pieces, Stream emits
// exactly the bytes Materialize puts in the corresponding (part) file.
func TestStreamMatchesMaterialize(t *testing.T) {
	sum := testSummary()
	for _, format := range fileFormats() {
		for _, compress := range []string{"", "gzip"} {
			t.Run(format+"/"+compressName(compress), func(t *testing.T) {
				// Whole table, single shard.
				dir := t.TempDir()
				rep, err := Materialize(sum, Options{
					Dir: dir, Format: format, Compress: compress, Workers: 2, BatchRows: 128,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, tr := range rep.Tables {
					want, err := os.ReadFile(tr.Path)
					if err != nil {
						t.Fatal(err)
					}
					got, srep := streamBytes(t, StreamOptions{
						Table: tr.Table, Format: format, Compress: compress, BatchRows: 128,
					})
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: stream != materialized file (%d vs %d bytes)", tr.Table, len(got), len(want))
					}
					if srep.Rows != tr.Rows || srep.TotalRows != tr.TotalRows {
						t.Fatalf("report %+v vs table report %+v", srep, tr)
					}
				}

				// Shard pieces of a 3-way split.
				dir = t.TempDir()
				if _, err := Materialize(sum, Options{
					Dir: dir, Format: format, Compress: compress, Workers: 2, BatchRows: 128,
					Shards: 3, Shard: 1,
				}); err != nil {
					t.Fatal(err)
				}
				for _, table := range []string{"S", "T"} {
					comp, _ := CompressorFor(compress)
					ext := ""
					if comp != nil {
						ext = comp.Ext()
					}
					sink, _ := sinkFor(format)
					want, err := os.ReadFile(partPath(dir, table, sink.Ext(), 1, 3) + ext)
					if err != nil {
						t.Fatal(err)
					}
					got, _ := streamBytes(t, StreamOptions{
						Table: table, Format: format, Compress: compress, BatchRows: 128,
						Shards: 3, Shard: 1,
					})
					if !bytes.Equal(got, want) {
						t.Fatalf("%s shard 1/3: stream != part file", table)
					}
				}
			})
		}
	}
}

func compressName(c string) string {
	if c == "" {
		return "plain"
	}
	return c
}

// TestStreamResumeSplice pins the resume contract: a stream limited to k
// rows followed by a stream resumed at offset k concatenates to the
// unlimited stream, byte-identically — for compressed output too when
// the split sits on the chunk grid.
func TestStreamResumeSplice(t *testing.T) {
	for _, compress := range []string{"", "gzip"} {
		for _, format := range fileFormats() {
			t.Run(format+"/"+compressName(compress), func(t *testing.T) {
				base := StreamOptions{Table: "S", Format: format, Compress: compress, BatchRows: 128}
				full, rep := streamBytes(t, base)
				// Split on the chunk grid so compressed members reframe
				// identically; the grid is a multiple of the alignment.
				cut := 4 * rep.ChunkRows
				if cut >= rep.Rows {
					t.Fatalf("fixture too small: %d rows, chunk %d", rep.Rows, rep.ChunkRows)
				}
				head := base
				head.Limit = cut
				tail := base
				tail.Offset = cut
				got, _ := streamBytes(t, head)
				tailBytes, tailRep := streamBytes(t, tail)
				got = append(got, tailBytes...)
				if !bytes.Equal(got, full) {
					t.Fatalf("head(limit=%d) + tail(offset=%d) != full stream (%d vs %d bytes)",
						cut, cut, len(got), len(full))
				}
				if tailRep.StartRow != rep.StartRow+cut || tailRep.Rows != rep.Rows-cut {
					t.Fatalf("tail report %+v", tailRep)
				}
			})
		}
	}

	// Off-grid (but aligned) splits still splice byte-identically for
	// uncompressed output, where no member framing exists.
	base := StreamOptions{Table: "S", Format: "csv", BatchRows: 128}
	full, _ := streamBytes(t, base)
	head, tail := base, base
	head.Limit, tail.Offset = 37, 37
	h, _ := streamBytes(t, head)
	tl, _ := streamBytes(t, tail)
	if got := append(h, tl...); !bytes.Equal(got, full) {
		t.Fatal("aligned off-grid splice diverged for uncompressed csv")
	}

	// An off-grid compressed splice reframes members, so the compressed
	// bytes differ — but the decompressed assembly must not.
	gz := StreamOptions{Table: "S", Format: "csv", Compress: "gzip", BatchRows: 128}
	gzFull, _ := streamBytes(t, gz)
	gzHead, gzTail := gz, gz
	gzHead.Limit, gzTail.Offset = 37, 37
	gh, _ := streamBytes(t, gzHead)
	gt, _ := streamBytes(t, gzTail)
	comp, _ := CompressorFor("gzip")
	dec := func(b []byte) []byte {
		zr, err := comp.NewReader(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer zr.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(zr); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(dec(append(gh, gt...)), dec(gzFull)) {
		t.Fatal("off-grid gzip splice corrupted the decompressed stream")
	}
}

// TestStreamValidation: every malformed request fails with ErrStream
// (the client-error class) before any byte is produced.
func TestStreamValidation(t *testing.T) {
	sum := testSummary()
	heapAlign := func() int64 {
		info, err := StreamInfo(sum, StreamOptions{Table: "S", Format: "heap"})
		if err != nil {
			t.Fatal(err)
		}
		if info.Align < 2 {
			t.Fatalf("heap align = %d, fixture cannot exercise misalignment", info.Align)
		}
		return int64(info.Align)
	}()
	cases := map[string]StreamOptions{
		"unknown table":     {Table: "nope", Format: "csv"},
		"unknown format":    {Table: "S", Format: "parquet"},
		"no byte stream":    {Table: "S", Format: "discard"},
		"unknown codec":     {Table: "S", Format: "csv", Compress: "zstd?"},
		"negative offset":   {Table: "S", Format: "csv", Offset: -1},
		"offset past end":   {Table: "S", Format: "csv", Offset: 1 << 40},
		"misaligned offset": {Table: "S", Format: "heap", Offset: heapAlign + 1},
		"misaligned limit":  {Table: "S", Format: "sql", Limit: 3},
		"negative limit":    {Table: "S", Format: "csv", Limit: -5},
		"bad shard":         {Table: "S", Format: "csv", Shards: 4, Shard: 4},
		"negative rate":     {Table: "S", Format: "csv", RateLimit: -1},
	}
	for name, opts := range cases {
		var buf bytes.Buffer
		if _, err := Stream(context.Background(), sum, opts, &buf); !errors.Is(err, ErrStream) {
			t.Errorf("%s: err = %v, want ErrStream", name, err)
		} else if buf.Len() != 0 {
			t.Errorf("%s: wrote %d bytes before failing", name, buf.Len())
		}
		if _, err := StreamInfo(sum, opts); !errors.Is(err, ErrStream) {
			t.Errorf("%s: StreamInfo err = %v, want ErrStream", name, err)
		}
	}
}

// TestStreamRateLimit: a limited stream must land within ±10% of the
// configured rows/s.
func TestStreamRateLimit(t *testing.T) {
	const perSec = 8000.0 // ~1s for the 8208-row fixture
	var buf bytes.Buffer
	start := time.Now()
	rep, err := Stream(context.Background(), testSummary(), StreamOptions{
		Table: "S", Format: "csv", BatchRows: 128, RateLimit: perSec,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(rep.Rows) / time.Since(start).Seconds()
	if got < perSec*0.9 || got > perSec*1.1 {
		t.Fatalf("observed %.0f rows/s, configured %.0f (±10%%)", got, perSec)
	}
}

// TestStreamCancellation: a canceled context stops the stream between
// chunks with the context's error.
func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n int
	w := writerFunc(func(p []byte) (int, error) {
		if n++; n == 2 {
			cancel() // cancel mid-stream, after some bytes went out
		}
		return len(p), nil
	})
	_, err := Stream(ctx, testSummary(), StreamOptions{Table: "S", Format: "csv", BatchRows: 128}, w)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestMaterializeRateLimit: Options.RateLimit paces a whole run within
// ±10%, on both the sequential and pool paths, without changing bytes.
func TestMaterializeRateLimit(t *testing.T) {
	sum := testSummary()
	var totalRows int64
	for _, rs := range sum.Relations {
		totalRows += rs.Total
	}
	perSec := float64(totalRows) // target ~1s per run, well past the burst tolerance
	baseline := t.TempDir()
	if _, err := Materialize(sum, Options{Dir: baseline, Format: "csv", Workers: 2, BatchRows: 128}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			start := time.Now()
			rep, err := Materialize(sum, Options{
				Dir: dir, Format: "csv", Workers: workers, BatchRows: 128, RateLimit: perSec,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := float64(rep.Rows) / time.Since(start).Seconds()
			if got < perSec*0.9 || got > perSec*1.1 {
				t.Fatalf("observed %.0f rows/s, configured %.0f (±10%%)", got, perSec)
			}
			for _, table := range []string{"S", "T"} {
				want, err := os.ReadFile(filepath.Join(baseline, table+".csv"))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(dir, table+".csv"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: rate limiting changed output bytes", table)
				}
			}
		})
	}
}

// TestMaterializeContextCancel: cancellation aborts both engine paths
// promptly, reports the context's error, and removes partial output.
func TestMaterializeContextCancel(t *testing.T) {
	sum := testSummary()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(50 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			// A tight rate limit keeps the run alive long enough that the
			// cancellation strikes mid-flight.
			_, err := MaterializeContext(ctx, sum, Options{
				Dir: dir, Format: "csv", Workers: workers, BatchRows: 128, RateLimit: 500,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if waited := time.Since(start); waited > 5*time.Second {
				t.Fatalf("cancellation took %v", waited)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				t.Errorf("partial artifact left behind: %s", e.Name())
			}
		})
	}
}
