package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text-format (v0.0.4) payload for
// conformance and returns every violation found. It exists so a test
// can scrape the full registry after a real workload and prove the
// exposition stays ingestible as metrics are added: legal metric and
// label names, HELP and TYPE present before each family's samples,
// known TYPE values, parseable sample values, no duplicate series, and
// well-formed histograms (ascending le, cumulative counts, a terminal
// +Inf bucket that _count equals, a _sum line).
func LintExposition(text []byte) []error {
	l := &linter{
		fams:  map[string]*lintFamily{},
		seen:  map[string]int{},
		hists: map[string]*lintHist{},
	}
	for i, line := range strings.Split(string(text), "\n") {
		l.line(i+1, line)
	}
	l.finish()
	return l.errs
}

var (
	lintMetricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lintLabelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// lintFamily tracks one family's comment lines.
type lintFamily struct {
	help, typed bool
	kind        string
}

// lintHist accumulates one histogram series (family + base label set)
// across its _bucket/_sum/_count lines for the end-of-text checks.
type lintHist struct {
	firstLine  int
	lastLe     float64
	lastCum    float64
	sawInf     bool
	buckets    int
	sum        bool
	count      bool
	countValue float64
}

type linter struct {
	errs  []error
	fams  map[string]*lintFamily
	seen  map[string]int
	hists map[string]*lintHist
}

func (l *linter) errorf(n int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", n, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, line string) {
	switch {
	case line == "":
	case strings.HasPrefix(line, "# HELP "):
		l.comment(n, strings.TrimPrefix(line, "# HELP "), "HELP")
	case strings.HasPrefix(line, "# TYPE "):
		l.comment(n, strings.TrimPrefix(line, "# TYPE "), "TYPE")
	case strings.HasPrefix(line, "#"):
		// Free-form comments are legal and carry no structure.
	default:
		l.sample(n, line)
	}
}

func (l *linter) comment(n int, rest, kind string) {
	name, arg, _ := strings.Cut(rest, " ")
	if !lintMetricNameRe.MatchString(name) {
		l.errorf(n, "%s names illegal metric %q", kind, name)
		return
	}
	f := l.fams[name]
	if f == nil {
		f = &lintFamily{}
		l.fams[name] = f
	}
	if kind == "HELP" {
		if f.help {
			l.errorf(n, "duplicate HELP for %s", name)
		}
		f.help = true
		return
	}
	if f.typed {
		l.errorf(n, "duplicate TYPE for %s", name)
	}
	switch arg {
	case "counter", "gauge", "histogram", "summary", "untyped":
		f.typed, f.kind = true, arg
	default:
		l.errorf(n, "TYPE %s declares unknown type %q", name, arg)
	}
}

func (l *linter) sample(n int, line string) {
	name, labels, rest, ok := splitSample(line)
	if !ok {
		l.errorf(n, "unparseable sample %q", line)
		return
	}
	if !lintMetricNameRe.MatchString(name) {
		l.errorf(n, "illegal metric name %q", name)
		return
	}
	pairs, ok := parseLabels(labels)
	if !ok {
		l.errorf(n, "unparseable label set %q", labels)
		return
	}
	lnames := map[string]bool{}
	for _, p := range pairs {
		switch {
		case !lintLabelNameRe.MatchString(p[0]) || strings.HasPrefix(p[0], "__"):
			l.errorf(n, "illegal label name %q", p[0])
		case lnames[p[0]]:
			l.errorf(n, "label %q repeats in one series", p[0])
		}
		lnames[p[0]] = true
	}
	value, tsOK := splitValue(rest)
	if !tsOK {
		l.errorf(n, "bad timestamp in %q", line)
	}
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		l.errorf(n, "value %q does not parse as a float", value)
		return
	}

	key := name + seriesKey(pairs, "")
	if prev := l.seen[key]; prev != 0 {
		l.errorf(n, "duplicate series %s (first at line %d)", key, prev)
	}
	l.seen[key] = n

	fam, base := l.familyOf(name)
	if fam == nil {
		l.errorf(n, "sample %s has no preceding TYPE", name)
		return
	}
	if !fam.help {
		l.errorf(n, "sample %s has no preceding HELP", base)
	}
	if fam.kind != "histogram" || base == name {
		return
	}
	h := l.histFor(base, pairs, n)
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le, ok := leOf(pairs)
		if !ok {
			l.errorf(n, "%s bucket without a le label", base)
			return
		}
		bound, inf, err := parseLe(le)
		if err != nil {
			l.errorf(n, "%s le=%q does not parse", base, le)
			return
		}
		if h.sawInf {
			l.errorf(n, "%s bucket after the +Inf bucket", base)
		}
		if h.buckets > 0 && bound <= h.lastLe {
			l.errorf(n, "%s buckets not in ascending le order (%v after %v)", base, bound, h.lastLe)
		}
		if v < h.lastCum {
			l.errorf(n, "%s bucket counts not cumulative (%v after %v)", base, v, h.lastCum)
		}
		h.buckets++
		h.lastLe, h.lastCum, h.sawInf = bound, v, inf
	case strings.HasSuffix(name, "_sum"):
		h.sum = true
	case strings.HasSuffix(name, "_count"):
		h.count, h.countValue = true, v
	}
}

// finish runs the whole-series histogram checks once every line has
// been attributed.
func (l *linter) finish() {
	keys := make([]string, 0, len(l.hists))
	for k := range l.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := l.hists[k]
		switch {
		case h.buckets == 0:
			l.errorf(h.firstLine, "histogram series %s has no buckets", k)
		case !h.sawInf:
			l.errorf(h.firstLine, "histogram series %s lacks a terminal +Inf bucket", k)
		case h.count && h.countValue != h.lastCum:
			l.errorf(h.firstLine, "histogram series %s _count %v != +Inf bucket %v", k, h.countValue, h.lastCum)
		}
		if !h.sum {
			l.errorf(h.firstLine, "histogram series %s lacks a _sum line", k)
		}
		if !h.count {
			l.errorf(h.firstLine, "histogram series %s lacks a _count line", k)
		}
	}
}

// familyOf resolves a sample name to its family: the name itself when
// TYPE declared it directly, else the histogram base when the name is
// one of the three histogram suffixes of a declared histogram.
func (l *linter) familyOf(name string) (*lintFamily, string) {
	if f := l.fams[name]; f != nil && f.typed {
		return f, name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f := l.fams[base]; f != nil && f.typed && f.kind == "histogram" {
			return f, base
		}
	}
	return nil, name
}

// histFor keys a histogram series by family plus its label set minus
// le, so buckets, _sum and _count land on the same accumulator.
func (l *linter) histFor(base string, pairs [][2]string, n int) *lintHist {
	key := base + seriesKey(pairs, "le")
	h := l.hists[key]
	if h == nil {
		h = &lintHist{firstLine: n}
		l.hists[key] = h
	}
	return h
}

// seriesKey renders a label set in sorted order, dropping one label
// name, so a series' identity ignores label ordering.
func seriesKey(pairs [][2]string, drop string) string {
	kept := make([]string, 0, len(pairs))
	for _, p := range pairs {
		if p[0] != drop {
			kept = append(kept, p[0]+"="+strconv.Quote(p[1]))
		}
	}
	sort.Strings(kept)
	return "{" + strings.Join(kept, ",") + "}"
}

func leOf(pairs [][2]string) (string, bool) {
	for _, p := range pairs {
		if p[0] == "le" {
			return p[1], true
		}
	}
	return "", false
}

func parseLe(s string) (bound float64, inf bool, err error) {
	if s == "+Inf" {
		return math.Inf(1), true, nil
	}
	bound, err = strconv.ParseFloat(s, 64)
	return bound, false, err
}

// splitSample cuts one sample line into name, raw label block (without
// braces, "" when absent), and the value-and-timestamp remainder.
func splitSample(line string) (name, labels, rest string, ok bool) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		end := closingBrace(line, brace)
		if end < 0 || end+1 >= len(line) || line[end+1] != ' ' {
			return "", "", "", false
		}
		return line[:brace], line[brace+1 : end], line[end+2:], true
	}
	if space <= 0 {
		return "", "", "", false
	}
	return line[:space], "", line[space+1:], true
}

// closingBrace finds the label block's closing brace, skipping quoted
// values (which may contain escaped quotes and braces).
func closingBrace(line string, open int) int {
	inQuote := false
	for i := open + 1; i < len(line); i++ {
		switch {
		case inQuote && line[i] == '\\':
			i++
		case line[i] == '"':
			inQuote = !inQuote
		case !inQuote && line[i] == '}':
			return i
		}
	}
	return -1
}

// parseLabels splits a raw label block into name/value pairs, decoding
// the \\, \" and \n escapes the format defines.
func parseLabels(raw string) ([][2]string, bool) {
	if raw == "" {
		return nil, true
	}
	var pairs [][2]string
	for i := 0; i < len(raw); {
		eq := strings.IndexByte(raw[i:], '=')
		if eq < 0 {
			return nil, false
		}
		name := raw[i : i+eq]
		i += eq + 1
		if i >= len(raw) || raw[i] != '"' {
			return nil, false
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(raw) {
			c := raw[i]
			if c == '\\' && i+1 < len(raw) {
				switch raw[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, false
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, false
		}
		pairs = append(pairs, [2]string{name, val.String()})
		if i < len(raw) {
			if raw[i] != ',' {
				return nil, false
			}
			i++
		}
	}
	return pairs, true
}

// splitValue separates a sample's value from an optional integer
// timestamp; ok reports the timestamp (when present) is well-formed.
func splitValue(rest string) (value string, ok bool) {
	value, ts, found := strings.Cut(rest, " ")
	if !found {
		return value, true
	}
	_, err := strconv.ParseInt(ts, 10, 64)
	return value, err == nil
}
