package obs

import (
	"strings"
	"testing"
	"time"
)

// good is a well-formed exposition covering every shape the linter
// handles: bare and labelled samples, escapes, a histogram, and a
// counter whose name ends in _count (not a histogram suffix here).
const good = `# HELP up whether the scrape target answered
# TYPE up gauge
up 1
# HELP rpc_total calls, by method
# TYPE rpc_total counter
rpc_total{method="get",path="a\\b\"c\nd"} 7
rpc_total{method="put"} 0
# HELP lat_seconds request latency
# TYPE lat_seconds histogram
lat_seconds_bucket{route="t",le="0.1"} 3
lat_seconds_bucket{route="t",le="1"} 5
lat_seconds_bucket{route="t",le="+Inf"} 6
lat_seconds_sum{route="t"} 2.5
lat_seconds_count{route="t"} 6
# HELP worker_count workers running
# TYPE worker_count gauge
worker_count 4
`

func TestLintExpositionAcceptsConformantText(t *testing.T) {
	if errs := LintExposition([]byte(good)); len(errs) != 0 {
		t.Fatalf("conformant exposition flagged: %v", errs)
	}
}

func TestLintExpositionFlagsViolations(t *testing.T) {
	cases := map[string]struct {
		text string
		want string // substring of some reported error
	}{
		"bad metric name": {
			"# HELP 0bad x\n# TYPE 0bad counter\n0bad 1\n",
			"illegal metric",
		},
		"bad label name": {
			"# HELP a x\n# TYPE a counter\na{0bad=\"v\"} 1\n",
			"illegal label name",
		},
		"reserved label name": {
			"# HELP a x\n# TYPE a counter\na{__v=\"v\"} 1\n",
			"illegal label name",
		},
		"missing TYPE": {
			"# HELP a x\na 1\n",
			"no preceding TYPE",
		},
		"missing HELP": {
			"# TYPE a counter\na 1\n",
			"no preceding HELP",
		},
		"unknown TYPE": {
			"# TYPE a chart\na 1\n",
			"unknown type",
		},
		"bad value": {
			"# HELP a x\n# TYPE a counter\na one\n",
			"does not parse as a float",
		},
		"duplicate series": {
			"# HELP a x\n# TYPE a counter\na{k=\"v\"} 1\na{k=\"v\"} 2\n",
			"duplicate series",
		},
		"duplicate series reordered labels": {
			"# HELP a x\n# TYPE a counter\na{k=\"v\",j=\"w\"} 1\na{j=\"w\",k=\"v\"} 2\n",
			"duplicate series",
		},
		"non-cumulative buckets": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"not cumulative",
		},
		"descending le": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"ascending le",
		},
		"no +Inf bucket": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"terminal +Inf",
		},
		"count disagrees with +Inf": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"_count 5 != +Inf bucket 4",
		},
		"missing sum": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 4\n",
			"lacks a _sum",
		},
		"unterminated labels": {
			"# HELP a x\n# TYPE a counter\na{k=\"v\" 1\n",
			"unparseable",
		},
	}
	for name, tc := range cases {
		errs := LintExposition([]byte(tc.text))
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error containing %q in %v", name, tc.want, errs)
		}
	}
}

// TestLintOwnRegistry: the registry's own writer must produce text the
// linter accepts, including a populated multi-bucket histogram.
func TestLintOwnRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("lint_ops_total", "ops", L("kind", "a")).Add(3)
	r.Gauge("lint_depth", "queue depth").Set(9)
	h := r.Histogram("lint_wait_seconds", "waits", DurationBuckets)
	for _, d := range []time.Duration{time.Millisecond, time.Second, time.Minute} {
		h.Observe(d.Seconds())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := LintExposition([]byte(b.String())); len(errs) != 0 {
		t.Fatalf("registry's own exposition flagged: %v\n%s", errs, b.String())
	}
}
