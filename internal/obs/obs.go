// Package obs is Hydra's observability kernel: a small, stdlib-only
// metrics library — atomic counters, gauges, and fixed-bucket histograms
// behind a process-global Registry — with a Prometheus text-format
// (v0.0.4) exposition writer. Every hot layer of the system (matgen's
// worker pool, serve's HTTP data plane, scan's three backends,
// orchestrate's shard scheduler, rate's limiter) records into it, and
// `GET /metrics` on a serving fleet scrapes it, which is what turns
// "serves heavy traffic" from a claim into a number.
//
// The design center is the record path: Counter.Add, Gauge.Set, and
// Histogram.Observe are single atomic operations (a short CAS loop for
// float sums), never allocate, and never take a lock — so they can sit
// inside the zero-allocation encode pipeline without disturbing its
// AllocsPerRun pins. All allocation happens at metric-creation time
// (Registry lookups render label strings); instrumented code resolves
// its metric pointers at setup and holds them across the hot loop.
//
// Metric families follow Prometheus conventions: `hydra_<layer>_<what>`
// names, `_total` suffixes on counters, `_seconds` units on durations,
// and label sets kept small and bounded (table names, worker ids,
// routes — never per-request values).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to a metric. Keep value sets
// small and bounded — they become Prometheus time series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer. The zero value is
// ready to use; Registry.Counter hands out registered ones.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programming error and is
// ignored, keeping the counter monotone).
//
//hydra:hotpath
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
//
//hydra:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float — the shape of
// cumulative-seconds metrics (`_seconds_total`). Adds are a CAS loop on
// the value's bits: lock-free and allocation-free.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (negative or NaN values are ignored).
//
//hydra:hotpath
func (c *FloatCounter) Add(v float64) {
	if !(v > 0) { // rejects v <= 0 and NaN in one comparison
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// AddDuration adds d in seconds.
func (c *FloatCounter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer that can go up and down — in-flight streams,
// configured capacities.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
//
//hydra:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
//
//hydra:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float that can move freely — EWMAs of observed
// latency or throughput, utilization ratios. Set/Value are single
// atomic operations on the value's bits.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//hydra:hotpath
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution — latencies, rows per
// request. Buckets are cumulative at exposition time (Prometheus `le`
// semantics) but independent atomics on the record path: Observe does
// one linear scan over the bounds, one atomic increment, and one CAS
// float add, with no locking and no allocation.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Int64
	sum    FloatCounter
}

// Observe records one value.
//
//hydra:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0 — the one-liner for
// latency instrumentation: defer h.ObserveSince(time.Now()) or an
// explicit stamp around the timed section.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) from the
// bucket counts: the upper bound of the bucket the quantile falls in
// (+Inf collapses to the largest finite bound). It is the scrape-side
// approximation Prometheus itself would compute; exact percentiles come
// from raw samples (see internal/loadgen).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// DurationBuckets are the default latency bounds in seconds: 500µs to
// 30s, roughly ×2.5 per step — wide enough to cover a cache-warm chunk
// encode and a rate-limited whole-table stream in one family.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// ExpBuckets returns n bounds starting at start, each factor× the
// previous — for row counts, byte sizes, and other scale-free
// distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// PerSec is the one rows-per-second computation every layer shares —
// CLI stderr stats, reports, loadgen summaries — so throughput means
// the same thing everywhere it is printed.
func PerSec(n int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// kind is a metric family's Prometheus type.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one named metric family: every label combination under one
// name, help string, and type.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histograms only

	mu      sync.Mutex
	metrics map[string]any // rendered label string → *Counter/*FloatCounter/*Gauge/*Histogram
	float   bool           // counter families: float-valued
}

// Registry holds metric families and writes them in Prometheus text
// format. The zero Registry is not usable; call NewRegistry. Most code
// uses the process-global Default.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry. Use it in tests that need
// deterministic exposition; production code shares Default.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-global registry every instrumented layer
// records into and `GET /metrics` exposes.
var Default = NewRegistry()

// family returns the named family, creating it with the given shape on
// first use. Re-registering a name with a different kind is a
// programming error and panics — silently splitting one name across two
// types would corrupt the exposition.
func (r *Registry) family(name, help string, k kind, bounds []float64) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			f = &family{name: name, help: help, kind: k, bounds: bounds,
				metrics: make(map[string]any)}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

// get resolves one label combination inside a family, creating the
// metric with mk on first use.
func (f *family) get(labels []Label, mk func() any) any {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.metrics[key]
	if m == nil {
		m = mk()
		f.metrics[key] = m
	}
	return m
}

// Counter returns the registered counter for the name and label set,
// creating it on first use. Safe for concurrent use; the same
// (name, labels) always yields the same *Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.get(labels, func() any { return new(Counter) }).(*Counter)
}

// FloatCounter returns the registered float counter (cumulative
// seconds and other fractional totals) for the name and label set.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	f := r.family(name, help, kindCounter, nil)
	f.mu.Lock()
	f.float = true
	f.mu.Unlock()
	return f.get(labels, func() any { return new(FloatCounter) }).(*FloatCounter)
}

// Gauge returns the registered gauge for the name and label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.get(labels, func() any { return new(Gauge) }).(*Gauge)
}

// FloatGauge returns the registered float gauge for the name and label
// set — the shape of EWMA and ratio metrics.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	f := r.family(name, help, kindGauge, nil)
	return f.get(labels, func() any { return new(FloatGauge) }).(*FloatGauge)
}

// Histogram returns the registered histogram for the name and label
// set. The first registration of a name fixes the family's bucket
// bounds; later calls may pass nil to reuse them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	f := r.family(name, help, kindHistogram, bounds)
	return f.get(labels, func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
	}).(*Histogram)
}

// renderLabels renders a label set into its exposition form —
// `{a="x",b="y"}` — which doubles as the metric's identity inside its
// family. Empty label sets render empty.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus writes every family in Prometheus text format
// (v0.0.4), families sorted by name and series sorted by label string,
// so output is deterministic for a deterministic workload.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.metrics))
	for k := range f.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	metrics := make([]any, len(keys))
	for i, k := range keys {
		metrics[i] = f.metrics[k]
	}
	f.mu.Unlock()
	if len(metrics) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, key := range keys {
		switch m := metrics[i].(type) {
		case *Counter:
			b.WriteString(f.name)
			b.WriteString(key)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(m.Value(), 10))
			b.WriteByte('\n')
		case *FloatCounter:
			b.WriteString(f.name)
			b.WriteString(key)
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Value()))
			b.WriteByte('\n')
		case *Gauge:
			b.WriteString(f.name)
			b.WriteString(key)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(m.Value(), 10))
			b.WriteByte('\n')
		case *FloatGauge:
			b.WriteString(f.name)
			b.WriteString(key)
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Value()))
			b.WriteByte('\n')
		case *Histogram:
			writeHistogram(b, f.name, key, m)
		}
	}
}

// writeHistogram emits one series' cumulative buckets, sum, and count.
// The count is derived from the same bucket loads that produce the
// `le` lines, so `_count` always equals the `+Inf` bucket even under
// concurrent observation.
func writeHistogram(b *strings.Builder, name, key string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(b, name, key, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(b, name, key, "+Inf", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(key)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(key)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}

func writeBucket(b *strings.Builder, name, key, le string, cum int64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if key == "" {
		b.WriteString(`{le="`)
	} else {
		b.WriteString(key[:len(key)-1]) // reopen the rendered label set
		b.WriteString(`,le="`)
	}
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the `GET /metrics` endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
