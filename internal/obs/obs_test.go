package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// deterministicWorkload drives a fresh registry through every metric
// kind with fixed values — the workload behind the golden file.
func deterministicWorkload(r *Registry) {
	rows := r.Counter("hydra_test_rows_total", "rows regenerated", L("table", "R"))
	rows.Add(80000)
	r.Counter("hydra_test_rows_total", "rows regenerated", L("table", "S")).Add(700)
	r.Counter("hydra_test_rows_total", "rows regenerated", L("table", "T")).Add(1500)
	r.FloatCounter("hydra_test_encode_seconds_total", "time spent encoding").Add(1.5)
	r.FloatCounter("hydra_test_encode_seconds_total", "time spent encoding").Add(0.25)
	g := r.Gauge("hydra_test_in_flight", "streams in flight")
	g.Set(7)
	g.Dec()
	h := r.Histogram("hydra_test_latency_seconds", "request latency",
		[]float64{0.01, 0.1, 1}, L("route", "tables"))
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 2, 0.007} {
		h.Observe(v)
	}
	// A second series in the same family, and an escaping stress.
	r.Histogram("hydra_test_latency_seconds", "request latency", nil, L("route", "jobs")).Observe(0.02)
	r.Counter("hydra_test_odd_total", "label \"escaping\"\ncheck", L("k", "a\"b\\c\nd")).Inc()
}

// TestPrometheusGolden pins the full exposition format — HELP/TYPE
// lines, sorted families and series, cumulative buckets, sum/count,
// label escaping — against a committed golden file.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	deterministicWorkload(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_metrics.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionDeterministic: two identical workloads expose
// byte-identical text, regardless of map iteration order.
func TestExpositionDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		r := NewRegistry()
		deterministicWorkload(r)
		if err := r.WritePrometheus(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical workloads exposed differently:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// TestConcurrentRecording hammers one counter, one float counter, one
// gauge, and one histogram from 16 goroutines (the CI race job runs
// this under -race) and checks the totals are exact.
func TestConcurrentRecording(t *testing.T) {
	const goroutines, perG = 16, 10000
	r := NewRegistry()
	c := r.Counter("c_total", "")
	fc := r.FloatCounter("fc_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 3})
	var wg sync.WaitGroup
	for k := 0; k < goroutines; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(2)
				fc.Add(0.5)
				g.Inc()
				h.Observe(float64(i % 5))
				// Concurrent get-or-create of the same series must
				// return the one metric, not shadow copies.
				if r.Counter("c_total", "") != c {
					t.Error("Counter lookup returned a different instance")
					return
				}
			}
		}(k)
	}
	wg.Wait()
	if got := c.Value(); got != 2*goroutines*perG {
		t.Errorf("counter = %d, want %d", got, 2*goroutines*perG)
	}
	if got := fc.Value(); got != 0.5*goroutines*perG {
		t.Errorf("float counter = %v, want %v", got, 0.5*goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestRecordPathAllocs pins the property the encode pipeline depends
// on: recording into any metric allocates nothing.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	fc := r.FloatCounter("fc_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	t0 := time.Now()
	for name, fn := range map[string]func(){
		"Counter.Add":            func() { c.Add(3) },
		"FloatCounter.Add":       func() { fc.Add(0.125) },
		"Gauge.Set":              func() { g.Set(42) },
		"Histogram.Observe":      func() { h.Observe(0.01) },
		"Histogram.ObserveSince": func() { h.ObserveSince(t0) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", name, allocs)
		}
	}
}

// TestHistogramQuantile sanity-checks the bucket-bound quantile
// estimate used for scrape-side summaries.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10, 100})
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // bucket le=1
	}
	for i := 0; i < 9; i++ {
		h.Observe(5) // bucket le=10
	}
	h.Observe(50) // bucket le=100
	if q := h.Quantile(0.50); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(0.95); q != 10 {
		t.Errorf("p95 = %v, want 10", q)
	}
	if q := h.Quantile(0.999); q != 100 {
		t.Errorf("p999 = %v, want 100", q)
	}
	h.Observe(1e9) // +Inf bucket collapses to the largest finite bound
	if q := h.Quantile(1); q != 100 {
		t.Errorf("p100 with +Inf observation = %v, want 100", q)
	}
}

// TestKindMismatchPanics pins that one name cannot be two types.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestPerSec pins the shared throughput computation.
func TestPerSec(t *testing.T) {
	if got := PerSec(1000, 2*time.Second); got != 500 {
		t.Errorf("PerSec = %v, want 500", got)
	}
	if got := PerSec(1000, 0); got != 0 {
		t.Errorf("PerSec with zero elapsed = %v, want 0", got)
	}
}
