// Package orchestrate schedules a multi-shard materialization job and
// verifies its output. Where internal/matgen generates one -shard i/N
// piece per invocation, the orchestrator plans all N pieces, runs them
// across a worker set (an in-process pool today; the Runner interface is
// the seam where remote executors slot in), retries failed shards, then
// collects the per-shard JSON manifests and proves the result is whole:
// row counts sum to the summary's cardinalities, shard row ranges tile
// with no gaps or overlaps, and each output file re-hashes to the
// checksum its manifest recorded.
//
// The verification side is deliberately independent of the generation
// side: Verify needs only a directory of part files and manifests, so a
// multi-machine run can ship every machine's artifacts to one place and
// prove the assembly there before loading it anywhere.
package orchestrate

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/resilience"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/trace"
)

// Job-level observability: attempts vs retries (and why the retries
// happened), per-shard wall time, and final shard outcomes — enough to
// see a flapping runner or a pathological shard from /metrics alone.
var (
	mShardAttempts = obs.Default.Counter("hydra_orchestrate_shard_attempts_total",
		"shard job runs, including retries")
	mShardRetriesErr = obs.Default.Counter("hydra_orchestrate_shard_retries_total",
		"shard re-runs after a failed attempt", obs.L("reason", "error"))
	mShardsOK = obs.Default.Counter("hydra_orchestrate_shards_total",
		"shard jobs by final outcome", obs.L("result", "ok"))
	mShardsFailed = obs.Default.Counter("hydra_orchestrate_shards_total",
		"shard jobs by final outcome", obs.L("result", "failed"))
	mShardSeconds = obs.Default.Histogram("hydra_orchestrate_shard_seconds",
		"wall time of one shard job including retries and backoff", nil)
)

// Options tunes one orchestrated job.
type Options struct {
	// Dir is the output directory shared by every shard.
	Dir string
	// Format names the matgen sink ("heap", "csv", "jsonl", "sql").
	// Sinks that produce no files cannot be orchestrated: there would be
	// nothing to verify.
	Format string
	// Compress names the output codec ("gzip"; "" disables).
	Compress string
	// Shards is the number of pieces to split each table into; 0 means 1.
	Shards int
	// Parallel bounds how many shards run at once; 0 means
	// min(Shards, GOMAXPROCS).
	Parallel int
	// Workers is the per-shard encode worker count; 0 divides GOMAXPROCS
	// evenly among the parallel shard slots (at least 1 each).
	Workers int
	// Tables restricts the job to a subset of relations (all when nil).
	Tables []string
	// BatchRows overrides matgen's batch granularity.
	BatchRows int
	// FKSpread enables tuplegen's spread-FK extension.
	FKSpread bool
	// Retries is how many times a failed shard is re-run before the job
	// gives up; negative means no retries. Zero means DefaultRetries.
	Retries int
	// RetryBackoff is the backoff ceiling before each re-run — the grace
	// period a remote runner needs to fail over, and the damper that
	// keeps a flapping executor from being hammered. The actual pause is
	// drawn with full jitter: retry k sleeps uniformly in
	// [0, RetryBackoff<<k-1], so shards that failed together do not
	// retry in lockstep. Zero means DefaultRetryBackoff; negative means
	// none. The pause observes ctx: a canceled job never sleeps out its
	// backoff.
	RetryBackoff time.Duration
	// Runner executes shard jobs; nil means the in-process LocalRunner.
	Runner Runner
	// SkipVerify suppresses the post-run manifest verification.
	SkipVerify bool
}

// DefaultRetries is how often a failed shard is re-run when
// Options.Retries is zero.
const DefaultRetries = 2

// DefaultRetryBackoff is the pause before a re-run when
// Options.RetryBackoff is zero.
const DefaultRetryBackoff = 100 * time.Millisecond

// ShardJob is one schedulable piece of the plan: a fully resolved
// matgen invocation for shard Shard of Plan.Shards.
type ShardJob struct {
	Shard int
	Opts  matgen.Options
}

// Plan is the resolved job: one ShardJob per shard, all writing into the
// same directory with the same sink, codec, and table subset.
type Plan struct {
	Shards   int
	Parallel int
	Retries  int
	Backoff  time.Duration
	Jobs     []ShardJob
}

// Runner executes one shard job. Implementations must be safe for
// concurrent use; the orchestrator invokes Run from Parallel goroutines.
// LocalRunner materializes in-process; a remote executor would ship the
// job spec to another machine and wait for its manifest.
type Runner interface {
	Run(ctx context.Context, sum *summary.Summary, job ShardJob) (*matgen.Report, error)
}

// LocalRunner runs shard jobs in-process on the matgen engine. It
// matches the remote runner's cancellation contract: ctx aborts the
// materialization mid-run, partial output is removed, and the context's
// error is returned.
type LocalRunner struct{}

// Run implements Runner.
func (LocalRunner) Run(ctx context.Context, sum *summary.Summary, job ShardJob) (*matgen.Report, error) {
	return matgen.MaterializeContext(ctx, sum, job.Opts)
}

// ShardResult records one shard's outcome.
type ShardResult struct {
	Shard int
	// Attempts is how many runs it took (1 = first try succeeded).
	Attempts int
	// Report is the successful run's report, nil when the shard failed.
	Report *matgen.Report
	// Err is the last attempt's error when the shard ultimately failed.
	Err error
}

// Result aggregates one orchestrated job.
type Result struct {
	Plan   *Plan
	Shards []ShardResult
	// Verification is the post-run manifest check, nil when skipped.
	Verification *VerifyReport
	Rows         int64
	Bytes        int64
	// RawBytes is the job's encoded size before compression — equal to
	// Bytes for uncompressed jobs, and the decompressed assembly size for
	// compressed ones, the number capacity planning needs.
	RawBytes int64
	Elapsed  time.Duration
}

// RowsPerSec returns the whole-job generation throughput.
func (r *Result) RowsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Elapsed.Seconds()
}

// NewPlan resolves Options into a concrete shard plan without running it.
func NewPlan(opts Options) (*Plan, error) {
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("orchestrate: shards %d out of range", opts.Shards)
	}
	if opts.Dir == "" {
		return nil, errors.New("orchestrate: Dir is required")
	}
	format := opts.Format
	if format == "" {
		format = "heap"
	}
	if format == "discard" {
		return nil, errors.New("orchestrate: discard sink leaves nothing to verify; use matgen directly")
	}
	parallel := opts.Parallel
	if parallel == 0 {
		parallel = opts.Shards
		if p := runtime.GOMAXPROCS(0); parallel > p {
			parallel = p
		}
	}
	if parallel < 1 {
		return nil, fmt.Errorf("orchestrate: parallel %d out of range", opts.Parallel)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0) / parallel
		if workers < 1 {
			workers = 1
		}
	}
	retries := opts.Retries
	if retries == 0 {
		retries = DefaultRetries
	} else if retries < 0 {
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff == 0 {
		backoff = DefaultRetryBackoff
	} else if backoff < 0 {
		backoff = 0
	}
	p := &Plan{Shards: opts.Shards, Parallel: parallel, Retries: retries, Backoff: backoff}
	for i := 0; i < opts.Shards; i++ {
		p.Jobs = append(p.Jobs, ShardJob{Shard: i, Opts: matgen.Options{
			Dir:       opts.Dir,
			Format:    format,
			Compress:  opts.Compress,
			Workers:   workers,
			Shards:    opts.Shards,
			Shard:     i,
			Tables:    opts.Tables,
			BatchRows: opts.BatchRows,
			FKSpread:  opts.FKSpread,
		}})
	}
	return p, nil
}

// Run plans and executes the job, then verifies the assembled output
// against the summary. The returned Result carries per-shard outcomes
// even when the job fails; the error is the first shard failure or
// verification failure.
func Run(ctx context.Context, sum *summary.Summary, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := NewPlan(opts)
	if err != nil {
		return nil, err
	}
	runner := opts.Runner
	if runner == nil {
		runner = LocalRunner{}
	}
	start := time.Now()
	res := &Result{Plan: plan, Shards: make([]ShardResult, len(plan.Jobs))}

	sem := make(chan struct{}, plan.Parallel)
	var wg sync.WaitGroup
	for i, job := range plan.Jobs {
		wg.Add(1)
		go func(i int, job ShardJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res.Shards[i] = runShard(ctx, runner, sum, job, plan.Retries, plan.Backoff)
		}(i, job)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	var firstErr error
	for _, sr := range res.Shards {
		if sr.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("orchestrate: shard %d/%d failed after %d attempts: %w",
					sr.Shard+1, plan.Shards, sr.Attempts, sr.Err)
			}
			continue
		}
		res.Rows += sr.Report.Rows
		res.Bytes += sr.Report.Bytes
		if sr.Report.RawBytes > 0 {
			res.RawBytes += sr.Report.RawBytes
		} else {
			res.RawBytes += sr.Report.Bytes
		}
	}
	if firstErr != nil {
		return res, firstErr
	}
	if !opts.SkipVerify {
		vr, err := Verify(VerifyOptions{Dir: opts.Dir, Shards: plan.Shards, Summary: sum, Tables: opts.Tables})
		res.Verification = vr
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// runShard runs one job with retries, pausing a jittered backoff
// between attempts (full jitter over a doubling ceiling, so shards that
// failed together spread their retries instead of stampeding the
// runner in lockstep). Re-running is safe: matgen truncates its output
// files on open, and the manifest write is atomic. Cancellation is
// respected everywhere a retry could stall: before the first attempt,
// during the backoff pause (a canceled job returns immediately instead
// of sleeping it out), and after a failed attempt.
func runShard(ctx context.Context, runner Runner, sum *summary.Summary, job ShardJob, retries int, backoff time.Duration) ShardResult {
	sr := ShardResult{Shard: job.Shard}
	if err := ctx.Err(); err != nil {
		sr.Attempts, sr.Err = 0, err
		return sr
	}
	// One span per shard: attempts by the runner (and, remotely, by the
	// server) nest under it, so a whole materialization reads as one
	// tree — orchestrate.shard → runner.shardjob → runner.attempt.
	ctx, sp := trace.Start(ctx, "orchestrate.shard",
		trace.Int("shard", int64(job.Shard+1)),
		trace.Int("shards", int64(job.Opts.Shards)))
	t0 := time.Now()
	defer func() {
		mShardSeconds.ObserveSince(t0)
		if sr.Err == nil {
			mShardsOK.Inc()
		} else {
			mShardsFailed.Inc()
		}
		sp.Fail(sr.Err)
		sp.End()
	}()
	pol := resilience.Policy{Base: backoff, Max: 8 * backoff}
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			mShardRetriesErr.Inc()
			if backoff > 0 {
				d := pol.Delay(attempt)
				sp.Event("retry-backoff", trace.Dur("wait", d),
					trace.Int("retry", int64(attempt)))
				if resilience.Sleep(ctx, d) != nil {
					return sr // keep the last attempt's error, not ctx's
				}
			}
		}
		sr.Attempts = attempt + 1
		mShardAttempts.Inc()
		rep, err := runner.Run(ctx, sum, job)
		if err == nil {
			sr.Report, sr.Err = rep, nil
			return sr
		}
		sr.Err = err
		if ctx.Err() != nil {
			return sr // cancelled; retrying cannot help
		}
	}
	return sr
}
