package orchestrate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/summary"
)

// testSummary mirrors matgen's test fixture: two relations with FK
// spans, sized to spread across several shards at small batch sizes.
func testSummary() *summary.Summary {
	tRel := &summary.RelationSummary{
		Table: "T", Cols: []string{"C"},
		Rows: []summary.RelRow{
			{Vals: []int64{2}, Count: 900},
			{Vals: []int64{7}, Count: 613},
		},
		Total: 1513,
	}
	sRel := &summary.RelationSummary{
		Table: "S", Cols: []string{"A", "B"}, FKCols: []string{"t_fk"}, FKRefs: []string{"T"},
		Rows: []summary.RelRow{
			{Vals: []int64{20, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 3001},
			{Vals: []int64{20, 40}, FKs: []int64{901}, FKSpans: []int64{613}, Count: 2500},
			{Vals: []int64{61, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 2707},
		},
		Total: 8208,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"S": sRel, "T": tRel}}
}

// TestRunEndToEnd is the acceptance path: a 4-shard gzip job must pass
// verification, and the decompressed concatenation of its parts must be
// byte-identical to a plain single-process materialization.
func TestRunEndToEnd(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	res, err := Run(context.Background(), sum, Options{
		Dir: dir, Format: "csv", Compress: "gzip", Shards: 4, BatchRows: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 8208+1513 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if res.Verification == nil || res.Verification.Shards != 4 {
		t.Fatalf("verification = %+v", res.Verification)
	}
	if res.Verification.FilesHashed != 8 { // 2 tables × 4 shards
		t.Fatalf("files hashed = %d", res.Verification.FilesHashed)
	}
	for _, sr := range res.Shards {
		if sr.Attempts != 1 || sr.Err != nil {
			t.Fatalf("shard result = %+v", sr)
		}
	}

	plain := t.TempDir()
	plainRep, err := matgen.Materialize(sum, matgen.Options{Dir: plain, Format: "csv", Workers: 2, BatchRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Raw-byte accounting: the compressed job's pre-compression size must
	// equal the plain run's output size, in both the job result and the
	// verification report.
	if res.RawBytes != plainRep.Bytes {
		t.Fatalf("job RawBytes = %d, plain output = %d", res.RawBytes, plainRep.Bytes)
	}
	if res.Verification.RawBytes != plainRep.Bytes {
		t.Fatalf("verification RawBytes = %d, plain output = %d", res.Verification.RawBytes, plainRep.Bytes)
	}
	if res.Bytes >= res.RawBytes {
		t.Fatalf("compressed bytes %d should undercut raw %d on this data", res.Bytes, res.RawBytes)
	}
	comp, err := matgen.CompressorFor("gzip")
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"S", "T"} {
		want, err := os.ReadFile(filepath.Join(plain, table+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		var cat []byte
		for i := 0; i < 4; i++ {
			b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%s.csv.part-%03d-of-%03d.gz", table, i, 4)))
			if err != nil {
				t.Fatal(err)
			}
			cat = append(cat, b...)
		}
		zr, err := comp.NewReader(bytes.NewReader(cat))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(zr)
		zr.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: verified decompressed concatenation != single-process output", table)
		}
	}
}

// flakyRunner fails each shard's first n attempts, then delegates.
type flakyRunner struct {
	mu       sync.Mutex
	failures map[int]int
	n        int
}

func (f *flakyRunner) Run(ctx context.Context, sum *summary.Summary, job ShardJob) (*matgen.Report, error) {
	f.mu.Lock()
	seen := f.failures[job.Shard]
	f.failures[job.Shard]++
	f.mu.Unlock()
	if seen < f.n {
		return nil, fmt.Errorf("transient failure %d of shard %d", seen+1, job.Shard)
	}
	return LocalRunner{}.Run(ctx, sum, job)
}

// TestRetriesRecoverTransientFailures: every shard fails once, the
// default retry budget absorbs it, and verification still passes.
func TestRetriesRecoverTransientFailures(t *testing.T) {
	sum := testSummary()
	res, err := Run(context.Background(), sum, Options{
		Dir: t.TempDir(), Format: "jsonl", Shards: 3,
		Runner: &flakyRunner{failures: map[int]int{}, n: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Shards {
		if sr.Attempts != 2 {
			t.Fatalf("shard %d attempts = %d, want 2", sr.Shard, sr.Attempts)
		}
	}
	if res.Verification == nil {
		t.Fatal("verification skipped")
	}
}

// TestExhaustedRetriesFail: a shard that keeps failing exhausts its
// budget and fails the job, with the per-shard outcome preserved.
func TestExhaustedRetriesFail(t *testing.T) {
	sum := testSummary()
	res, err := Run(context.Background(), sum, Options{
		Dir: t.TempDir(), Format: "jsonl", Shards: 2, Retries: 1,
		Runner: &flakyRunner{failures: map[int]int{}, n: 99},
	})
	if err == nil {
		t.Fatal("expected job failure")
	}
	for _, sr := range res.Shards {
		if sr.Err == nil || sr.Attempts != 2 {
			t.Fatalf("shard result = %+v", sr)
		}
	}
}

// cancelingRunner fails every attempt and cancels the job context on
// the first one — the shape of a fleet going away mid-job.
type cancelingRunner struct {
	cancel context.CancelFunc
	calls  atomic.Int64
}

func (c *cancelingRunner) Run(ctx context.Context, sum *summary.Summary, job ShardJob) (*matgen.Report, error) {
	if c.calls.Add(1) == 1 {
		c.cancel()
	}
	return nil, errors.New("runner lost")
}

// TestRetryBackoffRespectsCancellation: once the context is canceled, a
// failed shard must not sleep out its retry backoff or attempt again —
// the clean-abort contract a serving layer relies on.
func TestRetryBackoffRespectsCancellation(t *testing.T) {
	sum := testSummary()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runner := &cancelingRunner{cancel: cancel}
	start := time.Now()
	res, err := Run(ctx, sum, Options{
		Dir: t.TempDir(), Format: "csv", Shards: 1,
		Retries: 5, RetryBackoff: 30 * time.Second,
		Runner: runner,
	})
	if err == nil {
		t.Fatal("expected job failure")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("canceled job took %v; the retry backoff was slept out", waited)
	}
	if got := runner.calls.Load(); got != 1 {
		t.Fatalf("runner attempted %d times after cancellation, want 1", got)
	}
	if sr := res.Shards[0]; sr.Attempts != 1 || sr.Err == nil {
		t.Fatalf("shard result = %+v", sr)
	}
}

// TestLocalRunnerCancellation: the in-process Runner honors ctx the
// same way a remote one does — the materialization aborts mid-run with
// the context's error and leaves no partial artifacts.
func TestLocalRunnerCancellation(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	job := ShardJob{Opts: matgen.Options{
		Dir: dir, Format: "csv", Workers: 2, Shards: 1, BatchRows: 128, RateLimit: 500,
	}}
	if _, err := (LocalRunner{}).Run(ctx, sum, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("partial artifact left behind: %s", e.Name())
	}
}

func TestPlanValidation(t *testing.T) {
	for _, opts := range []Options{
		{Format: "csv"},                         // no dir
		{Dir: "x", Format: "discard"},           // nothing to verify
		{Dir: "x", Format: "csv", Shards: -1},   // bad shards
		{Dir: "x", Format: "csv", Parallel: -2}, // bad parallel
	} {
		if _, err := NewPlan(opts); err == nil {
			t.Fatalf("opts %+v: expected error", opts)
		}
	}
	p, err := NewPlan(Options{Dir: "x", Shards: 5, Parallel: 2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Jobs) != 5 || p.Parallel != 2 || p.Jobs[4].Opts.Shard != 4 || p.Jobs[0].Opts.Workers != 3 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Retries != DefaultRetries {
		t.Fatalf("retries = %d", p.Retries)
	}
}

// runVerified produces a verified 3-shard gzip job for tampering tests.
func runVerified(t *testing.T) (string, *summary.Summary) {
	t.Helper()
	sum := testSummary()
	dir := t.TempDir()
	if _, err := Run(context.Background(), sum, Options{
		Dir: dir, Format: "csv", Compress: "gzip", Shards: 3, BatchRows: 128,
	}); err != nil {
		t.Fatal(err)
	}
	return dir, sum
}

func rewriteManifest(t *testing.T, dir string, shard, shards int, mutate func(*matgen.Manifest)) {
	t.Helper()
	path := matgen.ManifestPath(dir, shard, shards)
	m, err := matgen.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate(m)
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyFailureModes proves each corruption class surfaces as its own
// sentinel error — the contract that lets an operator tell a torn copy
// from bit rot from a mis-planned split.
func TestVerifyFailureModes(t *testing.T) {
	sentinels := []error{ErrManifestMissing, ErrManifestInconsistent, ErrRangeOverlap,
		ErrRangeGap, ErrRowCount, ErrTruncated, ErrChecksum, ErrStaleArtifacts}
	expectOnly := func(t *testing.T, err error, want error) {
		t.Helper()
		if err == nil {
			t.Fatal("expected verification failure")
		}
		for _, s := range sentinels {
			if errors.Is(err, s) != (s == want) {
				t.Fatalf("err %v: errors.Is(%v) = %v", err, s, s != want)
			}
		}
	}
	partFile := func(dir, table string, shard int) string {
		return filepath.Join(dir, fmt.Sprintf("%s.csv.part-%03d-of-%03d.gz", table, shard, 3))
	}

	t.Run("clean", func(t *testing.T) {
		dir, sum := runVerified(t)
		if _, err := Verify(VerifyOptions{Dir: dir, Summary: sum}); err != nil {
			t.Fatal(err)
		}
		// Shards inferred from the manifests must match the explicit width.
		if vr, err := Verify(VerifyOptions{Dir: dir, Shards: 3}); err != nil || vr.Shards != 3 {
			t.Fatalf("explicit-width verify: %+v, %v", vr, err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		dir, sum := runVerified(t)
		path := partFile(dir, "S", 1)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Verify(VerifyOptions{Dir: dir, Summary: sum})
		expectOnly(t, err, ErrTruncated)
	})

	t.Run("checksum", func(t *testing.T) {
		dir, sum := runVerified(t)
		path := partFile(dir, "T", 2)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff // same size, different bytes
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Verify(VerifyOptions{Dir: dir, Summary: sum})
		expectOnly(t, err, ErrChecksum)
	})

	t.Run("overlap", func(t *testing.T) {
		dir, sum := runVerified(t)
		rewriteManifest(t, dir, 1, 3, func(m *matgen.Manifest) {
			m.Tables[0].StartRow -= 10
		})
		_, err := Verify(VerifyOptions{Dir: dir, Summary: sum})
		expectOnly(t, err, ErrRangeOverlap)
	})

	t.Run("gap", func(t *testing.T) {
		dir, sum := runVerified(t)
		rewriteManifest(t, dir, 1, 3, func(m *matgen.Manifest) {
			m.Tables[0].StartRow += 10
			m.Tables[0].Rows -= 10
		})
		_, err := Verify(VerifyOptions{Dir: dir, Summary: sum})
		expectOnly(t, err, ErrRangeGap)
	})

	t.Run("rowcount", func(t *testing.T) {
		dir, sum := runVerified(t)
		grown := *sum.Relations["S"]
		grown.Total += 5
		bigger := &summary.Summary{Relations: map[string]*summary.RelationSummary{
			"S": &grown, "T": sum.Relations["T"],
		}}
		// Ranges still tile the manifests' TotalRows, so the failure is
		// specifically the cardinality anchor, not the tiling.
		_, err := Verify(VerifyOptions{Dir: dir, Summary: bigger})
		expectOnly(t, err, ErrRowCount)
	})

	t.Run("missing-manifest", func(t *testing.T) {
		dir, sum := runVerified(t)
		if err := os.Remove(matgen.ManifestPath(dir, 2, 3)); err != nil {
			t.Fatal(err)
		}
		_, err := Verify(VerifyOptions{Dir: dir, Summary: sum})
		expectOnly(t, err, ErrManifestMissing)
	})

	t.Run("stale-split", func(t *testing.T) {
		// Leftovers from an earlier 2-shard run must fail verification
		// of the 3-shard split: a `cat *.part-*` consumption glob would
		// mix both widths.
		dir, sum := runVerified(t)
		if _, err := matgen.Materialize(sum, matgen.Options{
			Dir: dir, Format: "csv", Compress: "gzip", Workers: 2,
			Shards: 2, Shard: 0, BatchRows: 128,
		}); err != nil {
			t.Fatal(err)
		}
		_, err := Verify(VerifyOptions{Dir: dir, Shards: 3, Summary: sum})
		expectOnly(t, err, ErrStaleArtifacts)
	})

	t.Run("inconsistent-width", func(t *testing.T) {
		dir, sum := runVerified(t)
		rewriteManifest(t, dir, 0, 3, func(m *matgen.Manifest) {
			m.Tables[0].TotalRows += 99
		})
		_, err := Verify(VerifyOptions{Dir: dir, Summary: sum})
		expectOnly(t, err, ErrManifestInconsistent)
	})
}

// TestDuplicateTableSubset: matgen dedups a repeated subset name at
// generation time, so verification must accept the same repeated subset
// rather than demanding a table count the manifests can never carry.
func TestDuplicateTableSubset(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	tables := []string{"S", "S"}
	if _, err := Run(context.Background(), sum, Options{
		Dir: dir, Format: "csv", Shards: 2, Tables: tables,
	}); err != nil {
		t.Fatal(err)
	}
	if tables[0] != "S" || tables[1] != "S" {
		t.Fatalf("caller's subset mutated: %v", tables)
	}
}

// TestVerifyShippedDirectory: parts generated in per-machine directories
// and shipped into one place must verify there — Verify resolves files
// by base name under its own Dir, not by the recorded absolute path.
func TestVerifyShippedDirectory(t *testing.T) {
	sum := testSummary()
	const shards = 2
	machines := []string{t.TempDir(), t.TempDir()}
	for i, dir := range machines {
		if _, err := matgen.Materialize(sum, matgen.Options{
			Dir: dir, Format: "jsonl", Compress: "gzip", Workers: 2,
			Shards: shards, Shard: i, BatchRows: 128,
		}); err != nil {
			t.Fatal(err)
		}
	}
	collected := t.TempDir()
	for _, dir := range machines {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(collected, e.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	vr, err := Verify(VerifyOptions{Dir: collected, Summary: sum})
	if err != nil {
		t.Fatal(err)
	}
	if vr.Shards != shards || vr.Compression != "gzip" || len(vr.Tables) != 2 {
		t.Fatalf("report = %+v", vr)
	}
}
