package orchestrate

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"github.com/dsl-repro/hydra/internal/fsx"
	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/summary"
)

// Verification failure classes. Every failure Verify can report wraps
// exactly one of these sentinels, so callers (and tests) can distinguish
// a truncated part file from a bad checksum from a mis-tiled range with
// errors.Is instead of string matching.
var (
	// ErrManifestMissing: a shard of the split has no manifest in Dir.
	ErrManifestMissing = errors.New("shard manifest missing")
	// ErrManifestInconsistent: manifests disagree about the job (format,
	// codec, shard count, table set, or total cardinality).
	ErrManifestInconsistent = errors.New("shard manifests inconsistent")
	// ErrRangeOverlap: consecutive shards claim overlapping row ranges.
	ErrRangeOverlap = errors.New("shard row ranges overlap")
	// ErrRangeGap: a row range is missing between consecutive shards or
	// at either end of the table.
	ErrRangeGap = errors.New("shard row ranges leave a gap")
	// ErrRowCount: shard row counts do not sum to the summary's
	// cardinality for a table.
	ErrRowCount = errors.New("row counts do not match summary cardinality")
	// ErrTruncated: a part file's size differs from the bytes its
	// manifest recorded (the torn-copy / partial-ship failure).
	ErrTruncated = errors.New("shard file truncated or resized")
	// ErrChecksum: a part file re-hashes to a different checksum than
	// its manifest recorded (the bit-rot / wrong-file failure).
	ErrChecksum = errors.New("shard file checksum mismatch")
	// ErrStaleArtifacts: the directory holds manifests or part files
	// from a different shard split. Verification would pass on one
	// manifest set while a `cat *.part-*` consumption glob would mix
	// widths and corrupt the assembly, so the mixture is rejected.
	ErrStaleArtifacts = errors.New("stale artifacts from a different shard split")
)

// VerifyOptions selects what to verify.
type VerifyOptions struct {
	// Dir holds the part files and manifests. Part files are looked up
	// by base name under Dir, so artifacts generated elsewhere can be
	// shipped into one directory and verified there.
	Dir string
	// Shards is the expected split width; 0 infers it from the first
	// manifest found.
	Shards int
	// Summary, when set, anchors the row-count check: every table's
	// shard rows must sum to its cardinality, and every expected
	// relation must be present.
	Summary *summary.Summary
	// Tables is the expected table subset when Summary is set; nil means
	// all of Summary's relations.
	Tables []string
}

// TableCheck is one verified table.
type TableCheck struct {
	Table string
	Rows  int64
	Bytes int64
	// RawBytes is the table's encoded size before compression, summed
	// from the manifests (equal to Bytes for uncompressed output).
	RawBytes int64
	Parts    int
}

// VerifyReport summarizes a successful verification.
type VerifyReport struct {
	Shards      int
	Format      string
	Compression string
	Tables      []TableCheck
	// RawBytes is the assembly's total encoded size before compression,
	// summed from the manifests.
	RawBytes int64
	// FilesHashed and BytesHashed count the re-hash work performed.
	FilesHashed int
	BytesHashed int64
}

// Verify loads the split's manifests from Dir and proves the output
// whole: all manifests present and mutually consistent, every table's
// shard ranges tiling [0, TotalRows) with rows summing to the summary's
// cardinality, and every part file matching its recorded size and
// SHA-256. The first failure is returned wrapped around its sentinel.
func Verify(opts VerifyOptions) (*VerifyReport, error) {
	if opts.Dir == "" {
		return nil, errors.New("orchestrate: verify: Dir is required")
	}
	shards := opts.Shards
	if shards == 0 {
		inferred, err := inferShards(opts.Dir)
		if err != nil {
			return nil, err
		}
		shards = inferred
	}
	if err := checkStale(opts.Dir, shards); err != nil {
		return nil, err
	}
	manifests := make([]*matgen.Manifest, shards)
	for i := 0; i < shards; i++ {
		path := matgen.ManifestPath(opts.Dir, i, shards)
		m, err := matgen.ReadManifest(path)
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("orchestrate: %w: shard %d of %d (%s)", ErrManifestMissing, i, shards, path)
		}
		if err != nil {
			return nil, err
		}
		if m.Shard != i || m.Shards != shards {
			return nil, fmt.Errorf("orchestrate: %w: %s claims shard %d of %d", ErrManifestInconsistent, path, m.Shard, m.Shards)
		}
		if i > 0 && (m.Format != manifests[0].Format || m.Compression != manifests[0].Compression) {
			return nil, fmt.Errorf("orchestrate: %w: shard %d format %q/%q != shard 0 format %q/%q",
				ErrManifestInconsistent, i, m.Format, m.Compression, manifests[0].Format, manifests[0].Compression)
		}
		manifests[i] = m
	}
	rep := &VerifyReport{Shards: shards, Format: manifests[0].Format, Compression: manifests[0].Compression}

	byTable, order, err := collectTables(manifests)
	if err != nil {
		return nil, err
	}
	if err := checkSummaryCoverage(opts, order); err != nil {
		return nil, err
	}
	for _, name := range order {
		parts := byTable[name]
		check, err := verifyTable(opts, name, parts, rep)
		if err != nil {
			return nil, err
		}
		rep.Tables = append(rep.Tables, check)
		rep.RawBytes += check.RawBytes
	}
	return rep, nil
}

// tablePart is one shard's report for one table.
type tablePart struct {
	shard int
	tr    matgen.TableReport
}

// collectTables groups every manifest's table reports by table, in
// shard order, and cross-checks that all shards saw the same table set.
func collectTables(manifests []*matgen.Manifest) (map[string][]tablePart, []string, error) {
	byTable := map[string][]tablePart{}
	var order []string
	for _, tr := range manifests[0].Tables {
		order = append(order, tr.Table)
	}
	sort.Strings(order)
	for i, m := range manifests {
		if len(m.Tables) != len(order) {
			return nil, nil, fmt.Errorf("orchestrate: %w: shard %d reports %d tables, shard 0 reports %d",
				ErrManifestInconsistent, i, len(m.Tables), len(order))
		}
		for _, tr := range m.Tables {
			if _, ok := byTable[tr.Table]; !ok && i > 0 {
				return nil, nil, fmt.Errorf("orchestrate: %w: shard %d reports table %q unknown to shard 0",
					ErrManifestInconsistent, i, tr.Table)
			}
			byTable[tr.Table] = append(byTable[tr.Table], tablePart{shard: i, tr: tr})
		}
	}
	return byTable, order, nil
}

// checkSummaryCoverage confirms the manifests cover exactly the expected
// relations when a summary anchors the verification.
func checkSummaryCoverage(opts VerifyOptions, order []string) error {
	if opts.Summary == nil {
		return nil
	}
	// A set, not a slice: the caller's subset may repeat names (matgen
	// dedups them at generation time) and must not be mutated here.
	expect := map[string]bool{}
	if opts.Tables != nil {
		for _, name := range opts.Tables {
			expect[name] = true
		}
	} else {
		for name := range opts.Summary.Relations {
			expect[name] = true
		}
	}
	have := map[string]bool{}
	for _, name := range order {
		have[name] = true
	}
	for _, name := range sortedKeys(expect) {
		if !have[name] {
			return fmt.Errorf("orchestrate: %w: relation %q absent from manifests", ErrManifestInconsistent, name)
		}
	}
	if len(order) != len(expect) {
		return fmt.Errorf("orchestrate: %w: manifests carry %d tables, expected %d", ErrManifestInconsistent, len(order), len(expect))
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// verifyTable checks one table's tiling, cardinality, and files.
func verifyTable(opts VerifyOptions, name string, parts []tablePart, rep *VerifyReport) (TableCheck, error) {
	check := TableCheck{Table: name, Parts: len(parts)}
	total := parts[0].tr.TotalRows
	var end int64 // next expected StartRow
	for _, p := range parts {
		tr := p.tr
		if tr.TotalRows != total {
			return check, fmt.Errorf("orchestrate: %w: %s: shard %d claims %d total rows, shard %d claims %d",
				ErrManifestInconsistent, name, p.shard, tr.TotalRows, parts[0].shard, total)
		}
		switch {
		case tr.StartRow < end:
			return check, fmt.Errorf("orchestrate: %w: %s: shard %d starts at row %d, already covered through %d",
				ErrRangeOverlap, name, p.shard, tr.StartRow, end)
		case tr.StartRow > end:
			return check, fmt.Errorf("orchestrate: %w: %s: rows [%d, %d) covered by no shard",
				ErrRangeGap, name, end, tr.StartRow)
		}
		end = tr.StartRow + tr.Rows
		check.Rows += tr.Rows
		check.Bytes += tr.Bytes
		if tr.RawBytes > 0 {
			check.RawBytes += tr.RawBytes
		} else {
			check.RawBytes += tr.Bytes
		}
		if err := verifyPartFile(opts.Dir, name, p, rep); err != nil {
			return check, err
		}
	}
	if end != total {
		return check, fmt.Errorf("orchestrate: %w: %s: rows [%d, %d) covered by no shard", ErrRangeGap, name, end, total)
	}
	if opts.Summary != nil {
		rs, ok := opts.Summary.Relations[name]
		if !ok {
			return check, fmt.Errorf("orchestrate: %w: manifests carry table %q unknown to the summary", ErrManifestInconsistent, name)
		}
		if check.Rows != rs.Total {
			return check, fmt.Errorf("orchestrate: %w: %s: shards sum to %d rows, summary says %d",
				ErrRowCount, name, check.Rows, rs.Total)
		}
	} else if check.Rows != total {
		return check, fmt.Errorf("orchestrate: %w: %s: shards sum to %d rows, manifests claim %d total",
			ErrRowCount, name, check.Rows, total)
	}
	return check, nil
}

// verifyPartFile re-checks one shard file's size and checksum against
// what its manifest recorded at generation time.
func verifyPartFile(dir, table string, p tablePart, rep *VerifyReport) error {
	tr := p.tr
	if tr.Path == "" {
		return nil
	}
	path := filepath.Join(dir, filepath.Base(tr.Path))
	sum, size, err := fsx.HashFile(path)
	if err != nil {
		return fmt.Errorf("orchestrate: %s shard %d: %w", table, p.shard, err)
	}
	if size != tr.Bytes {
		return fmt.Errorf("orchestrate: %w: %s: %d bytes on disk, manifest recorded %d",
			ErrTruncated, path, size, tr.Bytes)
	}
	if tr.Checksum != "" && sum != tr.Checksum {
		return fmt.Errorf("orchestrate: %w: %s: sha256 %s, manifest recorded %s",
			ErrChecksum, path, sum, tr.Checksum)
	}
	rep.FilesHashed++
	rep.BytesHashed += size
	return nil
}

var (
	manifestNameRe = regexp.MustCompile(`^manifest-\d{3}-of-(\d{3})\.json$`)
	partNameRe     = regexp.MustCompile(`\.part-\d{3}-of-(\d{3})`)
)

// checkStale rejects manifests and part files left behind by a run with
// a different shard width. They cannot belong to the split under
// verification, and leaving them unflagged would let a passing report
// sit next to files that corrupt any glob-based consumption.
func checkStale(dir string, shards int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		m := manifestNameRe.FindStringSubmatch(name)
		if m == nil {
			m = partNameRe.FindStringSubmatch(name)
		}
		if m == nil {
			continue
		}
		w, err := strconv.Atoi(m[1])
		if err != nil || w != shards {
			return fmt.Errorf("orchestrate: %w: %s belongs to a %d-shard split, verifying %d",
				ErrStaleArtifacts, name, w, shards)
		}
	}
	return nil
}

// inferShards finds the split width from the manifest files present.
func inferShards(dir string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "manifest-*-of-*.json"))
	if err != nil {
		return 0, err
	}
	if len(matches) == 0 {
		return 0, fmt.Errorf("orchestrate: %w: no manifests in %s", ErrManifestMissing, dir)
	}
	m, err := matgen.ReadManifest(matches[0])
	if err != nil {
		return 0, err
	}
	return m.Shards, nil
}
