package partition

import (
	"math/big"

	"github.com/dsl-repro/hydra/internal/pred"
)

// Grid implements DataSynth's grid-partitioning strategy (§3.2): each
// dimension is intervalized at every constant appearing in the constraints,
// and the sub-view domain becomes the full cross product of the per-
// dimension intervals — one LP variable per cell. The paper's Figures 3a/4a
// show the strategy on the "Person" example (16 cells where region
// partitioning needs 4 regions).
//
// The number of cells is ∏ᵢ ℓᵢ and explodes combinatorially (10¹¹ for the
// TPC-DS item table under WLc, Fig. 12), so cells are only materialized on
// demand and under a cap; the analytic count is always available.
type Grid struct {
	// DimIntervals[i] lists the intervals dimension i was cut into.
	DimIntervals [][]pred.Interval
	// Cells is ∏ len(DimIntervals[i]), computed without enumeration.
	Cells *big.Int
}

// NewGrid intervalizes each dimension of the space at the boundaries of
// every conjunct restriction, exactly as DataSynth does.
func NewGrid(space []pred.Set, cons []pred.DNF) *Grid {
	var conjuncts []pred.Conjunct
	for _, c := range cons {
		conjuncts = append(conjuncts, c.Terms...)
	}
	g := &Grid{Cells: big.NewInt(1)}
	for dim, domain := range space {
		atoms := Atoms(domain, conjuncts, dim)
		g.DimIntervals = append(g.DimIntervals, atoms)
		g.Cells.Mul(g.Cells, big.NewInt(int64(len(atoms))))
	}
	return g
}

// Enumerable reports whether the grid has at most maxCells cells, i.e.
// whether an LP over its variables can be formulated at all. DataSynth's
// solver "crash" on WLc (Fig. 13) is modeled by this returning false.
func (g *Grid) Enumerable(maxCells int64) bool {
	return g.Cells.IsInt64() && g.Cells.Int64() <= maxCells
}

// EnumerateCells materializes every grid cell as a single-box Block, in
// row-major dimension order. Callers must check Enumerable first; the
// method panics on absurd cell counts to protect against accidental
// exabyte-scale allocations.
func (g *Grid) EnumerateCells(maxCells int64) []Block {
	if !g.Enumerable(maxCells) {
		panic("partition: grid not enumerable within cap")
	}
	total := g.Cells.Int64()
	n := len(g.DimIntervals)
	out := make([]Block, 0, total)
	idx := make([]int, n)
	for {
		dims := make([]pred.Set, n)
		for i, k := range idx {
			dims[i] = pred.NewSet(g.DimIntervals[i][k])
		}
		out = append(out, Block{Dims: dims})
		// Advance the mixed-radix counter.
		d := n - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(g.DimIntervals[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// CellRegions wraps enumerated grid cells as single-block Regions labeled
// against the constraints, so the same LP formulator can consume either
// partitioning strategy (the region-vs-grid ablation of Fig. 12/13 swaps
// only this step).
func (g *Grid) CellRegions(cons []pred.DNF, maxCells int64) []Region {
	cells := g.EnumerateCells(maxCells)
	out := make([]Region, len(cells))
	for i, b := range cells {
		rep := b.Rep()
		lbl := newLabel(len(cons))
		for j, c := range cons {
			if c.Eval(rep) {
				lbl.set(j)
			}
		}
		out[i] = Region{Blocks: []Block{b}, Label: lbl}
	}
	return out
}
