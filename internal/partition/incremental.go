package partition

import (
	"sort"

	"github.com/dsl-repro/hydra/internal/pred"
)

// OptimalIncremental computes the same optimal partition as Optimal
// (Algorithms 1+2 of the paper) with a different evaluation order: instead
// of refining the whole universe dimension-by-dimension and coarsening by
// label at the end, it maintains label-merged regions throughout and
// splits each region by one DNF constraint at a time:
//
//	regions ← { (D, ∅) }
//	for each constraint Cⱼ: every region R splits into R∩Cⱼ (label+j)
//	                        and R∖Cⱼ (label unchanged)
//
// Both orders produce the quotient set of the R_C equivalence relation
// (Lemma 4.3) — the unique optimal partition — but the incremental order
// keeps at most 2·|labels| regions alive at any point, whereas Algorithm
// 2's intermediate refinement can approach grid size on densely
// overlapping constraint sets long before Algorithm 1's coarsening
// rescues it. Hydra's formulator therefore uses this form; Optimal remains
// as the literal-paper reference implementation, and the test suite checks
// the two agree.
//
// maxBlocks caps the total block count across regions (0 = unlimited).
func OptimalIncremental(space []pred.Set, cons []pred.DNF, maxBlocks int) ([]Region, error) {
	root := Block{Dims: append([]pred.Set(nil), space...)}
	if root.Empty() {
		return nil, nil
	}
	regions := []Region{{Blocks: []Block{root}, Label: newLabel(len(cons))}}
	totalBlocks := 1
	for j, c := range cons {
		next := regions[:0:0]
		totalBlocks = 0
		for _, r := range regions {
			in, out := splitBlocks(r.Blocks, c.Terms)
			if len(in) > 32 {
				in = coalesce(in)
			}
			if len(out) > 32 {
				out = coalesce(out)
			}
			if len(in) > 0 {
				lbl := append(Label(nil), r.Label...)
				lbl.set(j)
				next = append(next, Region{Blocks: in, Label: lbl})
				totalBlocks += len(in)
			}
			if len(out) > 0 {
				next = append(next, Region{Blocks: out, Label: r.Label})
				totalBlocks += len(out)
			}
		}
		if maxBlocks > 0 && totalBlocks > maxBlocks {
			return nil, &ErrTooManyBlocks{Blocks: maxBlocks}
		}
		regions = next
	}
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i].Rep(), regions[j].Rep()
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return regions, nil
}

// splitBlocks partitions the union of blocks into the part inside the DNF
// (union of the conjuncts) and the part outside, keeping both sides as
// disjoint block lists. Terms are applied sequentially: each term claims
// its intersection with the remaining outside part, so overlapping
// disjuncts never double-count.
func splitBlocks(blocks []Block, terms []pred.Conjunct) (in, out []Block) {
	rem := blocks
	for _, t := range terms {
		if len(rem) == 0 {
			break
		}
		var nextRem []Block
		for _, b := range rem {
			inter, ok, frags := subtractConjunct(b, t)
			if ok {
				in = append(in, inter)
			}
			nextRem = append(nextRem, frags...)
		}
		rem = nextRem
	}
	return in, rem
}

// coalesce reduces a disjoint block list by repeatedly merging blocks that
// agree on every dimension but one (their union is again a single block
// with the odd dimension's sets united). Subtraction fragments re-coalesce
// aggressively under this rule, keeping region representations near the
// information-theoretic minimum instead of growing with split history.
func coalesce(blocks []Block) []Block {
	if len(blocks) < 2 {
		return blocks
	}
	n := len(blocks[0].Dims)
	for changed := true; changed; {
		changed = false
		for d := 0; d < n && len(blocks) > 1; d++ {
			groups := make(map[string]int, len(blocks))
			out := blocks[:0:0]
			for _, b := range blocks {
				key := blockKeyExcept(b, d)
				if idx, ok := groups[key]; ok {
					out[idx].Dims[d] = out[idx].Dims[d].Union(b.Dims[d])
					changed = true
					continue
				}
				cp := Block{Dims: append([]pred.Set(nil), b.Dims...)}
				groups[key] = len(out)
				out = append(out, cp)
			}
			blocks = out
		}
	}
	return blocks
}

// blockKeyExcept serializes every dimension's interval set except dim d.
func blockKeyExcept(b Block, d int) string {
	buf := make([]byte, 0, 64)
	for i, s := range b.Dims {
		if i == d {
			continue
		}
		for _, iv := range s.Intervals() {
			buf = appendInt64(buf, iv.Lo)
			buf = appendInt64(buf, iv.Hi)
		}
		buf = append(buf, 0xFF)
	}
	return string(buf)
}

func appendInt64(buf []byte, v int64) []byte {
	u := uint64(v)
	return append(buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// subtractConjunct splits block b against conjunct t: it returns b∩t (ok
// reports whether it is non-empty) and the fragments of b∖t. The
// subtraction peels one constrained dimension at a time, so it emits at
// most one fragment per dimension t constrains — linear, not exponential,
// fragmentation.
func subtractConjunct(b Block, t pred.Conjunct) (inter Block, ok bool, frags []Block) {
	cur := b
	for dim := range b.Dims {
		restr, constrained := t.Restriction(dim)
		if !constrained {
			continue
		}
		inside := cur.Dims[dim].Intersect(restr)
		if inside.Empty() {
			// Nothing of cur lies inside t; all of cur stays outside.
			return Block{}, false, append(frags, cur)
		}
		outside := cur.Dims[dim].Subtract(restr)
		if !outside.Empty() {
			frag := Block{Dims: append([]pred.Set(nil), cur.Dims...)}
			frag.Dims[dim] = outside
			frags = append(frags, frag)
		}
		// Continue narrowing along the inside part.
		narrowed := Block{Dims: append([]pred.Set(nil), cur.Dims...)}
		narrowed.Dims[dim] = inside
		cur = narrowed
	}
	return cur, true, frags
}
