package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dsl-repro/hydra/internal/pred"
)

func TestCoalesceMergesAdjacentFragments(t *testing.T) {
	// Two blocks identical on dim 0, adjacent on dim 1 → one block.
	b1 := Block{Dims: []pred.Set{pred.Range(0, 9), pred.Range(0, 4)}}
	b2 := Block{Dims: []pred.Set{pred.Range(0, 9), pred.Range(5, 9)}}
	got := coalesce([]Block{b1, b2})
	if len(got) != 1 {
		t.Fatalf("coalesced to %d blocks, want 1", len(got))
	}
	if !got[0].Dims[1].Equal(pred.Range(0, 9)) {
		t.Fatalf("merged dim wrong: %v", got[0].Dims[1])
	}
}

func TestCoalescePreservesPointSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random disjoint blocks from a grid of a random box split.
		var blocks []Block
		for i := 0; i < 6; i++ {
			lo0 := int64(rng.Intn(50)) * 2
			lo1 := int64(rng.Intn(50)) * 2
			blocks = append(blocks, Block{Dims: []pred.Set{
				pred.Range(lo0*100, lo0*100+99),
				pred.Range(lo1*100, lo1*100+99),
			}})
		}
		merged := coalesce(blocks)
		contains := func(bs []Block, pt []int64) bool {
			for _, b := range bs {
				if b.Dims[0].Contains(pt[0]) && b.Dims[1].Contains(pt[1]) {
					return true
				}
			}
			return false
		}
		for k := 0; k < 200; k++ {
			pt := []int64{int64(rng.Intn(12000)), int64(rng.Intn(12000))}
			if contains(blocks, pt) != contains(merged, pt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractConjunct(t *testing.T) {
	b := Block{Dims: []pred.Set{pred.Range(0, 99), pred.Range(0, 99)}}
	tconj := pred.NewConjunct().With(0, pred.Range(10, 19)).With(1, pred.Range(20, 29))
	inter, ok, frags := subtractConjunct(b, tconj)
	if !ok {
		t.Fatal("intersection should exist")
	}
	if !inter.Dims[0].Equal(pred.Range(10, 19)) || !inter.Dims[1].Equal(pred.Range(20, 29)) {
		t.Fatalf("intersection wrong: %v", inter)
	}
	// Fragments plus intersection must tile the block exactly.
	var total int64 = inter.Dims[0].Count() * inter.Dims[1].Count()
	for _, fr := range frags {
		total += fr.Dims[0].Count() * fr.Dims[1].Count()
	}
	if total != 100*100 {
		t.Fatalf("pieces cover %d points, want 10000", total)
	}
	// Fragments must be disjoint from the intersection.
	for _, fr := range frags {
		if !fr.Dims[0].Intersect(inter.Dims[0]).Empty() &&
			!fr.Dims[1].Intersect(inter.Dims[1]).Empty() {
			t.Fatalf("fragment overlaps intersection: %v", fr)
		}
	}
}

func TestSubtractConjunctMiss(t *testing.T) {
	b := Block{Dims: []pred.Set{pred.Range(0, 9)}}
	tconj := pred.NewConjunct().With(0, pred.Range(50, 60))
	_, ok, frags := subtractConjunct(b, tconj)
	if ok {
		t.Fatal("no intersection expected")
	}
	if len(frags) != 1 || !frags[0].Dims[0].Equal(pred.Range(0, 9)) {
		t.Fatalf("block should survive whole: %v", frags)
	}
}

// Property: within the incremental result, regions are pairwise disjoint
// and cover the space (same guarantees as Optimal, independently checked).
func TestQuickIncrementalPartitionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDims := 1 + rng.Intn(3)
		space := make([]pred.Set, nDims)
		for i := range space {
			space[i] = pred.Range(0, 100)
		}
		var cons []pred.DNF
		for i := 0; i < 1+rng.Intn(5); i++ {
			cons = append(cons, randDNF(rng, nDims))
		}
		regions, err := OptimalIncremental(space, cons, 0)
		if err != nil {
			return false
		}
		for k := 0; k < 120; k++ {
			pt := make([]int64, nDims)
			for i := range pt {
				pt[i] = int64(rng.Intn(101))
			}
			hits := 0
			for _, r := range regions {
				if r.Contains(pt) {
					hits++
				}
			}
			if hits != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
