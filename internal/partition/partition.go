// Package partition implements Hydra's central contribution: the
// region-partitioning algorithm (§4 of the paper, Algorithms 1 and 2) that
// divides a sub-view's data universe into the minimum number of regions
// needed to express a set of DNF cardinality constraints — one LP variable
// per region — plus the grid-partitioning strategy of DataSynth used as the
// comparative baseline throughout the evaluation.
//
// A block is a product of per-dimension interval sets. Algorithm 2 only
// ever splits a block along the dimension currently being processed, so
// this representation is closed under refinement: splitting block b by the
// restriction Cⁱ yields b⁺ (dimension-i component intersected with Cⁱ) and
// b⁻ (component minus Cⁱ) — note b⁻ may be a non-convex union, which is
// precisely why region partitioning stays exponentially smaller than the
// grid (the complement stays one block instead of shattering into cells).
package partition

import (
	"fmt"
	"math/big"
	"sort"

	"github.com/dsl-repro/hydra/internal/pred"
)

// Block is a product of per-dimension interval sets; dimension i of the
// block is Dims[i]. Every block produced by this package is non-empty.
type Block struct {
	Dims []pred.Set
}

// Rep returns the block's representative point: the smallest value in each
// dimension ("assign the entire cardinality to the left boundaries", §5.2).
func (b Block) Rep() []int64 {
	out := make([]int64, len(b.Dims))
	for i, s := range b.Dims {
		out[i] = s.Min()
	}
	return out
}

// Empty reports whether any dimension component is empty.
func (b Block) Empty() bool {
	for _, s := range b.Dims {
		if s.Empty() {
			return true
		}
	}
	return false
}

// Points returns the number of points in the block, saturating at
// math.MaxInt64.
func (b Block) Points() *big.Int {
	total := big.NewInt(1)
	for _, s := range b.Dims {
		total.Mul(total, big.NewInt(s.Count()))
	}
	return total
}

func (b Block) String() string {
	return fmt.Sprintf("%v", b.Dims)
}

// Label identifies which of the input constraints a region satisfies; it
// is a bitset over constraint indices.
type Label []uint64

func newLabel(n int) Label { return make(Label, (n+63)/64) }

func (l Label) set(i int)      { l[i/64] |= 1 << (uint(i) % 64) }
func (l Label) Has(i int) bool { return l[i/64]&(1<<(uint(i)%64)) != 0 }

func (l Label) key() string {
	buf := make([]byte, 0, len(l)*8)
	for _, w := range l {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}

// Region is a maximal set of blocks whose points satisfy exactly the same
// constraints; one LP variable is created per region.
type Region struct {
	Blocks []Block
	Label  Label
}

// Rep returns the lexicographically smallest representative point across
// the region's blocks, the deterministic spot where the summary generator
// places the region's tuple mass.
func (r Region) Rep() []int64 {
	best := r.Blocks[0].Rep()
	for _, b := range r.Blocks[1:] {
		p := b.Rep()
		for i := range p {
			if p[i] < best[i] {
				best = p
				break
			} else if p[i] > best[i] {
				break
			}
		}
	}
	return best
}

// Contains reports whether the point lies inside the region.
func (r Region) Contains(pt []int64) bool {
	for _, b := range r.Blocks {
		in := true
		for i, s := range b.Dims {
			if !s.Contains(pt[i]) {
				in = false
				break
			}
		}
		if in {
			return true
		}
	}
	return false
}

// ErrTooManyBlocks reports that refinement exceeded the block budget: the
// constraint set genuinely requires a partition too fine to enumerate
// (e.g. adversarial inputs whose optimal partition approaches grid size).
// Failing early protects callers from unbounded memory growth.
type ErrTooManyBlocks struct {
	Blocks int
}

func (e *ErrTooManyBlocks) Error() string {
	return fmt.Sprintf("partition: refinement exceeded %d blocks", e.Blocks)
}

// DefaultMaxBlocks bounds RefineCapped/OptimalCapped. Real workloads stay
// in the thousands (the paper's worst view is ~3700 regions); the budget
// is three orders of magnitude above that.
const DefaultMaxBlocks = 4_000_000

// Refine is Algorithm 2 (Valid-Partition): it refines the data universe
// into a partition valid with respect to every sub-constraint, processing
// one dimension at a time.
//
// space gives the per-dimension domains; conjuncts are the sub-constraints
// C' extracted from the DNF constraints.
func Refine(space []pred.Set, conjuncts []pred.Conjunct) []Block {
	blocks, err := RefineCapped(space, conjuncts, 0)
	if err != nil {
		// Unlimited refinement cannot fail.
		panic(err)
	}
	return blocks
}

// RefineCapped is Refine with a block budget; maxBlocks ≤ 0 means
// unlimited.
func RefineCapped(space []pred.Set, conjuncts []pred.Conjunct, maxBlocks int) ([]Block, error) {
	parts := []Block{{Dims: append([]pred.Set(nil), space...)}}
	if parts[0].Empty() {
		return nil, nil
	}
	n := len(space)
	for dim := 0; dim < n; dim++ {
		for _, c := range conjuncts {
			restr, ok := c.Restriction(dim)
			if !ok {
				continue // Cⁱ = true: splits nothing
			}
			next := parts[:0:0]
			for _, b := range parts {
				plus := b.Dims[dim].Intersect(restr)
				if plus.Empty() {
					next = append(next, b) // entirely outside Cⁱ
					continue
				}
				minus := b.Dims[dim].Subtract(restr)
				if minus.Empty() {
					next = append(next, b) // entirely inside Cⁱ
					continue
				}
				bp := Block{Dims: append([]pred.Set(nil), b.Dims...)}
				bp.Dims[dim] = plus
				bm := Block{Dims: append([]pred.Set(nil), b.Dims...)}
				bm.Dims[dim] = minus
				next = append(next, bp, bm)
			}
			if maxBlocks > 0 && len(next) > maxBlocks {
				return nil, &ErrTooManyBlocks{Blocks: maxBlocks}
			}
			parts = next
		}
	}
	return parts, nil
}

// Optimal is Algorithm 1 (Optimal Partition): it refines the universe with
// respect to the sub-constraints of the DNF constraints, labels each block
// with the set of constraints it satisfies, and coarsens blocks with equal
// labels into regions. The result is the unique optimal (minimum-region)
// valid partition of Lemma 4.4.
func Optimal(space []pred.Set, cons []pred.DNF) []Region {
	regions, err := OptimalCapped(space, cons, 0)
	if err != nil {
		panic(err) // unlimited refinement cannot fail
	}
	return regions
}

// OptimalCapped is Optimal with a refinement budget (0 = unlimited).
func OptimalCapped(space []pred.Set, cons []pred.DNF, maxBlocks int) ([]Region, error) {
	var conjuncts []pred.Conjunct
	for _, c := range cons {
		conjuncts = append(conjuncts, c.Terms...)
	}
	blocks, err := RefineCapped(space, conjuncts, maxBlocks)
	if err != nil {
		return nil, err
	}

	byLabel := make(map[string]*Region)
	var order []string
	for _, b := range blocks {
		rep := b.Rep()
		lbl := newLabel(len(cons))
		for j, c := range cons {
			if c.Eval(rep) {
				lbl.set(j)
			}
		}
		k := lbl.key()
		if r, ok := byLabel[k]; ok {
			r.Blocks = append(r.Blocks, b)
		} else {
			byLabel[k] = &Region{Blocks: []Block{b}, Label: lbl}
			order = append(order, k)
		}
	}
	// Deterministic output order: sort merged regions by their
	// representative point (stable across runs and platforms).
	out := make([]Region, 0, len(order))
	for _, k := range order {
		out = append(out, *byLabel[k])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Rep(), out[j].Rep()
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return out, nil
}

// Atoms computes the atomic intervals ("split points" union, §4.1
// consistency-constraints paragraph) that the boundaries of all conjunct
// restrictions induce on one dimension of the given domain. Every
// constraint boundary on the dimension becomes a cut; the returned
// intervals tile the domain exactly.
func Atoms(domain pred.Set, conjuncts []pred.Conjunct, dim int) []pred.Interval {
	var cuts []int64
	for _, c := range conjuncts {
		if restr, ok := c.Restriction(dim); ok {
			cuts = restr.Boundaries(cuts)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	lo, hi := domain.Min(), domain.Max()
	var out []pred.Interval
	cur := lo
	for _, c := range cuts {
		if c <= cur || c > hi {
			continue
		}
		out = append(out, pred.Interval{Lo: cur, Hi: c - 1})
		cur = c
	}
	out = append(out, pred.Interval{Lo: cur, Hi: hi})
	return out
}

// MarkerDNFs converts per-dimension atoms into unary marker constraints.
// Injected alongside the real CCs into Optimal, they guarantee every
// resulting region projects into exactly one atom on each marked dimension
// — the invariant the summary generator's align step (§5.1.2) and the
// cross-sub-view consistency rows (§4.1) both rely on.
func MarkerDNFs(dim int, atoms []pred.Interval) []pred.DNF {
	out := make([]pred.DNF, len(atoms))
	for i, a := range atoms {
		out[i] = pred.DNF{Terms: []pred.Conjunct{
			pred.NewConjunct().With(dim, pred.NewSet(a)),
		}}
	}
	return out
}
