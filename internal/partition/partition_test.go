package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dsl-repro/hydra/internal/pred"
)

// personSpace and personCCs encode the §3.2 "Person" example:
//
//	|age < 40 ∧ salary < 40K|          = 1000
//	|20 ≤ age < 60 ∧ 20K ≤ sal < 60K|  = 2000
//	|Person|                            = 8000
func personSpace() []pred.Set {
	return []pred.Set{pred.Range(0, 99), pred.Range(0, 99_999)}
}

func personCCs() []pred.DNF {
	c1 := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.AtMost(39)).With(1, pred.AtMost(39_999)),
	}}
	c2 := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(20_000, 59_999)),
	}}
	total := pred.True()
	return []pred.DNF{c1, c2, total}
}

func TestPersonExampleRegionCount(t *testing.T) {
	regions := Optimal(personSpace(), personCCs())
	// The paper's Figure 3b: exactly 4 regions (y1..y4) versus 16 grid
	// cells (Figure 3a).
	if len(regions) != 4 {
		t.Fatalf("got %d regions, want 4 (paper Fig. 3b)", len(regions))
	}
	grid := NewGrid(personSpace(), personCCs())
	if grid.Cells.Int64() != 16 {
		t.Fatalf("grid cells = %v, want 16 (paper Fig. 3a)", grid.Cells)
	}
}

func TestPersonExampleLabels(t *testing.T) {
	regions := Optimal(personSpace(), personCCs())
	// Count regions per constraint membership; from Figure 4b:
	// C1 covers 2 regions (y1,y2), C2 covers 2 (y2,y3), total covers all 4.
	var c1, c2, tot int
	for _, r := range regions {
		if r.Label.Has(0) {
			c1++
		}
		if r.Label.Has(1) {
			c2++
		}
		if r.Label.Has(2) {
			tot++
		}
	}
	if c1 != 2 || c2 != 2 || tot != 4 {
		t.Fatalf("label coverage c1=%d c2=%d tot=%d, want 2 2 4", c1, c2, tot)
	}
}

func TestRegionsArePartition(t *testing.T) {
	regions := Optimal(personSpace(), personCCs())
	// Sample points; each must be in exactly one region.
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 1000; k++ {
		pt := []int64{int64(rng.Intn(100)), int64(rng.Intn(100_000))}
		found := 0
		for _, r := range regions {
			if r.Contains(pt) {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("point %v in %d regions, want 1", pt, found)
		}
	}
}

func TestDNFWithDisjunction(t *testing.T) {
	// ((A1 ≤ 20) ∧ (A2 > 30)) ∨ (A1 > 50), the §4.2 example.
	space := []pred.Set{pred.Range(0, 100), pred.Range(0, 100)}
	c := pred.DNF{Terms: []pred.Conjunct{
		pred.NewConjunct().With(0, pred.AtMost(20)).With(1, pred.AtLeast(31)),
		pred.NewConjunct().With(0, pred.AtLeast(51)),
	}}
	regions := Optimal(space, []pred.DNF{c, pred.True()})
	// Validity: every region must be uniform w.r.t. the DNF.
	for _, r := range regions {
		want := c.Eval(r.Rep())
		for _, b := range r.Blocks {
			for _, pt := range blockSamplePoints(b) {
				if c.Eval(pt) != want {
					t.Fatalf("region not uniform: rep=%v pt=%v", r.Rep(), pt)
				}
			}
		}
	}
	// Exactly 2 labels exist: satisfies / does not satisfy (plus total
	// always true) → 2 regions.
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
}

// blockSamplePoints returns corner-ish points of a block: min/max of each
// interval in each dimension, combined greedily (full cross product for the
// 2-D cases used in tests).
func blockSamplePoints(b Block) [][]int64 {
	perDim := make([][]int64, len(b.Dims))
	for i, s := range b.Dims {
		for _, iv := range s.Intervals() {
			perDim[i] = append(perDim[i], iv.Lo, iv.Hi)
		}
	}
	pts := [][]int64{nil}
	for _, vals := range perDim {
		var next [][]int64
		for _, p := range pts {
			for _, v := range vals {
				np := append(append([]int64(nil), p...), v)
				next = append(next, np)
			}
		}
		pts = next
	}
	return pts
}

func randDNF(rng *rand.Rand, nDims int) pred.DNF {
	nTerms := 1 + rng.Intn(2)
	terms := make([]pred.Conjunct, 0, nTerms)
	for i := 0; i < nTerms; i++ {
		c := pred.NewConjunct()
		for d := 0; d < nDims; d++ {
			if rng.Intn(2) == 0 {
				continue
			}
			lo := int64(rng.Intn(90))
			hi := lo + int64(rng.Intn(30))
			c = c.With(d, pred.Range(lo, hi))
		}
		if len(c.Cols) > 0 {
			terms = append(terms, c)
		}
	}
	if len(terms) == 0 {
		terms = append(terms, pred.NewConjunct().With(0, pred.AtMost(int64(rng.Intn(100)))))
	}
	return pred.DNF{Terms: terms}
}

// Property (validity, Lemma 4.7 + 4.4): every region is uniform with
// respect to every constraint, judged at random sample points.
func TestQuickRegionValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDims := 1 + rng.Intn(3)
		space := make([]pred.Set, nDims)
		for i := range space {
			space[i] = pred.Range(0, 120)
		}
		nCons := 1 + rng.Intn(4)
		cons := make([]pred.DNF, 0, nCons+1)
		for i := 0; i < nCons; i++ {
			cons = append(cons, randDNF(rng, nDims))
		}
		cons = append(cons, pred.True())
		regions := Optimal(space, cons)
		// Sample random points; find region; check label agreement.
		for k := 0; k < 200; k++ {
			pt := make([]int64, nDims)
			for i := range pt {
				pt[i] = int64(rng.Intn(121))
			}
			found := -1
			for ri, r := range regions {
				if r.Contains(pt) {
					if found != -1 {
						return false // overlap
					}
					found = ri
				}
			}
			if found == -1 {
				return false // gap
			}
			r := regions[found]
			for j, c := range cons {
				if c.Eval(pt) != r.Label.Has(j) {
					return false // non-uniform region
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (optimality, Lemma 4.3): all regions have distinct labels —
// merging went as far as possible.
func TestQuickRegionOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDims := 1 + rng.Intn(3)
		space := make([]pred.Set, nDims)
		for i := range space {
			space[i] = pred.Range(0, 120)
		}
		var cons []pred.DNF
		for i := 0; i < 1+rng.Intn(4); i++ {
			cons = append(cons, randDNF(rng, nDims))
		}
		regions := Optimal(space, cons)
		seen := map[string]bool{}
		for _, r := range regions {
			k := r.Label.key()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: region partitioning never produces more variables than grid
// partitioning (the paper's core complexity claim).
func TestQuickRegionNeverWorseThanGrid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDims := 1 + rng.Intn(3)
		space := make([]pred.Set, nDims)
		for i := range space {
			space[i] = pred.Range(0, 120)
		}
		var cons []pred.DNF
		for i := 0; i < 1+rng.Intn(4); i++ {
			cons = append(cons, randDNF(rng, nDims))
		}
		cons = append(cons, pred.True())
		regions := Optimal(space, cons)
		grid := NewGrid(space, cons)
		return big_le(int64(len(regions)), grid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func big_le(n int64, g *Grid) bool {
	if !g.Cells.IsInt64() {
		return true
	}
	return n <= g.Cells.Int64()
}

// Property (algorithm equivalence): OptimalIncremental computes the same
// partition as the literal-paper Optimal — same region count, and every
// sample point lands in regions with identical labels.
func TestQuickIncrementalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDims := 1 + rng.Intn(3)
		space := make([]pred.Set, nDims)
		for i := range space {
			space[i] = pred.Range(0, 120)
		}
		var cons []pred.DNF
		for i := 0; i < 1+rng.Intn(5); i++ {
			cons = append(cons, randDNF(rng, nDims))
		}
		cons = append(cons, pred.True())
		ref := Optimal(space, cons)
		inc, err := OptimalIncremental(space, cons, 0)
		if err != nil {
			return false
		}
		if len(ref) != len(inc) {
			return false
		}
		for k := 0; k < 150; k++ {
			pt := make([]int64, nDims)
			for i := range pt {
				pt[i] = int64(rng.Intn(121))
			}
			var refLbl, incLbl Label
			hits := 0
			for _, r := range ref {
				if r.Contains(pt) {
					refLbl = r.Label
					hits++
				}
			}
			for _, r := range inc {
				if r.Contains(pt) {
					incLbl = r.Label
					hits++
				}
			}
			if hits != 2 {
				return false
			}
			for j := range cons {
				if refLbl.Has(j) != incLbl.Has(j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalPersonExample(t *testing.T) {
	regions, err := OptimalIncremental(personSpace(), personCCs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 4 {
		t.Fatalf("got %d regions, want 4", len(regions))
	}
}

func TestIncrementalCap(t *testing.T) {
	space := []pred.Set{pred.Range(0, 1000), pred.Range(0, 1000)}
	var cons []pred.DNF
	for i := 0; i < 30; i++ {
		cons = append(cons, pred.DNF{Terms: []pred.Conjunct{
			pred.NewConjunct().With(0, pred.Range(int64(i*10), int64(i*10+500))).
				With(1, pred.Range(int64(i*7), int64(i*7+400))),
		}})
	}
	if _, err := OptimalIncremental(space, cons, 8); err == nil {
		t.Fatal("tiny cap should trip")
	}
	if _, err := OptimalIncremental(space, cons, 0); err != nil {
		t.Fatalf("unlimited must succeed: %v", err)
	}
}

func TestAtoms(t *testing.T) {
	domain := pred.Range(0, 99)
	conjs := []pred.Conjunct{
		pred.NewConjunct().With(0, pred.Range(20, 59)),
		pred.NewConjunct().With(0, pred.AtMost(39)),
	}
	atoms := Atoms(domain, conjs, 0)
	// Cuts at 20, 40, 60 → [0,19][20,39][40,59][60,99].
	want := []pred.Interval{{Lo: 0, Hi: 19}, {Lo: 20, Hi: 39}, {Lo: 40, Hi: 59}, {Lo: 60, Hi: 99}}
	if len(atoms) != len(want) {
		t.Fatalf("atoms = %v, want %v", atoms, want)
	}
	for i := range want {
		if atoms[i] != want[i] {
			t.Fatalf("atom %d = %v, want %v", i, atoms[i], want[i])
		}
	}
}

func TestAtomsNoConstraints(t *testing.T) {
	atoms := Atoms(pred.Range(5, 10), nil, 0)
	if len(atoms) != 1 || atoms[0] != (pred.Interval{Lo: 5, Hi: 10}) {
		t.Fatalf("atoms = %v", atoms)
	}
}

func TestMarkerDNFsKeepRegionsWithinAtoms(t *testing.T) {
	space := []pred.Set{pred.Range(0, 99)}
	ccs := []pred.DNF{
		{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(10, 49))}},
		pred.True(),
	}
	var conjs []pred.Conjunct
	for _, c := range ccs {
		conjs = append(conjs, c.Terms...)
	}
	atoms := Atoms(space[0], conjs, 0)
	all := append(append([]pred.DNF(nil), ccs...), MarkerDNFs(0, atoms)...)
	regions := Optimal(space, all)
	// Every region must project into exactly one atom.
	for _, r := range regions {
		rep := r.Rep()
		atomOf := func(v int64) int {
			for i, a := range atoms {
				if a.Contains(v) {
					return i
				}
			}
			return -1
		}
		want := atomOf(rep[0])
		for _, b := range r.Blocks {
			for _, iv := range b.Dims[0].Intervals() {
				if atomOf(iv.Lo) != want || atomOf(iv.Hi) != want {
					t.Fatalf("region spans multiple atoms: %v", r.Blocks)
				}
			}
		}
	}
}

func TestGridEnumerate(t *testing.T) {
	g := NewGrid(personSpace(), personCCs())
	if !g.Enumerable(100) {
		t.Fatal("16-cell grid must be enumerable")
	}
	cells := g.EnumerateCells(100)
	if len(cells) != 16 {
		t.Fatalf("enumerated %d cells, want 16", len(cells))
	}
	// Cells tile the space: total points = 100 * 100000.
	var total int64
	for _, c := range cells {
		total += c.Dims[0].Count() * c.Dims[1].Count()
	}
	if total != 100*100_000 {
		t.Fatalf("cells cover %d points, want %d", total, 100*100_000)
	}
}

func TestGridCellRegionsLabels(t *testing.T) {
	cons := personCCs()
	g := NewGrid(personSpace(), cons)
	regions := g.CellRegions(cons, 100)
	// Fig. 4a: C1 covers 4 cells, C2 covers 4 cells, total covers 16.
	var c1, c2, tot int
	for _, r := range regions {
		if r.Label.Has(0) {
			c1++
		}
		if r.Label.Has(1) {
			c2++
		}
		if r.Label.Has(2) {
			tot++
		}
	}
	if c1 != 4 || c2 != 4 || tot != 16 {
		t.Fatalf("grid label coverage c1=%d c2=%d tot=%d, want 4 4 16", c1, c2, tot)
	}
}

func TestGridNotEnumerable(t *testing.T) {
	// 6 dims × ~30 atoms each ≈ 7×10⁸ cells — refuse under a small cap.
	space := make([]pred.Set, 6)
	var cons []pred.DNF
	for i := range space {
		space[i] = pred.Range(0, 1_000_000)
		for k := 0; k < 15; k++ {
			lo := int64(k * 50_000)
			cons = append(cons, pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(i, pred.Range(lo, lo+25_000)),
			}})
		}
	}
	g := NewGrid(space, cons)
	if g.Enumerable(1_000_000) {
		t.Fatalf("grid with %v cells should not be enumerable", g.Cells)
	}
}

func TestEmptySpaceRefine(t *testing.T) {
	blocks := Refine([]pred.Set{{}}, nil)
	if blocks != nil {
		t.Fatal("empty space should produce no blocks")
	}
}

func TestRegionRepDeterministic(t *testing.T) {
	regions := Optimal(personSpace(), personCCs())
	again := Optimal(personSpace(), personCCs())
	if len(regions) != len(again) {
		t.Fatal("non-deterministic region count")
	}
	for i := range regions {
		a, b := regions[i].Rep(), again[i].Rep()
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("region %d rep differs: %v vs %v", i, a, b)
			}
		}
	}
}
