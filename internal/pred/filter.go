package pred

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Filter is a conjunction of per-column restrictions keyed by column
// name: a row matches when every named column's value lies in that
// column's Set. It is the name-addressed twin of Conjunct — specs carry
// a Filter because callers know column names, and the read path binds
// it to positional attributes with Bind once a table layout is known.
// The zero value matches every row. Filters are immutable; With and And
// return new values.
type Filter struct {
	cols map[string]Set
}

// Empty reports whether the filter constrains nothing (matches all rows).
func (f Filter) Empty() bool { return len(f.cols) == 0 }

// Unsatisfiable reports whether some column's restriction is the empty
// set, so no row can ever match.
func (f Filter) Unsatisfiable() bool {
	for _, s := range f.cols {
		if s.Empty() {
			return true
		}
	}
	return false
}

// Cols returns the constrained column names, sorted.
func (f Filter) Cols() []string {
	names := make([]string, 0, len(f.cols))
	for name := range f.cols {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Restriction returns the named column's value set and whether the
// column is constrained at all.
func (f Filter) Restriction(name string) (Set, bool) {
	s, ok := f.cols[name]
	return s, ok
}

// With returns the filter strengthened by the constraint column ∈ s,
// intersected with any existing restriction on the same column.
func (f Filter) With(name string, s Set) Filter {
	out := make(map[string]Set, len(f.cols)+1)
	for k, v := range f.cols {
		out[k] = v
	}
	if cur, ok := out[name]; ok {
		out[name] = cur.Intersect(s)
	} else {
		out[name] = s
	}
	return Filter{cols: out}
}

// And returns the conjunction of f with every g: each column's
// restriction is the intersection of all restrictions named for it.
//
//hydra:nondeterministic map-range feeds a commutative intersection; iteration order cannot reach the result
func (f Filter) And(gs ...Filter) Filter {
	out := f
	for _, g := range gs {
		for name, s := range g.cols {
			out = out.With(name, s)
		}
	}
	return out
}

// Bind resolves the filter's column names against a table layout,
// producing a positional Conjunct whose attribute indices point into
// layout. A constrained name missing from the layout is an error.
func (f Filter) Bind(layout []string) (Conjunct, error) {
	c := NewConjunct()
	for _, name := range f.Cols() {
		idx := -1
		for i, l := range layout {
			if l == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return Conjunct{}, fmt.Errorf("filter: unknown column %q (have %s)", name, strings.Join(layout, ", "))
		}
		c = c.With(idx, f.cols[name])
	}
	return c, nil
}

// Encode renders the filter in its canonical wire form, the one the
// serve data plane accepts as the filter= query parameter: columns
// sorted by name and joined with ';', each as name=interval|interval…,
// an interval as lo:hi with an omitted side meaning the domain bound
// and a single point abbreviated to its value. Example:
// "A=20:59;B=5;C=:10|100:". DecodeFilter inverts it exactly.
func (f Filter) Encode() string {
	var b strings.Builder
	for i, name := range f.Cols() {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte('=')
		for j, iv := range f.cols[name].Intervals() {
			if j > 0 {
				b.WriteByte('|')
			}
			encodeInterval(&b, iv)
		}
	}
	return b.String()
}

// String returns the canonical encoding; a Filter prints as its wire form.
func (f Filter) String() string { return f.Encode() }

func encodeInterval(b *strings.Builder, iv Interval) {
	if iv.Lo == iv.Hi {
		b.WriteString(strconv.FormatInt(iv.Lo, 10))
		return
	}
	if iv.Lo != DomainMin {
		b.WriteString(strconv.FormatInt(iv.Lo, 10))
	}
	b.WriteByte(':')
	if iv.Hi != DomainMax {
		b.WriteString(strconv.FormatInt(iv.Hi, 10))
	}
}

// DecodeFilter parses the canonical wire encoding produced by Encode.
// The empty string decodes to the match-all filter. A column part with
// no intervals ("A=") decodes to an empty restriction — an explicitly
// unsatisfiable filter — so every Filter round-trips.
func DecodeFilter(enc string) (Filter, error) {
	var f Filter
	if enc == "" {
		return f, nil
	}
	for _, part := range strings.Split(enc, ";") {
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return Filter{}, fmt.Errorf("filter: malformed column constraint %q", part)
		}
		if strings.ContainsAny(name, ":|; \t") {
			return Filter{}, fmt.Errorf("filter: malformed column name %q", name)
		}
		if rest == "" {
			f = f.With(name, Set{})
			continue
		}
		var ivs []Interval
		for _, ivEnc := range strings.Split(rest, "|") {
			iv, err := decodeInterval(ivEnc)
			if err != nil {
				return Filter{}, fmt.Errorf("filter: column %s: %v", name, err)
			}
			ivs = append(ivs, iv)
		}
		f = f.With(name, NewSet(ivs...))
	}
	return f, nil
}

func decodeInterval(enc string) (Interval, error) {
	loS, hiS, ranged := strings.Cut(enc, ":")
	if !ranged {
		v, err := strconv.ParseInt(enc, 10, 64)
		if err != nil {
			return Interval{}, fmt.Errorf("bad interval %q", enc)
		}
		return Interval{v, v}, nil
	}
	iv := Full()
	var err error
	if loS != "" {
		if iv.Lo, err = strconv.ParseInt(loS, 10, 64); err != nil {
			return Interval{}, fmt.Errorf("bad interval %q", enc)
		}
	}
	if hiS != "" {
		if iv.Hi, err = strconv.ParseInt(hiS, 10, 64); err != nil {
			return Interval{}, fmt.Errorf("bad interval %q", enc)
		}
	}
	if iv.Empty() {
		return Interval{}, fmt.Errorf("empty interval %q", enc)
	}
	return iv, nil
}

// Next returns the smallest set element >= v, if any. It is the row
// skip primitive: a scan positioned at primary key v jumps directly to
// the next key that can match a pk restriction.
func (s Set) Next(v int64) (int64, bool) {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= v })
	if i == len(s.ivs) {
		return 0, false
	}
	if s.ivs[i].Lo > v {
		return s.ivs[i].Lo, true
	}
	return v, true
}

// ColRef names a column while a filter constraint on it is being built:
// Col("A").In(20, 59) reads as A ∈ [20,59].
type ColRef struct{ name string }

// Col starts a filter constraint on the named column.
func Col(name string) ColRef { return ColRef{name: name} }

// In constrains the column to the closed interval [lo, hi].
func (c ColRef) In(lo, hi int64) Filter { return Filter{}.With(c.name, Range(lo, hi)) }

// Eq constrains the column to exactly v.
func (c ColRef) Eq(v int64) Filter { return Filter{}.With(c.name, Point(v)) }

// OneOf constrains the column to the given values.
func (c ColRef) OneOf(vs ...int64) Filter {
	ivs := make([]Interval, len(vs))
	for i, v := range vs {
		ivs[i] = Interval{v, v}
	}
	return Filter{}.With(c.name, NewSet(ivs...))
}

// AtLeast constrains the column to values >= v.
func (c ColRef) AtLeast(v int64) Filter { return Filter{}.With(c.name, AtLeast(v)) }

// AtMost constrains the column to values <= v.
func (c ColRef) AtMost(v int64) Filter { return Filter{}.With(c.name, AtMost(v)) }

// ParseWhere parses a minimal SQL-style conjunction into a Filter:
//
//	A = 5 AND B BETWEEN 10 AND 20 AND C IN (1, 2, 3) AND D >= 7 AND E <> 0
//
// Supported per-column predicates are the comparison operators
// (=, !=, <>, <, <=, >, >=), BETWEEN lo AND hi, and IN (v, v, …), over
// integer literals, joined by AND. Keywords are case-insensitive.
func ParseWhere(s string) (Filter, error) {
	toks, err := lexWhere(s)
	if err != nil {
		return Filter{}, err
	}
	if len(toks) == 0 {
		return Filter{}, fmt.Errorf("where: empty condition")
	}
	p := whereParser{toks: toks}
	var f Filter
	for {
		name, set, err := p.predicate()
		if err != nil {
			return Filter{}, err
		}
		f = f.With(name, set)
		if p.done() {
			return f, nil
		}
		if err := p.keyword("AND"); err != nil {
			return Filter{}, err
		}
	}
}

type whereTok struct {
	kind byte // 'i' ident, 'n' number, 'o' operator, '(' , ')' , ','
	text string
	val  int64
}

func lexWhere(s string) ([]whereTok, error) {
	var toks []whereTok
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, whereTok{kind: c})
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			op := s[i : i+1]
			if i+1 < len(s) && (s[i+1] == '=' || (c == '<' && s[i+1] == '>')) {
				op = s[i : i+2]
			}
			if op == "!" {
				return nil, fmt.Errorf("where: bad operator at %q", s[i:])
			}
			toks = append(toks, whereTok{kind: 'o', text: op})
			i += len(op)
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			v, err := strconv.ParseInt(s[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("where: bad number %q", s[i:j])
			}
			toks = append(toks, whereTok{kind: 'n', text: s[i:j], val: v})
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i + 1
			for j < len(s) && (s[j] == '_' || (s[j] >= 'a' && s[j] <= 'z') || (s[j] >= 'A' && s[j] <= 'Z') || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			toks = append(toks, whereTok{kind: 'i', text: s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("where: unexpected character %q", string(c))
		}
	}
	return toks, nil
}

type whereParser struct {
	toks []whereTok
	pos  int
}

func (p *whereParser) done() bool { return p.pos >= len(p.toks) }

func (p *whereParser) next() (whereTok, error) {
	if p.done() {
		return whereTok{}, fmt.Errorf("where: unexpected end of condition")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *whereParser) keyword(kw string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != 'i' || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("where: expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *whereParser) number() (int64, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	if t.kind != 'n' {
		return 0, fmt.Errorf("where: expected a number, got %q", t.text)
	}
	return t.val, nil
}

// predicate parses one `col <op> value | col BETWEEN a AND b |
// col IN (…)` term and returns the column name with its value set.
func (p *whereParser) predicate() (string, Set, error) {
	t, err := p.next()
	if err != nil {
		return "", Set{}, err
	}
	if t.kind != 'i' {
		return "", Set{}, fmt.Errorf("where: expected a column name, got %q", t.text)
	}
	name := t.text
	op, err := p.next()
	if err != nil {
		return "", Set{}, err
	}
	switch {
	case op.kind == 'o':
		v, err := p.number()
		if err != nil {
			return "", Set{}, err
		}
		switch op.text {
		case "=":
			return name, Point(v), nil
		case "!=", "<>":
			return name, Point(v).Complement(), nil
		case "<":
			return name, AtMost(v - 1), nil
		case "<=":
			return name, AtMost(v), nil
		case ">":
			return name, AtLeast(v + 1), nil
		case ">=":
			return name, AtLeast(v), nil
		}
		return "", Set{}, fmt.Errorf("where: unsupported operator %q", op.text)
	case op.kind == 'i' && strings.EqualFold(op.text, "BETWEEN"):
		lo, err := p.number()
		if err != nil {
			return "", Set{}, err
		}
		if err := p.keyword("AND"); err != nil {
			return "", Set{}, err
		}
		hi, err := p.number()
		if err != nil {
			return "", Set{}, err
		}
		if lo > hi {
			return "", Set{}, fmt.Errorf("where: empty BETWEEN %d AND %d", lo, hi)
		}
		return name, Range(lo, hi), nil
	case op.kind == 'i' && strings.EqualFold(op.text, "IN"):
		t, err := p.next()
		if err != nil {
			return "", Set{}, err
		}
		if t.kind != '(' {
			return "", Set{}, fmt.Errorf("where: IN wants a parenthesized list, got %q", t.text)
		}
		var ivs []Interval
		for {
			v, err := p.number()
			if err != nil {
				return "", Set{}, err
			}
			ivs = append(ivs, Interval{v, v})
			t, err := p.next()
			if err != nil {
				return "", Set{}, err
			}
			if t.kind == ')' {
				return name, NewSet(ivs...), nil
			}
			if t.kind != ',' {
				return "", Set{}, fmt.Errorf("where: IN list wants ',' or ')', got %q", t.text)
			}
		}
	}
	return "", Set{}, fmt.Errorf("where: expected an operator after %q, got %q", name, op.text)
}
