package pred

import (
	"strings"
	"testing"
)

func TestFilterBuilderAndBind(t *testing.T) {
	f := Col("A").In(20, 59).And(Col("B").Eq(5), Col("t_fk").OneOf(1, 7, 9))
	if f.Empty() || f.Unsatisfiable() {
		t.Fatalf("filter = %v", f)
	}
	if got := f.Cols(); len(got) != 3 || got[0] != "A" || got[1] != "B" || got[2] != "t_fk" {
		t.Fatalf("cols = %v", got)
	}
	c, err := f.Bind([]string{"S_pk", "A", "B", "t_fk"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		point []int64
		want  bool
	}{
		{[]int64{1, 20, 5, 7}, true},
		{[]int64{1, 59, 5, 9}, true},
		{[]int64{1, 60, 5, 7}, false},
		{[]int64{1, 20, 6, 7}, false},
		{[]int64{1, 20, 5, 8}, false},
	} {
		if got := c.Eval(tc.point); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.point, got, tc.want)
		}
	}
	if _, err := f.Bind([]string{"S_pk", "A"}); err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("bind with missing columns: err = %v", err)
	}
}

func TestFilterAndIntersects(t *testing.T) {
	f := Col("A").In(0, 50).And(Col("A").In(40, 90))
	s, ok := f.Restriction("A")
	if !ok || !s.Equal(Range(40, 50)) {
		t.Fatalf("A restriction = %v", s)
	}
	if g := Col("A").Eq(1).And(Col("A").Eq(2)); !g.Unsatisfiable() {
		t.Fatalf("contradiction not unsatisfiable: %v", g)
	}
}

func TestFilterEncodeDecodeRoundTrip(t *testing.T) {
	for _, f := range []Filter{
		{},
		Col("A").Eq(7),
		Col("A").In(20, 59).And(Col("B").OneOf(1, 5, 9)),
		Col("lo").AtMost(10).And(Col("hi").AtLeast(100)),
		Col("neg").In(-50, -10),
		Col("dead").Eq(1).And(Col("dead").Eq(2)), // empty restriction
	} {
		enc := f.Encode()
		got, err := DecodeFilter(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if got.Encode() != enc {
			t.Fatalf("round trip %q -> %q", enc, got.Encode())
		}
	}
	// Spot-check the canonical form itself.
	f := Col("B").OneOf(5, 1).And(Col("A").In(20, 59), Col("C").AtMost(10))
	if enc := f.Encode(); enc != "A=20:59;B=1|5;C=:10" {
		t.Fatalf("encode = %q", enc)
	}
}

func TestDecodeFilterRejectsGarbage(t *testing.T) {
	for _, enc := range []string{
		"A",        // no '='
		"=1:2",     // empty name
		"A=x",      // not a number
		"A=5:3",    // inverted interval
		"A=1:2:3",  // too many bounds
		"A=1;;B=2", // empty part
		"A B=1",    // space in name
		"A=1|",     // trailing empty interval
	} {
		if _, err := DecodeFilter(enc); err == nil {
			t.Errorf("DecodeFilter(%q) accepted", enc)
		}
	}
}

func TestParseWhere(t *testing.T) {
	f, err := ParseWhere("A = 5 AND B between 10 AND 20 AND C IN (1, 3, 5) AND D >= 7 AND E <> 0 AND F < 4")
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]Set{
		"A": Point(5),
		"B": Range(10, 20),
		"C": NewSet(Interval{1, 1}, Interval{3, 3}, Interval{5, 5}),
		"D": AtLeast(7),
		"E": Point(0).Complement(),
		"F": AtMost(3),
	} {
		got, ok := f.Restriction(name)
		if !ok || !got.Equal(want) {
			t.Errorf("%s: restriction = %v, want %v", name, got, want)
		}
	}
	// Same column twice intersects.
	f, err = ParseWhere("A > 10 AND A <= 20")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := f.Restriction("A"); !s.Equal(Range(11, 20)) {
		t.Fatalf("A = %v", s)
	}
}

func TestParseWhereErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"A",
		"A = ",
		"A = B",
		"A == 5",
		"= 5",
		"A IN ()",
		"A IN (1 2)",
		"A BETWEEN 5",
		"A BETWEEN 9 AND 3",
		"A = 5 OR B = 6",
		"A = 5 AND",
		"A @ 5",
	} {
		if _, err := ParseWhere(q); err == nil {
			t.Errorf("ParseWhere(%q) accepted", q)
		}
	}
}

func TestSetNext(t *testing.T) {
	s := NewSet(Interval{5, 9}, Interval{20, 20}, Interval{30, 40})
	for _, tc := range []struct {
		v    int64
		want int64
		ok   bool
	}{
		{0, 5, true}, {5, 5, true}, {7, 7, true}, {9, 9, true},
		{10, 20, true}, {20, 20, true}, {21, 30, true}, {40, 40, true},
		{41, 0, false},
	} {
		got, ok := s.Next(tc.v)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Next(%d) = %d,%v want %d,%v", tc.v, got, ok, tc.want, tc.ok)
		}
	}
	if _, ok := (Set{}).Next(0); ok {
		t.Error("empty set has a next element")
	}
}
