package pred

import "testing"

// FuzzDecodeFilter asserts the wire codec's two contracts: DecodeFilter
// never panics on arbitrary input, and any input it accepts re-encodes
// to a canonical fixed point (decode ∘ encode is the identity on
// encodings it produces).
func FuzzDecodeFilter(f *testing.F) {
	f.Add("")
	f.Add("A=20:59;B=5;C=:10|100:")
	f.Add("A=")
	f.Add("x=-5:-1|7")
	f.Add("col_1=:;col_2=0")
	f.Fuzz(func(t *testing.T, enc string) {
		flt, err := DecodeFilter(enc)
		if err != nil {
			return
		}
		canon := flt.Encode()
		again, err := DecodeFilter(canon)
		if err != nil {
			t.Fatalf("canonical encoding %q of accepted input %q does not decode: %v", canon, enc, err)
		}
		if got := again.Encode(); got != canon {
			t.Fatalf("encoding not a fixed point: %q -> %q -> %q", enc, canon, got)
		}
	})
}

// FuzzParseWhere asserts the SQL-ish parser never panics and that every
// filter it produces round-trips through the canonical wire encoding.
func FuzzParseWhere(f *testing.F) {
	f.Add("A = 5")
	f.Add("A = 5 AND B BETWEEN 10 AND 20 AND C IN (1, 2, 3)")
	f.Add("d >= 7 AND e <> 0 AND f <= -3")
	f.Add("x != 0 AND x < 100 AND x > -100")
	f.Add("a BETWEEN -1 AND -1")
	f.Fuzz(func(t *testing.T, where string) {
		flt, err := ParseWhere(where)
		if err != nil {
			return
		}
		canon := flt.Encode()
		again, err := DecodeFilter(canon)
		if err != nil {
			t.Fatalf("parsed %q but encoding %q does not decode: %v", where, canon, err)
		}
		if got := again.Encode(); got != canon {
			t.Fatalf("encoding not a fixed point: %q -> %q -> %q", where, canon, got)
		}
	})
}
