// Package pred implements the predicate algebra Hydra's region partitioning
// is built on: closed integer intervals, disjoint interval sets, per-attribute
// constraints, conjunctive sub-constraints, and DNF selection predicates.
//
// All attribute values are int64 (the anonymizer maps non-numeric constants
// to integers before the vendor-side pipeline runs, exactly as in the paper,
// §3.1). Intervals are closed on both ends; half-open predicates such as
// "A >= 20 AND A < 60" become the closed interval [20, 59].
package pred

import (
	"fmt"
	"math"
	"strings"
)

// Interval is a closed integer interval [Lo, Hi]. An interval with Lo > Hi
// is empty.
type Interval struct {
	Lo, Hi int64
}

// DomainMin and DomainMax bound every attribute domain. They are kept well
// inside the int64 range so that boundary arithmetic (Hi+1, Lo-1) can never
// overflow.
const (
	DomainMin = math.MinInt64 / 4
	DomainMax = math.MaxInt64 / 4
)

// Full returns the interval covering the whole representable domain.
func Full() Interval { return Interval{DomainMin, DomainMax} }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Count returns the number of integer points in the interval. It saturates
// at math.MaxInt64 for intervals wider than the int64 range (which cannot
// occur for intervals inside [DomainMin, DomainMax]).
func (iv Interval) Count() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)}
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(o Interval) bool { return !iv.Intersect(o).Empty() }

func (iv Interval) String() string {
	if iv.Empty() {
		return "∅"
	}
	lo := "-inf"
	if iv.Lo != DomainMin {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	hi := "+inf"
	if iv.Hi != DomainMax {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Set is a union of disjoint, sorted, non-adjacent closed intervals. The
// zero value is the empty set. Sets are immutable: all operations return new
// sets.
type Set struct {
	ivs []Interval
}

// NewSet builds a Set from arbitrary intervals, normalizing them into
// sorted, disjoint, non-adjacent form.
func NewSet(ivs ...Interval) Set {
	out := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			out = append(out, iv)
		}
	}
	if len(out) == 0 {
		return Set{}
	}
	// Insertion sort: sets are tiny (a handful of intervals).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Lo < out[j-1].Lo; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	merged := out[:1]
	for _, iv := range out[1:] {
		last := &merged[len(merged)-1]
		if iv.Lo <= last.Hi+1 { // overlapping or adjacent
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			merged = append(merged, iv)
		}
	}
	return Set{ivs: merged}
}

// FullSet returns the set covering the entire domain.
func FullSet() Set { return NewSet(Full()) }

// Point returns the singleton set {v}.
func Point(v int64) Set { return NewSet(Interval{v, v}) }

// Range returns the set for the closed interval [lo, hi].
func Range(lo, hi int64) Set { return NewSet(Interval{lo, hi}) }

// AtLeast returns the set [v, +inf).
func AtLeast(v int64) Set { return NewSet(Interval{v, DomainMax}) }

// AtMost returns the set (-inf, v].
func AtMost(v int64) Set { return NewSet(Interval{DomainMin, v}) }

// Intervals returns the underlying intervals (sorted, disjoint). The
// returned slice must not be modified.
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether the set contains no points.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Contains reports whether v is a member of the set.
//
//hydra:hotpath
func (s Set) Contains(v int64) bool {
	// Binary search over sorted disjoint intervals.
	lo, hi := 0, len(s.ivs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		iv := s.ivs[mid]
		switch {
		case v < iv.Lo:
			hi = mid - 1
		case v > iv.Hi:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// Min returns the smallest point of the set. It panics on the empty set:
// callers instantiate values only from non-empty regions.
func (s Set) Min() int64 {
	if s.Empty() {
		panic("pred: Min of empty set")
	}
	return s.ivs[0].Lo
}

// Max returns the largest point of the set. It panics on the empty set.
func (s Set) Max() int64 {
	if s.Empty() {
		panic("pred: Max of empty set")
	}
	return s.ivs[len(s.ivs)-1].Hi
}

// Count returns the number of integer points in the set, saturating at
// math.MaxInt64.
func (s Set) Count() int64 {
	var total int64
	for _, iv := range s.ivs {
		c := iv.Count()
		if total > math.MaxInt64-c {
			return math.MaxInt64
		}
		total += c
	}
	return total
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		iv := s.ivs[i].Intersect(o.ivs[j])
		if !iv.Empty() {
			out = append(out, iv)
		}
		if s.ivs[i].Hi < o.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out}
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	all := make([]Interval, 0, len(s.ivs)+len(o.ivs))
	all = append(all, s.ivs...)
	all = append(all, o.ivs...)
	return NewSet(all...)
}

// Subtract returns s \ o.
func (s Set) Subtract(o Set) Set {
	return s.Intersect(o.Complement())
}

// Complement returns the domain-wide complement of s.
func (s Set) Complement() Set {
	if s.Empty() {
		return FullSet()
	}
	var out []Interval
	cursor := int64(DomainMin)
	for _, iv := range s.ivs {
		if iv.Lo > cursor {
			out = append(out, Interval{cursor, iv.Lo - 1})
		}
		if iv.Hi == DomainMax {
			return Set{ivs: out}
		}
		cursor = iv.Hi + 1
	}
	out = append(out, Interval{cursor, DomainMax})
	return Set{ivs: out}
}

// Equal reports whether the two sets contain exactly the same points.
func (s Set) Equal(o Set) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every point of s lies in o.
func (s Set) SubsetOf(o Set) bool {
	return s.Subtract(o).Empty()
}

// Boundaries appends to dst the "cut points" of the set: for every interval
// [lo,hi], the values lo and hi+1. Cut points are the canonical
// representation of split positions used by both grid intervalization and
// marker-atom construction: cutting a domain at value c separates c-1 from c.
func (s Set) Boundaries(dst []int64) []int64 {
	for _, iv := range s.ivs {
		if iv.Lo != DomainMin {
			dst = append(dst, iv.Lo)
		}
		if iv.Hi != DomainMax {
			dst = append(dst, iv.Hi+1)
		}
	}
	return dst
}

func (s Set) String() string {
	if s.Empty() {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "∪")
}
