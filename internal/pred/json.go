package pred

import (
	"encoding/json"
	"fmt"
)

// Set serializes as a list of [lo, hi] pairs; the unbounded sentinels
// DomainMin/DomainMax round-trip as-is.
func (s Set) MarshalJSON() ([]byte, error) {
	out := make([][2]int64, len(s.ivs))
	for i, iv := range s.ivs {
		out[i] = [2]int64{iv.Lo, iv.Hi}
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the [lo, hi] pair list, normalizing as NewSet does.
func (s *Set) UnmarshalJSON(b []byte) error {
	var pairs [][2]int64
	if err := json.Unmarshal(b, &pairs); err != nil {
		return fmt.Errorf("pred: set: %w", err)
	}
	ivs := make([]Interval, len(pairs))
	for i, p := range pairs {
		ivs[i] = Interval{Lo: p[0], Hi: p[1]}
	}
	*s = NewSet(ivs...)
	return nil
}

// conjunctJSON is the wire form of a conjunct: attribute id → interval set.
type conjunctJSON map[int]Set

// MarshalJSON emits the per-attribute constraint map.
func (c Conjunct) MarshalJSON() ([]byte, error) {
	return json.Marshal(conjunctJSON(c.Cols))
}

// UnmarshalJSON parses the per-attribute constraint map.
func (c *Conjunct) UnmarshalJSON(b []byte) error {
	var m conjunctJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("pred: conjunct: %w", err)
	}
	if m == nil {
		m = conjunctJSON{}
	}
	c.Cols = m
	return nil
}
