package pred

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetJSONRoundTrip(t *testing.T) {
	s := NewSet(Interval{1, 5}, Interval{10, 10}, Interval{DomainMin, -100})
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Set
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip: %v != %v", got, s)
	}
}

func TestConjunctJSONRoundTrip(t *testing.T) {
	c := NewConjunct().With(0, Range(1, 9)).With(3, AtLeast(100))
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got Conjunct
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	for _, pt := range [][]int64{{1, 0, 0, 100}, {0, 0, 0, 100}, {5, 0, 0, 99}} {
		if c.Eval(pt) != got.Eval(pt) {
			t.Fatalf("semantics changed at %v", pt)
		}
	}
}

func TestDNFJSONRoundTrip(t *testing.T) {
	p := DNF{Terms: []Conjunct{
		NewConjunct().With(0, AtMost(20)).With(1, AtLeast(31)),
		NewConjunct().With(0, AtLeast(51)),
	}}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got DNF
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x <= 100; x += 7 {
		for y := int64(0); y <= 100; y += 11 {
			if p.Eval([]int64{x, y}) != got.Eval([]int64{x, y}) {
				t.Fatalf("semantics changed at (%d,%d)", x, y)
			}
		}
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSet(rng)
		b, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var got Set
		if err := json.Unmarshal(b, &got); err != nil {
			return false
		}
		return got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var s Set
	if err := json.Unmarshal([]byte(`"nope"`), &s); err == nil {
		t.Fatal("garbage set must be rejected")
	}
	var c Conjunct
	if err := json.Unmarshal([]byte(`[1,2]`), &c); err == nil {
		t.Fatal("garbage conjunct must be rejected")
	}
}
