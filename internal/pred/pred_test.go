package pred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 7}
	if iv.Empty() || !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) {
		t.Fatal("containment broken")
	}
	if iv.Count() != 5 {
		t.Fatalf("Count = %d, want 5", iv.Count())
	}
	if (Interval{5, 2}).Count() != 0 {
		t.Fatal("empty interval should count 0")
	}
	got := iv.Intersect(Interval{6, 10})
	if got != (Interval{6, 7}) {
		t.Fatalf("Intersect = %v", got)
	}
}

func TestNewSetNormalizes(t *testing.T) {
	s := NewSet(Interval{5, 9}, Interval{1, 3}, Interval{4, 4}, Interval{12, 12}, Interval{20, 10})
	// [1,3] and [4,4] and [5,9] are adjacent → [1,9]; [20,10] is empty.
	ivs := s.Intervals()
	if len(ivs) != 2 || ivs[0] != (Interval{1, 9}) || ivs[1] != (Interval{12, 12}) {
		t.Fatalf("normalization wrong: %v", s)
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(Interval{0, 10}, Interval{20, 30})
	b := NewSet(Interval{5, 25})
	inter := a.Intersect(b)
	if inter.String() != NewSet(Interval{5, 10}, Interval{20, 25}).String() {
		t.Fatalf("Intersect = %v", inter)
	}
	uni := a.Union(b)
	if !uni.Equal(NewSet(Interval{0, 30})) {
		t.Fatalf("Union = %v", uni)
	}
	diff := a.Subtract(b)
	if !diff.Equal(NewSet(Interval{0, 4}, Interval{26, 30})) {
		t.Fatalf("Subtract = %v", diff)
	}
}

func TestComplementRoundTrip(t *testing.T) {
	s := NewSet(Interval{-5, 5}, Interval{100, 200})
	c := s.Complement()
	if !c.Complement().Equal(s) {
		t.Fatal("double complement should be identity")
	}
	if !s.Intersect(c).Empty() {
		t.Fatal("set and complement must be disjoint")
	}
	if !s.Union(c).Equal(FullSet()) {
		t.Fatal("set ∪ complement must cover the domain")
	}
}

func TestComplementOfFullAndEmpty(t *testing.T) {
	if !FullSet().Complement().Empty() {
		t.Fatal("complement of full should be empty")
	}
	if !(Set{}).Complement().Equal(FullSet()) {
		t.Fatal("complement of empty should be full")
	}
}

func TestContainsBinarySearch(t *testing.T) {
	s := NewSet(Interval{0, 0}, Interval{10, 20}, Interval{100, 100})
	for _, v := range []int64{0, 10, 15, 20, 100} {
		if !s.Contains(v) {
			t.Fatalf("should contain %d", v)
		}
	}
	for _, v := range []int64{-1, 1, 9, 21, 99, 101} {
		if s.Contains(v) {
			t.Fatalf("should not contain %d", v)
		}
	}
}

func TestMinMaxCount(t *testing.T) {
	s := NewSet(Interval{10, 20}, Interval{30, 30})
	if s.Min() != 10 || s.Max() != 30 || s.Count() != 12 {
		t.Fatalf("Min/Max/Count wrong: %d %d %d", s.Min(), s.Max(), s.Count())
	}
}

func TestSubsetOf(t *testing.T) {
	a := NewSet(Interval{5, 8})
	b := NewSet(Interval{0, 10})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf broken")
	}
}

func TestBoundaries(t *testing.T) {
	s := NewSet(Interval{10, 19}) // predicate 10 <= A < 20
	bs := s.Boundaries(nil)
	if len(bs) != 2 || bs[0] != 10 || bs[1] != 20 {
		t.Fatalf("Boundaries = %v, want [10 20]", bs)
	}
	// Unbounded sides produce no cut points.
	bs = AtLeast(5).Boundaries(nil)
	if len(bs) != 1 || bs[0] != 5 {
		t.Fatalf("Boundaries(AtLeast) = %v", bs)
	}
}

func randSet(rng *rand.Rand) Set {
	n := 1 + rng.Intn(4)
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := int64(rng.Intn(200) - 100)
		ivs[i] = Interval{lo, lo + int64(rng.Intn(40))}
	}
	return NewSet(ivs...)
}

// Property: for random sets and points, membership in the computed
// intersection/union/subtraction agrees with boolean algebra on membership.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)
		for k := 0; k < 50; k++ {
			v := int64(rng.Intn(300) - 150)
			inA, inB := a.Contains(v), b.Contains(v)
			if a.Intersect(b).Contains(v) != (inA && inB) {
				return false
			}
			if a.Union(b).Contains(v) != (inA || inB) {
				return false
			}
			if a.Subtract(b).Contains(v) != (inA && !inB) {
				return false
			}
			if a.Complement().Contains(v) != !inA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interval sets remain normalized (sorted, disjoint, non-adjacent)
// under every operation.
func TestQuickNormalization(t *testing.T) {
	check := func(s Set) bool {
		ivs := s.Intervals()
		for i, iv := range ivs {
			if iv.Empty() {
				return false
			}
			if i > 0 && ivs[i-1].Hi+1 >= iv.Lo {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)
		return check(a.Intersect(b)) && check(a.Union(b)) && check(a.Subtract(b)) && check(a.Complement())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConjunctEval(t *testing.T) {
	c := NewConjunct().With(0, Range(20, 59)).With(1, AtLeast(100))
	if !c.Eval([]int64{20, 100}) || !c.Eval([]int64{59, 1000}) {
		t.Fatal("should satisfy")
	}
	if c.Eval([]int64{60, 100}) || c.Eval([]int64{20, 99}) {
		t.Fatal("should not satisfy")
	}
}

func TestConjunctWithIntersects(t *testing.T) {
	c := NewConjunct().With(0, Range(0, 100)).With(0, Range(50, 200))
	s, ok := c.Restriction(0)
	if !ok || !s.Equal(Range(50, 100)) {
		t.Fatalf("conjunction on same attr should intersect, got %v", s)
	}
}

func TestConjunctUnsatisfiable(t *testing.T) {
	c := NewConjunct().With(0, Range(0, 10)).With(0, Range(20, 30))
	if !c.Unsatisfiable() {
		t.Fatal("disjoint ranges on one attribute must be unsatisfiable")
	}
}

func TestDNFEvalAndAttrs(t *testing.T) {
	// (A1 <= 20 ∧ A2 > 30) ∨ (A1 > 50) — the §4.2 example.
	p := DNF{Terms: []Conjunct{
		NewConjunct().With(0, AtMost(20)).With(1, AtLeast(31)),
		NewConjunct().With(0, AtLeast(51)),
	}}
	cases := []struct {
		pt   []int64
		want bool
	}{
		{[]int64{10, 40}, true},
		{[]int64{10, 30}, false},
		{[]int64{60, 0}, true},
		{[]int64{30, 40}, false},
	}
	for _, c := range cases {
		if p.Eval(c.pt) != c.want {
			t.Fatalf("Eval(%v) = %v, want %v", c.pt, !c.want, c.want)
		}
	}
	attrs := p.Attrs()
	if len(attrs) != 2 || attrs[0] != 0 || attrs[1] != 1 {
		t.Fatalf("Attrs = %v", attrs)
	}
}

func TestDNFAndOr(t *testing.T) {
	a := DNF{Terms: []Conjunct{NewConjunct().With(0, Range(0, 10))}}
	b := DNF{Terms: []Conjunct{NewConjunct().With(1, Range(5, 15))}}
	and := a.And(b)
	if len(and.Terms) != 1 {
		t.Fatalf("And terms = %d", len(and.Terms))
	}
	if !and.Eval([]int64{5, 10}) || and.Eval([]int64{11, 10}) {
		t.Fatal("And semantics broken")
	}
	or := a.Or(b)
	if !or.Eval([]int64{11, 10}) || or.Eval([]int64{11, 16}) {
		t.Fatal("Or semantics broken")
	}
}

func TestDNFAndPrunesUnsatisfiable(t *testing.T) {
	a := DNF{Terms: []Conjunct{NewConjunct().With(0, Range(0, 10))}}
	b := DNF{Terms: []Conjunct{NewConjunct().With(0, Range(20, 30))}}
	if got := len(a.And(b).Terms); got != 0 {
		t.Fatalf("unsatisfiable conjunct should be pruned, got %d terms", got)
	}
}

func TestRemap(t *testing.T) {
	p := DNF{Terms: []Conjunct{NewConjunct().With(3, Range(1, 2))}}
	q := p.Remap(map[int]int{3: 0})
	if !q.Eval([]int64{1}) || q.Eval([]int64{3}) {
		t.Fatal("Remap broken")
	}
}

func TestTrueDNF(t *testing.T) {
	if !True().Eval([]int64{}) {
		t.Fatal("True() must hold everywhere")
	}
	if (DNF{}).Eval([]int64{}) {
		t.Fatal("empty DNF must be false")
	}
}
