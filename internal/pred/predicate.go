package pred

import (
	"fmt"
	"sort"
	"strings"
)

// Conjunct is one "sub-constraint" of the paper (§4.2): a conjunction of
// per-attribute constraints. It maps an attribute identifier to the set of
// values that attribute may take. Attributes absent from the map are
// unconstrained ("true" in the paper's Definition 4.5).
//
// Attribute identifiers are small integers assigned by the caller (the
// preprocessor numbers a view's attributes 0..n-1).
type Conjunct struct {
	Cols map[int]Set
}

// NewConjunct returns an empty (always-true) conjunct.
func NewConjunct() Conjunct { return Conjunct{Cols: map[int]Set{}} }

// With returns a copy of the conjunct with the constraint on attr
// intersected with s (conjunction of per-attribute constraints on the same
// attribute collapses to a single interval set).
func (c Conjunct) With(attr int, s Set) Conjunct {
	out := Conjunct{Cols: make(map[int]Set, len(c.Cols)+1)}
	for k, v := range c.Cols {
		out.Cols[k] = v
	}
	if prev, ok := out.Cols[attr]; ok {
		out.Cols[attr] = prev.Intersect(s)
	} else {
		out.Cols[attr] = s
	}
	return out
}

// Restriction returns the per-attribute constraint C^i of Definition 4.5:
// the projection of the conjunct onto a single attribute. The second result
// is false when the conjunct does not constrain attr (C^i = "true").
func (c Conjunct) Restriction(attr int) (Set, bool) {
	s, ok := c.Cols[attr]
	return s, ok
}

// Unsatisfiable reports whether some per-attribute constraint is the empty
// set, making the whole conjunct unsatisfiable.
func (c Conjunct) Unsatisfiable() bool {
	for _, s := range c.Cols {
		if s.Empty() {
			return true
		}
	}
	return false
}

// Eval reports whether the point satisfies the conjunct. point[i] is the
// value of attribute i.
//
//hydra:hotpath
func (c Conjunct) Eval(point []int64) bool {
	for attr, s := range c.Cols {
		if !s.Contains(point[attr]) {
			return false
		}
	}
	return true
}

// Attrs returns the attributes the conjunct constrains, sorted.
func (c Conjunct) Attrs() []int {
	out := make([]int, 0, len(c.Cols))
	for a := range c.Cols {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Remap returns a copy of the conjunct with every attribute id translated
// through m. It panics if an attribute is missing from m: predicates must
// only ever be remapped onto spaces that cover them.
//
//hydra:nondeterministic map-range writes distinct keys into a map; iteration order cannot reach the result
func (c Conjunct) Remap(m map[int]int) Conjunct {
	out := Conjunct{Cols: make(map[int]Set, len(c.Cols))}
	for a, s := range c.Cols {
		na, ok := m[a]
		if !ok {
			panic(fmt.Sprintf("pred: Remap missing attribute %d", a))
		}
		out.Cols[na] = s
	}
	return out
}

func (c Conjunct) String() string {
	if len(c.Cols) == 0 {
		return "true"
	}
	attrs := c.Attrs()
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("a%d∈%s", a, c.Cols[a])
	}
	return strings.Join(parts, " ∧ ")
}

// DNF is a selection predicate in disjunctive normal form: the disjunction
// of its conjuncts. The empty DNF is unsatisfiable (false); use True() for
// the always-true predicate.
type DNF struct {
	Terms []Conjunct
}

// True returns the always-true predicate (a single empty conjunct).
func True() DNF { return DNF{Terms: []Conjunct{NewConjunct()}} }

// And returns the conjunction p ∧ q, distributing over the disjuncts.
// The result can have |p.Terms| × |q.Terms| conjuncts; workload predicates
// are small so this never explodes in practice.
//
//hydra:nondeterministic map-range feeds commutative With-intersections; iteration order cannot reach the result
func (p DNF) And(q DNF) DNF {
	var out []Conjunct
	for _, a := range p.Terms {
		for _, b := range q.Terms {
			c := a
			for attr, s := range b.Cols {
				c = c.With(attr, s)
			}
			if !c.Unsatisfiable() {
				out = append(out, c)
			}
		}
	}
	return DNF{Terms: out}
}

// Or returns the disjunction p ∨ q.
func (p DNF) Or(q DNF) DNF {
	out := make([]Conjunct, 0, len(p.Terms)+len(q.Terms))
	out = append(out, p.Terms...)
	out = append(out, q.Terms...)
	return DNF{Terms: out}
}

// Eval reports whether the point satisfies the predicate.
func (p DNF) Eval(point []int64) bool {
	for _, c := range p.Terms {
		if c.Eval(point) {
			return true
		}
	}
	return false
}

// Attrs returns the sorted set of attributes referenced anywhere in the
// predicate.
func (p DNF) Attrs() []int {
	seen := map[int]bool{}
	for _, c := range p.Terms {
		for a := range c.Cols {
			seen[a] = true
		}
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Remap returns a copy of the predicate with attribute ids translated
// through m.
func (p DNF) Remap(m map[int]int) DNF {
	out := DNF{Terms: make([]Conjunct, len(p.Terms))}
	for i, c := range p.Terms {
		out.Terms[i] = c.Remap(m)
	}
	return out
}

func (p DNF) String() string {
	if len(p.Terms) == 0 {
		return "false"
	}
	parts := make([]string, len(p.Terms))
	for i, c := range p.Terms {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " ∨ ")
}
