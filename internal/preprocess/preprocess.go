// Package preprocess implements the DataSynth-sourced preprocessor of
// Hydra's architecture (§3.2, orange box in Fig. 2): for every relation it
// creates a view comprising the relation's own non-key attributes augmented
// with the non-key attributes of every relation it depends on through
// referential constraints, directly or transitively; CCs over join
// expressions are rewritten as selections over these views.
package preprocess

import (
	"fmt"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

// View is the flattened attribute space of one relation.
type View struct {
	// Table is the relation this view belongs to.
	Table *schema.Table
	// Attrs lists the view's attributes: the relation's own non-key
	// columns first, then the inherited attributes of each FK target view
	// in FK declaration order.
	Attrs []schema.AttrRef
	// Domains gives each attribute's integer domain.
	Domains []pred.Set
	// Index maps a qualified attribute to its position in Attrs.
	Index map[schema.AttrRef]int
	// Own is the number of leading attributes owned by the relation
	// itself (len of Table.Cols).
	Own int
	// RefAttrs maps each directly referenced table to the positions its
	// *view's* attributes occupy inside this view, in the referenced
	// view's attribute order. Projecting a row of this view through
	// RefAttrs[t] yields a row of t's view.
	RefAttrs map[string][]int
	// Total is the target row count |Table| (from the relation-size CC,
	// falling back to the schema's RowCount).
	Total int64
	// CCs are the non-size constraints rewritten onto view attribute ids.
	CCs []ViewCC
}

// ViewCC is a CC whose predicate attribute ids index the owning view's
// Attrs slice.
type ViewCC struct {
	Pred  pred.DNF
	Count int64
	Name  string
}

// BuildViews constructs one view per relation appearing in the schema, and
// rewrites every workload CC onto its root's view. It fails when a table
// declares two FKs to the same target (the view attribute space would be
// ambiguous; the paper's model has a single join role per referenced
// relation) or when a CC references an attribute outside its root's view.
func BuildViews(s *schema.Schema, w *cc.Workload) (map[string]*View, error) {
	order, err := s.TopoOrder()
	if err != nil {
		return nil, err
	}
	views := make(map[string]*View, len(order))
	for _, t := range order {
		v := &View{
			Table:    t,
			Index:    map[schema.AttrRef]int{},
			Own:      len(t.Cols),
			RefAttrs: map[string][]int{},
			Total:    t.RowCount,
		}
		for _, col := range t.Cols {
			ref := schema.AttrRef{Table: t.Name, Col: col.Name}
			v.Index[ref] = len(v.Attrs)
			v.Attrs = append(v.Attrs, ref)
			v.Domains = append(v.Domains, pred.Range(col.Min, col.Max))
		}
		seenRef := map[string]bool{}
		for _, fk := range t.FKs {
			if seenRef[fk.Ref] {
				return nil, fmt.Errorf("preprocess: table %q has multiple FKs to %q; one join role per referenced relation is supported", t.Name, fk.Ref)
			}
			seenRef[fk.Ref] = true
			rv := views[fk.Ref] // exists: topo order visits targets first
			positions := make([]int, len(rv.Attrs))
			for i, ra := range rv.Attrs {
				if p, ok := v.Index[ra]; ok {
					// Shared transitive ancestor (DAG diamond): the
					// attribute is already present; reuse its slot.
					positions[i] = p
					continue
				}
				v.Index[ra] = len(v.Attrs)
				positions[i] = len(v.Attrs)
				v.Attrs = append(v.Attrs, ra)
				v.Domains = append(v.Domains, rv.Domains[i])
			}
			v.RefAttrs[fk.Ref] = positions
		}
		views[t.Name] = v
	}

	for i := range w.CCs {
		c := &w.CCs[i]
		v, ok := views[c.Root]
		if !ok {
			return nil, fmt.Errorf("preprocess: cc %s: unknown root %q", c.Name, c.Root)
		}
		if c.IsSize() {
			// The CC is the client-measured cardinality; it overrides
			// whatever the schema snapshot carried.
			v.Total = c.Count
			continue
		}
		remap := make(map[int]int, len(c.Attrs))
		for id, a := range c.Attrs {
			p, ok := v.Index[a]
			if !ok {
				return nil, fmt.Errorf("preprocess: cc %s: attribute %s not in view of %s", c.Name, a, c.Root)
			}
			remap[id] = p
		}
		v.CCs = append(v.CCs, ViewCC{
			Pred:  c.Pred.Remap(remap),
			Count: c.Count,
			Name:  c.Name,
		})
	}

	for _, v := range views {
		if v.Total < 0 {
			return nil, fmt.Errorf("preprocess: view %s has negative total %d", v.Table.Name, v.Total)
		}
	}
	return views, nil
}

// ProjectRow projects a row of view v (values aligned with v.Attrs) onto
// the view of directly referenced table ref.
func (v *View) ProjectRow(row []int64, ref string) []int64 {
	pos := v.RefAttrs[ref]
	out := make([]int64, len(pos))
	for i, p := range pos {
		out[i] = row[p]
	}
	return out
}
