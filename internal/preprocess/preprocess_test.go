package preprocess

import (
	"testing"

	"github.com/dsl-repro/hydra/internal/cc"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/schema"
)

func toySchema() *schema.Schema {
	return schema.MustNew(
		&schema.Table{Name: "S", Cols: []schema.Column{
			{Name: "A", Min: 0, Max: 100}, {Name: "B", Min: 0, Max: 50},
		}, RowCount: 700},
		&schema.Table{Name: "T", Cols: []schema.Column{{Name: "C", Min: 0, Max: 10}}, RowCount: 1500},
		&schema.Table{Name: "R", FKs: []schema.ForeignKey{
			{FKCol: "S_fk", Ref: "S"}, {FKCol: "T_fk", Ref: "T"},
		}, RowCount: 80000},
	)
}

// TestViewAttributeClosure checks the paper's §3.2 example: R_view(A,B,C),
// S_view(A,B), T_view(C).
func TestViewAttributeClosure(t *testing.T) {
	views, err := BuildViews(toySchema(), &cc.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"R": {"S.A", "S.B", "T.C"},
		"S": {"S.A", "S.B"},
		"T": {"T.C"},
	}
	for name, attrs := range want {
		v := views[name]
		if len(v.Attrs) != len(attrs) {
			t.Fatalf("view %s attrs = %v, want %v", name, v.Attrs, attrs)
		}
		for i, a := range attrs {
			if v.Attrs[i].String() != a {
				t.Fatalf("view %s attr %d = %s, want %s", name, i, v.Attrs[i], a)
			}
		}
	}
	if views["R"].Own != 0 || views["S"].Own != 2 {
		t.Fatal("Own counts wrong")
	}
}

func TestCCRewriteOntoView(t *testing.T) {
	w := &cc.Workload{CCs: []cc.CC{
		{Root: "R",
			Attrs: []schema.AttrRef{{Table: "S", Col: "A"}, {Table: "T", Col: "C"}},
			Pred: pred.DNF{Terms: []pred.Conjunct{
				pred.NewConjunct().With(0, pred.Range(20, 59)).With(1, pred.Range(2, 2)),
			}},
			Count: 30000, Name: "join"},
	}}
	views, err := BuildViews(toySchema(), w)
	if err != nil {
		t.Fatal(err)
	}
	rv := views["R"]
	if len(rv.CCs) != 1 {
		t.Fatalf("R view CCs = %d", len(rv.CCs))
	}
	// S.A is view attr 0, T.C is view attr 2.
	attrs := rv.CCs[0].Pred.Attrs()
	if len(attrs) != 2 || attrs[0] != 0 || attrs[1] != 2 {
		t.Fatalf("rewritten attrs = %v, want [0 2]", attrs)
	}
}

func TestSizeCCOverridesTotal(t *testing.T) {
	w := &cc.Workload{CCs: []cc.CC{
		{Root: "S", Pred: pred.True(), Count: 9999, Name: "sizeS"},
	}}
	views, err := BuildViews(toySchema(), w)
	if err != nil {
		t.Fatal(err)
	}
	if views["S"].Total != 9999 {
		t.Fatalf("Total = %d, want 9999 (CC overrides schema)", views["S"].Total)
	}
	if views["T"].Total != 1500 {
		t.Fatalf("T total = %d, want schema fallback 1500", views["T"].Total)
	}
}

func TestDAGDiamondSharesAttributeSlot(t *testing.T) {
	// D → B → A and D → C → A: A's attributes must appear once in D_view.
	s := schema.MustNew(
		&schema.Table{Name: "A", Cols: []schema.Column{{Name: "x", Min: 0, Max: 9}}, RowCount: 5},
		&schema.Table{Name: "B", FKs: []schema.ForeignKey{{FKCol: "a_fk", Ref: "A"}}, RowCount: 10},
		&schema.Table{Name: "C", FKs: []schema.ForeignKey{{FKCol: "a_fk", Ref: "A"}}, RowCount: 10},
		&schema.Table{Name: "D", FKs: []schema.ForeignKey{
			{FKCol: "b_fk", Ref: "B"}, {FKCol: "c_fk", Ref: "C"},
		}, RowCount: 20},
	)
	views, err := BuildViews(s, &cc.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	dv := views["D"]
	if len(dv.Attrs) != 1 {
		t.Fatalf("D_view attrs = %v; A.x must be shared, not duplicated", dv.Attrs)
	}
	// Projections through B and C must both hit the shared slot.
	row := []int64{7}
	if dv.ProjectRow(row, "B")[0] != 7 || dv.ProjectRow(row, "C")[0] != 7 {
		t.Fatal("projection through diamond arms broken")
	}
}

func TestDoubleFKRejected(t *testing.T) {
	s := schema.MustNew(
		&schema.Table{Name: "D", RowCount: 5},
		&schema.Table{Name: "F", FKs: []schema.ForeignKey{
			{FKCol: "d1", Ref: "D"}, {FKCol: "d2", Ref: "D"},
		}, RowCount: 10},
	)
	if _, err := BuildViews(s, &cc.Workload{}); err == nil {
		t.Fatal("two FKs to the same table must be rejected")
	}
}

func TestForeignAttrRejected(t *testing.T) {
	w := &cc.Workload{CCs: []cc.CC{
		{Root: "S",
			Attrs: []schema.AttrRef{{Table: "T", Col: "C"}},
			Pred:  pred.DNF{Terms: []pred.Conjunct{pred.NewConjunct().With(0, pred.Range(0, 1))}},
			Count: 1, Name: "bad"},
	}}
	if _, err := BuildViews(toySchema(), w); err == nil {
		t.Fatal("attr outside the root's closure must be rejected")
	}
}

func TestProjectRow(t *testing.T) {
	views, err := BuildViews(toySchema(), &cc.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	rv := views["R"]
	row := []int64{42, 17, 3} // S.A, S.B, T.C
	sProj := rv.ProjectRow(row, "S")
	if len(sProj) != 2 || sProj[0] != 42 || sProj[1] != 17 {
		t.Fatalf("S projection = %v", sProj)
	}
	tProj := rv.ProjectRow(row, "T")
	if len(tProj) != 1 || tProj[0] != 3 {
		t.Fatalf("T projection = %v", tProj)
	}
}
