// Package rate is the token-bucket row limiter shared by the
// materialization engine (internal/matgen) and the regeneration server
// (internal/serve). Both emit rows in chunks, so the limiter's unit is
// rows, not bytes: a Materialize call with Options.RateLimit set paces
// its collectors, and every HTTP table stream paces its chunk writes,
// which is what turns the server into a load generator with a
// controllable emit rate.
//
// The implementation is a GCRA-style virtual scheduler rather than a
// stored token count: the limiter tracks the virtual time at which the
// next row may be emitted and advances it by n/rate per WaitN(n). The
// long-run rate is therefore exact regardless of chunk size — each call
// pays for precisely the rows it emits — while a bounded burst credit
// lets a stream that fell behind (slow client, GC pause) catch back up
// instead of permanently losing its budget.
package rate

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
)

// Limiter observability: how often pacing actually engaged, how many
// rows were held back, and the cumulative throttle time — the numbers
// that separate "the fleet is slow" from "the fleet is rate-limited".
var (
	mWaits = obs.Default.Counter("hydra_rate_waits_total",
		"WaitN calls that actually slept (zero-wait releases are not counted)")
	mWaitRows = obs.Default.Counter("hydra_rate_wait_rows_total",
		"rows whose release was delayed by the limiter")
	mThrottleSeconds = obs.Default.FloatCounter("hydra_rate_throttle_seconds_total",
		"cumulative time WaitN spent sleeping on the emission schedule")
)

// DefaultBurst is the schedule tolerance granted when NewLimiter is
// given a non-positive burst: emission may run this far ahead of the
// virtual schedule — enough to absorb scheduling jitter between chunk
// writes without letting the observed rate meaningfully exceed the
// configured one on any stream longer than a second or two.
const DefaultBurst = 50 * time.Millisecond

// Limiter paces row emission to a fixed rows-per-second rate. It is safe
// for concurrent use; goroutines sharing one limiter share its budget.
type Limiter struct {
	perSec float64
	burst  time.Duration

	mu sync.Mutex
	// next is the virtual time at which the stream's emission schedule
	// stands: every WaitN(n) advances it by n/perSec, and emission is
	// released once it would complete no more than burst ahead of that
	// schedule. Idle time does not bank credit beyond the standing
	// burst tolerance.
	next time.Time
}

// MinPerSec is the lowest accepted rate: one row per ~17 minutes. The
// floor exists so per-chunk wait durations can never overflow a
// time.Duration — below it a "rate limit" is indistinguishable from a
// hang anyway.
const MinPerSec = 1e-3

// Validate reports whether perSec is usable as a rate: finite and
// within [MinPerSec, ∞). NaN, ±Inf, zero, negatives, and denormally
// tiny rates are rejected — every one of them would otherwise disable
// or corrupt the pacing math silently (NaN fails every comparison, so
// an unchecked NaN walks straight past `<= 0` guards and rate caps).
func Validate(perSec float64) error {
	if math.IsNaN(perSec) || math.IsInf(perSec, 0) || perSec < MinPerSec {
		return fmt.Errorf("rate: rows/s %v out of range [%v, +Inf)", perSec, MinPerSec)
	}
	return nil
}

// NewLimiter returns a limiter emitting perSec rows per second. The
// burst is the schedule tolerance in rows; non-positive selects
// DefaultBurst's worth. perSec must satisfy Validate; callers
// expressing "unlimited" should use a nil *Limiter, which every method
// accepts.
func NewLimiter(perSec float64, burst int64) (*Limiter, error) {
	if err := Validate(perSec); err != nil {
		return nil, err
	}
	b := DefaultBurst
	if burst > 0 {
		b = time.Duration(float64(burst) / perSec * float64(time.Second))
	}
	return &Limiter{perSec: perSec, burst: b}, nil
}

// Rate returns the configured rows/s; 0 for a nil (unlimited) limiter.
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.perSec
}

// WaitN blocks until n rows may be emitted, or until ctx is done. A nil
// limiter never blocks (but still honors an already-canceled ctx, so
// rate-limited and unlimited paths cancel identically). n may exceed
// the burst — chunks are released whole — but the release is held until
// the chunk's own emission time has (all but the burst tolerance)
// elapsed, so even a table that fits in one chunk is paced.
func (l *Limiter) WaitN(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	now := time.Now()
	// An idle stream re-anchors at now: no banked catch-up credit.
	if l.next.Before(now) {
		l.next = now
	}
	l.next = l.next.Add(time.Duration(float64(n) / l.perSec * float64(time.Second)))
	due := l.next.Add(-l.burst)
	l.mu.Unlock()

	wait := due.Sub(now)
	if wait <= 0 {
		return nil
	}
	mWaits.Inc()
	mWaitRows.Add(n)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		mThrottleSeconds.AddDuration(time.Since(now))
		return ctx.Err()
	case <-timer.C:
		mThrottleSeconds.AddDuration(wait)
		return nil
	}
}
