package rate

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNewLimiterValidation(t *testing.T) {
	// NaN and Inf deserve explicit rejection: both fail every numeric
	// comparison, so an unvalidated value would silently disable pacing
	// (and walk past any rate cap). Denormally tiny rates would
	// overflow the per-chunk wait duration.
	for _, perSec := range []float64{0, -1, math.Inf(-1), math.Inf(1), math.NaN(), 1e-300, MinPerSec / 2} {
		if _, err := NewLimiter(perSec, 0); err == nil {
			t.Fatalf("perSec %v: expected error", perSec)
		}
		if err := Validate(perSec); err == nil {
			t.Fatalf("Validate(%v): expected error", perSec)
		}
	}
	for _, perSec := range []float64{MinPerSec, 1, 1e9} {
		if err := Validate(perSec); err != nil {
			t.Fatalf("Validate(%v): %v", perSec, err)
		}
	}
	l, err := NewLimiter(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rate() != 100 {
		t.Fatalf("rate = %v", l.Rate())
	}
	var nilLim *Limiter
	if nilLim.Rate() != 0 {
		t.Fatalf("nil rate = %v", nilLim.Rate())
	}
}

// TestRateAccuracy is the acceptance bound: emitting chunk-by-chunk
// through the limiter must land within ±10% of the configured rows/s.
func TestRateAccuracy(t *testing.T) {
	const (
		perSec = 20000.0
		chunk  = 512
		total  = 10000
	)
	l, err := NewLimiter(perSec, chunk)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	for sent := 0; sent < total; sent += chunk {
		n := chunk
		if total-sent < n {
			n = total - sent
		}
		if err := l.WaitN(ctx, int64(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := float64(total) / time.Since(start).Seconds()
	// The burst tolerance lets the stream finish up to one burst early,
	// so the observed rate can only run slightly high; the ±10% window
	// still bounds both sides.
	if got < perSec*0.9 || got > perSec*1.1 {
		t.Fatalf("observed %.0f rows/s, configured %.0f (±10%%)", got, perSec)
	}
}

// TestSharedBudget: two goroutines on one limiter split one budget, not
// double it.
func TestSharedBudget(t *testing.T) {
	const perSec = 10000.0
	l, err := NewLimiter(perSec, 100)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sent := 0; sent < 2000; sent += 100 {
				if err := l.WaitN(context.Background(), 100); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got := 4000 / time.Since(start).Seconds()
	if got > perSec*1.1 {
		t.Fatalf("two streams achieved %.0f rows/s on a %.0f budget", got, perSec)
	}
}

// TestWaitCancellation: a blocked WaitN returns promptly with the ctx
// error; it does not sleep out its full wait after cancellation.
func TestWaitCancellation(t *testing.T) {
	l, err := NewLimiter(10, 1) // 10 rows/s: each chunk waits ~100ms+
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitN(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := l.WaitN(ctx, 10); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("cancellation took %v, wait was not interrupted", waited)
	}

	// An already-canceled ctx fails immediately, nil limiter included.
	if err := l.WaitN(ctx, 1); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	var nilLim *Limiter
	if err := nilLim.WaitN(ctx, 1); err != context.Canceled {
		t.Fatalf("nil limiter err = %v", err)
	}
	if err := nilLim.WaitN(context.Background(), 1); err != nil {
		t.Fatalf("nil limiter err = %v", err)
	}
}

// TestBurstCap: idle time banks no catch-up credit beyond the standing
// burst tolerance, so a long pause cannot fund an emission spike.
func TestBurstCap(t *testing.T) {
	l, err := NewLimiter(1000, 50) // 50 rows = 50ms of tolerance
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // idle: must not bank credit
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := l.WaitN(context.Background(), 50); err != nil {
			t.Fatal(err)
		}
	}
	// 200 rows at 1000/s = 200ms minus the 50ms tolerance => ≥ ~150ms.
	if e := time.Since(start); e < 100*time.Millisecond {
		t.Fatalf("200 idle-banked rows took %v; burst cap not applied", e)
	}
}
