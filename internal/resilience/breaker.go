package resilience

import (
	"sync"
	"time"
)

// BreakerState is one circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the member is benched; Allow refuses until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe has
	// been admitted; its outcome decides between Closed and Open.
	BreakerHalfOpen
)

// String implements fmt.Stringer (and the metric label values).
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// Breaker is a per-member circuit breaker: closed → open after
// threshold consecutive failures, open → half-open after cooldown
// (admitting one probe), half-open → closed on probe success or back to
// open on probe failure. A zero threshold disables it (always closed).
//
// Safe for concurrent use. The breaker deliberately has no opinion
// about what a "failure" is — consumers report outcomes; capacity 503s,
// for example, are not failures and must not be reported as such.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam
	state     BreakerState
	fails     int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	onChange  func(to BreakerState)
}

// NewBreaker builds a breaker. threshold <= 0 disables it; cooldown <= 0
// means DefaultBreakerCooldown. onChange, when non-nil, observes every
// state transition (used for the transition counters).
func NewBreaker(threshold int, cooldown time.Duration, onChange func(to BreakerState)) *Breaker {
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now, onChange: onChange}
}

// set records a transition while b.mu is held and returns whether one
// happened; the caller fires onChange AFTER unlocking (the callback may
// read breaker state, so invoking it under the lock would deadlock).
func (b *Breaker) set(to BreakerState) bool {
	if b.state == to {
		return false
	}
	b.state = to
	return true
}

// notify fires the transition callback; call only with b.mu released.
func (b *Breaker) notify(changed bool, to BreakerState) {
	if changed && b.onChange != nil {
		b.onChange(to)
	}
}

// State returns the breaker's current position (an open breaker whose
// cooldown has elapsed still reports Open until a probe is admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request may be sent to this member. On an
// open breaker whose cooldown has elapsed it admits exactly one caller
// as the half-open probe; that caller's Success or Failure settles the
// breaker, and everyone else keeps getting false in the meantime.
func (b *Breaker) Allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			changed := b.set(BreakerHalfOpen)
			b.mu.Unlock()
			b.notify(changed, BreakerHalfOpen)
			return true
		}
		b.mu.Unlock()
		return false
	default: // half-open: the probe slot is taken
		b.mu.Unlock()
		return false
	}
}

// Success reports a completed request (or health probe), closing the
// breaker and resetting the failure streak.
func (b *Breaker) Success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	changed := b.set(BreakerClosed)
	b.mu.Unlock()
	b.notify(changed, BreakerClosed)
}

// ProbeSuccess is Success for background health probes, with one
// difference: it does not short-circuit an open breaker's cooldown. A
// member whose /healthz recovered instantly but whose streams were
// failing a moment ago stays benched for the full cooldown, which is
// what stops a flapping member from whipsawing the fleet every probe
// interval.
func (b *Breaker) ProbeSuccess() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) < b.cooldown {
		b.mu.Unlock()
		return
	}
	b.fails = 0
	changed := b.set(BreakerClosed)
	b.mu.Unlock()
	b.notify(changed, BreakerClosed)
}

// Failure reports a failed request or probe. The half-open probe
// failing re-opens the breaker (restarting the cooldown); the
// threshold-th consecutive failure opens a closed one.
func (b *Breaker) Failure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	var changed bool
	switch b.state {
	case BreakerHalfOpen:
		b.openedAt = b.now()
		changed = b.set(BreakerOpen)
	case BreakerClosed:
		if b.fails++; b.fails >= b.threshold {
			b.fails = 0
			b.openedAt = b.now()
			changed = b.set(BreakerOpen)
		}
	}
	b.mu.Unlock()
	b.notify(changed, BreakerOpen)
}
