package resilience

import (
	"testing"
	"time"
)

// fakeClock is the breaker's time seam.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown, nil)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("two failures must not open a threshold-3 breaker")
	}
	b.Success() // streak reset
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("success must reset the failure streak")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("third consecutive failure must open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before the cooldown")
	}
}

func TestBreakerHalfOpenReadmission(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.Failure()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}

	// Cooldown not elapsed: still refusing.
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("Allow before cooldown must refuse")
	}

	// Cooldown elapsed: exactly one probe admitted.
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("first Allow after cooldown must admit the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half_open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller must not share the half-open probe slot")
	}

	// Probe failure re-opens and restarts the cooldown.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must re-open the breaker")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker must refuse until a fresh cooldown passes")
	}

	// A recovered member: probe succeeds, breaker closes, traffic flows.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed again: probe must be admitted")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker must admit everyone")
	}
}

func TestBreakerProbeSuccessRespectsCooldown(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	// A flapping member's /healthz recovers instantly; the breaker must
	// keep it benched for the full cooldown anyway.
	b.ProbeSuccess()
	if b.State() != BreakerOpen {
		t.Fatal("ProbeSuccess inside the cooldown must not close the breaker")
	}
	clk.advance(time.Second)
	b.ProbeSuccess()
	if b.State() != BreakerClosed {
		t.Fatal("ProbeSuccess after the cooldown must close the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, time.Second, nil)
	for i := 0; i < 10; i++ {
		b.Failure()
	}
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("threshold 0 disables the breaker")
	}
	var nilB *Breaker
	if !nilB.Allow() {
		t.Fatal("nil breaker must allow")
	}
	nilB.Success()
	nilB.Failure() // must not panic
}

func TestBreakerTransitionCallback(t *testing.T) {
	var seen []BreakerState
	b := NewBreaker(1, time.Millisecond, func(to BreakerState) { seen = append(seen, to) })
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	b.Failure()
	clk.advance(time.Millisecond)
	b.Allow()
	b.Success()
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}
