package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/trace"
)

// Policy is one request's retry discipline: capped exponential backoff
// with full jitter, a per-request attempt cap, and an optional shared
// Budget that bounds the fleet-wide retry amplification. Policies are
// values; copy freely.
type Policy struct {
	// Base is the first retry's maximum backoff; retry k draws its delay
	// uniformly from [0, min(Max, Base<<k)] — AWS-style "full jitter",
	// which decorrelates a thundering herd that failed together.
	Base time.Duration
	// Max caps the backoff growth.
	Max time.Duration
	// MaxAttempts bounds total tries, the first attempt included
	// (<= 1 means no retries).
	MaxAttempts int
	// Budget, when set, must admit every retry; an exhausted budget
	// fails the request immediately instead of sleeping out a backoff
	// that cannot help a fleet-wide outage.
	Budget *Budget
	// Rand is the jitter source, a test seam; nil means math/rand's
	// goroutine-safe global.
	Rand func(n int64) int64

	m *policyMetricSet
}

// policyMetricSet carries the per-layer retry counters, resolved once.
type policyMetricSet struct {
	retries   *obs.Counter
	exhausted *obs.Counter
}

func policyMetrics(reg *obs.Registry, layer string) *policyMetricSet {
	l := obs.L("layer", layer)
	return &policyMetricSet{
		retries: reg.Counter("hydra_fleet_retries_total",
			"request retries issued by the resilience policy, by consumer layer", l),
		exhausted: reg.Counter("hydra_fleet_retry_budget_exhausted_total",
			"retries refused because the shared retry budget was empty, by consumer layer", l),
	}
}

// Delay returns the jittered backoff before retry k (1-based: the delay
// between the first failure and the second attempt is Delay(1)).
func (p Policy) Delay(k int) time.Duration {
	if k < 1 {
		k = 1
	}
	ceil := p.Base
	if ceil <= 0 {
		ceil = DefaultRetryBase
	}
	max := p.Max
	if max <= 0 {
		max = DefaultRetryMax
	}
	for i := 1; i < k && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	r := p.Rand
	if r == nil {
		r = rand.Int63n
	}
	return time.Duration(r(int64(ceil) + 1))
}

// Begin starts one request's attempt sequence, depositing into the
// shared budget (a completed request earns the fleet a fraction of a
// retry token — the mechanism that makes the budget a ratio).
func (p Policy) Begin() *Attempt {
	if p.Budget != nil {
		p.Budget.deposit()
	}
	return &Attempt{p: p}
}

// Attempt tracks one request's tries. Not safe for concurrent use; a
// request is sequential by nature.
type Attempt struct {
	p       Policy
	retries int
}

// Retries returns how many retries have been taken so far.
func (a *Attempt) Retries() int { return a.retries }

// Next decides whether the request may retry after a failure, and if so
// sleeps out the jittered backoff first. floor is a server-sent
// Retry-After hint (0 = none): the delay never undercuts it, even past
// the policy cap — the server knows its own saturation better than the
// client's backoff curve does. Next returns false when the attempt cap
// is reached, the shared budget is exhausted, or ctx ends (sleeping the
// rest of the backoff is then skipped).
func (a *Attempt) Next(ctx context.Context, floor time.Duration) bool {
	max := a.p.MaxAttempts
	if max <= 1 {
		return false
	}
	if a.retries+1 >= max {
		return false
	}
	if a.p.Budget != nil && !a.p.Budget.withdraw() {
		if a.p.m != nil {
			a.p.m.exhausted.Inc()
		}
		trace.FromContext(ctx).Event("retry-budget-exhausted")
		return false
	}
	a.retries++
	if a.p.m != nil {
		a.p.m.retries.Inc()
	}
	d := a.p.Delay(a.retries)
	if d < floor {
		d = floor
	}
	// Every retrying fleet consumer funnels through here, so one event
	// site puts backoff waits on whatever span the caller is under.
	trace.FromContext(ctx).Event("retry-backoff",
		trace.Dur("wait", d), trace.Int("retry", int64(a.retries)))
	return Sleep(ctx, d) == nil
}

// Sleep blocks for d or until ctx ends, returning ctx's error in the
// latter case. d <= 0 returns immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Budget is a shared retry budget (Finagle-style token bucket): every
// request deposits ratio tokens, every retry withdraws one. Under
// normal operation the bucket sits full and retries are free; in a
// fleet-wide outage the bucket drains in O(burst) requests and further
// retries fail fast — the property that keeps N clients' retries from
// multiplying a fleet's recovery load by MaxAttempts.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

// NewBudget builds a budget allowing a sustained retries-per-request
// ratio with a burst-sized reserve (the bucket starts full, so the
// first failures of a healthy fleet always get their retries).
func NewBudget(ratio float64, burst int) *Budget {
	if burst < 1 {
		burst = 1
	}
	if ratio < 0 {
		ratio = 0
	}
	return &Budget{tokens: float64(burst), max: float64(burst), ratio: ratio}
}

func (b *Budget) deposit() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

func (b *Budget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
