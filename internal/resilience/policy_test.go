package resilience

import (
	"context"
	"testing"
	"time"
)

func TestDelayFullJitter(t *testing.T) {
	// With the rand seam pinned to "always the ceiling", Delay exposes
	// the exponential cap sequence; with "always zero" it shows the
	// jitter floor is zero.
	pMax := Policy{Base: 100 * time.Millisecond, Max: time.Second,
		Rand: func(n int64) int64 { return n - 1 }}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second}
	for i, w := range want {
		if got := pMax.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) ceiling = %v, want %v", i+1, got, w)
		}
	}
	pMin := Policy{Base: 100 * time.Millisecond, Max: time.Second,
		Rand: func(int64) int64 { return 0 }}
	if got := pMin.Delay(3); got != 0 {
		t.Errorf("Delay floor = %v, want 0", got)
	}
	// Unpinned, the delay stays within [0, ceiling].
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for k := 1; k <= 8; k++ {
		d := p.Delay(k)
		if d < 0 || d > 80*time.Millisecond {
			t.Fatalf("Delay(%d) = %v outside [0, 80ms]", k, d)
		}
	}
}

func TestAttemptCapAndRetryAfterFloor(t *testing.T) {
	p := Policy{Base: time.Microsecond, Max: time.Microsecond, MaxAttempts: 3,
		Rand: func(int64) int64 { return 0 }}
	a := p.Begin()
	ctx := context.Background()
	if !a.Next(ctx, 0) || !a.Next(ctx, 0) {
		t.Fatal("first two retries should be admitted")
	}
	if a.Next(ctx, 0) {
		t.Fatal("third retry exceeds MaxAttempts=3")
	}
	if a.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", a.Retries())
	}

	// A Retry-After floor must stretch the sleep even when the jittered
	// delay would be ~zero.
	a2 := p.Begin()
	t0 := time.Now()
	if !a2.Next(ctx, 50*time.Millisecond) {
		t.Fatal("retry with floor should be admitted")
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("slept %v, want >= 50ms (Retry-After floor)", d)
	}
}

func TestAttemptObservesContext(t *testing.T) {
	p := Policy{Base: time.Hour, Max: time.Hour, MaxAttempts: 5,
		Rand: func(n int64) int64 { return n - 1 }}
	ctx, cancel := context.WithCancel(context.Background())
	a := p.Begin()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	if a.Next(ctx, 0) {
		t.Fatal("canceled context must refuse the retry")
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatal("Next slept out the backoff despite cancellation")
	}
}

func TestBudgetFailsFastDuringOutage(t *testing.T) {
	// ratio 0.5, burst 4: a dead fleet gets 4 burst retries, then every
	// request earns only half a retry — so sustained failure sees
	// retries refused, not multiplied.
	b := NewBudget(0.5, 4)
	p := Policy{Base: time.Microsecond, Max: time.Microsecond, MaxAttempts: 10, Budget: b,
		Rand: func(int64) int64 { return 0 }}
	ctx := context.Background()
	granted := 0
	for req := 0; req < 8; req++ {
		a := p.Begin()
		for a.Next(ctx, 0) {
			granted++
		}
	}
	// The bucket starts full at the burst (4), so the first request's
	// deposit is lost to the cap and its retries drain the reserve; each
	// later request earns half a token. 4 + floor-paced 3 = 7 grants,
	// even though MaxAttempts alone would have allowed 9 per request.
	if granted != 7 {
		t.Fatalf("outage granted %d retries, want 7 (burst + ratio-paced)", granted)
	}

	// Recovery: successful traffic (deposits without withdrawals)
	// refills the bucket.
	for i := 0; i < 4; i++ {
		p.Begin()
	}
	a := p.Begin()
	if !a.Next(ctx, 0) {
		t.Fatal("refilled budget should admit a retry again")
	}
}

func TestUnlimitedPolicyWithoutBudget(t *testing.T) {
	p := Policy{Base: time.Microsecond, Max: time.Microsecond, MaxAttempts: 4,
		Rand: func(int64) int64 { return 0 }}
	a := p.Begin()
	n := 0
	for a.Next(context.Background(), 0) {
		n++
	}
	if n != 3 {
		t.Fatalf("no-budget policy granted %d retries, want MaxAttempts-1 = 3", n)
	}
}
