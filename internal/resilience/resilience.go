// Package resilience is the shared fleet-client substrate: the one
// implementation of "talk to a fleet of hydra serve members and keep
// working while some of them misbehave" that every remote consumer —
// scan.RemoteSource, serve.RemoteRunner, the remote:// sqldriver DSN —
// builds on, replacing their previously divergent rotation loops.
//
// Three cooperating pieces:
//
//   - Tracker: per-member state (healthy / draining / open-breaker) kept
//     current by background GET /healthz probes, plus EWMAs of observed
//     stream latency and rows/s fed by the consumers — the signals a
//     throughput-weighted scheduler reads. Pick returns the next usable
//     member in round-robin order, skipping draining members and members
//     whose breaker is open.
//   - Breaker: a per-member circuit breaker. Consecutive failures open
//     it; after a cooldown one probe (a health probe or one admitted
//     request) re-closes it on success or re-opens it on failure.
//     While open, the member costs nothing: no connection attempts, no
//     timeouts, no retry-storm amplification.
//   - Policy: capped exponential backoff with full jitter and a shared
//     retry Budget. The jitter decorrelates clients that failed
//     together; the budget makes a fleet-wide outage fail fast (retries
//     are a bounded fraction of requests, not a multiplier on them). A
//     server-sent Retry-After is honored as a floor under the jittered
//     delay.
//
// Every state change lands in internal/obs: breaker transitions, probe
// outcomes, member-state counts, retries, budget exhaustion, and the
// per-member EWMA gauges — one metric namespace (hydra_fleet_*) for the
// whole client side of the fleet.
package resilience

import (
	"net/http"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
)

// Defaults for the zero Options value. They suit a LAN fleet serving
// streams that run seconds to minutes; tune via Options for anything
// unusual.
const (
	DefaultProbeInterval    = 1 * time.Second
	DefaultProbeTimeout     = 2 * time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
	DefaultRetryBase        = 100 * time.Millisecond
	DefaultRetryMax         = 5 * time.Second
	DefaultRetryBudget      = 0.2
	DefaultBudgetBurst      = 10
)

// Options tunes the whole substrate. The zero value means "defaults
// everywhere" — which is what the consumers pass unless the operator
// overrides something.
type Options struct {
	// ProbeInterval is how often each member's /healthz is probed in the
	// background. 0 means DefaultProbeInterval; negative disables
	// probing (member state then moves only on request outcomes).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 = DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// BreakerThreshold is how many consecutive failures open a member's
	// breaker (0 = DefaultBreakerThreshold; negative disables the
	// breaker — every member always admits requests).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// its half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// RetryBase is the first retry's maximum backoff; each further retry
	// doubles it, capped at RetryMax, and the actual delay is drawn
	// uniformly from [0, cap] ("full jitter"). 0 means DefaultRetryBase.
	RetryBase time.Duration
	// RetryMax caps the backoff growth (0 = DefaultRetryMax).
	RetryMax time.Duration
	// MaxAttempts bounds total tries per request, first attempt
	// included. 0 lets each consumer pick its own default (typically
	// scaled to fleet size).
	MaxAttempts int
	// RetryBudget is the sustained retries-per-request ratio the shared
	// budget allows (0 = DefaultRetryBudget; negative = unlimited
	// retries, no budget). The budget is what turns "every client
	// retries N times" into "the fleet as a whole absorbs a bounded
	// amount of retry traffic" during a full outage.
	RetryBudget float64
	// Client issues health probes; nil builds one with ProbeTimeout.
	Client *http.Client
	// Registry receives the substrate's metrics; nil means obs.Default.
	Registry *obs.Registry
}

// withDefaults resolves the zero fields.
func (o Options) withDefaults() Options {
	if o.ProbeInterval == 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.RetryBase <= 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.RetryMax <= 0 {
		o.RetryMax = DefaultRetryMax
	}
	if o.Registry == nil {
		o.Registry = obs.Default
	}
	return o
}

// Policy builds the retry policy these options describe, sharing budget
// with every other request through the same tracker. layer labels the
// retry metrics ("scan", "runner", "orchestrate").
func (o Options) policy(layer string, budget *Budget) Policy {
	o = o.withDefaults()
	return Policy{
		Base:        o.RetryBase,
		Max:         o.RetryMax,
		MaxAttempts: o.MaxAttempts,
		Budget:      budget,
		m:           policyMetrics(o.Registry, layer),
	}
}

// newBudget builds the shared retry budget the options describe (nil
// when budgets are disabled).
func (o Options) newBudget() *Budget {
	if o.RetryBudget < 0 {
		return nil
	}
	ratio := o.RetryBudget
	if ratio == 0 {
		ratio = DefaultRetryBudget
	}
	return NewBudget(ratio, DefaultBudgetBurst)
}
