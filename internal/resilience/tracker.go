package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
)

// ErrNoMembers is returned (wrapped) by consumers when Pick finds no
// usable fleet member: every breaker is open and still cooling down.
// Failing fast here — instead of dialing members known to be down — is
// the breaker's whole point during a fleet-wide outage.
var ErrNoMembers = errors.New("resilience: no fleet member available (all breakers open)")

// ewmaAlpha weights each new observation into the member EWMAs; ~0.3
// makes the EWMA settle within a handful of streams without tracking
// every wobble.
const ewmaAlpha = 0.3

// MemberState is a fleet member's position as the tracker sees it.
type MemberState int

const (
	// MemberHealthy members take new streams.
	MemberHealthy MemberState = iota
	// MemberDraining members answered /healthz with status "draining":
	// they finish in-flight streams but refuse new ones, so Pick skips
	// them (using one as a last resort only when nothing else admits).
	MemberDraining
	// MemberOpen members have an open (or probing half-open) breaker.
	MemberOpen
)

// String implements fmt.Stringer (and the metric label values).
func (s MemberState) String() string {
	switch s {
	case MemberDraining:
		return "draining"
	case MemberOpen:
		return "open"
	default:
		return "healthy"
	}
}

// Member is one fleet member's tracked state: its breaker, its drain
// flag, and EWMAs of what the consumers observed talking to it.
type Member struct {
	// URL is the member's base URL ("http://host:port").
	URL string

	breaker  *Breaker
	draining atomic.Bool

	mu       sync.Mutex
	latEWMA  float64 // seconds; 0 = no observation yet
	rateEWMA float64 // rows per second
	latG     *obs.FloatGauge
	rateG    *obs.FloatGauge
}

// State returns the member's current position. Draining wins over an
// open breaker: a draining member is leaving deliberately.
func (m *Member) State() MemberState {
	if m.draining.Load() {
		return MemberDraining
	}
	if m.breaker.State() != BreakerClosed {
		return MemberOpen
	}
	return MemberHealthy
}

// Draining reports whether the member's last probe said "draining".
func (m *Member) Draining() bool { return m.draining.Load() }

// Breaker exposes the member's breaker for outcome reporting.
func (m *Member) Breaker() *Breaker { return m.breaker }

// ReportSuccess records a request that worked: it closes the breaker
// and, when the consumer measured them, feeds the latency (time to
// first byte or whole-call wall time) and rows/s EWMAs the future
// fleet scheduler reads. Zero-valued measurements are skipped.
func (m *Member) ReportSuccess(latency time.Duration, rowsPerSec float64) {
	m.breaker.Success()
	m.mu.Lock()
	if latency > 0 {
		m.latEWMA = blend(m.latEWMA, latency.Seconds())
		m.latG.Set(m.latEWMA)
	}
	if rowsPerSec > 0 {
		m.rateEWMA = blend(m.rateEWMA, rowsPerSec)
		m.rateG.Set(m.rateEWMA)
	}
	m.mu.Unlock()
}

// ReportFailure records a failed request. Capacity 503s must NOT be
// reported here — a busy member is healthy.
func (m *Member) ReportFailure() { m.breaker.Failure() }

// LatencyEWMA returns the member's smoothed observed latency in
// seconds (0 until the first observation).
func (m *Member) LatencyEWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latEWMA
}

// RateEWMA returns the member's smoothed observed rows/s (0 until the
// first observation).
func (m *Member) RateEWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rateEWMA
}

func blend(cur, x float64) float64 {
	if cur == 0 {
		return x
	}
	return cur + ewmaAlpha*(x-cur)
}

// trackerMetrics are the substrate's instruments, resolved once.
type trackerMetrics struct {
	transOpen, transHalf, transClosed   *obs.Counter
	probeOK, probeDraining, probeFailed *obs.Counter
	stHealthy, stDraining, stOpen       *obs.Gauge
	pickNone                            *obs.Counter
}

func newTrackerMetrics(reg *obs.Registry) trackerMetrics {
	trans := func(to string) *obs.Counter {
		return reg.Counter("hydra_fleet_breaker_transitions_total",
			"circuit breaker state transitions, by destination state", obs.L("to", to))
	}
	probe := func(result string) *obs.Counter {
		return reg.Counter("hydra_fleet_probes_total",
			"background health probe outcomes", obs.L("result", result))
	}
	st := func(state string) *obs.Gauge {
		return reg.Gauge("hydra_fleet_members",
			"fleet members by tracked state", obs.L("state", state))
	}
	return trackerMetrics{
		transOpen: trans("open"), transHalf: trans("half_open"), transClosed: trans("closed"),
		probeOK: probe("ok"), probeDraining: probe("draining"), probeFailed: probe("failed"),
		stHealthy: st("healthy"), stDraining: st("draining"), stOpen: st("open"),
		pickNone: reg.Counter("hydra_fleet_pick_unavailable_total",
			"member selections that found every breaker open"),
	}
}

// Tracker watches a fixed fleet of members. Construct with NewTracker,
// start the background probes with Start, stop them with Close.
type Tracker struct {
	members []*Member
	opts    Options
	client  *http.Client
	next    atomic.Uint64
	m       trackerMetrics
	budget  *Budget

	cancel context.CancelFunc
	done   chan struct{}
}

// NewTracker builds a tracker over the fleet's base URLs (already
// validated by the consumer). Probing does not start until Start.
func NewTracker(urls []string, opts Options) *Tracker {
	opts = opts.withDefaults()
	t := &Tracker{
		opts:   opts,
		m:      newTrackerMetrics(opts.Registry),
		budget: opts.newBudget(),
	}
	onChange := func(to BreakerState) {
		switch to {
		case BreakerOpen:
			t.m.transOpen.Inc()
		case BreakerHalfOpen:
			t.m.transHalf.Inc()
		default:
			t.m.transClosed.Inc()
		}
		t.updateStateGauges()
	}
	for _, u := range urls {
		m := &Member{
			URL:     u,
			breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, onChange),
			latG: opts.Registry.FloatGauge("hydra_fleet_member_latency_ewma_seconds",
				"EWMA of observed stream latency per fleet member", obs.L("member", u)),
			rateG: opts.Registry.FloatGauge("hydra_fleet_member_rows_per_sec_ewma",
				"EWMA of observed stream rows/s per fleet member", obs.L("member", u)),
		}
		t.members = append(t.members, m)
	}
	t.client = opts.Client
	if t.client == nil {
		t.client = &http.Client{Timeout: opts.ProbeTimeout}
	}
	t.updateStateGauges()
	return t
}

// Policy returns the retry policy for one consumer layer, wired to the
// tracker's shared budget; maxAttempts overrides the options' cap when
// the options leave it zero.
func (t *Tracker) Policy(layer string, maxAttempts int) Policy {
	p := t.opts.policy(layer, t.budget)
	if p.MaxAttempts == 0 {
		p.MaxAttempts = maxAttempts
	}
	return p
}

// Members returns the tracked members in fleet order.
func (t *Tracker) Members() []*Member { return t.members }

// Size returns the fleet size.
func (t *Tracker) Size() int { return len(t.members) }

// Pick returns the next usable member in round-robin order: healthy
// members first, then — only when no healthy member's breaker admits —
// draining members (they answer new streams with 503 + Retry-After,
// which the caller already honors, so they are a safe last resort).
// nil means every member's breaker refused: fail fast, the fleet is
// down and the probes will notice recovery.
func (t *Tracker) Pick() *Member {
	n := len(t.members)
	if n == 0 {
		return nil
	}
	start := int(t.next.Add(1) - 1)
	var fallback *Member
	for i := 0; i < n; i++ {
		m := t.members[(start+i)%n]
		if m.Draining() {
			if fallback == nil && m.breaker.State() == BreakerClosed {
				fallback = m
			}
			continue
		}
		if m.breaker.Allow() {
			return m
		}
	}
	// No healthy member admitted; try draining members' breakers for
	// real (consuming half-open slots only now, not during pass 1).
	if fallback != nil && fallback.breaker.Allow() {
		return fallback
	}
	t.m.pickNone.Inc()
	return nil
}

// Start launches the background probe loop (a no-op when probing is
// disabled or already started).
func (t *Tracker) Start() {
	if t.opts.ProbeInterval < 0 || t.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.cancel = cancel
	t.done = make(chan struct{})
	go t.probeLoop(ctx)
}

// Close stops the probe loop and waits for it to exit.
func (t *Tracker) Close() {
	if t.cancel == nil {
		return
	}
	t.cancel()
	<-t.done
	t.cancel = nil
}

func (t *Tracker) probeLoop(ctx context.Context) {
	defer close(t.done)
	tick := time.NewTicker(t.opts.ProbeInterval)
	defer tick.Stop()
	t.probeAll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t.probeAll(ctx)
		}
	}
}

// probeAll probes every member concurrently, so one black-holed member
// cannot stretch the sweep past the probe timeout.
func (t *Tracker) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range t.members {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			t.probe(ctx, m)
		}(m)
	}
	wg.Wait()
	t.updateStateGauges()
}

// probe issues one GET /healthz and folds the outcome into the member:
// drain flag from the reported status, breaker via ProbeSuccess (which
// respects an open breaker's cooldown) or Failure.
func (t *Tracker) probe(ctx context.Context, m *Member) {
	pctx, cancel := context.WithTimeout(ctx, t.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.URL+"/healthz", nil)
	if err != nil {
		t.m.probeFailed.Inc()
		m.breaker.Failure()
		return
	}
	resp, err := t.client.Do(req)
	if err != nil {
		t.m.probeFailed.Inc()
		m.breaker.Failure()
		return
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&doc) != nil {
		t.m.probeFailed.Inc()
		m.breaker.Failure()
		return
	}
	if doc.Status == "draining" {
		t.m.probeDraining.Inc()
		m.draining.Store(true)
	} else {
		t.m.probeOK.Inc()
		m.draining.Store(false)
	}
	m.breaker.ProbeSuccess()
}

func (t *Tracker) updateStateGauges() {
	var healthy, draining, open int64
	for _, m := range t.members {
		switch m.State() {
		case MemberDraining:
			draining++
		case MemberOpen:
			open++
		default:
			healthy++
		}
	}
	t.m.stHealthy.Set(healthy)
	t.m.stDraining.Set(draining)
	t.m.stOpen.Set(open)
}
