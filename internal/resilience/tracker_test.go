package resilience

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
)

// healthServer is a fake fleet member: its /healthz answer is switchable
// between ok, draining, and down.
type healthServer struct {
	ts    *httptest.Server
	state atomic.Value // "ok" | "draining" | "down"
}

func newHealthServer(t *testing.T) *healthServer {
	t.Helper()
	hs := &healthServer{}
	hs.state.Store("ok")
	hs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		switch hs.state.Load().(string) {
		case "down":
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
		case "draining":
			fmt.Fprintf(w, `{"status": "draining"}`)
		default:
			fmt.Fprintf(w, `{"status": "ok"}`)
		}
	}))
	t.Cleanup(hs.ts.Close)
	return hs
}

func testOptions(interval time.Duration) Options {
	return Options{
		ProbeInterval:    interval,
		ProbeTimeout:     500 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
		Registry:         obs.NewRegistry(),
	}
}

// waitFor polls cond for up to 3s — probe loops are asynchronous.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTrackerDetectsDrainWithinOneProbeInterval(t *testing.T) {
	a, b := newHealthServer(t), newHealthServer(t)
	tr := NewTracker([]string{a.ts.URL, b.ts.URL}, testOptions(50*time.Millisecond))
	tr.Start()
	defer tr.Close()

	waitFor(t, "both members healthy", func() bool {
		for _, m := range tr.Members() {
			if m.State() != MemberHealthy {
				return false
			}
		}
		return true
	})

	a.state.Store("draining")
	waitFor(t, "member A marked draining", func() bool {
		return tr.Members()[0].State() == MemberDraining
	})

	// Pick must now return only B.
	for i := 0; i < 10; i++ {
		m := tr.Pick()
		if m == nil || m.URL != b.ts.URL {
			t.Fatalf("Pick returned %v, want the non-draining member", m)
		}
	}

	// Drain is reversible: the member comes back.
	a.state.Store("ok")
	waitFor(t, "member A healthy again", func() bool {
		return tr.Members()[0].State() == MemberHealthy
	})
}

func TestTrackerProbesOpenBreakerOnDeadMember(t *testing.T) {
	a, b := newHealthServer(t), newHealthServer(t)
	a.state.Store("down")
	tr := NewTracker([]string{a.ts.URL, b.ts.URL}, testOptions(30*time.Millisecond))
	tr.Start()
	defer tr.Close()

	// Threshold 2: two failed probes open A's breaker without any
	// client traffic ever touching the dead member.
	waitFor(t, "dead member's breaker open", func() bool {
		return tr.Members()[0].State() == MemberOpen
	})
	for i := 0; i < 10; i++ {
		if m := tr.Pick(); m == nil || m.URL != b.ts.URL {
			t.Fatalf("Pick returned %v, want the healthy member", m)
		}
	}

	// Recovery: probes re-admit the member after the cooldown.
	a.state.Store("ok")
	waitFor(t, "recovered member re-admitted", func() bool {
		return tr.Members()[0].State() == MemberHealthy
	})
}

func TestPickFailsFastWhenAllOpen(t *testing.T) {
	// No probing: state moves on reported outcomes only.
	tr := NewTracker([]string{"http://a.invalid", "http://b.invalid"}, Options{
		ProbeInterval:    -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Registry:         obs.NewRegistry(),
	})
	for _, m := range tr.Members() {
		m.ReportFailure()
	}
	if m := tr.Pick(); m != nil {
		t.Fatalf("Pick = %v, want nil when every breaker is open", m)
	}
}

func TestPickFallsBackToDrainingMember(t *testing.T) {
	tr := NewTracker([]string{"http://a.invalid", "http://b.invalid"}, Options{
		ProbeInterval:    -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Registry:         obs.NewRegistry(),
	})
	ms := tr.Members()
	ms[0].ReportFailure()      // A: breaker open
	ms[1].draining.Store(true) // B: draining but alive
	m := tr.Pick()
	if m == nil || m.URL != "http://b.invalid" {
		t.Fatalf("Pick = %v, want the draining member as last resort", m)
	}
}

func TestMemberEWMA(t *testing.T) {
	tr := NewTracker([]string{"http://a.invalid"}, Options{
		ProbeInterval: -1, Registry: obs.NewRegistry(),
	})
	m := tr.Members()[0]
	m.ReportSuccess(100*time.Millisecond, 1000)
	if got := m.LatencyEWMA(); got != 0.1 {
		t.Fatalf("first latency observation = %v, want 0.1", got)
	}
	m.ReportSuccess(200*time.Millisecond, 2000)
	if got := m.LatencyEWMA(); got <= 0.1 || got >= 0.2 {
		t.Fatalf("EWMA after 0.1, 0.2 = %v, want strictly between", got)
	}
	if got := m.RateEWMA(); got <= 1000 || got >= 2000 {
		t.Fatalf("rate EWMA = %v, want strictly between 1000 and 2000", got)
	}
}

func TestTrackerMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	opts := testOptions(30 * time.Millisecond)
	opts.Registry = reg
	a := newHealthServer(t)
	a.state.Store("down")
	tr := NewTracker([]string{a.ts.URL}, opts)
	tr.Start()
	defer tr.Close()
	waitFor(t, "breaker open", func() bool { return tr.Members()[0].State() == MemberOpen })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`hydra_fleet_breaker_transitions_total{to="open"} `,
		`hydra_fleet_probes_total{result="failed"} `,
		`hydra_fleet_members{state="open"} 1`,
		`hydra_fleet_member_latency_ewma_seconds{member="` + a.ts.URL + `"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
