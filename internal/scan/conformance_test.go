// Cross-backend conformance: for any Spec, SummarySource, DirSource,
// and RemoteSource must yield the identical sequence of batches — same
// boundaries, same values, same order. This suite is the contract named
// in the package comment; every backend bug is a diff against the
// summary reference.
package scan_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/scan"
	"github.com/dsl-repro/hydra/internal/serve"
	"github.com/dsl-repro/hydra/internal/summary"
)

func testSummary() *summary.Summary {
	tRel := &summary.RelationSummary{
		Table: "T", Cols: []string{"C"},
		Rows: []summary.RelRow{
			{Vals: []int64{2}, Count: 900},
			{Vals: []int64{7}, Count: 613},
		},
		Total: 1513,
	}
	sRel := &summary.RelationSummary{
		Table: "S", Cols: []string{"A", "B"}, FKCols: []string{"t_fk"}, FKRefs: []string{"T"},
		Rows: []summary.RelRow{
			{Vals: []int64{20, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 3001},
			{Vals: []int64{20, 40}, FKs: []int64{901}, FKSpans: []int64{613}, Count: 2500},
			{Vals: []int64{61, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 2707},
		},
		Total: 8208,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"S": sRel, "T": tRel}}
}

// capturedBatch is one batch deep-copied out of a scan.
type capturedBatch struct {
	start int64
	cols  [][]int64
}

// drain runs one scan to completion and deep-copies its batch sequence.
func drain(t *testing.T, src scan.Source, spec scan.Spec) []capturedBatch {
	t.Helper()
	sc, err := src.Scan(context.Background(), spec)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	defer sc.Close()
	var out []capturedBatch
	for sc.Next() {
		b := sc.Batch()
		cb := capturedBatch{start: b.Start, cols: make([][]int64, len(b.Cols))}
		for c, col := range b.Cols {
			cb.cols[c] = append([]int64(nil), col[:b.N]...)
		}
		out = append(out, cb)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan err: %v", err)
	}
	return out
}

func diffBatches(t *testing.T, name string, got, want []capturedBatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d batches, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i].start != want[i].start {
			t.Fatalf("%s: batch %d starts at %d, want %d", name, i, got[i].start, want[i].start)
		}
		if len(got[i].cols) != len(want[i].cols) {
			t.Fatalf("%s: batch %d has %d cols, want %d", name, i, len(got[i].cols), len(want[i].cols))
		}
		for c := range want[i].cols {
			gc, wc := got[i].cols[c], want[i].cols[c]
			if len(gc) != len(wc) {
				t.Fatalf("%s: batch %d col %d has %d rows, want %d", name, i, c, len(gc), len(wc))
			}
			for r := range wc {
				if gc[r] != wc[r] {
					t.Fatalf("%s: batch %d col %d row %d = %d, want %d (pk %d)",
						name, i, c, r, gc[r], wc[r], got[i].start+int64(r))
				}
			}
		}
	}
}

// materializeDir produces one scannable directory.
func materializeDir(t *testing.T, sum *summary.Summary, format, compress string, shards int, spread bool) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < shards; i++ {
		if _, err := matgen.Materialize(sum, matgen.Options{
			Dir: dir, Format: format, Compress: compress,
			Shards: shards, Shard: i, Workers: 2, BatchRows: 512, FKSpread: spread,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestConformance is the acceptance matrix: every spec against every
// backend, with the summary source as the reference.
func TestConformance(t *testing.T) {
	sum := testSummary()
	ref := scan.NewSummarySource(sum)

	// One fleet shared by all remote cases.
	srv, err := serve.NewServer(sum, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv)
	defer ts1.Close()
	ts2 := httptest.NewServer(srv)
	defer ts2.Close()
	remote, err := scan.NewRemoteSource([]string{ts1.URL, ts2.URL}, scan.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	specs := []scan.Spec{
		{Table: "T"},
		{Table: "S", BatchRows: 777},
		{Table: "S", Columns: []string{"S_pk", "A", "t_fk"}, BatchRows: 1000},
		{Table: "S", Columns: []string{"t_fk", "B"}, BatchRows: 513}, // reordered, pk-less
		{Table: "S", StartPK: 2500, EndPK: 7001, BatchRows: 640},
		{Table: "S", Shards: 3, Shard: 1, BatchRows: 999},
		{Table: "S", StartPK: 100, EndPK: 8000, Shards: 4, Shard: 3, Columns: []string{"A", "S_pk"}, BatchRows: 451},
		{Table: "S", StartPK: 9000},                          // empty: past the end
		{Table: "T", StartPK: 900, EndPK: 900, BatchRows: 1}, // single row
		// Filtered specs: every backend must prune to the identical
		// batch sequence, whatever its pushdown mechanism.
		{Table: "S", Filter: pred.Col("A").Eq(20), BatchRows: 777},                                                               // drops a whole run group
		{Table: "S", Filter: pred.Col("A").Eq(99)},                                                                               // empty result
		{Table: "S", Filter: pred.Col("S_pk").In(4000, 4007), BatchRows: 513},                                                    // ~0.1% selectivity
		{Table: "S", Filter: pred.Col("A").AtLeast(0), BatchRows: 999},                                                           // filtered, everything passes
		{Table: "S", Filter: pred.Col("t_fk").In(100, 260), BatchRows: 640},                                                      // FK column (per-row under spread)
		{Table: "S", StartPK: 2500, EndPK: 7001, Filter: pred.Col("B").Eq(40)},                                                   // filter + pk range
		{Table: "S", Columns: []string{"t_fk", "B"}, BatchRows: 500, Filter: pred.Col("A").In(20, 60).And(pred.Col("B").Eq(15))}, // pk-less projection + filter on a projected-out column
	}

	for _, spread := range []bool{false, true} {
		// Directory backends must be materialized with the same FK layout
		// the spec asks the generating backends for.
		dirs := map[string]string{
			"dir/csv":      materializeDir(t, sum, "csv", "", 1, spread),
			"dir/csv+gzip": materializeDir(t, sum, "csv", "gzip", 3, spread),
			"dir/jsonl":    materializeDir(t, sum, "jsonl", "", 2, spread),
			"dir/heap":     materializeDir(t, sum, "heap", "", 3, spread),
		}
		for _, spec := range specs {
			spec.FKSpread = spread
			want := drain(t, ref, spec)
			name := fmt.Sprintf("spread=%v/%s", spread, specName(spec))
			t.Run(name, func(t *testing.T) {
				for label, dir := range dirs {
					src, err := scan.OpenDir(dir)
					if err != nil {
						t.Fatal(err)
					}
					diffBatches(t, label, drain(t, src, spec), want)
				}
				diffBatches(t, "remote", drain(t, remote, spec), want)
			})
		}
	}
}

func specName(s scan.Spec) string {
	parts := []string{s.Table}
	if len(s.Columns) > 0 {
		parts = append(parts, "cols="+strings.Join(s.Columns, "+"))
	}
	if s.StartPK != 0 || s.EndPK != 0 {
		parts = append(parts, fmt.Sprintf("pk=%d-%d", s.StartPK, s.EndPK))
	}
	if s.Shards > 1 {
		parts = append(parts, fmt.Sprintf("shard=%d_%d", s.Shard, s.Shards))
	}
	if s.BatchRows != 0 {
		parts = append(parts, fmt.Sprintf("batch=%d", s.BatchRows))
	}
	if !s.Filter.Empty() {
		parts = append(parts, "where="+s.Filter.Encode())
	}
	return strings.Join(parts, ",")
}

// truncatingHandler kills every Nth stream after a byte budget, forcing
// RemoteSource to resume mid-table on the next fleet member.
type truncatingHandler struct {
	inner http.Handler
	limit int64
	n     int
}

type truncWriter struct {
	http.ResponseWriter
	left *int64
}

func (w *truncWriter) Write(p []byte) (int, error) {
	if *w.left <= 0 {
		panic(http.ErrAbortHandler) // tear the connection, no clean EOF
	}
	if int64(len(p)) > *w.left {
		w.ResponseWriter.Write(p[:*w.left])
		*w.left = 0
		panic(http.ErrAbortHandler)
	}
	*w.left -= int64(len(p))
	return w.ResponseWriter.Write(p)
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.n++
	if h.n%2 == 1 && !strings.Contains(r.URL.RawQuery, "info=1") {
		left := h.limit
		h.inner.ServeHTTP(&truncWriter{ResponseWriter: w, left: &left}, r)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestRemoteResumeMidTable proves resume-on-offset: with a fleet whose
// members keep dying mid-stream, the scan still delivers the exact
// reference batch sequence.
func TestRemoteResumeMidTable(t *testing.T) {
	sum := testSummary()
	srv, err := serve.NewServer(sum, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := httptest.NewServer(&truncatingHandler{inner: srv, limit: 4 << 10})
	defer flaky.Close()
	healthy := httptest.NewServer(srv)
	defer healthy.Close()

	remote, err := scan.NewRemoteSource([]string{flaky.URL, healthy.URL}, scan.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := scan.Spec{Table: "S", BatchRows: 500, Columns: []string{"S_pk", "A", "B"}}
	want := drain(t, scan.NewSummarySource(sum), spec)
	diffBatches(t, "flaky-fleet", drain(t, remote, spec), want)
}

// TestRemoteResumeFiltered proves pk-based resume under predicate
// pushdown: the stream carries only matching rows, so when a member
// dies the scan must resume at the last delivered pk, not a row count
// — and the pk travels even when the projection leaves it out.
func TestRemoteResumeFiltered(t *testing.T) {
	sum := testSummary()
	srv, err := serve.NewServer(sum, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := httptest.NewServer(&truncatingHandler{inner: srv, limit: 4 << 10})
	defer flaky.Close()
	healthy := httptest.NewServer(srv)
	defer healthy.Close()

	remote, err := scan.NewRemoteSource([]string{flaky.URL, healthy.URL}, scan.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := scan.NewSummarySource(sum)
	for name, spec := range map[string]scan.Spec{
		"with-pk": {Table: "S", BatchRows: 500, Columns: []string{"S_pk", "A", "B"}, Filter: pred.Col("B").Eq(15)},
		"no-pk":   {Table: "S", BatchRows: 500, Columns: []string{"A", "B"}, Filter: pred.Col("B").Eq(15)},
	} {
		t.Run(name, func(t *testing.T) {
			diffBatches(t, name, drain(t, remote, spec), drain(t, ref, spec))
		})
	}
}

// filterStrippingHandler forwards to the real server but removes the
// filter echo header — impersonating a fleet member that predates
// predicate pushdown and would silently stream every row.
type filterStrippingHandler struct{ inner http.Handler }

type headerStripWriter struct {
	http.ResponseWriter
	name string
}

func (w *headerStripWriter) WriteHeader(code int) {
	w.Header().Del(w.name)
	w.ResponseWriter.WriteHeader(code)
}

func (w *headerStripWriter) Write(p []byte) (int, error) {
	w.Header().Del(w.name) // the first body write flushes headers too
	return w.ResponseWriter.Write(p)
}

func (h *filterStrippingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(&headerStripWriter{ResponseWriter: w, name: "X-Hydra-Filter"}, r)
}

// TestRemoteFilterEchoRequired proves the downgrade guard: a filtered
// scan against a fleet that does not acknowledge the filter fails
// loudly instead of returning unfiltered rows.
func TestRemoteFilterEchoRequired(t *testing.T) {
	sum := testSummary()
	srv, err := serve.NewServer(sum, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	old := httptest.NewServer(&filterStrippingHandler{inner: srv})
	defer old.Close()
	remote, err := scan.NewRemoteSource([]string{old.URL}, scan.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := remote.Scan(context.Background(), scan.Spec{Table: "S", Filter: pred.Col("A").Eq(20)})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for sc.Next() {
	}
	if err := sc.Err(); err == nil || !strings.Contains(err.Error(), "did not apply filter") {
		t.Fatalf("err = %v, want filter-echo failure", err)
	}
}

// TestRemoteFleetExhausted proves the failure bound: an all-dead fleet
// surfaces an error instead of spinning.
func TestRemoteFleetExhausted(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer dead.Close()
	remote, err := scan.NewRemoteSource([]string{dead.URL}, scan.RemoteOptions{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Scan(context.Background(), scan.Spec{Table: "S"}); err == nil ||
		!strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err = %v, want fleet exhausted", err)
	}
}

// TestDirChecksumLazyVerify proves the lazy integrity check: corrupting
// one byte of a part fails the scan that opens it, with the checksum
// named; a scan that never reaches the corrupt part still succeeds.
func TestDirChecksumLazyVerify(t *testing.T) {
	sum := testSummary()
	dir := materializeDir(t, sum, "csv", "", 3, false)
	src, err := scan.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the last shard's S part.
	path := dir + "/S.csv.part-002-of-003"
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// A scan confined to earlier shards never opens the corrupt part.
	sc, err := src.Scan(context.Background(), scan.Spec{Table: "S", EndPK: 100})
	if err != nil {
		t.Fatal(err)
	}
	for sc.Next() {
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan of clean range failed: %v", err)
	}
	sc.Close()
	// A full scan must refuse the corrupt part.
	sc, err = src.Scan(context.Background(), scan.Spec{Table: "S"})
	if err != nil {
		t.Fatal(err)
	}
	for sc.Next() {
	}
	if err := sc.Err(); err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Fatalf("err = %v, want sha256 mismatch", err)
	}
	sc.Close()
}

// TestDirPartialSplit: a directory holding only some shards scans fine
// within coverage and fails loudly beyond it.
func TestDirPartialSplit(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	for _, i := range []int{0, 1} { // shard 2 of 3 missing
		if _, err := matgen.Materialize(sum, matgen.Options{
			Dir: dir, Format: "csv", Shards: 3, Shard: i, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	src, err := scan.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := scan.Spec{Table: "S", EndPK: 5000, BatchRows: 512}
	want := drain(t, scan.NewSummarySource(sum), spec)
	diffBatches(t, "partial-dir", drain(t, src, spec), want)

	sc, err := src.Scan(context.Background(), scan.Spec{Table: "S"})
	if err != nil {
		t.Fatal(err)
	}
	for sc.Next() {
	}
	if err := sc.Err(); err == nil || !strings.Contains(err.Error(), "covers row") {
		t.Fatalf("err = %v, want coverage failure", err)
	}
	sc.Close()
}

// TestDirProjectedMaterialization: a directory materialized under a
// projection presents the projected layout as its natural one.
func TestDirProjectedMaterialization(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	if _, err := matgen.Materialize(sum, matgen.Options{
		Dir: dir, Format: "csv", Workers: 2, Columns: []string{"S_pk", "A"}, Tables: []string{"S"},
	}); err != nil {
		t.Fatal(err)
	}
	src, err := scan.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := src.Table("S")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Cols) != 2 || info.Cols[0] != "S_pk" || info.Cols[1] != "A" {
		t.Fatalf("cols = %v", info.Cols)
	}
	spec := scan.Spec{Table: "S", BatchRows: 2048}
	want := drain(t, scan.NewSummarySource(sum), scan.Spec{Table: "S", Columns: []string{"S_pk", "A"}, BatchRows: 2048})
	diffBatches(t, "projected-dir", drain(t, src, spec), want)
}

// TestScanRateLimit: pacing is applied per batch, identically for every
// backend (spot-checked on the summary source — the limiter is shared
// plumbing).
func TestScanRateLimit(t *testing.T) {
	src := scan.NewSummarySource(testSummary())
	start := time.Now()
	sc, err := src.Scan(context.Background(), scan.Spec{Table: "T", BatchRows: 500, RateLimit: 5000})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var rows int64
	for sc.Next() {
		rows += int64(sc.Batch().N)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 1513 rows at 5000 rows/s ≈ 300ms; allow generous slack below.
	if rows != 1513 || elapsed < 150*time.Millisecond {
		t.Fatalf("rows=%d in %v — rate limit not applied", rows, elapsed)
	}
}

// TestRemoteMixedFleetNeverSplices: a fleet whose members serve
// different summaries must never splice them into one scan. The data
// streams are pinned to the summary digest of the geometry (info=1)
// response, so members loaded with a different database are refused and
// the scan either completes entirely against the geometry's database or
// fails — a result mixing the two is the one forbidden outcome.
func TestRemoteMixedFleetNeverSplices(t *testing.T) {
	sumA := testSummary()
	sumB := testSummary()
	sumB.Relations["S"].Rows[0].Count += 100 // a different database
	sumB.Relations["S"].Total += 100
	srvA, err := serve.NewServer(sumA, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := serve.NewServer(sumB, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA)
	defer tsA.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()

	// Round-robin guarantees the geometry request and the first data
	// stream land on different members, so every trial exercises the
	// cross-server path the digest pin guards.
	remote, err := scan.NewRemoteSource([]string{tsA.URL, tsB.URL}, scan.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := scan.Spec{Table: "S", BatchRows: 1000}
	wantA := drain(t, scan.NewSummarySource(sumA), spec)
	wantB := drain(t, scan.NewSummarySource(sumB), spec)
	for trial := 0; trial < 4; trial++ {
		got := drain(t, remote, spec) // drain fails the test on scan errors
		if matchesBatches(got, wantA) || matchesBatches(got, wantB) {
			continue
		}
		t.Fatalf("trial %d: mixed fleet produced a scan matching neither database (%d batches)",
			trial, len(got))
	}
}

// matchesBatches reports whether two captured batch sequences are
// identical.
func matchesBatches(got, want []capturedBatch) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].start != want[i].start || len(got[i].cols) != len(want[i].cols) {
			return false
		}
		for c := range want[i].cols {
			if len(got[i].cols[c]) != len(want[i].cols[c]) {
				return false
			}
			for r := range want[i].cols[c] {
				if got[i].cols[c][r] != want[i].cols[c][r] {
					return false
				}
			}
		}
	}
	return true
}

// TestDirMixedProjectionRefused: shards materialized under different
// same-width projections must be refused at OpenDir — decoding them
// positionally against one layout would silently swap column values.
func TestDirMixedProjectionRefused(t *testing.T) {
	sum := testSummary()
	dir := t.TempDir()
	if _, err := matgen.Materialize(sum, matgen.Options{
		Dir: dir, Format: "csv", Shards: 2, Shard: 0, Tables: []string{"S"},
		Columns: []string{"S_pk", "A"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := matgen.Materialize(sum, matgen.Options{
		Dir: dir, Format: "csv", Shards: 2, Shard: 1, Tables: []string{"S"},
		Columns: []string{"A", "S_pk"}, // same width, different order
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := scan.OpenDir(dir); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("err = %v, want layout disagreement", err)
	}
}
