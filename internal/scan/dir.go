package scan

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"sort"
	"strconv"
	"strings"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/storage"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// DirSource scans a materialized shard directory — the output of
// Materialize or Orchestrate — by decoding the part files against their
// manifests. Formats csv, jsonl, and heap are scannable (plus any of
// them gzip-compressed); sql is an import artifact, not a scan target.
//
// Checksums are verified lazily: the first time a scan opens a part
// file, the file is re-hashed against the manifest's SHA-256 before a
// single row is decoded, so a scan never silently reads a corrupted or
// tampered part — but parts no scan touches cost nothing (contrast
// orchestrate.Verify, which proves the whole directory up front).
type DirSource struct {
	dir    string
	format string
	comp   matgen.Compressor
	tables map[string]*dirTable
	m      *backendMetrics
}

var _ Source = (*DirSource)(nil)

type dirTable struct {
	info  TableInfo
	parts []dirPart // sorted by start row
}

type dirPart struct {
	path     string
	start    int64 // absolute 0-based offset of the part's first row
	rows     int64
	checksum string
	header   bool // shard 0: csv header line / heap header page present
}

var manifestNameRe = regexp.MustCompile(`^manifest-\d{3}-of-\d{3}\.json$`)

// OpenDir opens a materialized directory for scanning: it reads every
// shard manifest present, checks they describe one consistent run
// (format, codec, split width), and indexes each table's parts. The
// directory may hold any subset of a split's shards; scans fail only if
// they reach a row no present part covers.
func OpenDir(dir string) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var manifests []*matgen.Manifest
	for _, e := range entries {
		if e.IsDir() || !manifestNameRe.MatchString(e.Name()) {
			continue
		}
		m, err := matgen.ReadManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		manifests = append(manifests, m)
	}
	if len(manifests) == 0 {
		return nil, fmt.Errorf("scan: %s holds no shard manifests; materialize first", dir)
	}
	s := &DirSource{dir: dir, format: manifests[0].Format, tables: map[string]*dirTable{},
		m: metricsForBackend("dir")}
	switch s.format {
	case "csv", "jsonl", "heap":
	default:
		return nil, fmt.Errorf("scan: format %q is not scannable (csv, jsonl, heap are)", s.format)
	}
	if s.comp, err = matgen.CompressorFor(manifests[0].Compression); err != nil {
		return nil, err
	}
	for _, m := range manifests {
		if m.Format != s.format || m.Compression != manifests[0].Compression {
			return nil, fmt.Errorf("scan: %s mixes materialization runs (%s+%s vs %s+%s)",
				dir, m.Format, m.Compression, s.format, manifests[0].Compression)
		}
		if m.Shards != manifests[0].Shards {
			return nil, fmt.Errorf("scan: %s mixes split widths %d and %d", dir, m.Shards, manifests[0].Shards)
		}
		for _, tr := range m.Tables {
			if tr.Path == "" || tr.Rows == 0 {
				continue
			}
			if len(tr.Cols) == 0 {
				return nil, fmt.Errorf("scan: %s: manifest for %s records no column layout; re-materialize with a current build",
					dir, tr.Table)
			}
			t := s.tables[tr.Table]
			if t == nil {
				t = &dirTable{info: TableInfo{Table: tr.Table, Cols: tr.Cols, Rows: tr.TotalRows}}
				s.tables[tr.Table] = t
			} else if t.info.Rows != tr.TotalRows || !slices.Equal(t.info.Cols, tr.Cols) {
				// Name-and-order equality, not just width: two same-width
				// projections of the same table would otherwise decode
				// positionally into swapped columns with no error.
				return nil, fmt.Errorf("scan: %s: manifests disagree on %s's layout", dir, tr.Table)
			}
			t.parts = append(t.parts, dirPart{
				path:     filepath.Join(dir, filepath.Base(tr.Path)),
				start:    tr.StartRow,
				rows:     tr.Rows,
				checksum: tr.Checksum,
				header:   m.Shard == 0,
			})
		}
	}
	for _, t := range s.tables {
		sort.Slice(t.parts, func(i, j int) bool { return t.parts[i].start < t.parts[j].start })
	}
	return s, nil
}

// Dir returns the directory being scanned.
func (s *DirSource) Dir() string { return s.dir }

// Format returns the materialization format the directory holds.
func (s *DirSource) Format() string { return s.format }

// Tables implements Source.
func (s *DirSource) Tables() ([]string, error) { return sortedNames(s.tables), nil }

// Table implements Source.
func (s *DirSource) Table(name string) (*TableInfo, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s holds no relation %q", ErrSpec, s.dir, name)
	}
	info := t.info
	info.Cols = append([]string(nil), info.Cols...)
	return &info, nil
}

// Scan implements Source. Spec.FKSpread is ignored: the directory's
// bytes already fixed the FK layout at materialization time, so a
// conforming scan requires the spec to match how the directory was
// generated.
func (s *DirSource) Scan(ctx context.Context, spec Spec) (*Scan, error) {
	t, ok := s.tables[spec.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s holds no relation %q", ErrSpec, s.dir, spec.Table)
	}
	r, err := resolve(spec, &t.info)
	if err != nil {
		return nil, err
	}
	f := &dirFiller{src: s, t: t, proj: r.proj, ncolsOut: len(r.cols), pi: -1,
		row: make([]int64, len(t.info.Cols))}
	if r.filtered {
		f.filtered, f.filt = true, r.filt
		// A restriction on the pk column doubles as a seek accelerator:
		// decoded layouts store pk abs+1 at absolute row abs, so the
		// filler can jump straight to the next admissible key — and a
		// jump past a part's end means that part is never opened, never
		// hashed, never decoded.
		for i, name := range t.info.Cols {
			if name == spec.Table+"_pk" {
				if set, ok := r.filt.Restriction(i); ok {
					f.pkSet, f.hasPK = set, true
				}
				break
			}
		}
	}
	return newScan(ctx, r, f, s.m), nil
}

// Close implements Source; open part files belong to scans, not the
// source.
func (s *DirSource) Close() error { return nil }

// dirFiller sequentially decodes a table's part files. Under a filter
// it decodes every candidate row into the full file layout, evaluates
// the bound conjunct, and keeps only the matches — except rows a pk
// restriction excludes, which are skipped (cheap line/page skips within
// a part, whole parts never even opened when the next admissible key
// lies beyond them).
type dirFiller struct {
	src      *DirSource
	t        *dirTable
	proj     []int
	ncolsOut int
	filtered bool
	filt     pred.Conjunct
	pkSet    pred.Set
	hasPK    bool

	pi       int // index of the open part, -1 before the first open
	rr       rowReader
	closers  []io.Closer
	pos      int64 // absolute row the open reader yields next
	partLeft int64 // rows remaining in the open part
	row      []int64
}

// fillCheckRows is how often the dir decode loop polls the context: a
// few thousand rows decode in well under a millisecond, so cancellation
// stays prompt without a per-row atomic load.
const fillCheckRows = 4096

func (f *dirFiller) fill(ctx context.Context, b *tuplegen.Batch, lo, hi int64) error {
	n := int(hi - lo)
	cols := prepBatch(b, f.ncolsOut, n, lo)
	if f.filtered {
		return f.fillFiltered(ctx, b, cols, lo, hi)
	}
	for i := 0; i < n; i++ {
		if i%fillCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		abs := lo + int64(i)
		if err := f.seek(ctx, abs); err != nil {
			return err
		}
		if err := f.rr.next(f.row); err != nil {
			p := f.t.parts[f.pi]
			return fmt.Errorf("scan: %s: row %d: %w", p.path, abs, err)
		}
		if f.proj == nil {
			for c := range cols {
				cols[c][i] = f.row[c]
			}
		} else {
			for c, src := range f.proj {
				cols[c][i] = f.row[src]
			}
		}
		f.pos++
		f.partLeft--
	}
	return nil
}

// fillFiltered decodes the cell's candidate rows and keeps the matches;
// a pk restriction turns candidates into jumps.
func (f *dirFiller) fillFiltered(ctx context.Context, b *tuplegen.Batch, cols [][]int64, lo, hi int64) error {
	out := 0
	for i, abs := 0, lo; abs < hi; i, abs = i+1, abs+1 {
		if i%fillCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if f.hasPK {
			pk, ok := f.pkSet.Next(abs + 1)
			if !ok || pk > hi {
				break // no admissible key left in this cell
			}
			abs = pk - 1
		}
		if err := f.seek(ctx, abs); err != nil {
			return err
		}
		if err := f.rr.next(f.row); err != nil {
			p := f.t.parts[f.pi]
			return fmt.Errorf("scan: %s: row %d: %w", p.path, abs, err)
		}
		f.pos++
		f.partLeft--
		if !f.filt.Eval(f.row) {
			continue
		}
		if f.proj == nil {
			for c := range cols {
				cols[c][out] = f.row[c]
			}
		} else {
			for c, src := range f.proj {
				cols[c][out] = f.row[src]
			}
		}
		out++
	}
	b.N = out
	return nil
}

// seek positions the filler at absolute row abs: a no-op when already
// there, a cheap in-part skip when abs lies further inside the open
// part, and a full openAt (locate part, verify checksum, rebuild the
// decode stack) otherwise.
func (f *dirFiller) seek(ctx context.Context, abs int64) error {
	if f.rr != nil && f.partLeft > 0 && abs >= f.pos {
		if end := f.t.parts[f.pi].start + f.t.parts[f.pi].rows; abs < end {
			if abs > f.pos {
				if err := f.rr.skip(abs - f.pos); err != nil {
					return fmt.Errorf("scan: %s: skipping to row %d: %w", f.t.parts[f.pi].path, abs, err)
				}
				f.partLeft -= abs - f.pos
				f.pos = abs
			}
			return nil
		}
	}
	return f.openAt(ctx, abs)
}

// openAt positions the filler at absolute row abs: close the open part,
// locate the part covering abs, verify its checksum, build the decode
// stack, and skip to abs within it.
func (f *dirFiller) openAt(ctx context.Context, abs int64) error {
	f.close()
	pi := sort.Search(len(f.t.parts), func(i int) bool {
		p := f.t.parts[i]
		return p.start+p.rows > abs
	})
	if pi == len(f.t.parts) || f.t.parts[pi].start > abs {
		return fmt.Errorf("scan: %s: no part of %s covers row %d (directory holds a partial split?)",
			f.src.dir, f.t.info.Table, abs)
	}
	p := f.t.parts[pi]
	file, err := os.Open(p.path)
	if err != nil {
		return err
	}
	if p.checksum != "" {
		// The lazy verification hash reads the whole part, which can be
		// large — copy in bounded slices so a canceled scan (timeout,
		// Ctrl-C) aborts between them instead of hashing to the end.
		h := sha256.New()
		buf := make([]byte, 1<<20)
		for {
			if err := ctx.Err(); err != nil {
				file.Close()
				return err
			}
			n, err := file.Read(buf)
			h.Write(buf[:n])
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				file.Close()
				return fmt.Errorf("scan: %s: %w", p.path, err)
			}
		}
		if got := hex.EncodeToString(h.Sum(nil)); got != p.checksum {
			file.Close()
			return fmt.Errorf("scan: %s: sha256 %s does not match manifest %s — part is corrupt or tampered",
				p.path, got, p.checksum)
		}
		if _, err := file.Seek(0, io.SeekStart); err != nil {
			file.Close()
			return err
		}
	}
	f.closers = append(f.closers, file)
	var r io.Reader = bufio.NewReaderSize(file, 1<<18)
	if f.src.comp != nil {
		zr, err := f.src.comp.NewReader(r)
		if err != nil {
			f.close()
			return fmt.Errorf("scan: %s: %w", p.path, err)
		}
		f.closers = append(f.closers, zr)
		r = zr
	}
	rr, err := newRowReader(f.src.format, r, f.t.info.Cols, p.header)
	if err != nil {
		f.close()
		return fmt.Errorf("scan: %s: %w", p.path, err)
	}
	if err := rr.skip(abs - p.start); err != nil {
		f.close()
		return fmt.Errorf("scan: %s: skipping to row %d: %w", p.path, abs, err)
	}
	f.pi, f.rr, f.pos, f.partLeft = pi, rr, abs, p.start+p.rows-abs
	return nil
}

func (f *dirFiller) close() error {
	var first error
	for i := len(f.closers) - 1; i >= 0; i-- {
		if err := f.closers[i].Close(); first == nil {
			first = err
		}
	}
	f.closers = f.closers[:0]
	f.rr = nil
	return first
}

// rowReader decodes one part file's rows sequentially. next fills dst
// (one value per file-layout column); skip discards k rows, cheaper
// than decoding them where the format allows.
type rowReader interface {
	next(dst []int64) error
	skip(k int64) error
}

func newRowReader(format string, r io.Reader, cols []string, header bool) (rowReader, error) {
	switch format {
	case "csv":
		return newCSVReader(r, len(cols), header)
	case "jsonl":
		return newJSONLReader(r, cols), nil
	case "heap":
		return newHeapReader(r, len(cols), header)
	default:
		return nil, fmt.Errorf("format %q is not scannable", format)
	}
}

// --- csv ---

type csvReader struct {
	br    *bufio.Reader
	ncols int
}

func newCSVReader(r io.Reader, ncols int, header bool) (*csvReader, error) {
	cr := &csvReader{br: bufio.NewReader(r), ncols: ncols}
	if header {
		if err := cr.skipLine(); err != nil {
			return nil, fmt.Errorf("reading csv header: %w", err)
		}
	}
	return cr, nil
}

func (c *csvReader) skipLine() error {
	for {
		_, err := c.br.ReadSlice('\n')
		if err == nil {
			return nil
		}
		if !errors.Is(err, bufio.ErrBufferFull) {
			return err
		}
	}
}

func (c *csvReader) skip(k int64) error {
	for ; k > 0; k-- {
		if err := c.skipLine(); err != nil {
			return err
		}
	}
	return nil
}

func (c *csvReader) next(dst []int64) error {
	line, err := c.br.ReadString('\n')
	if err != nil && (!errors.Is(err, io.EOF) || line == "") {
		return err
	}
	line = trimEOL(line)
	for i := 0; i < c.ncols; i++ {
		cell := line
		if i < c.ncols-1 {
			j := strings.IndexByte(line, ',')
			if j < 0 {
				return fmt.Errorf("csv row has %d of %d columns", i+1, c.ncols)
			}
			cell, line = line[:j], line[j+1:]
		} else if strings.IndexByte(line, ',') >= 0 {
			return fmt.Errorf("csv row has more than %d columns", c.ncols)
		}
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return fmt.Errorf("csv cell %d: %w", i, err)
		}
		dst[i] = v
	}
	return nil
}

func trimEOL(s string) string {
	if n := len(s); n > 0 && s[n-1] == '\n' {
		s = s[:n-1]
	}
	if n := len(s); n > 0 && s[n-1] == '\r' {
		s = s[:n-1]
	}
	return s
}

// --- jsonl ---

type jsonlReader struct {
	br   *bufio.Reader
	keys map[string]int // column name → file-layout position
	vals map[string]int64
}

func newJSONLReader(r io.Reader, cols []string) *jsonlReader {
	keys := make(map[string]int, len(cols))
	for i, name := range cols {
		keys[name] = i
	}
	return &jsonlReader{br: bufio.NewReader(r), keys: keys, vals: make(map[string]int64, len(cols))}
}

func (j *jsonlReader) skip(k int64) error {
	for ; k > 0; k-- {
		for {
			_, err := j.br.ReadSlice('\n')
			if err == nil {
				break
			}
			if !errors.Is(err, bufio.ErrBufferFull) {
				return err
			}
		}
	}
	return nil
}

func (j *jsonlReader) next(dst []int64) error {
	line, err := j.br.ReadBytes('\n')
	if err != nil && (!errors.Is(err, io.EOF) || len(line) == 0) {
		return err
	}
	clear(j.vals)
	if err := json.Unmarshal(line, &j.vals); err != nil {
		return fmt.Errorf("jsonl row: %w", err)
	}
	if len(j.vals) != len(dst) {
		return fmt.Errorf("jsonl row has %d of %d columns", len(j.vals), len(dst))
	}
	for name, v := range j.vals {
		i, ok := j.keys[name]
		if !ok {
			return fmt.Errorf("jsonl row has unknown column %q", name)
		}
		dst[i] = v
	}
	return nil
}

// --- heap (internal/storage page format) ---

type heapReader struct {
	r       io.Reader
	ncols   int
	perPage int
	pagePad int
	inPage  int
	buf     []byte
}

func newHeapReader(r io.Reader, ncols int, header bool) (*heapReader, error) {
	perPage, err := storage.RowsPerPage(ncols)
	if err != nil {
		return nil, err
	}
	h := &heapReader{
		r: r, ncols: ncols, perPage: perPage,
		pagePad: storage.PageSize - perPage*8*ncols,
		buf:     make([]byte, 8*ncols),
	}
	if header {
		// Shard 0 starts with the header page; its contents were already
		// interpreted via the manifest, so it is skipped, not parsed.
		if _, err := io.CopyN(io.Discard, r, storage.PageSize); err != nil {
			return nil, fmt.Errorf("skipping heap header page: %w", err)
		}
	}
	return h, nil
}

func (h *heapReader) advancePage() error {
	h.inPage++
	if h.inPage == h.perPage {
		if _, err := io.CopyN(io.Discard, h.r, int64(h.pagePad)); err != nil {
			return err
		}
		h.inPage = 0
	}
	return nil
}

func (h *heapReader) skip(k int64) error {
	for ; k > 0; k-- {
		if _, err := io.CopyN(io.Discard, h.r, int64(8*h.ncols)); err != nil {
			return err
		}
		if err := h.advancePage(); err != nil {
			return err
		}
	}
	return nil
}

func (h *heapReader) next(dst []int64) error {
	if _, err := io.ReadFull(h.r, h.buf); err != nil {
		return err
	}
	for i := 0; i < h.ncols; i++ {
		dst[i] = int64(binary.LittleEndian.Uint64(h.buf[8*i:]))
	}
	return h.advancePage()
}
