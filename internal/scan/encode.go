package scan

import (
	"fmt"
	"io"

	"github.com/dsl-repro/hydra/internal/matgen"
)

// EncodeScan drains sc into w using the named materialization format
// (csv, jsonl, sql, heap), producing a self-contained file of exactly
// the scanned rows: header, body, footer, with page/statement geometry
// computed over the scan's own row count and offsets relative to its
// start. Because every backend yields the identical batch sequence for
// the same spec, the encoded bytes are identical no matter where the
// scan came from — `hydra scan -remote` output is byte-for-byte
// `hydra scan -summary` output. A full-table, unprojected scan encodes
// exactly the file Materialize writes for that table.
//
// It returns the number of rows encoded; the scan is left at its end
// (or at the failure point), with Close still the caller's job.
func EncodeScan(w io.Writer, sc *Scan, format string) (int64, error) {
	sink, err := matgen.SinkFor(format)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if sink.Ext() == "" {
		return 0, fmt.Errorf("%w: format %q produces no byte stream", ErrSpec, format)
	}
	l := matgen.Layout{Table: sc.Table(), Cols: sc.Cols(), TotalRows: sc.NumRows()}
	align, err := sink.Align(len(l.Cols))
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if sc.Filtered() && align != 1 {
		// Page- and statement-structured formats derive their geometry
		// from contiguous row offsets; a filtered scan's row stream has
		// gaps, so those formats cannot represent it.
		return 0, fmt.Errorf("%w: format %q (alignment %d) cannot encode filtered scans", ErrSpec, format, align)
	}
	hdr, err := sink.Header(l)
	if err != nil {
		return 0, err
	}
	if len(hdr) > 0 {
		if _, err := w.Write(hdr); err != nil {
			return 0, err
		}
	}
	enc := sink.NewEncoder(l)
	var rows int64
	buf := make([]byte, 0, 1<<16)
	base := sc.StartRow()
	for sc.Next() {
		b := sc.Batch()
		// Offsets are scan-relative so statement groups and heap pages
		// restart at the scanned range: any range encodes to a valid,
		// self-contained file. A filtered scan has no meaningful range
		// offsets (its batches have gaps); it counts emitted rows
		// instead, which alignment-1 encoders ignore anyway.
		rowOff := b.Start - 1 - base
		if sc.Filtered() {
			rowOff = rows
		}
		buf = enc.AppendBatch(buf[:0], b, rowOff)
		if len(buf) > 0 {
			if _, err := w.Write(buf); err != nil {
				return rows, err
			}
		}
		rows += int64(b.N)
	}
	if err := sc.Err(); err != nil {
		return rows, err
	}
	ftr, err := sink.Footer(l)
	if err != nil {
		return rows, err
	}
	if len(ftr) > 0 {
		if _, err := w.Write(ftr); err != nil {
			return rows, err
		}
	}
	return rows, nil
}
