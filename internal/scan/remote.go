package scan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// Fleet-client observability: how often streams died and resumed, how
// often the scan had to fail over to another member, and how often the
// fleet pushed back with 503 — the retry counters a capacity planner
// reads next to the server-side stream metrics.
var (
	mRemoteResumes = obs.Default.Counter("hydra_scan_remote_resumes_total",
		"table streams that died mid-scan and were resumed at their row offset")
	mRemoteFailovers = obs.Default.Counter("hydra_scan_remote_failovers_total",
		"failed stream opens that moved the scan to the next fleet member")
	mRemoteBusy = obs.Default.Counter("hydra_scan_remote_busy_total",
		"503 capacity rejections observed while opening streams")
)

// RemoteOptions tunes a RemoteSource.
type RemoteOptions struct {
	// Client issues the HTTP requests; nil builds one without timeouts
	// (scans legitimately stream long; cancellation comes from the scan
	// context).
	Client *http.Client
	// Attempts bounds consecutive failures — failed connections, error
	// statuses, or streams that died without delivering a row — before a
	// scan gives up; progress resets the count. 0 means twice the fleet
	// size.
	Attempts int
}

// RemoteSource scans tables served by a fleet of `hydra serve` servers
// over GET /v1/tables/{table}. Column projection is pushed down to the
// server (columns= query parameter), so only the selected columns cross
// the network. The stream is consumed incrementally and decoded straight
// into batches; if a server fails mid-table the scan resumes on the next
// fleet member at the exact row offset it had reached — the offset
// resume the serve data plane guarantees is byte-identical — after
// checking the member serves the same summary digest, so a mixed fleet
// can never splice two different databases into one scan.
type RemoteSource struct {
	servers []string
	opts    RemoteOptions
	next    atomic.Uint64
	m       *backendMetrics
}

var _ Source = (*RemoteSource)(nil)

// NewRemoteSource builds a source over the fleet's base URLs
// (e.g. "http://10.0.0.7:8372").
func NewRemoteSource(servers []string, opts RemoteOptions) (*RemoteSource, error) {
	if len(servers) == 0 {
		return nil, errors.New("scan: remote source needs at least one server URL")
	}
	clean := make([]string, len(servers))
	for i, raw := range servers {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("scan: server URL %q: %w", raw, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("scan: server URL %q: want http(s)://host[:port]", raw)
		}
		clean[i] = strings.TrimRight(u.String(), "/")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 2 * len(servers)
	}
	return &RemoteSource{servers: clean, opts: opts, m: metricsForBackend("remote")}, nil
}

// Servers returns the fleet's base URLs.
func (s *RemoteSource) Servers() []string { return append([]string(nil), s.servers...) }

// errorBodyLimit bounds how much of an error response is read back.
const errorBodyLimit = 4 << 10

// headerDigest is serve's summary-identity header (serve.HeaderDigest;
// not imported so a future serve-on-scan layering stays cycle-free).
const headerDigest = "X-Hydra-Summary-Digest"

// pick returns the next fleet member in round-robin order.
func (s *RemoteSource) pick() string {
	return s.servers[int(s.next.Add(1)-1)%len(s.servers)]
}

// getJSON fetches one JSON document with fleet failover, returning the
// answering server's summary digest header (empty on servers that
// predate it).
func (s *RemoteSource) getJSON(ctx context.Context, path string, v any) (string, error) {
	var lastErr error
	for i := 0; i < s.opts.Attempts; i++ {
		srv := s.pick()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv+path, nil)
		if err != nil {
			return "", err
		}
		resp, err := s.opts.Client.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", srv, err)
			if ctx.Err() != nil {
				return "", lastErr
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
			resp.Body.Close()
			err := fmt.Errorf("%s answered %s: %s", srv, resp.Status, strings.TrimSpace(string(msg)))
			// Client mistakes (bad table, bad spec) are the same on every
			// server; failing over would just repeat them.
			if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusNotFound {
				return "", fmt.Errorf("%w: %v", ErrSpec, err)
			}
			lastErr = err
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(v)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", srv, err)
			continue
		}
		return resp.Header.Get(headerDigest), nil
	}
	return "", fmt.Errorf("scan: fleet exhausted after %d attempts, last: %w", s.opts.Attempts, lastErr)
}

// Tables implements Source via GET /v1/summary.
func (s *RemoteSource) Tables() ([]string, error) {
	var doc struct {
		Relations map[string]int64 `json:"relations"`
	}
	if _, err := s.getJSON(context.Background(), "/v1/summary", &doc); err != nil {
		return nil, err
	}
	return sortedNames(doc.Relations), nil
}

// Table implements Source via the tables endpoint's info=1 geometry
// answer, which generates nothing server-side.
func (s *RemoteSource) Table(name string) (*TableInfo, error) {
	info, _, err := s.tableInfo(context.Background(), name)
	return info, err
}

func (s *RemoteSource) tableInfo(ctx context.Context, name string) (*TableInfo, string, error) {
	var rep matgen.StreamReport
	path := "/v1/tables/" + url.PathEscape(name) + "?format=csv&info=1"
	digest, err := s.getJSON(ctx, path, &rep)
	if err != nil {
		return nil, "", err
	}
	if len(rep.Cols) == 0 {
		return nil, "", fmt.Errorf("scan: fleet server predates column reporting; upgrade `hydra serve`")
	}
	return &TableInfo{Table: name, Cols: rep.Cols, Rows: rep.TotalRows}, digest, nil
}

// Scan implements Source.
func (s *RemoteSource) Scan(ctx context.Context, spec Spec) (*Scan, error) {
	info, digest, err := s.tableInfo(ctx, spec.Table)
	if err != nil {
		return nil, err
	}
	r, err := resolve(spec, info)
	if err != nil {
		return nil, err
	}
	// The scan's row range was computed from this geometry, so the data
	// streams are pinned to the geometry's summary digest: a fleet
	// member loaded with a different database fails the scan instead of
	// silently truncating or padding it.
	f := &remoteFiller{
		src: s, spec: spec, end: r.hi,
		ncols:  len(r.cols),
		digest: digest,
		row:    make([]int64, len(r.cols)),
	}
	return newScan(ctx, r, f, s.m), nil
}

// Close implements Source; idle HTTP connections belong to the client's
// transport.
func (s *RemoteSource) Close() error { return nil }

// remoteFiller decodes one csv table stream into batches, reopening at
// the current offset on another fleet member when a stream dies.
type remoteFiller struct {
	src   *RemoteSource
	spec  Spec
	end   int64 // absolute end of the scanned range
	ncols int

	body   io.ReadCloser
	rr     *csvReader
	pos    int64  // absolute row the open stream yields next
	digest string // summary digest pinned by the geometry (or first) response
	fails  int
	row    []int64
}

func (f *remoteFiller) fill(ctx context.Context, b *tuplegen.Batch, lo, hi int64) error {
	n := int(hi - lo)
	cols := prepBatch(b, f.ncols, n, lo)
	for i := 0; i < n; i++ {
		abs := lo + int64(i)
		for {
			if f.rr == nil || f.pos != abs {
				if err := f.openAt(ctx, abs); err != nil {
					return err
				}
			}
			if err := f.rr.next(f.row); err != nil {
				// The stream died (connection, truncation, torn row) —
				// resume at this exact row on the next fleet member.
				mRemoteResumes.Inc()
				f.closeBody()
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				if f.fails++; f.fails >= f.src.opts.Attempts {
					return fmt.Errorf("scan: fleet exhausted after %d attempts, last: %w", f.src.opts.Attempts, err)
				}
				continue
			}
			break
		}
		f.fails = 0 // a decoded row is progress
		for c := range cols {
			cols[c][i] = f.row[c]
		}
		f.pos++
	}
	return nil
}

// openAt starts (or resumes) the table stream at absolute row abs.
func (f *remoteFiller) openAt(ctx context.Context, abs int64) error {
	f.closeBody()
	var lastErr error
	for f.fails < f.src.opts.Attempts {
		srv := f.src.pick()
		err := f.openOn(ctx, srv, abs)
		if err == nil {
			f.pos = abs
			return nil
		}
		if errors.Is(err, ErrSpec) || ctx.Err() != nil {
			return err
		}
		lastErr = fmt.Errorf("%s: %w", srv, err)
		f.fails++
		mRemoteFailovers.Inc()
		// A 503 is capacity signaling; give the fleet a beat before the
		// next attempt instead of burning the budget in a tight loop.
		var busy *busyError
		if errors.As(err, &busy) {
			mRemoteBusy.Inc()
			t := time.NewTimer(busy.retryAfter)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	return fmt.Errorf("scan: fleet exhausted after %d attempts, last: %w", f.src.opts.Attempts, lastErr)
}

func (f *remoteFiller) openOn(ctx context.Context, srv string, abs int64) error {
	q := url.Values{}
	q.Set("format", "csv")
	if len(f.spec.Columns) > 0 {
		q.Set("columns", strings.Join(f.spec.Columns, ","))
	}
	if f.spec.FKSpread {
		q.Set("fkspread", "1")
	}
	q.Set("offset", strconv.FormatInt(abs, 10))
	if limit := f.end - abs; limit > 0 {
		q.Set("limit", strconv.FormatInt(limit, 10))
	}
	u := srv + "/v1/tables/" + url.PathEscape(f.spec.Table) + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.src.opts.Client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
		resp.Body.Close()
		errText := fmt.Sprintf("answered %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		switch resp.StatusCode {
		case http.StatusBadRequest, http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrSpec, errText)
		case http.StatusServiceUnavailable:
			return &busyError{retryAfter: busyRetryAfter(resp), msg: errText}
		}
		return errors.New(errText)
	}
	if d := resp.Header.Get(headerDigest); d != "" {
		if f.digest == "" {
			f.digest = d
		} else if f.digest != d {
			resp.Body.Close()
			return fmt.Errorf("scan: fleet member serves summary %.12s…, scan started on %.12s… — cannot splice", d, f.digest)
		}
	}
	// The stream carries the csv header line exactly when it starts at
	// the very top of the table (server-side shard 0, offset 0 — we
	// always request the whole table and cut our own range via offset).
	rr, err := newCSVReader(resp.Body, f.ncols, abs == 0)
	if err != nil {
		resp.Body.Close()
		return err
	}
	f.body, f.rr = resp.Body, rr
	return nil
}

func (f *remoteFiller) closeBody() {
	if f.body != nil {
		f.body.Close()
		f.body, f.rr = nil, nil
	}
}

func (f *remoteFiller) close() error {
	f.closeBody()
	return nil
}

// busyError is a 503 capacity rejection with its Retry-After hint. It
// deliberately mirrors (not imports) serve's client-side equivalent:
// scan stays free of a serve dependency so serve can one day sit on
// top of scan without a cycle, and a scanning consumer waits a shorter
// maximum (5s vs the shard Runner's 30s) because its work unit is a
// resumable stream, not a whole shard job.
type busyError struct {
	retryAfter time.Duration
	msg        string
}

func (e *busyError) Error() string { return e.msg }

// busyRetryAfter parses a 503's Retry-After seconds, clamped to
// [100ms, 5s]; absent or malformed values mean 1s.
func busyRetryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		if d < 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
