package scan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/resilience"
	"github.com/dsl-repro/hydra/internal/trace"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// Fleet-client observability: how often streams died and resumed, how
// often the scan had to fail over to another member, and how often the
// fleet pushed back with 503 — the retry counters a capacity planner
// reads next to the server-side stream metrics.
var (
	mRemoteResumes = obs.Default.Counter("hydra_scan_remote_resumes_total",
		"table streams that died mid-scan and were resumed at their row offset")
	mRemoteFailovers = obs.Default.Counter("hydra_scan_remote_failovers_total",
		"failed stream opens that moved the scan to the next fleet member")
	mRemoteBusy = obs.Default.Counter("hydra_scan_remote_busy_total",
		"503 capacity rejections observed while opening streams")
)

// RemoteOptions tunes a RemoteSource.
type RemoteOptions struct {
	// Client issues the HTTP requests; nil builds one without timeouts
	// (scans legitimately stream long; cancellation comes from the scan
	// context).
	Client *http.Client
	// Attempts bounds consecutive failures — failed connections, error
	// statuses, or streams that died without delivering a row — before a
	// scan gives up; progress resets the count. 0 means twice the fleet
	// size.
	Attempts int
	// Fleet tunes the resilience substrate under the source: background
	// /healthz probing, per-member circuit breakers, jittered retry
	// backoff, and the shared retry budget. The zero value means
	// defaults (probing on, breakers on); set Fleet.ProbeInterval to a
	// negative value to disable probing, Fleet.BreakerThreshold negative
	// to disable breakers.
	Fleet resilience.Options
}

// RemoteSource scans tables served by a fleet of `hydra serve` servers
// over GET /v1/tables/{table}. Column projection is pushed down to the
// server (columns= query parameter), so only the selected columns cross
// the network. The stream is consumed incrementally and decoded straight
// into batches; if a server fails mid-table the scan resumes on the next
// fleet member at the exact row offset it had reached — the offset
// resume the serve data plane guarantees is byte-identical — after
// checking the member serves the same summary digest, so a mixed fleet
// can never splice two different databases into one scan.
type RemoteSource struct {
	servers []string
	opts    RemoteOptions
	tracker *resilience.Tracker
	policy  resilience.Policy
	m       *backendMetrics
}

var _ Source = (*RemoteSource)(nil)

// NewRemoteSource builds a source over the fleet's base URLs
// (e.g. "http://10.0.0.7:8372").
func NewRemoteSource(servers []string, opts RemoteOptions) (*RemoteSource, error) {
	if len(servers) == 0 {
		return nil, errors.New("scan: remote source needs at least one server URL")
	}
	clean := make([]string, len(servers))
	for i, raw := range servers {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("scan: server URL %q: %w", raw, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("scan: server URL %q: want http(s)://host[:port]", raw)
		}
		clean[i] = strings.TrimRight(u.String(), "/")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 2 * len(servers)
	}
	tracker := resilience.NewTracker(clean, opts.Fleet)
	tracker.Start()
	return &RemoteSource{
		servers: clean,
		opts:    opts,
		tracker: tracker,
		policy:  tracker.Policy("scan", opts.Attempts),
		m:       metricsForBackend("remote"),
	}, nil
}

// Servers returns the fleet's base URLs.
func (s *RemoteSource) Servers() []string { return append([]string(nil), s.servers...) }

// errorBodyLimit bounds how much of an error response is read back.
const errorBodyLimit = 4 << 10

// headerDigest is serve's summary-identity header (serve.HeaderDigest;
// not imported so a future serve-on-scan layering stays cycle-free).
const headerDigest = "X-Hydra-Summary-Digest"

// headerFilter is serve's applied-filter echo header (serve.HeaderFilter).
const headerFilter = "X-Hydra-Filter"

// getJSON fetches one JSON document with fleet failover, returning the
// answering server's summary digest header (empty on servers that
// predate it). Member selection, backoff jitter, and the shared retry
// budget come from the resilience substrate.
func (s *RemoteSource) getJSON(ctx context.Context, path string, v any) (string, error) {
	var lastErr error
	a := s.policy.Begin()
	sp := trace.FromContext(ctx)
	for i := 0; ; i++ {
		if i > 0 {
			if i >= s.opts.Attempts || !a.Next(ctx, 0) {
				break
			}
		}
		m := s.tracker.Pick()
		if m == nil {
			// Every breaker is open: fail fast for this attempt; the
			// jittered backoff before the next one gives a cooldown a
			// chance to admit a half-open probe.
			lastErr = resilience.ErrNoMembers
			sp.Event("no-member", trace.Str("path", path))
			continue
		}
		digest, err := s.getJSONOn(ctx, m, path, v)
		if err == nil {
			return digest, nil
		}
		// Client mistakes (bad table, bad spec) are the same on every
		// server; failing over would just repeat them.
		if errors.Is(err, ErrSpec) || ctx.Err() != nil {
			return "", fmt.Errorf("%s: %w", m.URL, err)
		}
		lastErr = fmt.Errorf("%s: %w", m.URL, err)
		sp.Event("failover", trace.Str("member", m.URL), trace.Str("error", err.Error()))
		// 503 is capacity (or drain) signaling from a healthy member,
		// not a failure; everything else counts against its breaker.
		var busy *busyError
		if !errors.As(err, &busy) {
			m.ReportFailure()
		}
	}
	return "", fmt.Errorf("scan: fleet exhausted after %d attempts, last: %w", s.opts.Attempts, lastErr)
}

// getJSONOn performs one metadata request against one member. Under a
// traced caller each attempt is its own child span, stamped into the
// outgoing request so the member can continue the trace.
func (s *RemoteSource) getJSONOn(ctx context.Context, m *resilience.Member, path string, v any) (_ string, err error) {
	ctx, asp := trace.Child(ctx, "fleet.get",
		trace.Str("member", m.URL), trace.Str("path", path))
	defer func() { asp.Fail(err); asp.End() }()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+path, nil)
	if err != nil {
		return "", err
	}
	if tp := asp.Traceparent(); tp != "" {
		req.Header.Set(trace.Header, tp)
	}
	t0 := time.Now()
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
		resp.Body.Close()
		statusErr := fmt.Errorf("answered %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		switch resp.StatusCode {
		case http.StatusBadRequest, http.StatusNotFound:
			return "", fmt.Errorf("%w: %v", ErrSpec, statusErr)
		case http.StatusServiceUnavailable:
			return "", &busyError{retryAfter: busyRetryAfter(resp), msg: statusErr.Error()}
		}
		return "", statusErr
	}
	err = json.NewDecoder(resp.Body).Decode(v)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	m.ReportSuccess(time.Since(t0), 0)
	return resp.Header.Get(headerDigest), nil
}

// Tables implements Source via GET /v1/summary.
func (s *RemoteSource) Tables() ([]string, error) {
	var doc struct {
		Relations map[string]int64 `json:"relations"`
	}
	if _, err := s.getJSON(context.Background(), "/v1/summary", &doc); err != nil {
		return nil, err
	}
	return sortedNames(doc.Relations), nil
}

// Table implements Source via the tables endpoint's info=1 geometry
// answer, which generates nothing server-side.
func (s *RemoteSource) Table(name string) (*TableInfo, error) {
	info, _, err := s.tableInfo(context.Background(), name)
	return info, err
}

func (s *RemoteSource) tableInfo(ctx context.Context, name string) (*TableInfo, string, error) {
	var rep matgen.StreamReport
	path := "/v1/tables/" + url.PathEscape(name) + "?format=csv&info=1"
	digest, err := s.getJSON(ctx, path, &rep)
	if err != nil {
		return nil, "", err
	}
	if len(rep.Cols) == 0 {
		return nil, "", fmt.Errorf("scan: fleet server predates column reporting; upgrade `hydra serve`")
	}
	return &TableInfo{Table: name, Cols: rep.Cols, Rows: rep.TotalRows}, digest, nil
}

// Scan implements Source.
func (s *RemoteSource) Scan(ctx context.Context, spec Spec) (*Scan, error) {
	info, digest, err := s.tableInfo(ctx, spec.Table)
	if err != nil {
		return nil, err
	}
	r, err := resolve(spec, info)
	if err != nil {
		return nil, err
	}
	// The scan's row range was computed from this geometry, so the data
	// streams are pinned to the geometry's summary digest: a fleet
	// member loaded with a different database fails the scan instead of
	// silently truncating or padding it.
	f := &remoteFiller{
		src: s, spec: spec, end: r.hi,
		ncols:  len(r.cols),
		digest: digest,
		row:    make([]int64, len(r.cols)),
	}
	if r.filtered {
		// The filter travels to the server in canonical encoding and is
		// evaluated inside the encode stream, so only matching rows cross
		// the network. The client then needs each row's pk to place it on
		// the batch grid and to resume a torn stream (the offset space is
		// pre-filter, and a matching row's pk IS its position): when the
		// projection lacks the pk column it is appended to the request
		// and stripped before rows reach the batch.
		f.filtered = true
		f.filterEnc = spec.Filter.Encode()
		f.reqCols = spec.Columns
		f.pkIdx = -1
		if len(spec.Columns) == 0 {
			f.pkIdx = 0 // natural layout: pk first
		} else {
			for i, name := range spec.Columns {
				if name == info.Cols[0] {
					f.pkIdx = i
					break
				}
			}
			if f.pkIdx < 0 {
				f.reqCols = append(append([]string(nil), spec.Columns...), info.Cols[0])
				f.pkIdx = len(spec.Columns)
			}
		}
		nread := len(r.cols)
		if len(f.reqCols) > nread {
			nread = len(f.reqCols)
		}
		f.rowFull = make([]int64, nread)
		f.resumeAbs = r.lo
	}
	return newScan(ctx, r, f, s.m), nil
}

// Close implements Source: it stops the background health probes. Idle
// HTTP connections belong to the client's transport.
func (s *RemoteSource) Close() error {
	s.tracker.Close()
	return nil
}

// Tracker exposes the fleet tracker (member states, EWMAs) for
// consumers that schedule over it.
func (s *RemoteSource) Tracker() *resilience.Tracker { return s.tracker }

// remoteFiller decodes one csv table stream into batches, reopening at
// the current offset on another fleet member when a stream dies.
type remoteFiller struct {
	src   *RemoteSource
	spec  Spec
	end   int64 // absolute end of the scanned range
	ncols int

	body   io.ReadCloser
	rr     *csvReader
	pos    int64  // absolute row the open stream yields next
	digest string // summary digest pinned by the geometry (or first) response
	fails  int
	row    []int64

	// member is the fleet member serving the open stream; openedAt and
	// rowsRead feed its rows/s EWMA when the stream ends well.
	member   *resilience.Member
	openedAt time.Time
	rowsRead int64

	// Filtered mode: the server streams only matching rows, so stream
	// position and batch position decouple. Each row carries its pk (at
	// pkIdx of the requested layout), which places it on the batch grid
	// and is where a torn stream resumes — the offset space is always
	// pre-filter row numbers.
	filtered  bool
	filterEnc string   // canonical filter= value
	reqCols   []string // columns requested from the server (projection + pk)
	rowFull   []int64  // one decoded stream row, len == max(ncols, len(reqCols))
	pkIdx     int      // pk's index in the stream layout
	resumeAbs int64    // absolute offset to (re)open the stream at
	havePeek  bool     // rowFull holds an undelivered row
	exhausted bool     // server closed cleanly: no matches remain in range
}

func (f *remoteFiller) fill(ctx context.Context, b *tuplegen.Batch, lo, hi int64) error {
	if f.filtered {
		return f.fillFiltered(ctx, b, lo, hi)
	}
	n := int(hi - lo)
	cols := prepBatch(b, f.ncols, n, lo)
	for i := 0; i < n; i++ {
		abs := lo + int64(i)
		for {
			if f.rr == nil || f.pos != abs {
				if err := f.openAt(ctx, abs); err != nil {
					return err
				}
			}
			if err := f.rr.next(f.row); err != nil {
				// The stream died (connection, truncation, torn row) —
				// resume at this exact row on the next fleet member.
				mRemoteResumes.Inc()
				if cerr := ctx.Err(); cerr != nil {
					// The scan was canceled; the member did nothing wrong.
					f.finishStream(false)
					f.closeBody()
					return cerr
				}
				f.finishStream(true)
				f.closeBody()
				if f.fails++; f.fails >= f.src.opts.Attempts {
					return fmt.Errorf("scan: fleet exhausted after %d attempts, last: %w", f.src.opts.Attempts, err)
				}
				continue
			}
			break
		}
		f.fails = 0 // a decoded row is progress
		f.rowsRead++
		for c := range cols {
			cols[c][i] = f.row[c]
		}
		f.pos++
	}
	return nil
}

// fillFiltered assigns server-delivered matching rows to the grid cell
// [lo,hi) by their pk, holding at most one looked-ahead row that
// belongs to a later cell. The stream is opened once for the whole
// range and reopened (possibly on another member) at the pk of the
// last row received if it dies; a clean end-of-stream means the server
// delivered every matching row in the range.
func (f *remoteFiller) fillFiltered(ctx context.Context, b *tuplegen.Batch, lo, hi int64) error {
	n := int(hi - lo)
	cols := prepBatch(b, f.ncols, n, lo)
	out := 0
	for out < n && !f.exhausted {
		if !f.havePeek {
			if err := f.readRow(ctx); err != nil {
				return err
			}
			if f.exhausted {
				break
			}
		}
		if pk := f.rowFull[f.pkIdx]; pk-1 >= hi {
			break // first row of a later cell; keep it as lookahead
		}
		for c := 0; c < f.ncols; c++ {
			cols[c][out] = f.rowFull[c]
		}
		out++
		f.havePeek = false
	}
	b.N = out
	return nil
}

// readRow decodes the next matching row into rowFull, resuming or
// failing over on stream death. A clean io.EOF — the server's chunked
// response ended with its terminal frame — sets exhausted instead: the
// filtered stream has no fixed row count, so "ended cleanly" is the
// protocol's only (and sufficient) end-of-matches signal; truncation
// surfaces as ErrUnexpectedEOF and resumes like any other death.
func (f *remoteFiller) readRow(ctx context.Context) error {
	for {
		if f.rr == nil {
			if err := f.openAt(ctx, f.resumeAbs); err != nil {
				return err
			}
		}
		err := f.rr.next(f.rowFull)
		if err == nil {
			f.fails = 0
			f.rowsRead++
			f.havePeek = true
			f.resumeAbs = f.rowFull[f.pkIdx] // this row's abs is pk-1; resume after it
			return nil
		}
		if errors.Is(err, io.EOF) {
			f.exhausted = true
			f.finishStream(false)
			f.closeBody()
			return nil
		}
		mRemoteResumes.Inc()
		if cerr := ctx.Err(); cerr != nil {
			f.finishStream(false)
			f.closeBody()
			return cerr
		}
		f.finishStream(true)
		f.closeBody()
		if f.fails++; f.fails >= f.src.opts.Attempts {
			return fmt.Errorf("scan: fleet exhausted after %d attempts, last: %w", f.src.opts.Attempts, err)
		}
	}
}

// openAt starts (or resumes) the table stream at absolute row abs,
// picking members through the tracker (draining and open-breaker
// members are skipped) and pacing failovers with the jittered,
// budget-bounded retry policy.
func (f *remoteFiller) openAt(ctx context.Context, abs int64) error {
	f.closeBody()
	var lastErr error
	a := f.src.policy.Begin()
	sp := trace.FromContext(ctx) // the scan's span; resilience outcomes land here
	for first := true; f.fails < f.src.opts.Attempts; first = false {
		var floor time.Duration
		if !first {
			// Jittered backoff between failovers; a 503's Retry-After is
			// the floor under the jitter.
			var busy *busyError
			if errors.As(lastErr, &busy) {
				floor = busy.retryAfter
			}
			if !a.Next(ctx, floor) {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				break // attempt cap or shared retry budget exhausted
			}
		}
		m := f.src.tracker.Pick()
		if m == nil {
			lastErr = resilience.ErrNoMembers
			sp.Event("no-member", trace.Int("offset", abs))
			f.fails++
			continue
		}
		err := f.openOn(ctx, m, abs)
		if err == nil {
			f.pos = abs
			return nil
		}
		if errors.Is(err, ErrSpec) || ctx.Err() != nil {
			return err
		}
		lastErr = fmt.Errorf("%s: %w", m.URL, err)
		f.fails++
		mRemoteFailovers.Inc()
		var busy *busyError
		if errors.As(err, &busy) {
			// Capacity (or drain) pushback from a healthy member: no
			// breaker hit; the Retry-After floors the next backoff.
			mRemoteBusy.Inc()
			lastErr = fmt.Errorf("%s: %w", m.URL, busy)
			sp.Event("busy", trace.Str("member", m.URL),
				trace.Dur("retry_after", busy.retryAfter))
		} else {
			m.ReportFailure()
			sp.Event("failover", trace.Str("member", m.URL),
				trace.Str("error", err.Error()))
		}
	}
	return fmt.Errorf("scan: fleet exhausted after %d attempts, last: %w", f.src.opts.Attempts, lastErr)
}

func (f *remoteFiller) openOn(ctx context.Context, member *resilience.Member, abs int64) (err error) {
	srv := member.URL
	// One child span per HTTP attempt: its duration is the
	// time-to-first-byte of the stream open, its error the reason the
	// failover loop moved on.
	ctx, asp := trace.Child(ctx, "scan.remote.attempt",
		trace.Str("member", srv), trace.Int("offset", abs))
	defer func() { asp.Fail(err); asp.End() }()
	t0 := time.Now()
	q := url.Values{}
	q.Set("format", "csv")
	cols, nread := f.spec.Columns, f.ncols
	if f.filtered {
		cols = f.reqCols
		nread = len(f.rowFull)
		q.Set("filter", f.filterEnc)
	}
	if len(cols) > 0 {
		q.Set("columns", strings.Join(cols, ","))
	}
	if f.spec.FKSpread {
		q.Set("fkspread", "1")
	}
	q.Set("offset", strconv.FormatInt(abs, 10))
	if limit := f.end - abs; limit > 0 {
		q.Set("limit", strconv.FormatInt(limit, 10))
	}
	u := srv + "/v1/tables/" + url.PathEscape(f.spec.Table) + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if tp := asp.Traceparent(); tp != "" {
		req.Header.Set(trace.Header, tp)
	}
	resp, err := f.src.opts.Client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
		resp.Body.Close()
		errText := fmt.Sprintf("answered %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		switch resp.StatusCode {
		case http.StatusBadRequest, http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrSpec, errText)
		case http.StatusServiceUnavailable:
			return &busyError{retryAfter: busyRetryAfter(resp), msg: errText}
		}
		return errors.New(errText)
	}
	if d := resp.Header.Get(headerDigest); d != "" {
		if f.digest == "" {
			f.digest = d
		} else if f.digest != d {
			resp.Body.Close()
			return fmt.Errorf("scan: fleet member serves summary %.12s…, scan started on %.12s… — cannot splice", d, f.digest)
		}
	}
	if f.filtered {
		// A server that predates predicate pushdown ignores filter= and
		// streams every row — silently wrong results, not an error. The
		// echo header proves the filter was applied; its absence is fatal
		// rather than retried, since the whole fleet runs one binary.
		if got := resp.Header.Get(headerFilter); got != f.filterEnc {
			resp.Body.Close()
			return fmt.Errorf("%w: fleet member did not apply filter %q (echoed %q); upgrade `hydra serve`", ErrSpec, f.filterEnc, got)
		}
	}
	// The stream carries the csv header line exactly when it starts at
	// the very top of the table (server-side shard 0, offset 0 — we
	// always request the whole table and cut our own range via offset).
	rr, err := newCSVReader(resp.Body, nread, abs == 0)
	if err != nil {
		resp.Body.Close()
		return err
	}
	f.body, f.rr = resp.Body, rr
	// The open succeeded: close the member's breaker and record the
	// time-to-first-byte as its latency observation. Rows/s follows when
	// the stream ends (finishStream).
	f.member, f.openedAt, f.rowsRead = member, time.Now(), 0
	member.ReportSuccess(time.Since(t0), 0)
	return nil
}

// finishStream settles the open stream's member accounting: a failed
// stream counts against the member's breaker; a stream that delivered
// rows and ended well feeds its rows/s EWMA.
func (f *remoteFiller) finishStream(failed bool) {
	m := f.member
	if m == nil {
		return
	}
	f.member = nil
	if failed {
		m.ReportFailure()
		return
	}
	if d := time.Since(f.openedAt); f.rowsRead > 0 && d > 0 {
		m.ReportSuccess(0, float64(f.rowsRead)/d.Seconds())
	}
}

func (f *remoteFiller) closeBody() {
	if f.body != nil {
		f.body.Close()
		f.body, f.rr = nil, nil
	}
}

func (f *remoteFiller) close() error {
	// A scan closed with its stream still open read everything it
	// needed: that is a well-ended stream for EWMA purposes.
	f.finishStream(false)
	f.closeBody()
	return nil
}

// busyError is a 503 capacity rejection with its Retry-After hint. It
// deliberately mirrors (not imports) serve's client-side equivalent:
// scan stays free of a serve dependency so serve can one day sit on
// top of scan without a cycle, and a scanning consumer waits a shorter
// maximum (5s vs the shard Runner's 30s) because its work unit is a
// resumable stream, not a whole shard job.
type busyError struct {
	retryAfter time.Duration
	msg        string
}

func (e *busyError) Error() string { return e.msg }

// busyRetryAfter parses a 503's Retry-After seconds, clamped to
// [100ms, 5s]; absent or malformed values mean 1s.
func busyRetryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		if d < 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
