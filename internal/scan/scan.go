// Package scan is Hydra's unified read path: one pull-based, columnar
// scan API over every place regenerated data can live. The paper's
// second deliverable is *dynamic* regeneration — a query executor pulls
// tuples on demand from the scale-independent summary instead of reading
// a materialized database (§2's "datagen" scan operator). After the
// materialization engine (internal/matgen) and the HTTP data plane
// (internal/serve), the same logical relation exists in three physical
// forms; this package makes all of them one thing to consume:
//
//	SummarySource  generates batches straight from a loaded summary
//	               (the in-process dynamic path, tuplegen under the hood)
//	DirSource      reads back a materialized shard directory, decoding
//	               csv/jsonl/heap part files against their manifests and
//	               verifying checksums lazily (each part is re-hashed the
//	               first time a scan opens it)
//	RemoteSource   streams from a fleet of `hydra serve` servers with
//	               projection pushdown, resume-on-offset, and failover
//
// Every source answers the same Spec — table, column projection,
// pk range, shard i/N split, batch size, rows/s rate limit — and yields
// the identical sequence of column-major batches: same batch boundaries,
// same values, same order. That conformance is the contract that lets a
// query engine, a benchmark driver, or a future columnar sink bind to
// Source once and run against any backend, and it is pinned by this
// package's cross-backend conformance tests.
package scan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/pred"
	"github.com/dsl-repro/hydra/internal/rate"
	"github.com/dsl-repro/hydra/internal/trace"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// Read-path observability, labeled by backend so the three physical
// forms of the same logical relation stay comparable: per-batch fill
// latency (the number that says whether a dir decode or a remote hop is
// the bottleneck), plus batch and row counters. Metric pointers are
// resolved when a backend is constructed, not per batch.
type backendMetrics struct {
	name          string
	batches, rows *obs.Counter
	batchSec      *obs.Histogram
}

func metricsForBackend(backend string) *backendMetrics {
	l := obs.L("backend", backend)
	return &backendMetrics{
		name: backend,
		batches: obs.Default.Counter("hydra_scan_batches_total",
			"batches filled by the unified read path, by backend", l),
		rows: obs.Default.Counter("hydra_scan_rows_total",
			"rows scanned through the unified read path, by backend", l),
		batchSec: obs.Default.Histogram("hydra_scan_batch_seconds",
			"per-batch fill latency, by backend", nil, l),
	}
}

// DefaultBatchRows is the batch granularity when Spec leaves BatchRows
// zero — the same default the materialization engine uses, big enough to
// amortize per-batch overhead, small enough to stay cache-resident.
const DefaultBatchRows = 8192

// ErrSpec marks a scan request the caller got wrong — unknown table or
// column, shard or range out of bounds. Callers map errors.Is(err,
// ErrSpec) to a client error; anything else is a backend failure.
var ErrSpec = errors.New("scan: invalid spec")

// Spec selects what one Scan reads. The zero value means "everything":
// all columns of the whole table, unsplit, at full speed.
type Spec struct {
	// Table names the relation to scan. Required.
	Table string
	// Columns projects the scan onto a subset of columns, in the order
	// given (nil = every column in the source's layout order). The
	// projection is pushed down as far as the backend allows: the
	// summary source generates only the selected columns, and the remote
	// source asks the server to encode only them.
	Columns []string
	// StartPK and EndPK bound the scan to primary keys [StartPK, EndPK],
	// 1-based and inclusive. Zero values mean the table's ends; EndPK is
	// clamped to the relation's cardinality.
	StartPK int64
	EndPK   int64
	// Shards and Shard select piece Shard (0-based) of an N-way split of
	// the scanned pk range — how a parallel consumer divides one logical
	// scan across workers or machines. Zero values mean the single piece
	// 0 of 1. The split is pure arithmetic over the range, identical for
	// every backend.
	Shards int
	Shard  int
	// BatchRows sets the batch granularity (0 = DefaultBatchRows).
	// Batches fall on a fixed grid anchored at the scanned range's
	// start: every batch holds exactly BatchRows rows except the last.
	BatchRows int
	// RateLimit paces the scan in rows per second (0 = unlimited),
	// client-side, identically for every backend: each batch is released
	// only once its own emission time has elapsed.
	RateLimit float64
	// FKSpread enables tuplegen's spread-FK extension. It must match how
	// a directory was materialized for DirSource scans to agree with the
	// other backends.
	FKSpread bool
	// Filter restricts the scan to rows matching a conjunction of
	// per-column constraints (the zero value matches everything). It is
	// evaluated as early as each backend allows — whole tuplegen spans
	// are skipped when their constant columns fail, DirSource skips rows
	// and parts a pk restriction excludes without decoding or hashing
	// them, and RemoteSource pushes the filter to the server, which
	// evaluates it inside the encode stream. Filtering changes the batch
	// contract: each batch still covers one step of the batch grid (its
	// Start is the grid cell's first pk), but holds only the cell's
	// matching rows, and cells with no matches are skipped entirely —
	// identically for every backend, so conformance is preserved.
	Filter pred.Filter
}

// TableInfo describes one scannable relation: its column names in layout
// order (pk first for generated layouts) and its cardinality.
type TableInfo struct {
	Table string
	Cols  []string
	Rows  int64
}

// Source is a handle on regenerated data, wherever it lives. All
// implementations in this package are safe for concurrent use; each Scan
// holds its own cursor state.
type Source interface {
	// Tables lists the relation names, sorted.
	Tables() ([]string, error)
	// Table describes one relation's natural (unprojected) layout.
	Table(name string) (*TableInfo, error)
	// Scan starts a pull-based batch scan. The context governs the whole
	// scan: every Next observes its cancellation or deadline.
	Scan(ctx context.Context, spec Spec) (*Scan, error)
	// Close releases the source's resources. Scans must not be used
	// after their source is closed.
	Close() error
}

// filler is the backend seam: it fills b with rows [lo, hi) (absolute
// 0-based offsets; row r holds primary key r+1). The scan core calls it
// with contiguous, monotonically increasing ranges on the batch grid.
type filler interface {
	fill(ctx context.Context, b *tuplegen.Batch, lo, hi int64) error
	close() error
}

// Scan is a pull-based iterator of column-major row batches — the
// "datagen scan" operator's cursor. Usage follows database/sql.Rows:
//
//	sc, err := src.Scan(ctx, spec)
//	...
//	defer sc.Close()
//	for sc.Next() {
//	    b := sc.Batch() // valid until the next Next call
//	}
//	err = sc.Err()
//
// A Scan is not safe for concurrent use; run one per goroutine.
type Scan struct {
	ctx      context.Context
	table    string
	cols     []string
	lo       int64 // absolute row range [lo, hi)
	hi       int64
	pos      int64 // next unread absolute row
	step     int64 // batch grid step (resolved BatchRows)
	lim      *rate.Limiter
	fill     filler
	m        *backendMetrics
	b        *tuplegen.Batch
	sp       *trace.Span
	batches  int64
	filtered bool
	err      error
	done     bool
}

// Table returns the name of the relation being scanned.
func (s *Scan) Table() string { return s.table }

// Cols returns the scan's output column names, projection applied.
func (s *Scan) Cols() []string { return append([]string(nil), s.cols...) }

// NumRows returns how many rows the scan covers in total, before any
// Spec.Filter is applied — the size of the scanned pk range, not the
// number of rows a filtered scan will emit.
func (s *Scan) NumRows() int64 { return s.hi - s.lo }

// Filtered reports whether the scan carries a Spec.Filter, i.e. whether
// batches may hold fewer rows than their grid cell covers.
func (s *Scan) Filtered() bool { return s.filtered }

// StartRow returns the absolute 0-based offset of the scan's first row
// (its primary key minus one).
func (s *Scan) StartRow() int64 { return s.lo }

// Next advances to the next batch, reporting false at the end of the
// scan or on the first error (check Err). It honors the scan context's
// cancellation and the spec's rate limit.
func (s *Scan) Next() bool {
	for {
		if s.done || s.err != nil || s.pos >= s.hi {
			return false
		}
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return false
		}
		n := s.step
		if s.pos+n > s.hi {
			n = s.hi - s.pos
		}
		// The limiter paces batch release exactly like matgen's collectors:
		// batches go out whole, each only once its own emission time has
		// elapsed, and a done context interrupts the wait promptly. A
		// filtered scan is paced by the rows it covers, not the rows it
		// emits — the work skipped by pushdown is exactly the point.
		if err := s.lim.WaitN(s.ctx, n); err != nil {
			s.err = err
			return false
		}
		t0 := time.Now()
		if err := s.fill.fill(s.ctx, s.b, s.pos, s.pos+n); err != nil {
			s.err = err
			return false
		}
		s.m.batchSec.ObserveSince(t0)
		s.m.batches.Inc()
		s.batches++
		s.m.rows.Add(int64(s.b.N))
		// The conformance invariant: every batch is anchored at its grid
		// cell's first pk and, unfiltered, covers the cell exactly. A
		// filtered batch keeps the anchor but holds only the cell's
		// matching rows.
		badStart := s.b.Start != s.pos+1
		if badStart || (s.filtered && int64(s.b.N) > n) || (!s.filtered && int64(s.b.N) != n) {
			s.err = fmt.Errorf("scan: backend filled rows [%d,%d), wanted [%d,%d)",
				s.b.Start-1, s.b.Start-1+int64(s.b.N), s.pos, s.pos+n)
			return false
		}
		s.pos += n
		if s.b.N > 0 {
			return true
		}
		// A filtered cell with no matching rows: skip it, uniformly
		// across backends, so consumers never see empty batches.
	}
}

// Batch returns the current batch. Its buffers are reused by the next
// Next call; consumers that retain rows must copy them.
func (s *Scan) Batch() *tuplegen.Batch { return s.b }

// Err returns the error that stopped the scan, nil after a clean end.
func (s *Scan) Err() error { return s.err }

// Close releases the scan's backend resources (open files, HTTP
// streams) and ends the scan's span. It is idempotent and does not
// disturb Err.
func (s *Scan) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	err := s.fill.close()
	if s.sp != nil {
		s.sp.SetAttrs(
			trace.Int("rows_covered", s.pos-s.lo),
			trace.Int("batches", s.batches))
		s.sp.Fail(s.err)
		s.sp.Fail(err)
		s.sp.End()
	}
	return err
}

// resolved is a validated, normalized Spec bound to one table layout.
type resolved struct {
	info     TableInfo // the source's natural layout
	cols     []string  // output columns, projection applied
	proj     []int     // indices into info.Cols; nil = all
	lo       int64     // absolute row range [lo, hi)
	hi       int64
	step     int64
	lim      *rate.Limiter
	filt     pred.Conjunct // Filter bound to info.Cols indices
	filtered bool
}

// resolve validates spec against the table's layout and computes the
// scan geometry every backend must agree on: the projected column list,
// the absolute row range (pk range restricted, then shard-split), and
// the batch grid.
func resolve(spec Spec, info *TableInfo) (*resolved, error) {
	shards := spec.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 || spec.Shard < 0 || spec.Shard >= shards {
		return nil, fmt.Errorf("%w: shard %d of %d out of range", ErrSpec, spec.Shard, spec.Shards)
	}
	batch := spec.BatchRows
	if batch == 0 {
		batch = DefaultBatchRows
	}
	if batch < 1 {
		return nil, fmt.Errorf("%w: batch rows %d out of range", ErrSpec, spec.BatchRows)
	}
	var lim *rate.Limiter
	if spec.RateLimit != 0 {
		var err error
		if lim, err = rate.NewLimiter(spec.RateLimit, 0); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
	}
	proj, err := tuplegen.ProjectCols(info.Cols, spec.Columns)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSpec, info.Table, err)
	}
	cols := info.Cols
	if proj != nil {
		cols = make([]string, len(proj))
		for i, src := range proj {
			cols[i] = info.Cols[src]
		}
	}
	if spec.StartPK < 0 || spec.EndPK < 0 {
		return nil, fmt.Errorf("%w: pk range [%d,%d] out of range", ErrSpec, spec.StartPK, spec.EndPK)
	}
	start := spec.StartPK
	if start < 1 {
		start = 1
	}
	end := spec.EndPK
	if end == 0 || end > info.Rows {
		end = info.Rows
	}
	lo0, hi0 := start-1, end
	if hi0 < lo0 {
		hi0 = lo0 // empty scan, not an error: range semantics match Batch's clamping
	}
	// Shard split of the restricted range: pure arithmetic, alignment 1,
	// so every backend computes the identical piece.
	n := hi0 - lo0
	lo := lo0 + n*int64(spec.Shard)/int64(shards)
	hi := lo0 + n*int64(spec.Shard+1)/int64(shards)
	r := &resolved{
		info: *info, cols: cols, proj: proj,
		lo: lo, hi: hi, step: int64(batch), lim: lim,
	}
	if !spec.Filter.Empty() {
		// The filter binds against the full natural layout, independent
		// of the projection: constraining a column you don't select is
		// legal. The grid is deliberately NOT tightened from a pk
		// restriction — batch anchoring must stay identical across
		// filtered backends — except for the one degenerate case of an
		// unsatisfiable filter, which every backend collapses to the
		// empty scan the same way.
		r.filt, err = spec.Filter.Bind(info.Cols)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSpec, info.Table, err)
		}
		r.filtered = true
		if r.filt.Unsatisfiable() {
			r.hi = r.lo
		}
	}
	return r, nil
}

// newScan assembles the iterator all sources share; m is the backend's
// metric set, resolved once at source construction. Every scan opens
// one span named after its backend — scan.summary, scan.dir,
// scan.remote — so the three physical forms of a relation stay
// comparable in a trace the same way they are in the metrics. The span
// wraps the whole iteration (cost is per scan, not per batch or row)
// and ends at Close. It is a child span: scans sit mid-tier, so the
// trace root belongs to the request entry point (a served stream, a
// SQL query, a loadgen request, an orchestrated shard), and a scan on
// an untraced context records nothing and pays nothing.
func newScan(ctx context.Context, r *resolved, f filler, m *backendMetrics) *Scan {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := trace.Child(ctx, "scan."+m.name,
		trace.Str("table", r.info.Table),
		trace.Int("rows", r.hi-r.lo))
	return &Scan{
		ctx: ctx, table: r.info.Table, cols: r.cols,
		lo: r.lo, hi: r.hi, pos: r.lo, step: r.step,
		lim: r.lim, fill: f, m: m, b: &tuplegen.Batch{},
		sp: sp, filtered: r.filtered,
	}
}

// prepBatch shapes b for n rows of ncols columns starting at absolute
// row lo — tuplegen's one batch-reuse policy, pk-indexed.
func prepBatch(b *tuplegen.Batch, ncols, n int, lo int64) [][]int64 {
	return b.Reshape(ncols, n, lo+1)
}

// sortedNames returns the map's keys, sorted — the Tables() order every
// source presents.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
