package scan

import (
	"context"
	"errors"
	"testing"

	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

func newGeneratorForTest(sum *summary.Summary, table string) *tuplegen.Generator {
	return tuplegen.New(sum.Relations[table])
}

// testSummary mirrors the matgen/serve fixture: two relations with FK
// spans, small enough to compare exhaustively, large enough to cross
// batch and shard boundaries.
func testSummary() *summary.Summary {
	tRel := &summary.RelationSummary{
		Table: "T", Cols: []string{"C"},
		Rows: []summary.RelRow{
			{Vals: []int64{2}, Count: 900},
			{Vals: []int64{7}, Count: 613},
		},
		Total: 1513,
	}
	sRel := &summary.RelationSummary{
		Table: "S", Cols: []string{"A", "B"}, FKCols: []string{"t_fk"}, FKRefs: []string{"T"},
		Rows: []summary.RelRow{
			{Vals: []int64{20, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 3001},
			{Vals: []int64{20, 40}, FKs: []int64{901}, FKSpans: []int64{613}, Count: 2500},
			{Vals: []int64{61, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 2707},
		},
		Total: 8208,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"S": sRel, "T": tRel}}
}

func TestResolveDefaults(t *testing.T) {
	info := &TableInfo{Table: "S", Cols: []string{"S_pk", "A", "B", "t_fk"}, Rows: 8208}
	r, err := resolve(Spec{Table: "S"}, info)
	if err != nil {
		t.Fatal(err)
	}
	if r.lo != 0 || r.hi != 8208 || r.step != DefaultBatchRows || r.proj != nil {
		t.Fatalf("resolved %+v", r)
	}
	if len(r.cols) != 4 {
		t.Fatalf("cols = %v", r.cols)
	}
}

func TestResolveRangeAndClamp(t *testing.T) {
	info := &TableInfo{Table: "S", Cols: []string{"S_pk"}, Rows: 100}
	for _, tc := range []struct {
		spec   Spec
		lo, hi int64
	}{
		{Spec{StartPK: 10, EndPK: 20}, 9, 20},
		{Spec{StartPK: 0, EndPK: 1 << 40}, 0, 100}, // EndPK clamps
		{Spec{StartPK: 101}, 100, 100},             // empty, not an error
		{Spec{StartPK: 50, EndPK: 10}, 49, 49},     // inverted → empty
	} {
		tc.spec.Table = "S"
		r, err := resolve(tc.spec, info)
		if err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		if r.lo != tc.lo || r.hi != tc.hi {
			t.Fatalf("%+v: range [%d,%d), want [%d,%d)", tc.spec, r.lo, r.hi, tc.lo, tc.hi)
		}
	}
}

// TestResolveShardsTile proves the spec-level split is a partition: the
// shard pieces of any pk range are disjoint, ordered, and cover it.
func TestResolveShardsTile(t *testing.T) {
	info := &TableInfo{Table: "S", Cols: []string{"S_pk"}, Rows: 8208}
	for _, n := range []int{1, 2, 3, 7, 16} {
		var pos int64 = 99 // StartPK 100
		for i := 0; i < n; i++ {
			r, err := resolve(Spec{Table: "S", StartPK: 100, EndPK: 5000, Shards: n, Shard: i}, info)
			if err != nil {
				t.Fatal(err)
			}
			if r.lo != pos {
				t.Fatalf("shards=%d shard=%d starts at %d, want %d", n, i, r.lo, pos)
			}
			pos = r.hi
		}
		if pos != 5000 {
			t.Fatalf("shards=%d cover [99,%d), want [99,5000)", n, pos)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	info := &TableInfo{Table: "S", Cols: []string{"S_pk", "A"}, Rows: 100}
	for _, spec := range []Spec{
		{Table: "S", Shards: 2, Shard: 2},
		{Table: "S", Shards: -1},
		{Table: "S", BatchRows: -5},
		{Table: "S", StartPK: -1},
		{Table: "S", RateLimit: -3},
		{Table: "S", Columns: []string{"nope"}},
		{Table: "S", Columns: []string{"A", "A"}},
	} {
		if _, err := resolve(spec, info); !errors.Is(err, ErrSpec) {
			t.Fatalf("%+v: err = %v, want ErrSpec", spec, err)
		}
	}
}

// TestSummaryScanMatchesGenerator pins the reference backend to the raw
// generator: scanning must see exactly the rows Generator.Row produces.
func TestSummaryScanMatchesGenerator(t *testing.T) {
	sum := testSummary()
	src := NewSummarySource(sum)
	sc, err := src.Scan(context.Background(), Spec{Table: "S", BatchRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	g := newGeneratorForTest(sum, "S")
	var rowBuf []int64
	var pk int64
	for sc.Next() {
		b := sc.Batch()
		if b.Start != pk+1 {
			t.Fatalf("batch starts at %d, want %d", b.Start, pk+1)
		}
		for i := 0; i < b.N; i++ {
			pk++
			rowBuf = g.Row(pk, rowBuf)
			for c := range b.Cols {
				if b.Cols[c][i] != rowBuf[c] {
					t.Fatalf("pk %d col %d = %d, want %d", pk, c, b.Cols[c][i], rowBuf[c])
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if pk != 8208 {
		t.Fatalf("scanned %d rows, want 8208", pk)
	}
}

// TestBatchGrid pins the conformance-critical batch boundaries: fixed
// BatchRows steps anchored at the scanned range's start, short last
// batch.
func TestBatchGrid(t *testing.T) {
	src := NewSummarySource(testSummary())
	sc, err := src.Scan(context.Background(), Spec{Table: "S", StartPK: 11, EndPK: 1000, BatchRows: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	var got [][2]int64
	for sc.Next() {
		got = append(got, [2]int64{sc.Batch().Start, int64(sc.Batch().N)})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{11, 300}, {311, 300}, {611, 300}, {911, 90}}
	if len(got) != len(want) {
		t.Fatalf("batches %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := NewSummarySource(testSummary())
	sc, err := src.Scan(ctx, Spec{Table: "S", BatchRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if !sc.Next() {
		t.Fatal("first Next = false")
	}
	cancel()
	if sc.Next() {
		t.Fatal("Next = true after cancel")
	}
	if !errors.Is(sc.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", sc.Err())
	}
}

func TestProjectionOrderAndValues(t *testing.T) {
	src := NewSummarySource(testSummary())
	sc, err := src.Scan(context.Background(), Spec{
		Table: "S", Columns: []string{"t_fk", "S_pk"}, StartPK: 3000, EndPK: 3010, FKSpread: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if got := sc.Cols(); len(got) != 2 || got[0] != "t_fk" || got[1] != "S_pk" {
		t.Fatalf("cols = %v", got)
	}
	g := newGeneratorForTest(testSummary(), "S")
	g.SetFKSpread(true)
	var row []int64
	for sc.Next() {
		b := sc.Batch()
		for i := 0; i < b.N; i++ {
			pk := b.Start + int64(i)
			row = g.Row(pk, row)
			if b.Cols[0][i] != row[3] || b.Cols[1][i] != pk {
				t.Fatalf("pk %d: got (%d,%d), want (%d,%d)", pk, b.Cols[0][i], b.Cols[1][i], row[3], pk)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}
