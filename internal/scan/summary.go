package scan

import (
	"context"
	"fmt"

	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// SummarySource scans a loaded database summary directly: batches are
// generated on demand by tuplegen — the in-process dynamic regeneration
// path, no bytes materialized anywhere. It is the reference backend the
// other sources must agree with.
type SummarySource struct {
	sum *summary.Summary
	m   *backendMetrics
}

var _ Source = (*SummarySource)(nil)

// NewSummarySource wraps a summary as a scannable source.
func NewSummarySource(sum *summary.Summary) *SummarySource {
	return &SummarySource{sum: sum, m: metricsForBackend("summary")}
}

// Tables implements Source.
func (s *SummarySource) Tables() ([]string, error) {
	return sortedNames(s.sum.Relations), nil
}

// Table implements Source.
func (s *SummarySource) Table(name string) (*TableInfo, error) {
	rs, ok := s.sum.Relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: summary has no relation %q", ErrSpec, name)
	}
	g := tuplegen.New(rs)
	return &TableInfo{Table: name, Cols: g.ColNames(), Rows: g.NumRows()}, nil
}

// Scan implements Source.
func (s *SummarySource) Scan(ctx context.Context, spec Spec) (*Scan, error) {
	info, err := s.Table(spec.Table)
	if err != nil {
		return nil, err
	}
	r, err := resolve(spec, info)
	if err != nil {
		return nil, err
	}
	rs := s.sum.Relations[spec.Table]
	g := tuplegen.New(rs)
	g.SetFKSpread(spec.FKSpread)
	f := &summaryFiller{g: g, proj: r.proj}
	if r.filtered {
		if f.sf, err = g.BindSpanFilter(r.filt); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSpec, spec.Table, err)
		}
		f.filtered = true
	}
	return newScan(ctx, r, f, s.m), nil
}

// Close implements Source; a summary source holds no resources.
func (s *SummarySource) Close() error { return nil }

// summaryFiller generates batches straight from the summary's run
// structure. Because info.Cols is exactly the generator's tuple order,
// the resolved projection indices are tuple-order indices and BatchCols
// consumes them directly. Under a filter the fill walks the grid cell's
// matching sub-spans instead — a span whose constant columns fail never
// contributes a single generated value, which is where filtered scans
// earn their near-free selectivity.
type summaryFiller struct {
	g        *tuplegen.Generator
	proj     []int
	sf       *tuplegen.SpanFilter
	spans    []tuplegen.Span
	filtered bool
}

func (f *summaryFiller) fill(_ context.Context, b *tuplegen.Batch, lo, hi int64) error {
	if !f.filtered {
		f.g.BatchCols(lo+1, int(hi-lo), b, f.proj)
		return nil
	}
	ncols := f.g.NumCols()
	if f.proj != nil {
		ncols = len(f.proj)
	}
	// Two passes over the (cheap, arithmetic) sub-span structure: first
	// count the matches, then size the batch to exactly that — a highly
	// selective scan touches kilobytes of batch memory per grid cell, not
	// the megabyte an all-pass cell would need.
	f.spans = f.spans[:0]
	var n int64
	it := f.g.FilteredSpans(lo+1, hi-lo, f.sf)
	for {
		sp, ok := it.Next()
		if !ok {
			break
		}
		f.spans = append(f.spans, sp)
		n += sp.N
	}
	cols := b.Reshape(ncols, int(n), lo+1)
	at := 0
	for _, sp := range f.spans {
		at = tuplegen.FillSpan(cols, at, sp, f.proj)
	}
	b.N = at
	return nil
}

func (f *summaryFiller) close() error { return nil }
