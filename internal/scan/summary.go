package scan

import (
	"context"
	"fmt"

	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/tuplegen"
)

// SummarySource scans a loaded database summary directly: batches are
// generated on demand by tuplegen — the in-process dynamic regeneration
// path, no bytes materialized anywhere. It is the reference backend the
// other sources must agree with.
type SummarySource struct {
	sum *summary.Summary
	m   *backendMetrics
}

var _ Source = (*SummarySource)(nil)

// NewSummarySource wraps a summary as a scannable source.
func NewSummarySource(sum *summary.Summary) *SummarySource {
	return &SummarySource{sum: sum, m: metricsForBackend("summary")}
}

// Tables implements Source.
func (s *SummarySource) Tables() ([]string, error) {
	return sortedNames(s.sum.Relations), nil
}

// Table implements Source.
func (s *SummarySource) Table(name string) (*TableInfo, error) {
	rs, ok := s.sum.Relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: summary has no relation %q", ErrSpec, name)
	}
	g := tuplegen.New(rs)
	return &TableInfo{Table: name, Cols: g.ColNames(), Rows: g.NumRows()}, nil
}

// Scan implements Source.
func (s *SummarySource) Scan(ctx context.Context, spec Spec) (*Scan, error) {
	info, err := s.Table(spec.Table)
	if err != nil {
		return nil, err
	}
	r, err := resolve(spec, info)
	if err != nil {
		return nil, err
	}
	rs := s.sum.Relations[spec.Table]
	g := tuplegen.New(rs)
	g.SetFKSpread(spec.FKSpread)
	return newScan(ctx, r, &summaryFiller{g: g, proj: r.proj}, s.m), nil
}

// Close implements Source; a summary source holds no resources.
func (s *SummarySource) Close() error { return nil }

// summaryFiller generates batches straight from the summary's run
// structure. Because info.Cols is exactly the generator's tuple order,
// the resolved projection indices are tuple-order indices and BatchCols
// consumes them directly.
type summaryFiller struct {
	g    *tuplegen.Generator
	proj []int
}

func (f *summaryFiller) fill(_ context.Context, b *tuplegen.Batch, lo, hi int64) error {
	f.g.BatchCols(lo+1, int(hi-lo), b, f.proj)
	return nil
}

func (f *summaryFiller) close() error { return nil }
