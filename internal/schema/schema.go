// Package schema models the relational schemas Hydra regenerates: tables
// with an implicit integer primary key, non-key integer attributes, and
// PK-FK referential constraints forming a DAG-structured dependency graph
// (the paper's §5.3 explicitly extends coverage from trees to DAGs).
package schema

import (
	"fmt"
	"sort"
)

// Column is a non-key attribute of a table. Domains are closed integer
// intervals; the anonymizer maps every client datatype onto such a domain.
type Column struct {
	Name string
	Min  int64 // smallest value in the domain
	Max  int64 // largest value in the domain
}

// ForeignKey declares that the owning table's column FKCol references the
// primary key of table Ref. Following the paper's data-warehouse assumption,
// all joins in the workload are along such PK-FK edges.
type ForeignKey struct {
	FKCol string // name of the referencing column in the owning table
	Ref   string // referenced table (its implicit PK)
}

// Table describes one relation. The primary key is implicit: row numbers
// 1..RowCount, matching §6 of the paper ("we consider the pk values to be
// the row numbers of the relation").
type Table struct {
	Name     string
	Cols     []Column     // non-key attributes
	FKs      []ForeignKey // PK-FK references to other tables
	RowCount int64        // |T| at the client site
}

// Col returns the named column and whether it exists.
func (t *Table) Col(name string) (Column, bool) {
	for _, c := range t.Cols {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// ColIndex returns the position of the named non-key column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Schema is a set of tables with referential constraints between them.
type Schema struct {
	Tables []*Table
	byName map[string]*Table
}

// New builds a Schema and validates it: unique table names, unique column
// names per table, FK targets that exist, and an acyclic dependency graph.
func New(tables ...*Table) (*Schema, error) {
	s := &Schema{Tables: tables, byName: make(map[string]*Table, len(tables))}
	for _, t := range tables {
		if t.Name == "" {
			return nil, fmt.Errorf("schema: table with empty name")
		}
		if _, dup := s.byName[t.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate table %q", t.Name)
		}
		s.byName[t.Name] = t
		seen := map[string]bool{}
		for _, c := range t.Cols {
			if seen[c.Name] {
				return nil, fmt.Errorf("schema: table %q: duplicate column %q", t.Name, c.Name)
			}
			seen[c.Name] = true
			if c.Min > c.Max {
				return nil, fmt.Errorf("schema: table %q column %q: empty domain [%d,%d]", t.Name, c.Name, c.Min, c.Max)
			}
		}
		for _, fk := range t.FKs {
			if seen[fk.FKCol] {
				return nil, fmt.Errorf("schema: table %q: fk column %q collides with a non-key column", t.Name, fk.FKCol)
			}
			seen[fk.FKCol] = true
		}
	}
	for _, t := range tables {
		for _, fk := range t.FKs {
			if _, ok := s.byName[fk.Ref]; !ok {
				return nil, fmt.Errorf("schema: table %q fk %q references unknown table %q", t.Name, fk.FKCol, fk.Ref)
			}
			if fk.Ref == t.Name {
				return nil, fmt.Errorf("schema: table %q: self-referential fk %q not supported", t.Name, fk.FKCol)
			}
		}
	}
	if _, err := s.TopoOrder(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is New that panics on error, for statically known-good schemas in
// tests and workload generators.
func MustNew(tables ...*Table) *Schema {
	s, err := New(tables...)
	if err != nil {
		panic(err)
	}
	return s
}

// Table returns the named table and whether it exists.
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.byName[name]
	return t, ok
}

// MustTable returns the named table or panics.
func (s *Schema) MustTable(name string) *Table {
	t, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("schema: unknown table %q", name))
	}
	return t
}

// Referenced returns the names of tables t references directly (its FK
// targets), deduplicated in FK order.
func (s *Schema) Referenced(t *Table) []string {
	var out []string
	seen := map[string]bool{}
	for _, fk := range t.FKs {
		if !seen[fk.Ref] {
			seen[fk.Ref] = true
			out = append(out, fk.Ref)
		}
	}
	return out
}

// TopoOrder returns the tables ordered so that every table appears after all
// tables it references ("referential dependency graph" topological sort,
// §5.3). It fails if the dependency graph has a cycle.
func (s *Schema) TopoOrder() ([]*Table, error) {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[string]int, len(s.Tables))
	var order []*Table
	var visit func(t *Table) error
	visit = func(t *Table) error {
		switch state[t.Name] {
		case inStack:
			return fmt.Errorf("schema: referential cycle through table %q", t.Name)
		case done:
			return nil
		}
		state[t.Name] = inStack
		// Deterministic order: visit FK targets sorted by name.
		refs := s.Referenced(t)
		sort.Strings(refs)
		for _, ref := range refs {
			if err := visit(s.byName[ref]); err != nil {
				return err
			}
		}
		state[t.Name] = done
		order = append(order, t)
		return nil
	}
	for _, t := range s.Tables {
		if err := visit(t); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// TransitiveRefs returns every table reachable from t through FK edges
// (not including t), in topological order (dependencies first).
func (s *Schema) TransitiveRefs(t *Table) []*Table {
	seen := map[string]bool{}
	var out []*Table
	var visit func(x *Table)
	visit = func(x *Table) {
		refs := s.Referenced(x)
		sort.Strings(refs)
		for _, ref := range refs {
			if !seen[ref] {
				seen[ref] = true
				rt := s.byName[ref]
				visit(rt)
				out = append(out, rt)
			}
		}
	}
	visit(t)
	return out
}

// AttrRef names one non-key attribute of one table, the unit the
// preprocessor works with when building views.
type AttrRef struct {
	Table string
	Col   string
}

func (a AttrRef) String() string { return a.Table + "." + a.Col }
