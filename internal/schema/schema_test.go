package schema

import (
	"strings"
	"testing"
)

// paperSchema is the Figure 1a toy schema: R(R_pk, S_fk, T_fk),
// S(S_pk, A, B), T(T_pk, C).
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(
		&Table{Name: "S", Cols: []Column{{Name: "A", Min: 0, Max: 100}, {Name: "B", Min: 0, Max: 50}}, RowCount: 700},
		&Table{Name: "T", Cols: []Column{{Name: "C", Min: 0, Max: 10}}, RowCount: 1500},
		&Table{Name: "R", FKs: []ForeignKey{{FKCol: "S_fk", Ref: "S"}, {FKCol: "T_fk", Ref: "T"}}, RowCount: 80000},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestTopoOrder(t *testing.T) {
	s := paperSchema(t)
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, tab := range order {
		pos[tab.Name] = i
	}
	if pos["R"] < pos["S"] || pos["R"] < pos["T"] {
		t.Fatalf("R must come after S and T: %v", pos)
	}
}

func TestCycleRejected(t *testing.T) {
	_, err := New(
		&Table{Name: "A", FKs: []ForeignKey{{FKCol: "b_fk", Ref: "B"}}},
		&Table{Name: "B", FKs: []ForeignKey{{FKCol: "a_fk", Ref: "A"}}},
	)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestDAGAllowed(t *testing.T) {
	// Diamond: D → B, D → C, B → A, C → A. DAGs are explicitly in scope
	// (§5.3 extends beyond DataSynth's trees).
	_, err := New(
		&Table{Name: "A"},
		&Table{Name: "B", FKs: []ForeignKey{{FKCol: "a_fk", Ref: "A"}}},
		&Table{Name: "C", FKs: []ForeignKey{{FKCol: "a_fk", Ref: "A"}}},
		&Table{Name: "D", FKs: []ForeignKey{{FKCol: "b_fk", Ref: "B"}, {FKCol: "c_fk", Ref: "C"}}},
	)
	if err != nil {
		t.Fatalf("diamond DAG should be valid: %v", err)
	}
}

func TestSelfReferenceRejected(t *testing.T) {
	_, err := New(&Table{Name: "A", FKs: []ForeignKey{{FKCol: "a_fk", Ref: "A"}}})
	if err == nil {
		t.Fatal("self-referential FK should be rejected")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	_, err := New(&Table{Name: "A"}, &Table{Name: "A"})
	if err == nil {
		t.Fatal("duplicate table should be rejected")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	_, err := New(&Table{Name: "A", Cols: []Column{{Name: "x", Max: 1}, {Name: "x", Max: 1}}})
	if err == nil {
		t.Fatal("duplicate column should be rejected")
	}
}

func TestFKColumnCollisionRejected(t *testing.T) {
	_, err := New(
		&Table{Name: "B"},
		&Table{Name: "A", Cols: []Column{{Name: "x", Max: 1}}, FKs: []ForeignKey{{FKCol: "x", Ref: "B"}}},
	)
	if err == nil {
		t.Fatal("fk/column name collision should be rejected")
	}
}

func TestUnknownFKTargetRejected(t *testing.T) {
	_, err := New(&Table{Name: "A", FKs: []ForeignKey{{FKCol: "z_fk", Ref: "Z"}}})
	if err == nil {
		t.Fatal("unknown fk target should be rejected")
	}
}

func TestEmptyDomainRejected(t *testing.T) {
	_, err := New(&Table{Name: "A", Cols: []Column{{Name: "x", Min: 5, Max: 4}}})
	if err == nil {
		t.Fatal("empty column domain should be rejected")
	}
}

func TestTransitiveRefs(t *testing.T) {
	s := MustNew(
		&Table{Name: "A"},
		&Table{Name: "B", FKs: []ForeignKey{{FKCol: "a_fk", Ref: "A"}}},
		&Table{Name: "C", FKs: []ForeignKey{{FKCol: "b_fk", Ref: "B"}}},
	)
	refs := s.TransitiveRefs(s.MustTable("C"))
	if len(refs) != 2 || refs[0].Name != "A" || refs[1].Name != "B" {
		names := make([]string, len(refs))
		for i, r := range refs {
			names[i] = r.Name
		}
		t.Fatalf("TransitiveRefs = %v, want [A B] (dependencies first)", names)
	}
}

func TestTransitiveRefsDiamondDeduplicates(t *testing.T) {
	s := MustNew(
		&Table{Name: "A"},
		&Table{Name: "B", FKs: []ForeignKey{{FKCol: "a_fk", Ref: "A"}}},
		&Table{Name: "C", FKs: []ForeignKey{{FKCol: "a_fk", Ref: "A"}}},
		&Table{Name: "D", FKs: []ForeignKey{{FKCol: "b_fk", Ref: "B"}, {FKCol: "c_fk", Ref: "C"}}},
	)
	refs := s.TransitiveRefs(s.MustTable("D"))
	if len(refs) != 3 {
		t.Fatalf("diamond should yield 3 unique refs, got %d", len(refs))
	}
	if refs[0].Name != "A" {
		t.Fatalf("A must come first (dependency order), got %s", refs[0].Name)
	}
}

func TestColLookup(t *testing.T) {
	s := paperSchema(t)
	tab := s.MustTable("S")
	if c, ok := tab.Col("A"); !ok || c.Max != 100 {
		t.Fatal("Col lookup broken")
	}
	if tab.ColIndex("B") != 1 || tab.ColIndex("missing") != -1 {
		t.Fatal("ColIndex broken")
	}
}

func TestReferencedDeduplicates(t *testing.T) {
	s := MustNew(
		&Table{Name: "D"},
		&Table{Name: "F", FKs: []ForeignKey{{FKCol: "d1", Ref: "D"}, {FKCol: "d2", Ref: "D"}}},
	)
	refs := s.Referenced(s.MustTable("F"))
	if len(refs) != 1 || refs[0] != "D" {
		t.Fatalf("Referenced = %v, want [D]", refs)
	}
}
