package serve

import (
	"archive/tar"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/orchestrate"
	"github.com/dsl-repro/hydra/internal/resilience"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/trace"
)

// RunnerOptions tunes a RemoteRunner.
type RunnerOptions struct {
	// Client issues the HTTP requests; nil builds one without timeouts
	// (shard streams legitimately run long; cancellation comes from the
	// job context).
	Client *http.Client
	// Attempts is how many fleet members one Run tries before giving up
	// (each failure moves to the next server in round-robin order);
	// 0 means every server once. The orchestrator's own retry budget
	// multiplies on top of this.
	Attempts int
	// Workers overrides the encode worker count sent with each job.
	// Zero — the default — lets every server choose its own parallelism
	// (GOMAXPROCS there), which is almost always right for a
	// heterogeneous fleet; the local plan's per-shard split of *this*
	// machine's cores is meaningless remotely.
	Workers int
	// SkipSummaryCheck drops the summary-digest guard from job
	// requests. Only for fleets that manage summary identity some other
	// way.
	SkipSummaryCheck bool
	// Fleet tunes the resilience substrate under the runner: background
	// /healthz probing, per-member circuit breakers, jittered retry
	// backoff, and the shared retry budget. The zero value means
	// defaults (probing on, breakers on); set Fleet.ProbeInterval
	// negative to disable probing, Fleet.BreakerThreshold negative to
	// disable breakers.
	Fleet resilience.Options
}

// RemoteRunner executes orchestrate shard jobs on a fleet of serve
// servers: the client half of regeneration-as-a-service. It implements
// orchestrate.Runner, so hydra.Orchestrate schedules, retries, and
// verifies exactly as it does in-process — only the execution is
// elsewhere. Jobs round-robin across the fleet; a failed job fails over
// to the next server with its partial artifacts removed, and every
// fetched file is re-hashed against the manifest the server bundled
// before the job reports success.
type RemoteRunner struct {
	servers []string
	opts    RunnerOptions
	tracker *resilience.Tracker
	policy  resilience.Policy

	mu     sync.Mutex
	digSum *summary.Summary // summary the cached digest was computed for
	digest string
}

var _ orchestrate.Runner = (*RemoteRunner)(nil)

// NewRemoteRunner builds a runner over the fleet's base URLs
// (e.g. "http://10.0.0.7:8372").
func NewRemoteRunner(servers []string, opts RunnerOptions) (*RemoteRunner, error) {
	if len(servers) == 0 {
		return nil, errors.New("serve: remote runner needs at least one server URL")
	}
	clean := make([]string, len(servers))
	for i, raw := range servers {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil {
			return nil, fmt.Errorf("serve: server URL %q: %w", raw, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("serve: server URL %q: want http(s)://host[:port]", raw)
		}
		clean[i] = strings.TrimRight(u.String(), "/")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	attempts := opts.Attempts
	if attempts <= 0 {
		attempts = len(clean)
	}
	tracker := resilience.NewTracker(clean, opts.Fleet)
	tracker.Start()
	return &RemoteRunner{
		servers: clean,
		opts:    opts,
		tracker: tracker,
		policy:  tracker.Policy("runner", attempts+maxBusyWaits),
	}, nil
}

// Servers returns the fleet's base URLs.
func (r *RemoteRunner) Servers() []string { return append([]string(nil), r.servers...) }

// Tracker exposes the fleet tracker (member states, EWMAs) for
// consumers that schedule over it.
func (r *RemoteRunner) Tracker() *resilience.Tracker { return r.tracker }

// Close stops the background health probes. The runner stays usable
// afterwards; member state then moves only on job outcomes.
func (r *RemoteRunner) Close() error {
	r.tracker.Close()
	return nil
}

// Run implements orchestrate.Runner: ship the job to a fleet member,
// fetch the artifact bundle into the job's output directory, verify it
// against the bundled manifest, and fail over on any error.
func (r *RemoteRunner) Run(ctx context.Context, sum *summary.Summary, job orchestrate.ShardJob) (_ *matgen.Report, err error) {
	// One span per shard job, child of the orchestrator's shard span
	// when one is running; failovers and busy-waits land here as
	// events, individual POSTs as runner.attempt child spans.
	ctx, sp := trace.Start(ctx, "runner.shardjob",
		trace.Int("shard", int64(job.Shard+1)),
		trace.Int("shards", int64(job.Opts.Shards)))
	defer func() { sp.Fail(err); sp.End() }()
	if job.Opts.Dir == "" {
		return nil, errors.New("serve: remote job needs an output directory")
	}
	if err := os.MkdirAll(job.Opts.Dir, 0o755); err != nil {
		return nil, err
	}
	req, err := r.jobRequest(sum, job)
	if err != nil {
		return nil, err
	}
	attempts := r.opts.Attempts
	if attempts <= 0 {
		attempts = len(r.servers)
	}
	var lastErr error
	fails, busyWaits := 0, 0
	a := r.policy.Begin()
	for first := true; ; first = false {
		if !first {
			// Jittered, budget-bounded backoff between failovers; a 503's
			// Retry-After floors the delay.
			var floor time.Duration
			var busy *busyError
			if errors.As(lastErr, &busy) {
				floor = busy.retryAfter
			}
			if !a.Next(ctx, floor) {
				if ctx.Err() != nil {
					return nil, fmt.Errorf("serve: shard %d/%d: %w", job.Shard+1, job.Opts.Shards, lastErr)
				}
				break // attempt cap or shared retry budget exhausted
			}
		}
		m := r.tracker.Pick()
		if m == nil {
			// Every breaker is open: count it as a failure and let the
			// backoff give a cooldown the chance to admit a probe.
			lastErr = resilience.ErrNoMembers
			sp.Event("no-member")
			if fails++; fails >= attempts {
				break
			}
			continue
		}
		rep, err := r.runOn(ctx, m.URL, req, job)
		if err == nil {
			m.ReportSuccess(0, float64(rep.Rows)/max(rep.Elapsed.Seconds(), 1e-9))
			return rep, nil
		}
		lastErr = fmt.Errorf("%s: %w", m.URL, err)
		if ctx.Err() != nil {
			break // canceled; failing over cannot help
		}
		// A 503 is capacity (or drain) signaling, not failure: the
		// member is healthy but at -max-streams. It costs a bounded
		// busy-wait, not a failover attempt and not a breaker hit — so a
		// permanently saturated fleet still surfaces an error to the
		// orchestrator's retries.
		var busy *busyError
		if errors.As(err, &busy) {
			sp.Event("busy", trace.Str("member", m.URL),
				trace.Dur("retry_after", busy.retryAfter))
			if busyWaits++; busyWaits > maxBusyWaits {
				break
			}
			continue
		}
		m.ReportFailure()
		sp.Event("failover", trace.Str("member", m.URL),
			trace.Str("error", err.Error()))
		if fails++; fails >= attempts {
			break
		}
	}
	return nil, fmt.Errorf("serve: shard %d/%d failed on %d server(s), last: %w",
		job.Shard+1, job.Opts.Shards, min(attempts, len(r.servers)), lastErr)
}

// maxBusyWaits bounds how many 503 capacity rejections one Run will
// wait out before treating saturation as failure.
const maxBusyWaits = 8

// busyError is a 503 capacity rejection with its Retry-After hint.
type busyError struct {
	retryAfter time.Duration
	msg        string
}

func (e *busyError) Error() string { return e.msg }

// busyRetryAfter parses a 503's Retry-After seconds, clamped to
// [100ms, 30s]; absent or malformed values mean 1s.
func busyRetryAfter(resp *http.Response) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		if d < 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// jobRequest maps the orchestrator's resolved matgen options onto the
// wire document.
func (r *RemoteRunner) jobRequest(sum *summary.Summary, job orchestrate.ShardJob) (*ShardJobRequest, error) {
	req := &ShardJobRequest{
		Format:    job.Opts.Format,
		Compress:  job.Opts.Compress,
		Shards:    job.Opts.Shards,
		Shard:     job.Opts.Shard,
		Tables:    job.Opts.Tables,
		BatchRows: job.Opts.BatchRows,
		FKSpread:  job.Opts.FKSpread,
		Workers:   r.opts.Workers,
		RateLimit: job.Opts.RateLimit,
	}
	if req.Shards == 0 {
		req.Shards = 1
	}
	if !r.opts.SkipSummaryCheck {
		digest, err := r.digestFor(sum)
		if err != nil {
			return nil, err
		}
		req.SummaryDigest = digest
	}
	return req, nil
}

// digestFor caches the summary digest across the many Run calls one
// orchestrated job makes with the same summary.
func (r *RemoteRunner) digestFor(sum *summary.Summary) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.digSum == sum && r.digest != "" {
		return r.digest, nil
	}
	digest, err := SummaryDigest(sum)
	if err != nil {
		return "", err
	}
	r.digSum, r.digest = sum, digest
	return digest, nil
}

// errorBodyLimit bounds how much of an error response is read back.
const errorBodyLimit = 4 << 10

// runOn executes the job on one server and unpacks the bundle. The
// download stages into a private temp dir and is renamed into the
// output directory only after the whole bundle verified against its
// manifest — so a failed, torn, or misbehaving attempt can never touch
// (let alone clobber) another shard's already-delivered artifacts, and
// a follow-up attempt starts from a clean slate.
func (r *RemoteRunner) runOn(ctx context.Context, srv string, req *ShardJobRequest, job orchestrate.ShardJob) (_ *matgen.Report, err error) {
	ctx, asp := trace.Start(ctx, "runner.attempt", trace.Str("member", srv))
	defer func() { asp.Fail(err); asp.End() }()
	start := time.Now()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, srv+"/v1/shardjobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tp := asp.Traceparent(); tp != "" {
		hreq.Header.Set(trace.Header, tp)
	}
	resp, err := r.opts.Client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
		errText := fmt.Sprintf("server answered %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusServiceUnavailable {
			return nil, &busyError{retryAfter: busyRetryAfter(resp), msg: errText}
		}
		return nil, errors.New(errText)
	}

	dir := job.Opts.Dir
	// The dot-prefixed staging dir is invisible to shard verification
	// and glob-based consumption even if a crash leaves it behind.
	stage, err := os.MkdirTemp(dir, ".hydra-fetch-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stage)

	files := map[string]fileState{}
	tr := tar.NewReader(resp.Body)
	for {
		hdr, terr := tr.Next()
		if errors.Is(terr, io.EOF) {
			break
		}
		if terr != nil {
			return nil, fmt.Errorf("artifact bundle: %w", terr)
		}
		name := hdr.Name
		if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") ||
			hdr.Typeflag != tar.TypeReg {
			return nil, fmt.Errorf("artifact bundle: unexpected entry %q", name)
		}
		f, ferr := os.Create(filepath.Join(stage, name))
		if ferr != nil {
			return nil, ferr
		}
		h := sha256.New()
		n, cerr := io.Copy(io.MultiWriter(f, h), tr)
		if werr := f.Close(); cerr == nil {
			cerr = werr
		}
		if cerr != nil {
			return nil, fmt.Errorf("artifact bundle: %s: %w", name, cerr)
		}
		files[name] = fileState{size: n, sum: hex.EncodeToString(h.Sum(nil))}
	}

	manifestName := filepath.Base(matgen.ManifestPath(dir, req.Shard, req.Shards))
	if _, ok := files[manifestName]; !ok {
		return nil, fmt.Errorf("artifact bundle ended without manifest %s", manifestName)
	}
	m, err := matgen.ReadManifest(filepath.Join(stage, manifestName))
	if err != nil {
		return nil, err
	}
	if err := checkBundle(m, req, files, manifestName); err != nil {
		return nil, err
	}
	// Commit: data files first, the manifest last, so an interrupted
	// commit leaves a shard that loudly fails verification rather than
	// a manifest vouching for files that never landed.
	for name := range files {
		if name == manifestName {
			continue
		}
		if err := os.Rename(filepath.Join(stage, name), filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	if err := os.Rename(filepath.Join(stage, manifestName), filepath.Join(dir, manifestName)); err != nil {
		return nil, err
	}

	rep := &matgen.Report{
		Format:       m.Format,
		Compression:  m.Compression,
		Shard:        m.Shard,
		Shards:       m.Shards,
		Tables:       append([]matgen.TableReport(nil), m.Tables...),
		Rows:         m.Rows,
		Bytes:        m.Bytes,
		RawBytes:     m.RawBytes,
		Elapsed:      time.Since(start),
		ManifestPath: filepath.Join(dir, manifestName),
	}
	if rep.RawBytes == 0 {
		rep.RawBytes = rep.Bytes
	}
	// The manifest records the server's paths; the report speaks for the
	// local copies.
	for i := range rep.Tables {
		rep.Tables[i].Path = filepath.Join(dir, filepath.Base(rep.Tables[i].Path))
	}
	return rep, nil
}

// fileState is one fetched bundle entry's observed size and SHA-256.
type fileState struct {
	size int64
	sum  string
}

// checkBundle proves the fetched artifacts are the job that was asked
// for and arrived intact: the manifest must describe this exact shard,
// every manifest-listed file must be present with its recorded size and
// SHA-256 (re-hashed during download), and the bundle must carry
// nothing else.
func checkBundle(m *matgen.Manifest, req *ShardJobRequest, files map[string]fileState, manifestName string) error {
	if m.Shard != req.Shard || m.Shards != req.Shards {
		return fmt.Errorf("manifest claims shard %d of %d, requested %d of %d",
			m.Shard, m.Shards, req.Shard, req.Shards)
	}
	if m.Format != req.Format {
		return fmt.Errorf("manifest format %q, requested %q", m.Format, req.Format)
	}
	wantComp := req.Compress
	if wantComp == "none" {
		wantComp = ""
	}
	if m.Compression != wantComp {
		return fmt.Errorf("manifest compression %q, requested %q", m.Compression, wantComp)
	}
	expected := map[string]bool{manifestName: true}
	for _, tr := range m.Tables {
		if tr.Path == "" {
			continue
		}
		name := filepath.Base(tr.Path)
		expected[name] = true
		got, ok := files[name]
		if !ok {
			return fmt.Errorf("bundle missing %s", name)
		}
		if got.size != tr.Bytes {
			return fmt.Errorf("%s: %d bytes fetched, manifest recorded %d", name, got.size, tr.Bytes)
		}
		if tr.Checksum != "" && got.sum != tr.Checksum {
			return fmt.Errorf("%s: sha256 %s, manifest recorded %s", name, got.sum, tr.Checksum)
		}
	}
	for name := range files {
		if !expected[name] {
			return fmt.Errorf("bundle carried unexpected file %s", name)
		}
	}
	return nil
}
