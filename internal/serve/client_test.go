package serve

import (
	"archive/tar"
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/orchestrate"
	"github.com/dsl-repro/hydra/internal/resilience"
)

// newFleet starts n regeneration servers over the fixture summary and
// returns their URLs.
func newFleet(t *testing.T, n int, opts Options) []string {
	t.Helper()
	sum := testSummary()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = newTestServer(t, sum, opts).URL
	}
	return urls
}

func readDirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "manifest-") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestNewRemoteRunnerValidation rejects unusable fleets.
func TestNewRemoteRunnerValidation(t *testing.T) {
	for name, servers := range map[string][]string{
		"empty fleet": {},
		"no scheme":   {"10.0.0.7:8372"},
		"bad scheme":  {"ftp://host"},
		"no host":     {"http://"},
	} {
		if _, err := NewRemoteRunner(servers, RunnerOptions{}); err == nil {
			t.Errorf("%s: expected error for %v", name, servers)
		}
	}
	r, err := NewRemoteRunner([]string{" http://a:1/ ", "https://b"}, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Servers(); got[0] != "http://a:1" || got[1] != "https://b" {
		t.Fatalf("servers = %v", got)
	}
}

// TestRemoteOrchestrateGolden is the acceptance criterion: orchestrate
// over a remote fleet produces shard files byte-identical to the
// in-process pool, plain and gzip, and VerifyShards passes on the
// fetched directory.
func TestRemoteOrchestrateGolden(t *testing.T) {
	sum := testSummary()
	fleet := newFleet(t, 2, Options{})
	for _, format := range fileFormats() {
		for _, compress := range []string{"", "gzip"} {
			t.Run(format+"/"+compressName(compress), func(t *testing.T) {
				runner, err := NewRemoteRunner(fleet, RunnerOptions{})
				if err != nil {
					t.Fatal(err)
				}
				remote := t.TempDir()
				res, err := orchestrate.Run(context.Background(), sum, orchestrate.Options{
					Dir: remote, Format: format, Compress: compress, Shards: 3,
					Runner: runner,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Verification == nil || res.Verification.Shards != 3 {
					t.Fatalf("verification = %+v", res.Verification)
				}
				local := t.TempDir()
				if _, err := orchestrate.Run(context.Background(), sum, orchestrate.Options{
					Dir: local, Format: format, Compress: compress, Shards: 3,
				}); err != nil {
					t.Fatal(err)
				}
				want := readDirFiles(t, local)
				got := readDirFiles(t, remote)
				if len(got) != len(want) {
					t.Fatalf("remote dir holds %d data files, local %d", len(got), len(want))
				}
				for name, w := range want {
					if !bytes.Equal(got[name], w) {
						t.Fatalf("%s: remote bytes != in-process bytes", name)
					}
				}
				// The shipped artifacts re-verify standalone, like any
				// collected directory.
				if _, err := orchestrate.Verify(orchestrate.VerifyOptions{Dir: remote, Summary: sum}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// breakerServer simulates fleet failure modes around a payload captured
// from a healthy server: hard 500s, and mid-stream cuts that truncate
// the tar bundle after a poisoned extra entry.
type breakerServer struct {
	mode string // "error" | "cut"
	hits atomic.Int64
}

func (b *breakerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.hits.Add(1)
	switch b.mode {
	case "error":
		http.Error(w, "simulated shard failure", http.StatusInternalServerError)
	case "cut":
		// A valid tar prologue with one full (bogus) entry, then a torn
		// second entry: the client must notice the missing manifest,
		// remove everything this attempt wrote, and fail over.
		w.Header().Set("Content-Type", "application/x-tar")
		tw := tar.NewWriter(w)
		tw.WriteHeader(&tar.Header{Name: "poison.csv", Mode: 0o644, Size: 9, ModTime: time.Unix(0, 0)})
		tw.Write([]byte("bad,data\n"))
		tw.Flush()
		tw.WriteHeader(&tar.Header{Name: "S.csv.part-000-of-002", Mode: 0o644, Size: 1 << 20, ModTime: time.Unix(0, 0)})
		tw.Write(bytes.Repeat([]byte("torn\n"), 64)) // far short of the declared size
		// Return without closing the tar stream: unexpected EOF client-side.
	}
}

// TestRemoteRunnerFailover: with a failing server in the rotation, jobs
// land on the healthy one, poisoned partial artifacts are removed, and
// the final directory verifies.
func TestRemoteRunnerFailover(t *testing.T) {
	sum := testSummary()
	for _, mode := range []string{"error", "cut"} {
		t.Run(mode, func(t *testing.T) {
			breaker := &breakerServer{mode: mode}
			bad := httptest.NewServer(breaker)
			t.Cleanup(bad.Close)
			healthy := newTestServer(t, sum, Options{})
			runner, err := NewRemoteRunner([]string{bad.URL, healthy.URL}, RunnerOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			res, err := orchestrate.Run(context.Background(), sum, orchestrate.Options{
				Dir: dir, Format: "csv", Compress: "gzip", Shards: 2,
				Runner: runner,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, sr := range res.Shards {
				if sr.Err != nil {
					t.Fatalf("shard %d failed: %v", sr.Shard, sr.Err)
				}
			}
			if breaker.hits.Load() == 0 {
				t.Fatal("failing server never tried; failover untested")
			}
			if _, err := os.Stat(filepath.Join(dir, "poison.csv")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("poisoned partial artifact survived failover: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, "S.csv.part-000-of-002")); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("torn partial artifact survived failover")
			}
			if _, err := orchestrate.Verify(orchestrate.VerifyOptions{Dir: dir, Summary: sum}); err != nil {
				t.Fatalf("post-failover verification: %v", err)
			}
		})
	}
}

// TestRemoteRunnerStallTimeout: a stalling server is cut off by the
// injected HTTP client's timeout and the job fails over.
func TestRemoteRunnerStallTimeout(t *testing.T) {
	sum := testSummary()
	release := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall; the client's timeout is what ends the attempt
	}))
	t.Cleanup(stall.Close)
	t.Cleanup(func() { close(release) }) // LIFO: unblock handlers before Close
	healthy := newTestServer(t, sum, Options{})
	runner, err := NewRemoteRunner([]string{stall.URL, healthy.URL}, RunnerOptions{
		Client: &http.Client{Timeout: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	start := time.Now()
	res, err := orchestrate.Run(context.Background(), sum, orchestrate.Options{
		Dir: dir, Format: "jsonl", Shards: 2, Runner: runner, Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 20*time.Second {
		t.Fatal("stalling server was never timed out")
	}
	for _, sr := range res.Shards {
		if sr.Err != nil {
			t.Fatalf("shard %d: %v", sr.Shard, sr.Err)
		}
	}
}

// TestRemoteRunnerBusyWait: a 503 capacity rejection is not a failure —
// the runner honors Retry-After and re-enters the rotation without
// burning a failover attempt, so a busy-but-healthy fleet completes the
// job.
func TestRemoteRunnerBusyWait(t *testing.T) {
	sum := testSummary()
	real, err := NewServer(sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	busyTwice := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			// Background fleet probes are infrastructure traffic, not
			// job attempts — keep them out of the hit count.
			real.ServeHTTP(w, r)
			return
		}
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "at capacity", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(busyTwice.Close)
	// Attempts: 1 — the two 503s must not count against it.
	runner, err := NewRemoteRunner([]string{busyTwice.URL}, RunnerOptions{Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := runner.Run(context.Background(), sum, orchestrate.ShardJob{Opts: matgen.Options{
		Dir: t.TempDir(), Format: "csv", Shards: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server hit %d times, want 3 (2 busy + 1 success)", got)
	}
	if waited := time.Since(start); waited < 2*time.Second {
		t.Fatalf("job completed in %v; Retry-After was not honored", waited)
	}
	if rep.Rows != 9721 {
		t.Fatalf("rows = %d", rep.Rows)
	}

	// A permanently saturated fleet still fails once the busy budget is
	// spent, instead of waiting forever.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.Header().Set("Retry-After", "0") // floor-clamped to 100ms
		http.Error(w, "at capacity", http.StatusServiceUnavailable)
	}))
	t.Cleanup(always.Close)
	saturated, err := NewRemoteRunner([]string{always.URL}, RunnerOptions{Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := saturated.Run(context.Background(), sum, orchestrate.ShardJob{Opts: matgen.Options{
		Dir: t.TempDir(), Format: "csv", Shards: 1,
	}}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v, want saturation failure", err)
	}
}

// TestRemoteRunnerDigestGuard: a server loaded with a different summary
// refuses the job with 409, naming its own digest; SkipSummaryCheck
// disables the guard.
func TestRemoteRunnerDigestGuard(t *testing.T) {
	jobSum := testSummary()
	otherSum := testSummary()
	otherSum.Relations["S"].Rows[0].Count += 7
	otherSum.Relations["S"].Total += 7
	stale := newTestServer(t, otherSum, Options{})

	runner, err := NewRemoteRunner([]string{stale.URL}, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	job := orchestrate.ShardJob{Opts: matgen.Options{
		Dir: t.TempDir(), Format: "csv", Shards: 1,
	}}
	_, err = runner.Run(context.Background(), jobSum, job)
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("err = %v, want digest mismatch", err)
	}

	unguarded, err := NewRemoteRunner([]string{stale.URL}, RunnerOptions{SkipSummaryCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without the guard the stale server happily generates *its* data —
	// exactly the hazard the digest exists to prevent.
	rep, err := unguarded.Run(context.Background(), jobSum, job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != otherSum.Relations["S"].Total+otherSum.Relations["T"].Total {
		t.Fatalf("rows = %d", rep.Rows)
	}
}

// TestRemoteRunnerCancellation: a canceled context stops the failover
// loop instead of marching through the remaining fleet.
func TestRemoteRunnerCancellation(t *testing.T) {
	var hits atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		hits.Add(1)
		cancel()
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(failing.Close)
	runner, err := NewRemoteRunner([]string{failing.URL, failing.URL, failing.URL}, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runner.Run(ctx, testSummary(), orchestrate.ShardJob{Opts: matgen.Options{
		Dir: t.TempDir(), Format: "csv", Shards: 1,
	}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("fleet tried %d times after cancellation, want 1", got)
	}
}

// TestShardJobReportFromManifest: the report a remote run returns is
// rebuilt from the manifest with paths pointing at the local copies.
func TestShardJobReportFromManifest(t *testing.T) {
	sum := testSummary()
	ts := newTestServer(t, sum, Options{})
	runner, err := NewRemoteRunner([]string{ts.URL}, RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, err := runner.Run(context.Background(), sum, orchestrate.ShardJob{
		Shard: 1,
		Opts: matgen.Options{
			Dir: dir, Format: "csv", Compress: "gzip", Shards: 3, Shard: 1, BatchRows: 128,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shard != 1 || rep.Shards != 3 || rep.Format != "csv" || rep.Compression != "gzip" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ManifestPath != matgen.ManifestPath(dir, 1, 3) {
		t.Fatalf("manifest path = %q", rep.ManifestPath)
	}
	if rep.RawBytes <= rep.Bytes {
		t.Fatalf("raw bytes %d vs bytes %d: raw accounting lost in transit", rep.RawBytes, rep.Bytes)
	}
	for _, tr := range rep.Tables {
		if filepath.Dir(tr.Path) != dir {
			t.Fatalf("table path %q not rewritten to local dir", tr.Path)
		}
		if _, err := os.Stat(tr.Path); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

// TestBusyRetryAfterEdgeCases: Retry-After is advisory input from the
// network; negative, huge, and malformed values must all collapse into
// the clamped [100ms, 30s] window rather than being trusted.
func TestBusyRetryAfterEdgeCases(t *testing.T) {
	mk := func(v string, set bool) *http.Response {
		h := http.Header{}
		if set {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		name string
		hdr  string
		set  bool
		want time.Duration
	}{
		{"absent", "", false, time.Second},
		{"empty", "", true, time.Second},
		{"zero floors", "0", true, 100 * time.Millisecond},
		{"normal", "3", true, 3 * time.Second},
		{"negative means default", "-5", true, time.Second},
		{"huge clamps", "86400", true, 30 * time.Second},
		{"overflow clamps", "99999999999999999999", true, time.Second},
		{"malformed word", "soon", true, time.Second},
		{"http-date form falls back", "Fri, 08 Aug 2026 00:00:00 GMT", true, time.Second},
		{"fractional falls back", "1.5", true, time.Second},
	}
	for _, tc := range cases {
		if got := busyRetryAfter(mk(tc.hdr, tc.set)); got != tc.want {
			t.Errorf("%s: busyRetryAfter(%q) = %v, want %v", tc.name, tc.hdr, got, tc.want)
		}
	}
}

// TestRemoteRunnerBreakerReadmission: consecutive real failures open a
// member's breaker; once the member recovers, a health probe re-admits
// it and jobs flow again — the half-open cycle end to end, through the
// runner rather than the breaker's own API.
func TestRemoteRunnerBreakerReadmission(t *testing.T) {
	sum := testSummary()
	real, err := NewServer(sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var failing atomic.Bool
	failing.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() && r.URL.Path != "/healthz" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if failing.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	runner, err := NewRemoteRunner([]string{flaky.URL}, RunnerOptions{
		Attempts: 3,
		Fleet: resilience.Options{
			BreakerThreshold: 2,
			BreakerCooldown:  150 * time.Millisecond,
			ProbeInterval:    50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	job := orchestrate.ShardJob{Opts: matgen.Options{
		Dir: t.TempDir(), Format: "csv", Shards: 1,
	}}

	// Enough failures to trip the threshold-2 breaker.
	if _, err := runner.Run(context.Background(), sum, job); err == nil {
		t.Fatal("run against a failing member succeeded")
	}
	m := runner.Tracker().Members()[0]
	deadline := time.Now().Add(2 * time.Second)
	for m.State() != resilience.MemberOpen && time.Now().Before(deadline) {
		if _, err := runner.Run(context.Background(), sum, job); err == nil {
			t.Fatal("run against a failing member succeeded")
		}
	}
	if m.State() != resilience.MemberOpen {
		t.Fatal("breaker never opened on consecutive failures")
	}

	// Member recovers; within cooldown + one probe interval the breaker
	// re-admits it and a job succeeds.
	failing.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		job := orchestrate.ShardJob{Opts: matgen.Options{
			Dir: t.TempDir(), Format: "csv", Shards: 1,
		}}
		rep, err := runner.Run(context.Background(), sum, job)
		if err == nil {
			if rep.Rows != 9721 {
				t.Fatalf("recovered run rows = %d", rep.Rows)
			}
			if m.State() != resilience.MemberHealthy {
				t.Fatalf("member state after recovery = %v, want healthy", m.State())
			}
			return
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("member was never re-admitted after recovery; last error: %v", lastErr)
}
