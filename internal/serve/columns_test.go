package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
)

// TestTableStreamColumns proves the projection pushdown: columns= must
// stream exactly the bytes a local materialization with the same
// Columns writes — projected header included — and info=1 must report
// the projected layout.
func TestTableStreamColumns(t *testing.T) {
	sum := testSummary()
	ts := newTestServer(t, sum, Options{})
	for _, tc := range []struct {
		format string
		cols   string
	}{
		{"csv", "S_pk,A"},
		{"csv", "t_fk,B,S_pk"}, // reordered
		{"jsonl", "A,B"},       // pk-less
		{"heap", "S_pk,t_fk"},
		{"sql", "S_pk,A,B"},
	} {
		t.Run(tc.format+"/"+tc.cols, func(t *testing.T) {
			cols := strings.Split(tc.cols, ",")
			dir := t.TempDir()
			if _, err := matgen.Materialize(sum, matgen.Options{
				Dir: dir, Format: tc.format, Tables: []string{"S"}, Columns: cols, Workers: 2,
			}); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(dir, "S"+mustSink(t, tc.format).Ext()))
			if err != nil {
				t.Fatal(err)
			}
			resp, body := get(t, ts.URL+"/v1/tables/S?format="+tc.format+"&columns="+tc.cols)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %s: %s", resp.Status, body)
			}
			if string(body) != string(want) {
				t.Fatalf("projected stream differs from projected materialization (%d vs %d bytes)",
					len(body), len(want))
			}

			resp, body = get(t, ts.URL+"/v1/tables/S?format="+tc.format+"&columns="+tc.cols+"&info=1")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("info status %s", resp.Status)
			}
			var rep matgen.StreamReport
			if err := json.Unmarshal(body, &rep); err != nil {
				t.Fatal(err)
			}
			if strings.Join(rep.Cols, ",") != tc.cols {
				t.Fatalf("info cols = %v, want %s", rep.Cols, tc.cols)
			}
		})
	}
}

func mustSink(t *testing.T, name string) matgen.Sink {
	t.Helper()
	s, err := matgen.SinkFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTableStreamBadColumns: unknown and duplicate projections are
// client errors, not stream failures.
func TestTableStreamBadColumns(t *testing.T) {
	ts := newTestServer(t, testSummary(), Options{})
	for _, q := range []string{"columns=nope", "columns=A,A"} {
		resp, body := get(t, ts.URL+"/v1/tables/S?format=csv&"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %s: %s", q, resp.Status, body)
		}
	}
}

// TestRateLimitedStreamDisconnectFreesSlot is the -max-streams
// regression guard: a client that drops a rate-limited stream must free
// its slot promptly — the rate wait observes the request context — so
// the next request is not starved behind a connection nobody is
// reading.
func TestRateLimitedStreamDisconnectFreesSlot(t *testing.T) {
	sum := testSummary()
	// One slot; the paced stream would take ~8208/20 ≈ 410s if the wait
	// ignored the disconnect.
	ts := newTestServer(t, sum, Options{MaxStreams: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/tables/S?format=csv&rate=20", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first chunk so the stream is truly mid-flight, then drop
	// the connection while the server sits in its rate wait.
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The slot must come back well before the stream's paced duration.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := get(t, ts.URL+"/v1/tables/T?format=csv")
		if resp.StatusCode == http.StatusOK {
			if len(body) == 0 {
				t.Fatal("empty follow-up stream")
			}
			return
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %s: %s", resp.Status, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot still held 5s after client disconnect — rate wait ignores ctx")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
