package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/obs"
)

// TestDrainMode proves the member-facing drain contract: /healthz flips
// to "draining" (the signal fleet trackers poll), new streams get 503 +
// Retry-After, and EndDrain reverses it.
func TestDrainMode(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(testSummary(), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	health := func() string {
		resp, body := get(t, ts.URL+"/healthz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d during drain; probes must keep working", resp.StatusCode)
		}
		var doc HealthInfo
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		return doc.Status
	}

	if got := health(); got != "ok" {
		t.Fatalf("healthz before drain = %q, want ok", got)
	}
	s.BeginDrain()
	s.BeginDrain() // idempotent
	if got := health(); got != "draining" {
		t.Fatalf("healthz during drain = %q, want draining", got)
	}
	resp, body := get(t, ts.URL+"/v1/tables/T?format=csv")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream during drain: status %d, want 503; body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 must carry Retry-After")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hydra_serve_drain_rejected_total 1", "hydra_serve_draining 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	s.EndDrain()
	if got := health(); got != "ok" {
		t.Fatalf("healthz after EndDrain = %q, want ok", got)
	}
	resp, _ = get(t, ts.URL+"/v1/tables/T?format=csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream after EndDrain: status %d, want 200", resp.StatusCode)
	}
}

// TestWaitIdle proves the drain wait: it blocks while a stream holds a
// slot, honors its deadline, and returns as soon as the server goes
// idle.
func TestWaitIdle(t *testing.T) {
	s, err := NewServer(testSummary(), Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Idle server: WaitIdle returns immediately.
	if err := s.WaitIdle(context.Background()); err != nil {
		t.Fatalf("WaitIdle on idle server = %v", err)
	}

	// A rate-limited stream stays in flight for ~30s unless canceled.
	// batch=25 keeps the pacing incremental (one 0.5s chunk at a time)
	// instead of one whole-table batch that pays the wait up front.
	resp, err := http.Get(ts.URL + "/v1/tables/T?format=csv&rate=50&batch=25")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := s.WaitIdle(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitIdle with an in-flight stream = %v, want DeadlineExceeded", err)
	}

	// The client going away cancels generation and frees the slot;
	// WaitIdle then succeeds within the drain deadline.
	resp.Body.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.WaitIdle(ctx2); err != nil {
		t.Fatalf("WaitIdle after the stream ended = %v", err)
	}
}
