// Package serve is Hydra's regeneration-as-a-service layer: it turns a
// loaded database summary — a few KB, independent of data scale — into
// an HTTP data plane that regenerates big data volumes on demand, plus
// the client that makes shard orchestration cluster-scale.
//
// Server side, two endpoints over one summary:
//
//	GET  /v1/tables/{table}?format=csv|jsonl|sql|heap&compress=gzip
//	     &shard=i/N&offset=K&limit=M&rate=R&columns=a,b
//	     streams a resumable range scan straight from matgen's
//	     zero-allocation encode pipeline. The bytes are exactly what a
//	     local materialization with the same options writes (prefix/
//	     suffix thereof for limited/resumed streams), chunk-flushed as
//	     they are produced, SHA-256 in an HTTP trailer. columns= pushes
//	     a projection down to the encoder layer: only the named columns
//	     are generated and encoded, in the order given. Backpressure is the connection
//	     itself: a slow client stalls encoding instead of buffering the
//	     table in memory, and closing it cancels generation mid-chunk.
//	GET  /v1/tables/{table}?...&info=1 returns the stream's geometry
//	     (rows, alignment, chunk grid) as JSON without generating.
//	POST /v1/shardjobs executes one full matgen ShardJob — the unit the
//	     orchestrator schedules — and streams back the artifact bundle
//	     (part files + manifest) as a tar stream whose contents carry
//	     the manifest's SHA-256 checksums.
//	GET  /v1/summary and GET /healthz describe the loaded summary
//	     (including its digest) and liveness, for fleet management.
//
// Client side, RemoteRunner implements orchestrate.Runner over a fleet
// of such servers: jobs round-robin across the fleet, fail over to the
// next server on error with partial artifacts removed, and every
// fetched file is re-hashed against its manifest checksum before the
// job reports success — so hydra.Orchestrate runs unchanged against
// remote machines and VerifyShards proves the assembled directory.
//
// Concurrency and pacing are first-class: -max-streams bounds the
// number of in-flight streams and jobs (excess requests get 503 +
// Retry-After, the signal a fleet scheduler wants), and -rate-limit
// caps every stream's emit rate in rows/s via the shared token-bucket
// limiter (internal/rate), which is what turns the server into a load
// generator with a controllable rate.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/rate"
	"github.com/dsl-repro/hydra/internal/summary"
)

// Options tunes a Server.
type Options struct {
	// MaxStreams bounds concurrently running table streams plus shard
	// jobs; further requests receive 503 with Retry-After. 0 means
	// unlimited.
	MaxStreams int
	// RateLimit caps every stream's and job's emit rate in rows per
	// second (0 = unlimited). Clients may request a lower rate with the
	// rate query parameter / job field, never a higher one.
	RateLimit float64
	// Workers is the encode worker count for shard jobs whose request
	// leaves workers unset; 0 means GOMAXPROCS.
	Workers int
	// BatchRows overrides matgen's batch granularity for requests that
	// leave it unset.
	BatchRows int
	// Log receives per-request failures that can no longer reach the
	// client (mid-stream errors). Nil disables logging.
	Log *log.Logger
}

// Server regenerates one summary's relations over HTTP. It is an
// http.Handler; wire it into any mux or server.
type Server struct {
	sum    *summary.Summary
	opts   Options
	digest string
	mux    *http.ServeMux
	slots  chan struct{}
}

// NewServer builds the data plane for one loaded summary.
func NewServer(sum *summary.Summary, opts Options) (*Server, error) {
	if sum == nil {
		return nil, errors.New("serve: summary is required")
	}
	if opts.RateLimit != 0 {
		if err := rate.Validate(opts.RateLimit); err != nil {
			return nil, fmt.Errorf("serve: rate limit: %w", err)
		}
	}
	if opts.MaxStreams < 0 {
		return nil, fmt.Errorf("serve: max streams %d out of range", opts.MaxStreams)
	}
	digest, err := SummaryDigest(sum)
	if err != nil {
		return nil, err
	}
	s := &Server{sum: sum, opts: opts, digest: digest}
	if opts.MaxStreams > 0 {
		s.slots = make(chan struct{}, opts.MaxStreams)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/tables/{table}", s.handleTable)
	s.mux.HandleFunc("POST /v1/shardjobs", s.handleShardJob)
	s.mux.HandleFunc("GET /v1/summary", s.handleSummary)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SummaryDigest returns the hex SHA-256 of the summary's canonical
// serialization — the identity a fleet agrees on. A client embeds it in
// job requests so a server loaded with a different summary refuses the
// job instead of silently generating different data.
func SummaryDigest(sum *summary.Summary) (string, error) {
	h := sha256.New()
	if _, err := sum.WriteTo(h); err != nil {
		return "", fmt.Errorf("serve: digest: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// acquire takes a stream slot, answering 503 when the server is at
// MaxStreams. The caller must release() iff acquire returned true.
func (s *Server) acquire(w http.ResponseWriter) bool {
	if s.slots == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("serve: %d concurrent streams already running", cap(s.slots)),
			http.StatusServiceUnavailable)
		return false
	}
}

func (s *Server) release() {
	if s.slots != nil {
		<-s.slots
	}
}

// capRate resolves a client-requested rate against the server cap: the
// client may slow a stream down, never speed it past the cap. Requests
// are validated before they get here; the NaN/Inf guard is defense in
// depth, since either would fail every comparison and escape the cap.
func (s *Server) capRate(requested float64) float64 {
	ceiling := s.opts.RateLimit
	if requested <= 0 || math.IsNaN(requested) || math.IsInf(requested, 0) {
		return ceiling
	}
	if ceiling > 0 && requested > ceiling {
		return ceiling
	}
	return requested
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}

// SummaryInfo is the GET /v1/summary document.
type SummaryInfo struct {
	Digest string `json:"digest"`
	// Relations maps table name to full-relation cardinality.
	Relations map[string]int64 `json:"relations"`
	TotalRows int64            `json:"total_rows"`
	// Formats and Compressors list what the tables endpoint accepts.
	Formats     []string `json:"formats"`
	Compressors []string `json:"compressors"`
	MaxStreams  int      `json:"max_streams,omitempty"`
	RateLimit   float64  `json:"rate_limit,omitempty"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	info := SummaryInfo{
		Digest:      s.digest,
		Relations:   make(map[string]int64, len(s.sum.Relations)),
		Compressors: matgen.CompressorNames(),
		MaxStreams:  s.opts.MaxStreams,
		RateLimit:   s.opts.RateLimit,
	}
	for name, rs := range s.sum.Relations {
		info.Relations[name] = rs.Total
		info.TotalRows += rs.Total
	}
	// Only streamable formats: discard has no byte stream to serve.
	for _, name := range matgen.SinkNames() {
		if name != "discard" {
			info.Formats = append(info.Formats, name)
		}
	}
	sort.Strings(info.Formats)
	writeJSON(w, http.StatusOK, info)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// parseShard parses the CLI-style 1-based "i/N" shard selector into the
// 0-based (shard, shards) pair the engine uses.
func parseShard(spec string) (shard, shards int, err error) {
	if spec == "" {
		return 0, 1, nil
	}
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard wants i/N, got %q", spec)
	}
	pi, err1 := strconv.Atoi(i)
	pn, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || pi < 1 || pn < 1 || pi > pn {
		return 0, 0, fmt.Errorf("shard wants i/N with 1 <= i <= N, got %q", spec)
	}
	return pi - 1, pn, nil
}
