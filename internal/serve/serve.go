// Package serve is Hydra's regeneration-as-a-service layer: it turns a
// loaded database summary — a few KB, independent of data scale — into
// an HTTP data plane that regenerates big data volumes on demand, plus
// the client that makes shard orchestration cluster-scale.
//
// Server side, two endpoints over one summary:
//
//	GET  /v1/tables/{table}?format=csv|jsonl|sql|heap&compress=gzip
//	     &shard=i/N&offset=K&limit=M&rate=R&columns=a,b
//	     streams a resumable range scan straight from matgen's
//	     zero-allocation encode pipeline. The bytes are exactly what a
//	     local materialization with the same options writes (prefix/
//	     suffix thereof for limited/resumed streams), chunk-flushed as
//	     they are produced, SHA-256 in an HTTP trailer. columns= pushes
//	     a projection down to the encoder layer: only the named columns
//	     are generated and encoded, in the order given. Backpressure is the connection
//	     itself: a slow client stalls encoding instead of buffering the
//	     table in memory, and closing it cancels generation mid-chunk.
//	GET  /v1/tables/{table}?...&info=1 returns the stream's geometry
//	     (rows, alignment, chunk grid) as JSON without generating.
//	POST /v1/shardjobs executes one full matgen ShardJob — the unit the
//	     orchestrator schedules — and streams back the artifact bundle
//	     (part files + manifest) as a tar stream whose contents carry
//	     the manifest's SHA-256 checksums.
//	GET  /v1/summary and GET /healthz describe the loaded summary
//	     (including its digest) and liveness, for fleet management.
//
// Client side, RemoteRunner implements orchestrate.Runner over a fleet
// of such servers: jobs round-robin across the fleet, fail over to the
// next server on error with partial artifacts removed, and every
// fetched file is re-hashed against its manifest checksum before the
// job reports success — so hydra.Orchestrate runs unchanged against
// remote machines and VerifyShards proves the assembled directory.
//
// Concurrency and pacing are first-class: -max-streams bounds the
// number of in-flight streams and jobs (excess requests get 503 +
// Retry-After, the signal a fleet scheduler wants), and -rate-limit
// caps every stream's emit rate in rows/s via the shared token-bucket
// limiter (internal/rate), which is what turns the server into a load
// generator with a controllable rate.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/rate"
	"github.com/dsl-repro/hydra/internal/summary"
	"github.com/dsl-repro/hydra/internal/version"
)

// Options tunes a Server.
type Options struct {
	// MaxStreams bounds concurrently running table streams plus shard
	// jobs; further requests receive 503 with Retry-After. 0 means
	// unlimited.
	MaxStreams int
	// RateLimit caps every stream's and job's emit rate in rows per
	// second (0 = unlimited). Clients may request a lower rate with the
	// rate query parameter / job field, never a higher one.
	RateLimit float64
	// Workers is the encode worker count for shard jobs whose request
	// leaves workers unset; 0 means GOMAXPROCS.
	Workers int
	// BatchRows overrides matgen's batch granularity for requests that
	// leave it unset.
	BatchRows int
	// Log receives per-request failures that can no longer reach the
	// client (mid-stream errors). Nil disables logging.
	Log *log.Logger
	// Logger receives one structured record per completed table stream
	// (table, rows, bytes, duration, outcome) — the log a fleet operator
	// greps when a scraped histogram says something was slow. Nil
	// disables structured logging.
	Logger *slog.Logger
	// Metrics is the registry the server records into and serves at
	// GET /metrics; nil means obs.Default (which is what the engine
	// packages — matgen, scan, rate — record into, so the default wires
	// the whole process onto one scrape endpoint).
	Metrics *obs.Registry
	// WriteTimeout bounds how long one chunk write (plus its flush) may
	// block on the connection. A client that stops reading mid-stream
	// stalls the encode pipeline by design — that is the backpressure —
	// but a dead one must not hold a stream slot forever; past the
	// deadline the write fails and the slot frees. 0 disables.
	WriteTimeout time.Duration
	// DrainTimeout bounds the graceful drain that hydra.Serve (and the
	// CLI) run between the stop signal and process exit: in-flight
	// streams get this long to finish before stragglers are force-
	// closed. 0 means DefaultDrainTimeout; the Server itself does not
	// read it — BeginDrain/WaitIdle take the caller's deadline.
	DrainTimeout time.Duration
}

// DefaultDrainTimeout bounds graceful drain when Options.DrainTimeout
// is zero.
const DefaultDrainTimeout = 30 * time.Second

// Server regenerates one summary's relations over HTTP. It is an
// http.Handler; wire it into any mux or server.
type Server struct {
	sum      *summary.Summary
	opts     Options
	digest   string
	mux      *http.ServeMux
	slots    chan struct{}
	reg      *obs.Registry
	m        serverMetrics
	start    time.Time
	draining atomic.Bool
	// drainStart is the UnixNano instant BeginDrain flipped the server
	// into drain mode, 0 while serving normally — /healthz derives the
	// drain deadline from it.
	drainStart atomic.Int64
}

// errStreamRejected marks the spans of requests refused at admission —
// drain mode or the MaxStreams cap — so capacity rejections are visible
// in the flight recorder as errored traces.
var errStreamRejected = errors.New("rejected at admission: draining or at stream capacity")

// serverMetrics are the server's own instruments, resolved once at
// construction so the request path never takes the registry lock.
type serverMetrics struct {
	// inFlight counts streams and shard jobs currently holding a slot —
	// the gauge a fleet scheduler compares against -max-streams.
	inFlight *obs.Gauge
	// streamSec is the whole-stream wall time; ttfcSec the time from
	// request start to the first body byte (queueing + planning + first
	// chunk's generation), the latency a scanning client actually feels.
	streamSec *obs.Histogram
	ttfcSec   *obs.Histogram
	// busy counts 503 capacity rejections; mismatch counts shard jobs
	// refused because they named a different summary digest.
	busy     *obs.Counter
	mismatch *obs.Counter
	// filterRejected counts table streams refused with 400 because the
	// filter= parameter was malformed, named an unknown column, or asked
	// a page/statement-structured format to carry row gaps.
	filterRejected *obs.Counter
	// drainRejected counts streams refused because the server was
	// draining; drainingG is 1 while drain mode is on — the pair an
	// operator watches during a rolling restart.
	drainRejected *obs.Counter
	drainingG     *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		inFlight: reg.Gauge("hydra_serve_in_flight_streams",
			"table streams and shard jobs currently holding a concurrency slot"),
		streamSec: reg.Histogram("hydra_serve_stream_seconds",
			"wall time of one table stream, first byte to last", nil),
		ttfcSec: reg.Histogram("hydra_serve_ttfc_seconds",
			"time from request start to the stream's first body byte", nil),
		busy: reg.Counter("hydra_serve_busy_total",
			"requests rejected with 503 because every slot was in use"),
		mismatch: reg.Counter("hydra_serve_digest_mismatch_total",
			"shard jobs refused because they pinned a different summary digest"),
		filterRejected: reg.Counter("hydra_serve_filter_rejected_total",
			"table streams refused because their filter= parameter was unusable"),
		drainRejected: reg.Counter("hydra_serve_drain_rejected_total",
			"requests rejected with 503 because the server was draining"),
		drainingG: reg.Gauge("hydra_serve_draining",
			"1 while the server is in drain mode, 0 otherwise"),
	}
}

// route wraps a handler with per-route request/byte accounting. The
// counters are resolved here, once per registered route, not per
// request.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("hydra_serve_requests_total",
		"HTTP requests received, by route", obs.L("route", name))
	bytes := s.reg.Counter("hydra_serve_bytes_total",
		"HTTP response body bytes written, by route", obs.L("route", name))
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		bytes.Add(sw.bytes)
	}
}

// statusWriter records the response status and body size without
// getting between the handler and the connection: Unwrap keeps
// http.NewResponseController's Flush working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// NewServer builds the data plane for one loaded summary.
func NewServer(sum *summary.Summary, opts Options) (*Server, error) {
	if sum == nil {
		return nil, errors.New("serve: summary is required")
	}
	if opts.RateLimit != 0 {
		if err := rate.Validate(opts.RateLimit); err != nil {
			return nil, fmt.Errorf("serve: rate limit: %w", err)
		}
	}
	if opts.MaxStreams < 0 {
		return nil, fmt.Errorf("serve: max streams %d out of range", opts.MaxStreams)
	}
	digest, err := SummaryDigest(sum)
	if err != nil {
		return nil, err
	}
	s := &Server{sum: sum, opts: opts, digest: digest, start: time.Now()}
	if opts.MaxStreams > 0 {
		s.slots = make(chan struct{}, opts.MaxStreams)
	}
	s.reg = opts.Metrics
	if s.reg == nil {
		s.reg = obs.Default
	}
	s.m = newServerMetrics(s.reg)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/tables/{table}", s.route("tables", s.handleTable))
	s.mux.HandleFunc("POST /v1/shardjobs", s.route("shardjobs", s.handleShardJob))
	s.mux.HandleFunc("GET /v1/summary", s.route("summary", s.handleSummary))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.reg.Handler().ServeHTTP))
	return s, nil
}

// HealthInfo is the GET /healthz document: liveness plus the identity
// and load facts a fleet manager polls — which summary this member
// serves, how long it has been up, and how full its stream slots are.
type HealthInfo struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	SummaryDigest string  `json:"summary_digest"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int64   `json:"in_flight_streams"`
	MaxStreams    int     `json:"max_streams"`
	Relations     int     `json:"relations"`
	TotalRows     int64   `json:"total_rows"`
	// Draining mirrors Status for programmatic consumers; while true,
	// DrainDeadline is the RFC 3339 instant by which in-flight streams
	// are abandoned (drain start + the server's drain timeout) — the
	// longest a rolling restart should wait before giving up on this
	// member.
	Draining      bool   `json:"draining"`
	DrainDeadline string `json:"drain_deadline,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	info := HealthInfo{
		Status:        status,
		Version:       version.String,
		SummaryDigest: s.digest,
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.m.inFlight.Value(),
		MaxStreams:    s.opts.MaxStreams,
		Relations:     len(s.sum.Relations),
		Draining:      status == "draining",
	}
	if start := s.drainStart.Load(); info.Draining && start != 0 {
		timeout := s.opts.DrainTimeout
		if timeout <= 0 {
			timeout = DefaultDrainTimeout
		}
		info.DrainDeadline = time.Unix(0, start).Add(timeout).UTC().Format(time.RFC3339)
	}
	for _, rs := range s.sum.Relations {
		info.TotalRows += rs.Total
	}
	writeJSON(w, http.StatusOK, info)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain puts the server into drain mode: GET /healthz starts
// reporting status "draining" (so fleet trackers rotate the member out
// within one probe interval), and new streams and shard jobs are
// refused with 503 + Retry-After while in-flight ones run to
// completion. The listener stays open — answering probes during drain
// is the point; closing the port would read as a crash, not a drain.
// Idempotent and reversible via EndDrain.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.drainStart.Store(time.Now().UnixNano())
	}
	s.m.drainingG.Set(1)
}

// EndDrain cancels drain mode (a rolling restart that aborted).
func (s *Server) EndDrain() {
	s.draining.Store(false)
	s.drainStart.Store(0)
	s.m.drainingG.Set(0)
}

// Draining reports whether the server is in drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitIdle blocks until no stream or shard job holds a slot, or ctx
// ends — the wait between BeginDrain and shutting the listener down.
// Returns ctx's error when the deadline cut the wait short (the caller
// then force-closes the stragglers).
func (s *Server) WaitIdle(ctx context.Context) error {
	for {
		if s.m.inFlight.Value() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// SummaryDigest returns the hex SHA-256 of the summary's canonical
// serialization — the identity a fleet agrees on. A client embeds it in
// job requests so a server loaded with a different summary refuses the
// job instead of silently generating different data.
func SummaryDigest(sum *summary.Summary) (string, error) {
	h := sha256.New()
	if _, err := sum.WriteTo(h); err != nil {
		return "", fmt.Errorf("serve: digest: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// acquire takes a stream slot, answering 503 when the server is at
// MaxStreams. The caller must release() iff acquire returned true.
// The in-flight gauge tracks successful acquisitions even on servers
// with unlimited slots, so /metrics shows load either way.
func (s *Server) acquire(w http.ResponseWriter) bool {
	if s.draining.Load() {
		// Draining members refuse new work but tell the client when to
		// come back — a few seconds, by which point the fleet tracker
		// will have rotated this member out of the pick order anyway.
		s.m.drainRejected.Inc()
		w.Header().Set("Retry-After", "2")
		http.Error(w, "serve: draining, not accepting new streams",
			http.StatusServiceUnavailable)
		return false
	}
	if s.slots == nil {
		s.m.inFlight.Inc()
		return true
	}
	select {
	case s.slots <- struct{}{}:
		s.m.inFlight.Inc()
		return true
	default:
		s.m.busy.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("serve: %d concurrent streams already running", cap(s.slots)),
			http.StatusServiceUnavailable)
		return false
	}
}

func (s *Server) release() {
	s.m.inFlight.Dec()
	if s.slots != nil {
		<-s.slots
	}
}

// capRate resolves a client-requested rate against the server cap: the
// client may slow a stream down, never speed it past the cap. Requests
// are validated before they get here; the NaN/Inf guard is defense in
// depth, since either would fail every comparison and escape the cap.
func (s *Server) capRate(requested float64) float64 {
	ceiling := s.opts.RateLimit
	if requested <= 0 || math.IsNaN(requested) || math.IsInf(requested, 0) {
		return ceiling
	}
	if ceiling > 0 && requested > ceiling {
		return ceiling
	}
	return requested
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}

// SummaryInfo is the GET /v1/summary document.
type SummaryInfo struct {
	Digest string `json:"digest"`
	// Relations maps table name to full-relation cardinality.
	Relations map[string]int64 `json:"relations"`
	TotalRows int64            `json:"total_rows"`
	// Formats and Compressors list what the tables endpoint accepts.
	Formats     []string `json:"formats"`
	Compressors []string `json:"compressors"`
	MaxStreams  int      `json:"max_streams,omitempty"`
	RateLimit   float64  `json:"rate_limit,omitempty"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	info := SummaryInfo{
		Digest:      s.digest,
		Relations:   make(map[string]int64, len(s.sum.Relations)),
		Compressors: matgen.CompressorNames(),
		MaxStreams:  s.opts.MaxStreams,
		RateLimit:   s.opts.RateLimit,
	}
	for name, rs := range s.sum.Relations {
		info.Relations[name] = rs.Total
		info.TotalRows += rs.Total
	}
	// Only streamable formats: discard has no byte stream to serve.
	for _, name := range matgen.SinkNames() {
		if name != "discard" {
			info.Formats = append(info.Formats, name)
		}
	}
	sort.Strings(info.Formats)
	writeJSON(w, http.StatusOK, info)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// parseShard parses the CLI-style 1-based "i/N" shard selector into the
// 0-based (shard, shards) pair the engine uses.
func parseShard(spec string) (shard, shards int, err error) {
	if spec == "" {
		return 0, 1, nil
	}
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard wants i/N, got %q", spec)
	}
	pi, err1 := strconv.Atoi(i)
	pn, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || pi < 1 || pn < 1 || pi > pn {
		return 0, 0, fmt.Errorf("shard wants i/N with 1 <= i <= N, got %q", spec)
	}
	return pi - 1, pn, nil
}
