package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dsl-repro/hydra/internal/matgen"
	"github.com/dsl-repro/hydra/internal/obs"
	"github.com/dsl-repro/hydra/internal/summary"
)

// testSummary mirrors matgen's fixture: two relations with FK spans,
// small enough for exhaustive golden comparisons, large enough to spread
// across shards and chunks at small batch sizes.
func testSummary() *summary.Summary {
	tRel := &summary.RelationSummary{
		Table: "T", Cols: []string{"C"},
		Rows: []summary.RelRow{
			{Vals: []int64{2}, Count: 900},
			{Vals: []int64{7}, Count: 613},
		},
		Total: 1513,
	}
	sRel := &summary.RelationSummary{
		Table: "S", Cols: []string{"A", "B"}, FKCols: []string{"t_fk"}, FKRefs: []string{"T"},
		Rows: []summary.RelRow{
			{Vals: []int64{20, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 3001},
			{Vals: []int64{20, 40}, FKs: []int64{901}, FKSpans: []int64{613}, Count: 2500},
			{Vals: []int64{61, 15}, FKs: []int64{1}, FKSpans: []int64{900}, Count: 2707},
		},
		Total: 8208,
	}
	return &summary.Summary{Relations: map[string]*summary.RelationSummary{"S": sRel, "T": tRel}}
}

// newTestServer starts one regeneration server over the fixture.
func newTestServer(t *testing.T, sum *summary.Summary, opts Options) *httptest.Server {
	t.Helper()
	s, err := NewServer(sum, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// fileFormats lists the servable formats (every sink that writes files).
func fileFormats() []string {
	var out []string
	for _, name := range matgen.SinkNames() {
		if name != "discard" {
			out = append(out, name)
		}
	}
	return out
}

func compressName(c string) string {
	if c == "" {
		return "plain"
	}
	return c
}

// TestTableStreamGolden is the byte-equivalence acceptance: for every
// format, plain and gzip, whole tables and shard pieces, the bytes
// fetched over HTTP are identical to the files a local materialization
// writes — and the SHA-256 trailer matches the body.
func TestTableStreamGolden(t *testing.T) {
	sum := testSummary()
	ts := newTestServer(t, sum, Options{})
	for _, format := range fileFormats() {
		for _, compress := range []string{"", "gzip"} {
			t.Run(format+"/"+compressName(compress), func(t *testing.T) {
				dir := t.TempDir()
				rep, err := matgen.Materialize(sum, matgen.Options{
					Dir: dir, Format: format, Compress: compress, Workers: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, tr := range rep.Tables {
					want, err := os.ReadFile(tr.Path)
					if err != nil {
						t.Fatal(err)
					}
					url := fmt.Sprintf("%s/v1/tables/%s?format=%s", ts.URL, tr.Table, format)
					if compress != "" {
						url += "&compress=" + compress
					}
					resp, body := get(t, url)
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
					}
					if !bytes.Equal(body, want) {
						t.Fatalf("%s: fetched %d bytes != materialized %d bytes", tr.Table, len(body), len(want))
					}
					wantSum := sha256.Sum256(body)
					if got := resp.Trailer.Get(TrailerSha256); got != hex.EncodeToString(wantSum[:]) {
						t.Fatalf("%s: trailer %q != body sha256", tr.Table, got)
					}
					if got := resp.Header.Get(HeaderRows); got != fmt.Sprint(tr.Rows) {
						t.Fatalf("%s: rows header %q, want %d", tr.Table, got, tr.Rows)
					}
				}

				// Shard piece 2/3 must equal the corresponding part file.
				dir = t.TempDir()
				if _, err := matgen.Materialize(sum, matgen.Options{
					Dir: dir, Format: format, Compress: compress, Workers: 2, Shards: 3, Shard: 1,
				}); err != nil {
					t.Fatal(err)
				}
				entries, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if strings.HasPrefix(e.Name(), "manifest-") {
						continue
					}
					table, _, _ := strings.Cut(e.Name(), ".")
					want, err := os.ReadFile(filepath.Join(dir, e.Name()))
					if err != nil {
						t.Fatal(err)
					}
					url := fmt.Sprintf("%s/v1/tables/%s?format=%s&shard=2/3", ts.URL, table, format)
					if compress != "" {
						url += "&compress=" + compress
					}
					resp, body := get(t, url)
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
					}
					if !bytes.Equal(body, want) {
						t.Fatalf("%s: fetched shard piece != part file %s", table, e.Name())
					}
				}
			})
		}
	}
}

// TestTableStreamResume: a limited fetch plus a resumed fetch at the
// same offset concatenate to the full fetch, byte-identically — gzip
// included when the cut sits on the advertised chunk grid.
func TestTableStreamResume(t *testing.T) {
	ts := newTestServer(t, testSummary(), Options{})
	for _, compress := range []string{"", "gzip"} {
		t.Run(compressName(compress), func(t *testing.T) {
			suffix := "&batch=128"
			if compress != "" {
				suffix += "&compress=" + compress
			}
			base := ts.URL + "/v1/tables/S?format=csv" + suffix
			resp, full := get(t, base)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: %s", base, full)
			}
			var info matgen.StreamReport
			_, infoBody := get(t, base+"&info=1")
			if err := json.Unmarshal(infoBody, &info); err != nil {
				t.Fatalf("info: %v (%s)", err, infoBody)
			}
			cut := 8 * info.ChunkRows
			if cut >= info.Rows {
				t.Fatalf("fixture too small: %d rows, chunk %d", info.Rows, info.ChunkRows)
			}
			_, head := get(t, fmt.Sprintf("%s&limit=%d", base, cut))
			_, tail := get(t, fmt.Sprintf("%s&offset=%d", base, cut))
			if got := append(head, tail...); !bytes.Equal(got, full) {
				t.Fatalf("limit %d + offset %d != full stream (%d vs %d bytes)", cut, cut, len(got), len(full))
			}
		})
	}
}

// TestTableStreamErrors maps each client mistake to its status code.
func TestTableStreamErrors(t *testing.T) {
	ts := newTestServer(t, testSummary(), Options{})
	cases := map[string]struct {
		path string
		code int
	}{
		"unknown table":     {"/v1/tables/nope?format=csv", http.StatusNotFound},
		"unknown format":    {"/v1/tables/S?format=parquet", http.StatusBadRequest},
		"discard format":    {"/v1/tables/S?format=discard", http.StatusBadRequest},
		"bad codec":         {"/v1/tables/S?format=csv&compress=lz77", http.StatusBadRequest},
		"bad shard spec":    {"/v1/tables/S?shard=0/4", http.StatusBadRequest},
		"shard gt width":    {"/v1/tables/S?shard=5/4", http.StatusBadRequest},
		"bad offset":        {"/v1/tables/S?offset=x", http.StatusBadRequest},
		"negative offset":   {"/v1/tables/S?offset=-3", http.StatusBadRequest},
		"misaligned offset": {"/v1/tables/S?format=sql&offset=17", http.StatusBadRequest},
		"bad rate":          {"/v1/tables/S?rate=-2", http.StatusBadRequest},
		"NaN rate":          {"/v1/tables/S?rate=NaN", http.StatusBadRequest},
		"Inf rate":          {"/v1/tables/S?rate=%2BInf", http.StatusBadRequest},
		"denormal rate":     {"/v1/tables/S?rate=1e-300", http.StatusBadRequest},
		"bad batch":         {"/v1/tables/S?batch=0", http.StatusBadRequest},
		"wrong method":      {"/v1/shardjobs", http.StatusMethodNotAllowed},
	}
	for name, tc := range cases {
		resp, body := get(t, ts.URL+tc.path)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: GET %s = %s (%s), want %d", name, tc.path, resp.Status, body, tc.code)
		}
	}
}

// TestTableStreamFilter: filter= restricts the stream to matching rows
// and is echoed canonically; unusable filters answer 400 with a JSON
// error body and bump the rejection counter.
func TestTableStreamFilter(t *testing.T) {
	reg := obs.NewRegistry()
	ts := newTestServer(t, testSummary(), Options{Metrics: reg})

	// A=20 matches the first two run groups: rows 1..5501 of 8208.
	resp, body := get(t, ts.URL+"/v1/tables/S?format=csv&filter=A%3D20%3A20")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered stream: %s (%s)", resp.Status, body)
	}
	if got := resp.Header.Get(HeaderFilter); got != "A=20" {
		t.Fatalf("filter echo = %q, want canonical %q", got, "A=20")
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if got := len(lines) - 1; got != 5501 { // minus header line
		t.Fatalf("filtered stream has %d rows, want 5501", got)
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, ",20,") {
			t.Fatalf("non-matching row in filtered stream: %q", line)
		}
	}

	rejections := map[string]string{
		"malformed":      "/v1/tables/S?format=csv&filter=A%3Dgarbage",
		"unknown column": "/v1/tables/S?format=csv&filter=Z%3D1",
		"aligned format": "/v1/tables/S?format=sql&filter=A%3D20",
	}
	for name, path := range rejections {
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: GET %s = %s, want 400", name, path, resp.Status)
			continue
		}
		var doc struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &doc); err != nil || doc.Error == "" {
			t.Errorf("%s: body %q is not a JSON error", name, body)
		}
	}
	_, metrics := get(t, ts.URL+"/metrics")
	if want := fmt.Sprintf("hydra_serve_filter_rejected_total %d", len(rejections)); !strings.Contains(string(metrics), want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestSummaryAndHealth: the fleet-management endpoints describe the
// loaded summary and its digest.
func TestSummaryAndHealth(t *testing.T) {
	sum := testSummary()
	ts := newTestServer(t, sum, Options{MaxStreams: 7, RateLimit: 123})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s %q", resp.Status, body)
	}
	var health HealthInfo
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz is not JSON: %v (%q)", err, body)
	}
	wantDigest, err := SummaryDigest(sum)
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case health.Status != "ok":
		t.Fatalf("healthz status %q", health.Status)
	case health.Version == "":
		t.Fatal("healthz reports no version")
	case health.SummaryDigest != wantDigest:
		t.Fatalf("healthz digest %q, want %q", health.SummaryDigest, wantDigest)
	case health.UptimeSeconds < 0:
		t.Fatalf("healthz uptime %v", health.UptimeSeconds)
	case health.InFlight != 0:
		t.Fatalf("healthz in-flight %d on an idle server", health.InFlight)
	case health.MaxStreams != 7:
		t.Fatalf("healthz max streams %d, want 7", health.MaxStreams)
	case health.Relations != 2 || health.TotalRows != 9721:
		t.Fatalf("healthz shape = %+v", health)
	}
	var info SummaryInfo
	resp, body = get(t, ts.URL+"/v1/summary")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: %s", resp.Status)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	digest, err := SummaryDigest(sum)
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != digest {
		t.Fatalf("digest %q, want %q", info.Digest, digest)
	}
	if info.Relations["S"] != 8208 || info.Relations["T"] != 1513 || info.TotalRows != 9721 {
		t.Fatalf("relations = %+v", info)
	}
	if info.MaxStreams != 7 || info.RateLimit != 123 {
		t.Fatalf("limits = %+v", info)
	}
	for _, f := range info.Formats {
		if f == "discard" {
			t.Fatal("discard advertised as servable")
		}
	}
}

// TestMaxStreams: the MaxStreams-th+1 concurrent stream is refused with
// 503 + Retry-After while a slow stream holds the only slot — and the
// in-flight gauge tracks the slot's whole life cycle, including the
// decrement when the client drops the connection mid-stream (the
// regression that would otherwise leak both the gauge and the slot).
func TestMaxStreams(t *testing.T) {
	reg := obs.NewRegistry()
	ts := newTestServer(t, testSummary(), Options{MaxStreams: 1, Metrics: reg})
	inFlight := reg.Gauge("hydra_serve_in_flight_streams", "")
	busy := reg.Counter("hydra_serve_busy_total", "")
	if got := inFlight.Value(); got != 0 {
		t.Fatalf("in-flight %d before any stream", got)
	}
	// rate+batch make the stream slow enough to hold its slot (~16s
	// worth), while the first chunk arrives quickly (~0.2s).
	slow, err := http.Get(ts.URL + "/v1/tables/S?format=csv&rate=500&batch=128")
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Body.Close()
	if slow.StatusCode != http.StatusOK {
		t.Fatalf("slow stream: %s", slow.Status)
	}
	if _, err := io.ReadFull(slow.Body, make([]byte, 16)); err != nil {
		t.Fatal(err) // the stream is live and holding its slot
	}
	if got := inFlight.Value(); got != 1 {
		t.Fatalf("in-flight %d with one live stream, want 1", got)
	}
	resp, body := get(t, ts.URL+"/v1/tables/T?format=csv")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: %s (%s), want 503", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if busy.Value() == 0 {
		t.Fatal("503 did not count into hydra_serve_busy_total")
	}
	// info=1 requests never consume a slot.
	if resp, _ := get(t, ts.URL+"/v1/tables/T?format=csv&info=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("info during saturation: %s", resp.Status)
	}
	// Dropping the slow stream frees the slot again.
	slow.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := get(t, ts.URL+"/v1/tables/T?format=csv")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never released after client disconnect")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The dropped stream's slot release must have decremented the gauge
	// too; the successful re-scan above has also completed, so the gauge
	// is back to zero, not drifting upward one dead connection at a time.
	deadline = time.Now().Add(5 * time.Second)
	for inFlight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge stuck at %d after all streams ended", inFlight.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMetricsEndpoint: the server exposes its registry at GET /metrics
// in Prometheus text format, and a completed stream shows up in the
// serve-side families.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	ts := newTestServer(t, testSummary(), Options{MaxStreams: 3, Metrics: reg})
	if resp, body := get(t, ts.URL+"/v1/tables/T?format=csv"); resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s (%s)", resp.Status, body)
	}
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`hydra_serve_requests_total{route="tables"} 1`,
		`hydra_serve_requests_total{route="metrics"} 1`,
		"# TYPE hydra_serve_stream_seconds histogram",
		`hydra_serve_stream_seconds_bucket{le="+Inf"} 1`,
		"hydra_serve_in_flight_streams 0",
		"# TYPE hydra_serve_ttfc_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// TestTableStreamRateLimit: a client-requested rate paces the stream
// within ±10%, and the server-side cap binds clients that ask for more.
func TestTableStreamRateLimit(t *testing.T) {
	sum := testSummary()
	timedGet := func(ts *httptest.Server, url string) (rowsPerSec float64) {
		t.Helper()
		start := time.Now()
		resp, body := get(t, ts.URL+url)
		elapsed := time.Since(start).Seconds()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s (%s)", url, resp.Status, body)
		}
		rows := int64(bytes.Count(body, []byte("\n")))
		return float64(rows) / elapsed
	}
	t.Run("client requested", func(t *testing.T) {
		ts := newTestServer(t, sum, Options{})
		const perSec = 1500.0 // T has 1513 rows: ~1s
		got := timedGet(ts, "/v1/tables/T?format=csv&batch=128&rate=1500")
		if got < perSec*0.9 || got > perSec*1.1 {
			t.Fatalf("observed %.0f rows/s, requested %.0f (±10%%)", got, perSec)
		}
	})
	t.Run("server cap", func(t *testing.T) {
		ts := newTestServer(t, sum, Options{RateLimit: 1500})
		got := timedGet(ts, "/v1/tables/T?format=csv&batch=128&rate=1000000")
		if got > 1500*1.1 {
			t.Fatalf("observed %.0f rows/s past the 1500 cap", got)
		}
	})
}
